"""Progfsm static verification: CFG, interpreter exactness, PF rules.

Mirrors the microcode analysis tests: the interpreter's cycle count
must equal the simulator's trace length *exactly* (checked across the
realizable library on mixed geometries plus handwritten adversarial
programs), and every PF rule must fire — with the right id and
location — on one seeded defect.
"""

import pytest

from repro.analysis import (
    Verdict,
    build_fsm_cfg,
    fsm_cycle_bound,
    interpret_fsm,
    verify_fsm_program,
)
from repro.analysis.progfsm_cfg import EXIT, FsmEdgeKind, element_cycles
from repro.analysis.verifier import VerificationError, assert_verified
from repro.core.controller import ControllerCapabilities
from repro.core.progfsm.compiler import FsmProgram, compile_to_sm, is_realizable
from repro.core.progfsm.controller import ProgrammableFsmBistController
from repro.core.progfsm.instruction import DataControl, FsmInstruction
from repro.core.progfsm.march_elements import SM_PATTERNS
from repro.march import library

GEOMETRIES = [
    ControllerCapabilities(n_words=64),
    ControllerCapabilities(n_words=16, width=4, ports=2),
    ControllerCapabilities(n_words=5, width=2, ports=3),
    ControllerCapabilities(n_words=1),
]

REALIZABLE = sorted(
    name for name in library.ALGORITHMS if is_realizable(library.get(name))
)


def traced_cycles(program, caps):
    controller = ProgrammableFsmBistController(
        program, caps,
        buffer_rows=max(12, len(program)), verify=False,
    )
    return sum(1 for _ in controller.trace())


def program_of(*instructions, name="handwritten"):
    return FsmProgram(name=name, instructions=list(instructions), source=None)


def element(mode=0, hold=False, addr_down=False):
    return FsmInstruction(hold=hold, addr_down=addr_down, mode=mode)


LOOP_BG = FsmInstruction(data_ctrl=DataControl.LOOP_BG)
LOOP_PORT = FsmInstruction(data_ctrl=DataControl.LOOP_PORT)


class TestCfg:
    def test_element_rows_chain_to_exit(self):
        cfg = build_fsm_cfg(program_of(element(), element()))
        assert [str(e) for e in cfg.edges] == [
            "0 -> 1 [advance]",
            "1 -> EXIT [end]",
        ]
        assert cfg.unreachable() == []

    def test_loop_bg_forks_to_row_zero_and_fallthrough(self):
        cfg = build_fsm_cfg(program_of(element(), LOOP_BG, LOOP_PORT))
        kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
        assert kinds[(1, 0)] is FsmEdgeKind.PATH_A
        assert kinds[(1, 2)] is FsmEdgeKind.LAST_DATA
        assert kinds[(2, 0)] is FsmEdgeKind.PATH_B
        assert kinds[(2, EXIT)] is FsmEdgeKind.END

    def test_rows_after_loop_port_are_unreachable(self):
        cfg = build_fsm_cfg(program_of(element(), LOOP_PORT, element()))
        assert cfg.unreachable() == [2]

    def test_terminating_edges_all_point_at_exit(self):
        cfg = build_fsm_cfg(program_of(element(), LOOP_BG))
        assert all(e.dst is EXIT for e in cfg.terminating_edges())
        assert len(cfg.terminating_edges()) == 1


class TestElementCycles:
    @pytest.mark.parametrize("mode", range(len(SM_PATTERNS)))
    def test_formula_matches_one_element_trace(self, mode):
        caps = ControllerCapabilities(n_words=7)
        program = program_of(element(mode=mode))
        assert element_cycles(program.instructions[0], 7) == \
            traced_cycles(program, caps)


class TestExactness:
    """The headline identity, progfsm edition."""

    @pytest.mark.parametrize("name", REALIZABLE)
    @pytest.mark.parametrize("caps", GEOMETRIES, ids=str)
    def test_library_bound_matches_simulator_exactly(self, name, caps):
        program = compile_to_sm(library.get(name), caps, verify=False)
        result = interpret_fsm(program, caps)
        assert result.verdict is Verdict.TERMINATES
        assert result.cycles == traced_cycles(program, caps)

    @pytest.mark.parametrize("caps", GEOMETRIES, ids=str)
    def test_handwritten_tails_match_simulator(self, caps):
        """Every loop-row tail combination, including the asymmetric
        cases: a Last-Data wrap past the end costs 0 cycles, a Last-Port
        end costs 1."""
        tails = [[], [LOOP_BG], [LOOP_PORT], [LOOP_BG, LOOP_PORT]]
        for tail in tails:
            program = program_of(element(), element(mode=2), *tail)
            result = interpret_fsm(program, caps)
            assert result.verdict is Verdict.TERMINATES, result.reason
            assert result.cycles == traced_cycles(program, caps), str(tail)

    def test_empty_program_terminates_in_zero_cycles(self):
        result = interpret_fsm(program_of(), GEOMETRIES[0])
        assert result.verdict is Verdict.TERMINATES
        assert result.cycles == 0

    def test_fsm_cycle_bound_is_the_interpretation_cycles(self):
        caps = ControllerCapabilities(n_words=4, width=2)
        program = compile_to_sm(library.MARCH_C, caps, verify=False)
        assert fsm_cycle_bound(program, caps) == traced_cycles(program, caps)


class TestVerdicts:
    def test_two_loop_bg_rows_diverge_on_word_oriented_target(self):
        """Row 0 resets the background that row 1 would consume: the
        (row, background, port) state recurs, so the walk never ends."""
        caps = ControllerCapabilities(n_words=2, width=2)
        result = interpret_fsm(program_of(LOOP_BG, LOOP_BG), caps)
        assert result.verdict is Verdict.DIVERGES
        assert "recurs" in result.reason

    def test_same_program_terminates_on_bit_oriented_target(self):
        """One background means Last Data is always asserted — both
        rows fall through and the test ends."""
        caps = ControllerCapabilities(n_words=2, width=1)
        result = interpret_fsm(program_of(LOOP_BG, LOOP_BG), caps)
        assert result.verdict is Verdict.TERMINATES

    def test_step_budget_exhaustion_is_unknown(self):
        caps = ControllerCapabilities(n_words=4, width=4, ports=2)
        program = compile_to_sm(library.MARCH_C, caps, verify=False)
        result = interpret_fsm(program, caps, max_steps=2)
        assert result.verdict is Verdict.UNKNOWN


class TestRules:
    """One seeded defect per PF rule: exact id and location."""

    CAPS = ControllerCapabilities(n_words=4, width=2, ports=2)

    def test_pf001_unreachable_row(self):
        program = program_of(element(), LOOP_BG, LOOP_PORT, element())
        report = verify_fsm_program(program, self.CAPS)
        found = report.by_rule("PF001")
        assert [d.location.instruction for d in found] == [3]
        assert not report.has_errors  # a warning, not an error

    def test_pf002_divergence_is_an_error(self):
        program = program_of(LOOP_BG, LOOP_BG)
        report = verify_fsm_program(program, self.CAPS)
        (finding,) = report.by_rule("PF002")
        assert finding in report.errors
        assert finding.location.instruction == 0

    def test_pf003_explicit_buffer_overflow_is_an_error(self):
        program = program_of(*[element() for _ in range(5)])
        report = verify_fsm_program(program, self.CAPS, buffer_rows=4)
        (finding,) = report.by_rule("PF003")
        assert finding in report.errors
        assert finding.location.instruction == 4

    def test_pf003_default_depth_overflow_only_warns(self):
        program = program_of(*[element() for _ in range(13)])
        report = verify_fsm_program(program, self.CAPS)
        (finding,) = report.by_rule("PF003")
        assert finding not in report.errors
        assert "buffer_rows >= 13" in finding.hint

    def test_pf004_missing_capability_loop_rows(self):
        program = program_of(element(), element())
        report = verify_fsm_program(program, self.CAPS)
        found = report.by_rule("PF004")
        assert len(found) == 2  # no LOOP_BG *and* no LOOP_PORT
        assert {d.location.instruction for d in found} == {1}

    def test_pf005_loop_bg_without_backgrounds_warns(self):
        caps = ControllerCapabilities(n_words=4, width=1)
        program = program_of(element(), LOOP_BG)
        (finding,) = verify_fsm_program(program, caps).by_rule("PF005")
        assert finding.location.instruction == 1
        assert finding.severity.value == "warning"

    def test_pf005_loop_port_without_ports_is_advisory(self):
        caps = ControllerCapabilities(n_words=4, width=1)
        program = program_of(element(), LOOP_PORT)
        (finding,) = verify_fsm_program(program, caps).by_rule("PF005")
        assert finding.severity.value == "info"

    def test_pf006_hold_bit_on_loop_row(self):
        hold_loop = FsmInstruction(hold=True, data_ctrl=DataControl.LOOP_BG)
        program = program_of(element(), hold_loop)
        (finding,) = verify_fsm_program(program, self.CAPS).by_rule("PF006")
        assert finding.location.instruction == 1

    def test_pf007_unknown_verdict_warns(self):
        # No public knob reaches max_steps through verify_fsm_program,
        # so drive the rule directly with an UNKNOWN interpretation.
        from repro.analysis import FsmProgramAnalysis, run_fsm_rules
        from repro.analysis.progfsm_cfg import build_fsm_cfg

        program = program_of(element())
        analysis = FsmProgramAnalysis(
            program=program,
            cfg=build_fsm_cfg(program),
            interpretation=interpret_fsm(program, self.CAPS, max_steps=0),
            capabilities=self.CAPS,
        )
        assert any(d.rule == "PF007" for d in run_fsm_rules(analysis))


class TestSelfLint:
    """No-false-positives contract: the compiler's output always
    verifies clean, so compile/load can verify by default."""

    @pytest.mark.parametrize("name", REALIZABLE)
    @pytest.mark.parametrize("caps", GEOMETRIES, ids=str)
    def test_library_compiles_and_lints_clean(self, name, caps):
        program = compile_to_sm(library.get(name), caps, verify=False)
        report = verify_fsm_program(program, caps)
        assert not report.has_errors, report.format()


class TestWiring:
    CAPS = ControllerCapabilities(n_words=4, width=2, ports=2)

    def test_compile_verifies_by_default(self):
        # Library compilation must survive the post-compile gate.
        compile_to_sm(library.MARCH_C, self.CAPS, verify=True)

    def test_controller_load_rejects_a_divergent_program(self):
        controller = ProgrammableFsmBistController(
            library.MARCH_C, self.CAPS
        )
        bad = program_of(LOOP_BG, LOOP_BG)
        with pytest.raises(VerificationError) as excinfo:
            controller.load(bad)
        assert excinfo.value.report.by_rule("PF002")

    def test_controller_load_rejects_a_buffer_overflow(self):
        """The buffer never auto-grows, so the controller's own depth
        turns the advisory PF003 into a hard load-time error."""
        small = program_of(element(), LOOP_BG, LOOP_PORT)
        controller = ProgrammableFsmBistController(
            small, self.CAPS, buffer_rows=4
        )
        big = program_of(*[element() for _ in range(5)], LOOP_BG, LOOP_PORT)
        with pytest.raises(VerificationError) as excinfo:
            controller.load(big)
        assert excinfo.value.report.by_rule("PF003")

    def test_verify_false_skips_the_gate(self):
        controller = ProgrammableFsmBistController(
            library.MARCH_C, self.CAPS, verify=False
        )
        controller.load(program_of(LOOP_BG, LOOP_BG))  # no raise

    def test_assert_verified_dispatches_on_fsm_programs(self):
        program = compile_to_sm(library.MARCH_C, self.CAPS, verify=False)
        report = assert_verified(program, self.CAPS)
        assert not report.has_errors
        with pytest.raises(VerificationError):
            assert_verified(program_of(LOOP_BG, LOOP_BG), self.CAPS)
