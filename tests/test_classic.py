"""Unit tests for the classical (pre-march) test algorithms."""

import pytest

from repro.classic import (
    Lfsr,
    Misr,
    checkerboard,
    checkerboard_op_count,
    galpat,
    galpat_op_count,
    pseudorandom_signature,
    pseudorandom_test,
    walking_ones,
    walking_op_count,
    walking_zeros,
)
from repro.faults.universe import (
    FaultUniverse,
    coupling_universe,
    stuck_at_universe,
    transition_universe,
)
from repro.march.coverage import evaluate_stream_coverage
from repro.march.simulator import run_on_memory
from repro.memory import Sram

N = 6


def _universe(name, faults):
    universe = FaultUniverse(name)
    universe.extend(faults)
    return universe


class TestWalking:
    def test_op_count_matches_stream(self):
        assert len(list(walking_ones(N))) == walking_op_count(N)

    def test_passes_on_good_memory(self):
        memory = Sram(N)
        assert run_on_memory(walking_ones(N), memory).passed
        memory.reset_state()
        assert run_on_memory(walking_zeros(N), memory).passed

    def test_full_saf_and_coupling_coverage(self):
        def both():
            yield from walking_ones(N)
            yield from walking_zeros(N)

        universe = _universe(
            "saf+cf", stuck_at_universe(N) + coupling_universe(N)
        )
        report = evaluate_stream_coverage(both, Sram(N), universe)
        assert report.overall == 1.0

    def test_multiport(self):
        ops = list(walking_ones(2, ports=2))
        assert {op.port for op in ops} == {0, 1}

    def test_quadratic_growth(self):
        assert walking_op_count(100) > 50 * walking_op_count(10) / 10


class TestGalpat:
    def test_op_count_matches_stream(self):
        assert len(list(galpat(N))) == galpat_op_count(N)

    def test_passes_on_good_memory(self):
        assert run_on_memory(galpat(N), Sram(N)).passed

    def test_full_basic_coverage(self):
        universe = _universe(
            "basic",
            stuck_at_universe(N) + transition_universe(N) + coupling_universe(N),
        )
        report = evaluate_stream_coverage(
            lambda: galpat(N), Sram(N), universe
        )
        assert report.overall == 1.0

    def test_ping_pong_structure(self):
        """After each other-cell read, the mark cell is re-read."""
        ops = list(galpat(4))
        # Locate one tenure: the mark write to cell 0 in pass 1.
        start = next(
            i for i, op in enumerate(ops) if op.is_write and op.value == 1
        )
        tenure = ops[start + 1 : start + 1 + 2 * 3]  # 2(N-1) reads
        for other_read, mark_read in zip(tenure[::2], tenure[1::2]):
            assert other_read.is_read and other_read.address != 0
            assert mark_read.is_read and mark_read.address == 0
            assert mark_read.expected == 1

    def test_tenure_pre_read_present(self):
        """Each tenure opens by verifying the cell before disturbing it."""
        n = 3
        pass1 = list(galpat(n))[: galpat_op_count(n) // 2]
        mark_writes = [
            i for i, op in enumerate(pass1) if op.is_write and op.value == 1
        ]
        assert len(mark_writes) == n
        for index in mark_writes:
            previous = pass1[index - 1]
            assert previous.is_read
            assert previous.address == pass1[index].address
            assert previous.expected == 0


class TestCheckerboard:
    def test_op_count_matches_stream(self):
        assert len(list(checkerboard(N))) == checkerboard_op_count(N)

    def test_passes_on_good_memory(self):
        assert run_on_memory(checkerboard(N), Sram(N)).passed

    def test_bake_adds_delays(self):
        ops = list(checkerboard(N, bake=512))
        delays = [op for op in ops if op.is_delay]
        assert len(delays) == 2
        assert all(op.delay == 512 for op in delays)

    def test_detects_retention_with_bake(self):
        from repro.faults import DataRetentionFault

        memory = Sram(16)
        memory.attach(DataRetentionFault(5, 0, from_value=1, decay_time=400))
        result = run_on_memory(checkerboard(16, bake=1024), memory)
        assert not result.passed

    def test_detects_all_safs(self):
        universe = _universe("saf", stuck_at_universe(N))
        report = evaluate_stream_coverage(
            lambda: checkerboard(N), Sram(N), universe
        )
        assert report.overall == 1.0

    def test_misses_many_couplings(self):
        universe = _universe("cf", coupling_universe(N))
        report = evaluate_stream_coverage(
            lambda: checkerboard(N), Sram(N), universe
        )
        assert report.overall < 0.9  # the gap to March C's 100%

    def test_pattern_is_physical_checkerboard(self):
        """Adjacent grid cells carry opposite values in phase 0."""
        from repro.classic.checkerboard import _patterns
        from repro.faults.neighborhood import CellGrid

        grid = CellGrid(16, 1)
        pattern = _patterns(16, 1)
        for word in range(16):
            for neighbour, _bit in grid.neighbours((word, 0)):
                assert pattern[word] != pattern[neighbour]


class TestLfsrMisr:
    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(25)

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(8, seed=0)

    @pytest.mark.parametrize("width", [3, 4, 5, 6, 7, 8])
    def test_maximal_period(self, width):
        lfsr = Lfsr(width, seed=1)
        seen = set()
        for _ in range(lfsr.period):
            seen.add(lfsr.step())
        assert len(seen) == lfsr.period
        assert 0 not in seen

    def test_value_returns_requested_bits(self):
        lfsr = Lfsr(8)
        assert 0 <= lfsr.value(5) < 32

    def test_misr_signature_changes_with_input(self):
        a = Misr(16)
        b = Misr(16)
        a.absorb(1)
        b.absorb(2)
        assert a.signature != b.signature

    def test_misr_deterministic(self):
        a, b = Misr(16), Misr(16)
        for value in (3, 1, 4, 1, 5):
            a.absorb(value)
            b.absorb(value)
        assert a.signature == b.signature


class TestPseudorandomTest:
    def test_budget_respected(self):
        ops = list(pseudorandom_test(8, length=100))
        assert len(ops) == 100

    def test_default_budget_matches_march_c(self):
        ops = list(pseudorandom_test(8))
        assert len(ops) == 80

    def test_passes_on_good_memory(self):
        result = run_on_memory(pseudorandom_test(8, length=200), Sram(8))
        assert result.passed

    def test_signature_pass_fail(self):
        from repro.faults import StuckAtFault

        good = Sram(8)
        predicted, observed = pseudorandom_signature(good, 8, length=300)
        assert predicted == observed

        bad = Sram(8)
        bad.attach(StuckAtFault(3, 0, 1))
        predicted, observed = pseudorandom_signature(bad, 8, length=300)
        assert predicted != observed

    def test_escapes_at_equal_budget(self):
        """At March C's 10N budget the pseudorandom test leaves SAF
        escapes — the determinism argument, measured."""
        universe = _universe("saf", stuck_at_universe(8))
        report = evaluate_stream_coverage(
            lambda: pseudorandom_test(8), Sram(8), universe
        )
        assert report.overall < 1.0

    def test_coverage_grows_with_budget(self):
        universe = _universe("saf", stuck_at_universe(8))
        short = evaluate_stream_coverage(
            lambda: pseudorandom_test(8, length=40), Sram(8), universe
        ).overall
        long = evaluate_stream_coverage(
            lambda: pseudorandom_test(8, length=2000), Sram(8), universe
        ).overall
        assert long >= short
        assert long > 0.9  # eventually random excitation gets there
