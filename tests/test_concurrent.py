"""Concurrent dual-port stimuli: arbitration, expansion, fault catches.

Covers the same-cycle multi-port op groups (:class:`repro.march.
concurrent.CycleOps`), the :meth:`repro.memory.sram.Sram.cycle`
arbitration contract, the concurrent golden expansion, and the
concurrency-sensitised fault models (PAFc / CFxp) — including the
defining proof that a port-aware fault *missed* by the sequential
per-port expansion is *caught* by the concurrent one, with the exact
fail-event sets pinned on (2,2,2) and (4,2,2).
"""

import pytest

from repro.conformance import (
    CONCURRENT_CACHE,
    check_cross_engine,
    check_fault_conformance,
    concurrent_trace,
    run_fault_sweep,
    sweep_faults,
)
from repro.conformance.faulty.events import capture_cycle_response
from repro.core.controller import ControllerCapabilities
from repro.faults.concurrent import (
    ConcurrentPortAccessFault,
    CrossPortCouplingFault,
    concurrent_fault_universe,
)
from repro.faults.injector import FaultInjector
from repro.faults.spec import format_fault, parse_fault
from repro.march import library
from repro.march.concurrent import (
    CycleOps,
    cycle_count,
    expand_concurrent,
    run_cycles_on_memory,
)
from repro.march.notation import parse_test
from repro.march.simulator import (
    MemoryOperation,
    expand,
    operation_count,
    run_on_memory,
)
from repro.memory.sram import Sram


def _caps(geometry):
    words, width, ports = geometry
    return ControllerCapabilities(n_words=words, width=width, ports=ports)


def _memory(geometry):
    words, width, ports = geometry
    return Sram(words, width=width, ports=ports)


# ---------------------------------------------------------------------------
# CycleOps construction contract.
# ---------------------------------------------------------------------------


class TestCycleOps:
    def test_sorted_ascending_by_port(self):
        group = CycleOps(
            [
                MemoryOperation(1, 0, False, expected=0),
                MemoryOperation(0, 1, True, value=1),
            ]
        )
        assert group.ports == (0, 1)
        assert [op.port for op in group] == [0, 1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            CycleOps([])

    def test_rejects_duplicate_port(self):
        with pytest.raises(ValueError, match="duplicate port"):
            CycleOps(
                [
                    MemoryOperation(0, 0, False, expected=0),
                    MemoryOperation(0, 1, True, value=1),
                ]
            )

    def test_pause_travels_alone(self):
        with pytest.raises(ValueError, match="pause"):
            CycleOps(
                [
                    MemoryOperation(0, 0, False, delay=128),
                    MemoryOperation(1, 0, False, expected=0),
                ]
            )
        lone = CycleOps([MemoryOperation(0, 0, False, delay=128)])
        assert lone.is_delay


# ---------------------------------------------------------------------------
# Sram.cycle arbitration contract (documented in docs/TESTING.md).
# ---------------------------------------------------------------------------


class TestSramCycleArbitration:
    def test_reads_sample_pre_cycle_contents(self):
        # Read-first: a same-cycle write+read race on one cell observes
        # the OLD word through every reading port.
        memory = Sram(2, width=2, ports=2)
        memory.poke(0, 1)
        observed = memory.cycle(
            [
                MemoryOperation(0, 0, True, value=3),
                MemoryOperation(1, 0, False, expected=1),
            ]
        )
        assert observed == {1: 1}
        assert memory.peek(0) == 3

    def test_write_write_race_highest_port_wins(self):
        memory = Sram(1, width=2, ports=3)
        memory.cycle(
            [
                MemoryOperation(0, 0, True, value=1),
                MemoryOperation(2, 0, True, value=2),
                MemoryOperation(1, 0, True, value=3),
            ]
        )
        assert memory.peek(0) == 2

    def test_single_clock_advance_per_group(self):
        memory = Sram(2, width=1, ports=2)
        before = memory.clock.now
        memory.cycle(
            [
                MemoryOperation(0, 0, True, value=1),
                MemoryOperation(1, 1, False, expected=0),
            ]
        )
        assert memory.clock.now == before + 1

    def test_rejects_two_ops_on_one_port(self):
        memory = Sram(2, width=1, ports=2)
        with pytest.raises(ValueError, match="port 0"):
            memory.cycle(
                [
                    MemoryOperation(0, 0, True, value=1),
                    MemoryOperation(0, 1, False, expected=0),
                ]
            )

    def test_rejects_pause_sharing_a_cycle(self):
        memory = Sram(2, width=1, ports=2)
        with pytest.raises(ValueError, match="pause"):
            memory.cycle(
                [
                    MemoryOperation(0, 0, False, delay=64),
                    MemoryOperation(1, 0, False, expected=0),
                ]
            )

    def test_lone_pause_elapses(self):
        memory = Sram(2, width=1, ports=1)
        before = memory.clock.now
        out = memory.cycle([MemoryOperation(0, 0, False, delay=64)])
        assert out == {}
        assert memory.clock.now == before + 64


# ---------------------------------------------------------------------------
# Concurrent expansion semantics.
# ---------------------------------------------------------------------------


class TestExpandConcurrent:
    @pytest.mark.parametrize("geometry", [(4, 1, 1), (3, 2, 1), (2, 4, 1)])
    def test_single_port_degenerates_to_sequential(self, geometry):
        words, width, ports = geometry
        cycles = list(
            expand_concurrent(library.MARCH_C, words, width=width, ports=ports)
        )
        sequential = list(
            expand(library.MARCH_C, words, width=width, ports=ports)
        )
        assert [cycle.ops for cycle in cycles] == [
            (op,) for op in sequential
        ]

    @pytest.mark.parametrize(
        "geometry", [(2, 2, 2), (4, 2, 2), (3, 1, 3), (2, 4, 2)]
    )
    def test_base_ops_are_the_sequential_stream(self, geometry):
        words, width, ports = geometry
        cycles = list(
            expand_concurrent(library.MARCH_C, words, width=width, ports=ports)
        )
        sequential = list(
            expand(library.MARCH_C, words, width=width, ports=ports)
        )
        base_ops = []
        for cycle, golden in zip(cycles, sequential):
            picked = [op for op in cycle if op.port == golden.port]
            assert len(picked) == 1
            base_ops.append(picked[0])
        assert base_ops == sequential

    @pytest.mark.parametrize("name", ["MATS+", "March C", "March Y"])
    @pytest.mark.parametrize("geometry", [(2, 2, 2), (4, 1, 2), (3, 2, 3)])
    def test_cycle_count_matches_operation_count(self, name, geometry):
        words, width, ports = geometry
        test = library.get(name)
        cycles = list(expand_concurrent(test, words, width=width, ports=ports))
        assert len(cycles) == cycle_count(test, words, width, ports)
        assert len(cycles) == operation_count(test, words, width, ports)

    @pytest.mark.parametrize("name", ["MATS+", "March C", "March Y", "March B"])
    @pytest.mark.parametrize("geometry", [(2, 2, 2), (4, 1, 2), (3, 2, 3)])
    def test_fault_free_run_is_clean(self, name, geometry):
        words, width, ports = geometry
        test = library.get(name)
        result = run_cycles_on_memory(
            expand_concurrent(test, words, width=width, ports=ports),
            _memory(geometry),
        )
        assert result.failures == []

    def test_companion_expects_pre_cycle_value_on_writes(self):
        # ^(w1) over a zeroed memory: the base port writes the solid-1
        # background while the companion reads the pre-cycle 0.
        cycles = list(
            expand_concurrent(parse_test("^(w1)"), 2, width=1, ports=2)
        )
        first = cycles[0]
        assert first.ops[0].is_write and first.ops[0].value == 1
        assert first.ops[1].is_read and first.ops[1].expected == 0

    def test_pauses_stay_single_op_cycles(self):
        test = parse_test("^(w0); Del(128); ^(r0)")
        cycles = list(expand_concurrent(test, 2, width=1, ports=2))
        delays = [cycle for cycle in cycles if cycle.is_delay]
        assert len(delays) == 2  # one per base-port rotation
        assert all(len(cycle) == 1 for cycle in delays)


# ---------------------------------------------------------------------------
# The concurrency-sensitised fault universe.
# ---------------------------------------------------------------------------


class TestConcurrentUniverse:
    def test_empty_for_single_port(self):
        assert concurrent_fault_universe(4, 2, 1) == []

    def test_population_counts(self):
        faults = concurrent_fault_universe(2, 2, 2)
        kinds = {fault.kind for fault in faults}
        assert kinds == {"PAFc", "CFxp"}
        # PAFc: ports x words x bits; CFxp: words x ordered bit pairs
        # x 2 directions x 2 forced values.
        assert sum(f.kind == "PAFc" for f in faults) == 2 * 2 * 2
        assert sum(f.kind == "CFxp" for f in faults) == 2 * 2 * 2 * 2

    def test_bit_oriented_has_no_cross_port_coupling(self):
        faults = concurrent_fault_universe(4, 1, 2)
        assert {fault.kind for fault in faults} == {"PAFc"}

    def test_spec_round_trip(self):
        for fault in concurrent_fault_universe(2, 2, 2):
            spec = format_fault(fault)
            assert spec is not None
            rebuilt = parse_fault(spec)
            assert format_fault(rebuilt) == spec

    def test_install_rejects_missing_port(self):
        memory = Sram(2, width=1, ports=1)
        with pytest.raises(ValueError, match="no port 1"):
            memory.attach(ConcurrentPortAccessFault(1, 0, 0))

    def test_no_self_coupling(self):
        with pytest.raises(ValueError, match="itself"):
            CrossPortCouplingFault(0, 0, 0, 0, True, 1)

    def test_sweep_population_gains_concurrent_stratum(self):
        caps = _caps((4, 2, 2))
        kinds = {f.kind for f in sweep_faults(caps, per_kind=1, mode="concurrent")}
        assert {"PAFc", "CFxp"} <= kinds
        sequential_kinds = {f.kind for f in sweep_faults(caps, per_kind=1)}
        assert "PAFc" not in sequential_kinds
        assert "CFxp" not in sequential_kinds
        # Single-port geometries have no concurrent stratum to add.
        solo = _caps((4, 2, 1))
        assert {f.kind for f in sweep_faults(solo, per_kind=1, mode="concurrent")} == {
            f.kind for f in sweep_faults(solo, per_kind=1)
        }


# ---------------------------------------------------------------------------
# Sequential miss / concurrent catch — the reason this mode exists.
# ---------------------------------------------------------------------------

#: Faults invisible to one-port-at-a-time stimuli by construction.
CONCURRENT_ONLY_SPECS = ("pafc:1:0:0", "cfxp:0:0:0:1:up:1")


class TestSequentialMissConcurrentCatch:
    @pytest.mark.parametrize("spec", CONCURRENT_ONLY_SPECS)
    @pytest.mark.parametrize("geometry", [(2, 2, 2), (4, 2, 2)])
    def test_raw_streams(self, spec, geometry):
        words, width, ports = geometry
        fault = parse_fault(spec)

        memory = _memory(geometry)
        with FaultInjector(memory).injected(fault):
            sequential = run_on_memory(
                expand(library.MARCH_C, words, width=width, ports=ports),
                memory,
            )
        assert sequential.failures == []

        memory = _memory(geometry)
        with FaultInjector(memory).injected(fault):
            concurrent = run_cycles_on_memory(
                expand_concurrent(
                    library.MARCH_C, words, width=width, ports=ports
                ),
                memory,
            )
        assert concurrent.failures

    @pytest.mark.parametrize("spec", CONCURRENT_ONLY_SPECS)
    def test_through_conformance_api(self, spec):
        caps = _caps((2, 2, 2))
        fault = parse_fault(spec)
        sequential = check_fault_conformance(library.MARCH_C, caps, fault)
        assert sequential.ok
        assert not sequential.detected
        concurrent = check_fault_conformance(
            library.MARCH_C, caps, fault, mode="concurrent"
        )
        assert concurrent.ok
        assert concurrent.detected
        assert concurrent.mode == "concurrent"


# ---------------------------------------------------------------------------
# Pinned fail-event sets (event-level regression).
# ---------------------------------------------------------------------------

#: Exact concurrent-mode fail-event keys (op_index, port, address,
#: expected, observed) of March C under each fault.  Any change to the
#: expansion order, the arbitration contract or the fault models moves
#: these — review deliberately before re-pinning.
PINNED_EVENT_KEYS = {
    ((2, 2, 2), "pafc:1:0:0"): [
        (6, 1, 0, 3, 2), (7, 1, 0, 3, 2), (16, 1, 0, 3, 2),
        (17, 1, 0, 3, 2), (26, 1, 0, 1, 0), (27, 1, 0, 1, 0),
        (36, 1, 0, 1, 0), (37, 1, 0, 1, 0), (46, 0, 0, 3, 2),
        (46, 1, 0, 3, 2), (47, 0, 0, 3, 2), (56, 0, 0, 3, 2),
        (56, 1, 0, 3, 2), (57, 0, 0, 3, 2), (66, 0, 0, 1, 0),
        (66, 1, 0, 1, 0), (67, 0, 0, 1, 0), (76, 0, 0, 1, 0),
        (76, 1, 0, 1, 0), (77, 0, 0, 1, 0),
    ],
    ((2, 2, 2), "cfxp:0:0:0:1:up:1"): [
        (26, 0, 0, 1, 3), (26, 1, 0, 1, 3), (27, 1, 0, 1, 3),
        (36, 0, 0, 1, 3), (36, 1, 0, 1, 3), (37, 1, 0, 1, 3),
        (66, 0, 0, 1, 3), (66, 1, 0, 1, 3), (67, 0, 0, 1, 3),
        (76, 0, 0, 1, 3), (76, 1, 0, 1, 3), (77, 0, 0, 1, 3),
    ],
    ((4, 2, 2), "pafc:1:0:0"): [
        (12, 1, 0, 3, 2), (13, 1, 0, 3, 2), (34, 1, 0, 3, 2),
        (35, 1, 0, 3, 2), (52, 1, 0, 1, 0), (53, 1, 0, 1, 0),
        (74, 1, 0, 1, 0), (75, 1, 0, 1, 0), (92, 0, 0, 3, 2),
        (92, 1, 0, 3, 2), (93, 0, 0, 3, 2), (114, 0, 0, 3, 2),
        (114, 1, 0, 3, 2), (115, 0, 0, 3, 2), (132, 0, 0, 1, 0),
        (132, 1, 0, 1, 0), (133, 0, 0, 1, 0), (154, 0, 0, 1, 0),
        (154, 1, 0, 1, 0), (155, 0, 0, 1, 0),
    ],
}


class TestPinnedEvents:
    @pytest.mark.parametrize(
        "geometry,spec", sorted(PINNED_EVENT_KEYS, key=str)
    )
    def test_exact_event_keys(self, geometry, spec):
        caps = _caps(geometry)
        stream = concurrent_trace(library.MARCH_C, caps)
        memory = _memory(geometry)
        with FaultInjector(memory).injected(parse_fault(spec)):
            capture = capture_cycle_response(stream, memory)
        assert [e.key for e in capture.events] == PINNED_EVENT_KEYS[
            (geometry, spec)
        ]

    @pytest.mark.parametrize("geometry", [(2, 2, 2), (4, 2, 2)])
    def test_classic_paf_matches_contention_paf_concurrently(self, geometry):
        # The port-blind stuck-open access fault (PAF, sequentially
        # detectable) and its contention-gated cousin (PAFc,
        # sequentially invisible) produce the SAME concurrent event
        # set: every cycle of the concurrent stream is a genuine
        # two-port access, so the contention gate is always open.
        caps = _caps(geometry)
        stream = concurrent_trace(library.MARCH_C, caps)
        captures = {}
        for spec in ("paf:1:0:0", "pafc:1:0:0"):
            memory = _memory(geometry)
            with FaultInjector(memory).injected(parse_fault(spec)):
                captures[spec] = capture_cycle_response(stream, memory)
        assert [e.key for e in captures["paf:1:0:0"].events] == [
            e.key for e in captures["pafc:1:0:0"].events
        ]
        # ...but only the classic PAF is sequentially detectable.
        words, width, ports = geometry
        for spec, detected in (("paf:1:0:0", True), ("pafc:1:0:0", False)):
            memory = _memory(geometry)
            with FaultInjector(memory).injected(parse_fault(spec)):
                result = run_on_memory(
                    expand(library.MARCH_C, words, width=width, ports=ports),
                    memory,
                )
            assert bool(result.failures) == detected


# ---------------------------------------------------------------------------
# Mode threading: sweeps, caching, engines.
# ---------------------------------------------------------------------------


class TestModeThreading:
    def test_concurrent_cache_returns_attributed_cycles(self):
        caps = _caps((2, 2, 2))
        stream = CONCURRENT_CACHE.get(library.MATS_PLUS, caps)
        assert stream is CONCURRENT_CACHE.get(library.MATS_PLUS, caps)
        assert all(hasattr(entry, "cycle") for entry in stream)

    def test_rejects_unknown_mode(self):
        caps = _caps((2, 1, 1))
        with pytest.raises(ValueError, match="unknown mode"):
            check_fault_conformance(
                library.MATS_PLUS, caps, parse_fault("saf:0:0:1"),
                mode="quantum",
            )

    def test_sweep_report_carries_mode(self):
        caps = _caps((2, 2, 2))
        faults = sweep_faults(caps, per_kind=1, mode="concurrent")
        report = run_fault_sweep(
            [library.MATS_PLUS], caps, faults, mode="concurrent"
        )
        assert report.ok
        assert report.mode == "concurrent"
        assert report.to_json()["mode"] == "concurrent"

    def test_vector_engine_counts_whole_sweep_fallback(self):
        # The numpy lane kernel models sequential single-port streams
        # only; a concurrent-mode sweep through engine="vector" must
        # run scalar and COUNT the fallback rather than silently
        # pretending the kernel ran.
        pytest.importorskip("numpy")
        caps = _caps((2, 2, 2))
        faults = sweep_faults(caps, per_kind=1, seed=3, mode="concurrent")
        scalar = run_fault_sweep(
            [library.MATS_PLUS], caps, faults, mode="concurrent"
        )
        vector = run_fault_sweep(
            [library.MATS_PLUS], caps, faults, mode="concurrent",
            engine="vector",
        )
        assert vector.engine == "vector"
        assert vector.fallback_runs == vector.checked == scalar.checked
        assert (
            scalar.to_json(include_timing=False)
            == vector.to_json(include_timing=False)
        )

    def test_cross_engine_agrees_in_concurrent_mode(self):
        pytest.importorskip("numpy")
        caps = _caps((2, 2, 2))
        faults = sweep_faults(caps, per_kind=1, seed=1, mode="concurrent")
        result = check_cross_engine(
            [library.MATS_PLUS], caps, faults, mode="concurrent"
        )
        assert result.ok

    def test_mixed_mode_reports_do_not_merge(self):
        from repro.conformance.faulty.check import FaultSweepReport

        first = FaultSweepReport(geometry=(2, 2, 2), mode="concurrent")
        second = FaultSweepReport(geometry=(2, 2, 2), mode="sequential")
        with pytest.raises(ValueError, match="modes"):
            FaultSweepReport.merge([first, second])
