"""Fuzz harness: generator well-formedness, determinism, zero mismatches.

A small corpus runs inside the suite (the 500-sample acceptance corpus
and the 10k nightly corpus run in CI); a hypothesis property re-checks
the core cycle-exactness identity with shrinking.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.fuzz import (
    FuzzReport,
    check_sample,
    march_test_strategy,
    random_geometry,
    random_march,
    run_fuzz,
)
from repro.march.element import MarchElement, Pause
from repro.march.test import MarchTest


class TestGenerator:
    def test_generates_well_formed_tests(self):
        rng = random.Random(0)
        for _ in range(50):
            test = random_march(rng)
            assert isinstance(test, MarchTest)
            assert any(
                isinstance(item, MarchElement) for item in test.items
            )
            durations = {
                item.duration for item in test.items
                if isinstance(item, Pause)
            }
            assert len(durations) <= 1  # single shared hold duration

    def test_geometries_stay_small(self):
        rng = random.Random(1)
        for _ in range(50):
            caps = random_geometry(rng)
            assert 1 <= caps.n_words <= 9
            assert caps.width in (1, 2, 4)
            assert 1 <= caps.ports <= 3

    def test_generator_is_deterministic_per_seed(self):
        one = random_march(random.Random("x"))
        two = random_march(random.Random("x"))
        assert one.items == two.items


class TestCheckSample:
    def test_sample_zero_agrees_everywhere(self):
        result = check_sample(0, 0)
        assert result.ok, result.mismatches
        assert result.microcode_cycles is not None

    def test_sample_result_serializes(self):
        payload = check_sample(0, 1).to_dict()
        assert payload["index"] == 1
        assert payload["mismatches"] == []


class TestRunFuzz:
    def test_small_corpus_has_zero_mismatches(self):
        report = run_fuzz(40, seed=0, jobs=1)
        assert report.ok
        assert report.checked == 40
        assert report.fsm_compiled > 0  # the SM bias pays off

    def test_report_is_independent_of_jobs(self):
        serial = run_fuzz(24, seed=3, jobs=1)
        parallel = run_fuzz(24, seed=3, jobs=4)
        assert serial.to_json() == parallel.to_json()

    def test_report_format_mentions_the_verdict(self):
        report = run_fuzz(5, seed=0, jobs=1)
        assert "0 mismatch(es)" in report.format()

    def test_json_report_shape(self):
        payload = run_fuzz(5, seed=0, jobs=1).to_json()
        assert payload["samples"] == 5
        assert payload["checked"] == 5
        assert 0.0 <= payload["fsm_compiled_fraction"] <= 1.0
        assert payload["mismatches"] == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_fuzz(0)
        with pytest.raises(ValueError):
            run_fuzz(10, jobs=0)

    def test_mismatches_would_be_reported(self):
        report = FuzzReport(samples=1, seed=0, checked=1,
                            mismatch_count=1,
                            mismatches=[{"index": 0, "notation": "x",
                                         "geometry": [1, 1, 1],
                                         "mismatches": ["boom"]}])
        assert not report.ok
        assert "boom" in report.format()


class TestFaultIdentity:
    """Identity (e): fault-response equivalence inside the fuzz loop."""

    def test_sample_draws_a_fault(self):
        result = check_sample(0, 0)
        assert result.fault_spec  # the (e) draw happened ...
        assert result.ok          # ... and the responses agreed

    def test_fault_draw_is_deterministic_per_seed(self):
        one = check_sample(7, 3)
        two = check_sample(7, 3)
        assert one.fault_spec == two.fault_spec
        assert one.fault_detected == two.fault_detected

    def test_fault_check_can_be_disabled(self):
        result = check_sample(0, 0, fault_conformance=False)
        assert result.fault_spec is None
        assert not result.fault_detected

    def test_report_counts_detecting_samples(self):
        report = run_fuzz(40, seed=0, jobs=1)
        assert report.ok
        assert report.fault_detected > 0  # most random faults are seen
        assert report.to_json()["fault_detected"] == report.fault_detected
        assert "fault-detecting" in report.format()

    def test_seeded_response_defect_is_caught_and_shrunk(self, monkeypatch):
        """An off-by-one in one architecture's fail logging is invisible
        to the stimulus identities (a)-(d) but must trip identity (e),
        and the report must carry a shrunk (march, geometry, fault)
        reproducer."""
        import dataclasses

        from repro.conformance.faulty import check as faulty_check
        from repro.conformance.faulty import capture_response

        def shifted(stream, memory, max_ops=None):
            capture = capture_response(stream, memory, max_ops=max_ops)
            capture.events = [
                dataclasses.replace(event, op_index=event.op_index + 1)
                for event in capture.events
            ]
            return capture

        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "hardwired", shifted
        )
        # jobs=1 keeps the monkeypatch visible (workers would re-import).
        report = run_fuzz(12, seed=0, jobs=1)
        assert not report.ok
        entry = report.mismatches[0]
        assert entry["fault_spec"]
        assert any(
            "fault-response divergence" in m for m in entry["mismatches"]
        )
        shrunk = entry["shrunk_faulty"]
        assert shrunk is not None
        assert shrunk["fault"]
        assert "shrunk faulty reproducer" in report.format()


class TestProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(test=march_test_strategy(), data=st.data())
    def test_microcode_cycle_identity(self, test, data):
        """interpret().cycles == len(trace()) for every generated
        algorithm — the identity (a) of the harness, with shrinking."""
        from repro.analysis import Verdict, interpret
        from repro.core.controller import ControllerCapabilities
        from repro.core.microcode import MicrocodeBistController, assemble

        caps = ControllerCapabilities(
            n_words=data.draw(st.integers(1, 9)),
            width=data.draw(st.sampled_from([1, 2, 4])),
            ports=data.draw(st.integers(1, 3)),
        )
        program = assemble(test, caps, verify=False)
        result = interpret(program, caps)
        assert result.verdict is Verdict.TERMINATES
        controller = MicrocodeBistController(program, caps, verify=False)
        assert result.cycles == sum(1 for _ in controller.trace())
