"""Unit tests for data-background generation."""

import pytest

from repro.march.backgrounds import apply_polarity, background_count, data_backgrounds


class TestDataBackgrounds:
    def test_bit_oriented_single_background(self):
        assert data_backgrounds(1) == [0]

    def test_width_two(self):
        assert data_backgrounds(2) == [0b00, 0b10]

    def test_width_four(self):
        assert data_backgrounds(4) == [0b0000, 0b1010, 0b1100]

    def test_width_eight(self):
        assert data_backgrounds(8) == [0b00000000, 0b10101010, 0b11001100, 0b11110000]

    def test_count_is_log2_plus_one(self):
        for width in (1, 2, 4, 8, 16, 32):
            assert background_count(width) == width.bit_length()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            data_backgrounds(3)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            data_backgrounds(0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            data_backgrounds(-4)

    def test_backgrounds_distinct(self):
        patterns = data_backgrounds(16)
        assert len(set(patterns)) == len(patterns)

    def test_each_checkerboard_balanced(self):
        """Every non-solid background has exactly half the bits set."""
        for width in (2, 4, 8, 16):
            for pattern in data_backgrounds(width)[1:]:
                assert bin(pattern).count("1") == width // 2


class TestApplyPolarity:
    def test_polarity_zero_is_background(self):
        assert apply_polarity(0b1100, 0, 4) == 0b1100

    def test_polarity_one_is_complement(self):
        assert apply_polarity(0b1100, 1, 4) == 0b0011

    def test_complement_masked_to_width(self):
        assert apply_polarity(0, 1, 4) == 0b1111

    def test_bit_oriented(self):
        assert apply_polarity(0, 0, 1) == 0
        assert apply_polarity(0, 1, 1) == 1

    def test_invalid_polarity_rejected(self):
        with pytest.raises(ValueError):
            apply_polarity(0, 2, 4)

    def test_double_complement_identity(self):
        for pattern in data_backgrounds(8):
            assert apply_polarity(apply_polarity(pattern, 1, 8), 1, 8) == pattern
