"""Unit tests for the delta-debugging shrinker (predicate-driven)."""

from repro.conformance import shrink_sample
from repro.core.controller import ControllerCapabilities
from repro.march.element import MarchElement, Pause
from repro.march.notation import format_test, parse_test
from repro.march.test import MarchTest

CAPS = ControllerCapabilities(n_words=6, width=2, ports=2)


def _count_checks(predicate):
    """Wrap a predicate, counting invocations."""
    calls = []

    def wrapped(test, caps):
        calls.append(1)
        return predicate(test, caps)

    return wrapped, calls


class TestShrinkItems:
    def test_removes_irrelevant_elements(self):
        # Failure depends only on the presence of a w1 write.
        test = parse_test("~(w0); ^(r0,w1); v(r1,w0); ~(r0)")

        def has_w1(candidate, _caps):
            return any(
                isinstance(item, MarchElement)
                and any(op.is_write and op.polarity == 1
                        for op in item.ops)
                for item in candidate.items
            )

        result = shrink_sample(test, CAPS, has_w1)
        assert result.reduced
        assert len(result.test.items) == 1
        assert result.notation == "^(w1)"  # ops shrunk too

    def test_keeps_at_least_one_item(self):
        result = shrink_sample(
            parse_test("~(w0)"), CAPS, lambda _t, _c: True
        )
        assert len(result.test.items) >= 1

    def test_non_reproducing_input_returned_unchanged(self):
        test = parse_test("~(w0); ^(r0)")
        result = shrink_sample(test, CAPS, lambda _t, _c: False)
        assert not result.reduced
        assert format_test(result.test) == format_test(test)
        assert result.checks == 1  # one probe, then bail

    def test_pause_removed_when_irrelevant(self):
        test = parse_test("~(w0); Del(512); ~(r0)")
        result = shrink_sample(
            test, CAPS, lambda t, _c: len(t.items) >= 1
        )
        assert not any(
            isinstance(item, Pause) for item in result.test.items
        )


class TestShrinkGeometry:
    def test_geometry_lowered_to_minimum(self):
        result = shrink_sample(
            parse_test("~(w0)"), CAPS, lambda _t, _c: True
        )
        assert result.geometry == (1, 1, 1)

    def test_geometry_respects_predicate(self):
        # Reproduces only on >= 4 words and >= 2 ports.
        def needs_size(_test, caps):
            return caps.n_words >= 4 and caps.ports >= 2

        result = shrink_sample(parse_test("~(w0)"), CAPS, needs_size)
        assert result.geometry == (4, 1, 2)


class TestBudget:
    def test_max_checks_respected(self):
        predicate, calls = _count_checks(lambda _t, _c: True)
        shrink_sample(
            parse_test("~(w0); ^(r0,w1); v(r1,w0)"), CAPS, predicate,
            max_checks=5,
        )
        assert len(calls) <= 5

    def test_renamed_only_when_reduced(self):
        test = MarchTest("original", [parse_test("~(w0)").items[0]])
        kept = shrink_sample(test, CAPS, lambda _t, _c: False)
        assert kept.test.name == "original"
        small_caps = ControllerCapabilities(n_words=1, width=1, ports=1)
        unreducible = shrink_sample(
            test, small_caps, lambda _t, _c: True
        )
        assert unreducible.test.name == "original"

    def test_to_dict_round_trip_fields(self):
        result = shrink_sample(
            parse_test("~(w0); ^(r0)"), CAPS, lambda _t, _c: True
        )
        payload = result.to_dict()
        assert set(payload) == {
            "notation", "geometry", "checks", "reduced"
        }
        assert parse_test(payload["notation"])  # stays parseable
