"""Unit tests for the differential conformance subsystem."""

import pytest

from repro.conformance import (
    ARCHITECTURES,
    check_conformance,
    conformance_predicate,
    first_divergence,
    format_normalized,
    golden_trace,
    normalize,
    shrink_sample,
)
from repro.conformance.trace import AttributedOp
from repro.core.controller import ControllerCapabilities
from repro.march import library
from repro.march.notation import parse_test
from repro.march.simulator import MemoryOperation, expand

CAPS = ControllerCapabilities(n_words=4, width=1, ports=1)
WORD_CAPS = ControllerCapabilities(n_words=3, width=2, ports=2)


class TestNormalize:
    def test_write_key(self):
        op = MemoryOperation(1, 3, True, value=2)
        assert normalize(op) == ("w", 1, 3, 2)

    def test_read_key(self):
        op = MemoryOperation(0, 5, False, expected=1)
        assert normalize(op) == ("r", 0, 5, 1)

    def test_delay_ignores_placeholder_fields(self):
        """Two pauses differing only in their placeholder address/value
        fields normalise identically — controllers park the address
        counter wherever their datapath leaves it during a hold."""
        a = MemoryOperation(0, 0, False, delay=512)
        b = MemoryOperation(0, 3, False, value=1, delay=512)
        assert normalize(a) == normalize(b) == ("d", 0, 512)

    def test_format_end_of_stream(self):
        assert format_normalized(None) == "<end of stream>"

    def test_format_forms(self):
        assert format_normalized(("w", 0, 2, 1)) == "p0 w@2=1"
        assert format_normalized(("r", 1, 0, 3)) == "p1 r@0?3"
        assert format_normalized(("d", 0, 512)) == "p0 delay(512)"


class TestGoldenTrace:
    def test_matches_expand_exactly(self):
        test = library.get("March C")
        trace = golden_trace(test, WORD_CAPS)
        ops = list(expand(test, 3, width=2, ports=2))
        assert [entry.op for entry in trace] == ops

    def test_owner_names_march_item(self):
        trace = golden_trace(parse_test("~(w0); ^(r0,w1)"), CAPS)
        assert trace[0].owner == "item 0 ~(w0) op 0"
        # element 1 starts after the 4 ops of element 0
        assert trace[4].owner == "item 1 ^(r0,w1) op 0"
        assert trace[5].owner == "item 1 ^(r0,w1) op 1"

    def test_pause_owner(self):
        trace = golden_trace(parse_test("~(w0); Del(512); ~(r0)"), CAPS)
        delays = [e for e in trace if e.op.is_delay]
        assert len(delays) == 1
        assert delays[0].owner == "item 1 Del(512)"


class TestFirstDivergence:
    def _attr(self, ops):
        return [AttributedOp(op, f"op {i}") for i, op in enumerate(ops)]

    def test_equal_streams_no_divergence(self):
        ops = self._attr([MemoryOperation(0, 0, True, value=1)])
        assert first_divergence(ops, ops, "x") is None

    def test_mismatch_located(self):
        ref = self._attr([
            MemoryOperation(0, 0, True, value=0),
            MemoryOperation(0, 1, True, value=0),
        ])
        cand = self._attr([
            MemoryOperation(0, 0, True, value=0),
            MemoryOperation(0, 1, True, value=1),
        ])
        div = first_divergence(ref, cand, "progfsm")
        assert div is not None
        assert div.index == 1
        assert div.kind == "mismatch"
        assert div.architecture == "progfsm"
        assert "expected" in div.describe()

    def test_short_candidate_is_missing(self):
        ref = self._attr([MemoryOperation(0, 0, True, value=0)] * 2)
        cand = ref[:1]
        div = first_divergence(ref, cand, "x")
        assert div.kind == "missing" and div.index == 1

    def test_long_candidate_is_extra(self):
        ref = self._attr([MemoryOperation(0, 0, True, value=0)])
        cand = ref + self._attr([MemoryOperation(0, 1, True, value=0)])
        div = first_divergence(ref, cand, "x")
        assert div.kind == "extra" and div.index == 1


class TestCheckConformance:
    @pytest.mark.parametrize(
        "name", list(library.ALGORITHMS), ids=lambda n: n
    )
    def test_library_conforms_bit_oriented(self, name):
        result = check_conformance(library.get(name), CAPS)
        assert result.ok, result.describe_failures()
        assert "microcode" in result.compared
        assert "hardwired" in result.compared

    def test_word_oriented_multiport_conforms(self):
        result = check_conformance(library.get("March C"), WORD_CAPS)
        assert result.ok
        assert result.compared == list(ARCHITECTURES)

    def test_uncompressed_microcode_conforms(self):
        result = check_conformance(
            library.get("March C"), CAPS, compress=False
        )
        assert result.ok

    def test_outside_boundary_is_skipped_not_failed(self):
        result = check_conformance(library.get("March B"), CAPS)
        assert result.ok
        progfsm = next(
            r for r in result.results if r.architecture == "progfsm"
        )
        assert progfsm.skipped is not None
        assert "progfsm" not in result.compared

    def test_architecture_subset(self):
        result = check_conformance(
            library.get("MATS+"), CAPS, architectures=("hardwired",)
        )
        assert [r.architecture for r in result.results] == ["hardwired"]

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            check_conformance(
                library.get("MATS+"), CAPS, architectures=("quantum",)
            )

    def test_op_counts_reported(self):
        result = check_conformance(parse_test("~(w0); ^(r0)"), CAPS)
        assert result.golden_ops == 8
        assert all(r.op_count == 8 for r in result.results)

    def test_to_dict_and_format(self):
        result = check_conformance(library.get("MATS+"), CAPS)
        payload = result.to_dict()
        assert payload["ok"] is True
        assert len(payload["architectures"]) == 3
        assert "op-for-op equal" in result.format()


class TestSeededDefect:
    """Acceptance scenario: a deliberately seeded datapath defect must
    be caught by conformance and shrunk to a tiny reproducer."""

    @pytest.fixture()
    def inverted_polarity(self, monkeypatch):
        from repro.core.progfsm.instruction import (
            DataControl,
            FsmInstruction,
        )

        monkeypatch.setattr(
            FsmInstruction,
            "base_data",
            property(
                lambda self:
                0 if self.data_ctrl is DataControl.BASE1 else 1
            ),
        )

    def test_defect_caught_with_provenance(self, inverted_polarity):
        result = check_conformance(
            library.get("March C"),
            ControllerCapabilities(n_words=4, width=2, ports=1),
        )
        assert not result.ok
        failing = result.failures
        assert [r.architecture for r in failing] == ["progfsm"]
        div = failing[0].divergence
        assert div.index == 0  # very first write has the wrong polarity
        assert div.kind == "mismatch"
        assert div.reference_owner.startswith("item 0")
        assert div.candidate_owner.startswith("fsm row 0")

    def test_defect_shrinks_to_tiny_reproducer(self, inverted_polarity):
        shrunk = shrink_sample(
            library.get("March C"),
            ControllerCapabilities(n_words=4, width=2, ports=1),
            conformance_predicate(),
            max_checks=500,
        )
        assert shrunk.reduced
        assert len(shrunk.test.items) <= 2
        assert shrunk.geometry == (1, 1, 1)
        # The reproducer still reproduces.
        result = check_conformance(shrunk.test, shrunk.capabilities)
        assert not result.ok

    def test_healthy_datapath_conforms_again(self):
        """Without the monkeypatch the same check passes — the defect
        tests above prove detection, this proves no false positives."""
        result = check_conformance(
            library.get("March C"),
            ControllerCapabilities(n_words=4, width=2, ports=1),
        )
        assert result.ok
