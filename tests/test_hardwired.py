"""Unit tests for the hardwired (non-programmable) controllers."""

import pytest

from repro.area.estimator import estimate
from repro.core.controller import ControllerCapabilities, Flexibility
from repro.core.hardwired.controller import HardwiredBistController
from repro.core.hardwired.synthesis import step_signals, synthesize
from repro.march import library
from repro.march.notation import parse_test
from repro.march.simulator import expand

CAPS = ControllerCapabilities(n_words=8)


class TestSynthesis:
    def test_state_count_march_c(self):
        """idle + 10 op states + done = 12 states for March C (bit/1p)."""
        graph = synthesize(library.MARCH_C, CAPS)
        assert graph.state_count == 12

    def test_state_count_with_pauses(self):
        graph = synthesize(library.MARCH_C_PLUS, CAPS)
        # idle + 14 ops + 2 pauses + done.
        assert graph.state_count == 18

    def test_loop_states_added_for_capabilities(self):
        full = ControllerCapabilities(n_words=8, width=8, ports=2)
        graph = synthesize(library.MARCH_C, full)
        kinds = [s.kind for s in graph.states]
        assert "bg_loop" in kinds and "port_loop" in kinds

    def test_state_bits(self):
        graph = synthesize(library.MARCH_C, CAPS)
        assert graph.state_bits == 4

    def test_element_first_links(self):
        graph = synthesize(library.MARCH_C, CAPS)
        op_states = [s for s in graph.states if s.kind == "op"]
        for state in op_states:
            first = graph.states[state.element_first]
            assert first.kind == "op" and first.starts_element

    def test_done_self_loops(self):
        graph = synthesize(library.MARCH_C, CAPS)
        done = graph.states[-1]
        assert done.kind == "done" and done.next_index == done.index

    def test_truth_table_matches_step_signals(self):
        graph = synthesize(library.MATS_PLUS, CAPS)
        table = graph.truth_table()
        covers = table.synthesize()
        bits = graph.state_bits
        for minterm in range(1 << (bits + 3)):
            code = minterm & ((1 << bits) - 1)
            if code >= graph.state_count:
                continue
            signals = step_signals(
                graph.states[code],
                bool(minterm >> bits & 1),
                bool(minterm >> (bits + 1) & 1),
                bool(minterm >> (bits + 2) & 1),
            )
            for name, cover in covers.items():
                got = any(
                    (minterm & care) == (value & care) for value, care in cover
                )
                if name.startswith("ns"):
                    bit = int(name[2:])
                    expected = bool((int(signals["next_state"]) >> bit) & 1)
                else:
                    expected = bool(signals[name])
                assert got == expected, (name, minterm)


class TestExecution:
    @pytest.mark.parametrize(
        "test", list(library.ALGORITHMS.values()), ids=lambda t: t.name
    )
    def test_stream_matches_golden(self, test):
        controller = HardwiredBistController(test, CAPS)
        assert list(controller.operations()) == list(expand(test, 8))

    def test_word_oriented_multiport(self):
        caps = ControllerCapabilities(n_words=4, width=4, ports=2)
        controller = HardwiredBistController(library.MARCH_A, caps)
        assert list(controller.operations()) == list(
            expand(library.MARCH_A, 4, width=4, ports=2)
        )

    def test_trace_exposes_states(self):
        controller = HardwiredBistController(library.MATS, CAPS)
        kinds = {entry.state.kind for entry in controller.trace()}
        assert "op" in kinds

    def test_flexibility_low(self):
        controller = HardwiredBistController(library.MARCH_C, CAPS)
        assert controller.flexibility is Flexibility.LOW

    def test_loaded_test(self):
        controller = HardwiredBistController(library.MARCH_C, CAPS)
        assert controller.loaded_test() is library.MARCH_C

    def test_no_load_method(self):
        """Non-programmable: there is deliberately no load()."""
        controller = HardwiredBistController(library.MARCH_C, CAPS)
        assert not hasattr(controller, "load")


class TestAreaGrowth:
    """The paper's R2: hardwired area grows with algorithm capability."""

    def _area(self, test):
        return estimate(
            HardwiredBistController(test, CAPS).hardware()
        ).gate_equivalents

    def test_c_family_growth(self):
        assert (
            self._area(library.MARCH_C)
            < self._area(library.MARCH_C_PLUS)
            < self._area(library.MARCH_C_PLUS_PLUS)
        )

    def test_a_family_growth(self):
        assert (
            self._area(library.MARCH_A)
            < self._area(library.MARCH_A_PLUS)
            < self._area(library.MARCH_A_PLUS_PLUS)
        )

    def test_a_larger_than_c(self):
        """15N March A needs more states than 10N March C."""
        assert self._area(library.MARCH_A) > self._area(library.MARCH_C)

    def test_pause_timer_only_when_needed(self):
        plain = HardwiredBistController(library.MARCH_C, CAPS).hardware()
        plus = HardwiredBistController(library.MARCH_C_PLUS, CAPS).hardware()
        plain_names = [c.name for c in plain.components]
        plus_names = [c.name for c in plus.components]
        assert not any("pause timer" in n for n in plain_names)
        assert any("pause timer" in n for n in plus_names)

    def test_word_oriented_grows_area(self):
        word = ControllerCapabilities(n_words=8, width=8)
        assert estimate(
            HardwiredBistController(library.MARCH_C, word).hardware()
        ).gate_equivalents > self._area(library.MARCH_C)


class TestRobustness:
    def test_single_word_memory(self):
        caps = ControllerCapabilities(n_words=1)
        controller = HardwiredBistController(library.MARCH_C, caps)
        assert list(controller.operations()) == list(expand(library.MARCH_C, 1))

    def test_custom_algorithm(self):
        test = parse_test("~(w1); ^(r1,w0); ~(r0)", name="custom")
        controller = HardwiredBistController(test, CAPS)
        assert list(controller.operations()) == list(expand(test, 8))

    def test_runaway_guard(self):
        controller = HardwiredBistController(library.MARCH_C, CAPS, max_cycles=3)
        with pytest.raises(RuntimeError):
            list(controller.operations())
