"""Unit tests for address scrambling and its coverage consequences."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.classic import checkerboard
from repro.faults.coupling import StateCouplingFault
from repro.faults.neighborhood import CellGrid
from repro.faults.universe import FaultUniverse
from repro.march.coverage import evaluate_stream_coverage
from repro.memory import Sram
from repro.memory.scramble import AddressScrambler


class TestScrambler:
    def test_identity_default(self):
        scrambler = AddressScrambler(4)
        assert scrambler.is_identity
        assert scrambler.mapping() == list(range(16))

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            AddressScrambler(3, bit_permutation=[0, 0, 1])

    def test_oversized_mask_rejected(self):
        with pytest.raises(ValueError):
            AddressScrambler(3, xor_mask=0b1000)

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            AddressScrambler(0)

    def test_out_of_range_address_rejected(self):
        with pytest.raises(IndexError):
            AddressScrambler(3).physical(8)

    def test_xor_mask_mirrors(self):
        scrambler = AddressScrambler(3, xor_mask=0b100)
        assert scrambler.physical(0) == 4
        assert scrambler.physical(4) == 0

    def test_bit_permutation(self):
        scrambler = AddressScrambler(2, bit_permutation=[1, 0])
        assert scrambler.physical(0b01) == 0b10

    def test_row_column_interleave_constructor(self):
        scrambler = AddressScrambler.row_column_interleave(4)
        # Low logical bits become the high physical bits.
        assert scrambler.physical(0b0001) == 0b0100

    def test_folded_constructor(self):
        scrambler = AddressScrambler.folded(4)
        assert not scrambler.is_identity
        assert sorted(scrambler.mapping()) == list(range(16))

    @settings(deadline=None, max_examples=50)
    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_bijectivity_property(self, bits, data):
        import random

        rng = random.Random(data.draw(st.integers(0, 2 ** 20)))
        permutation = list(range(bits))
        rng.shuffle(permutation)
        mask = data.draw(st.integers(0, (1 << bits) - 1))
        scrambler = AddressScrambler(bits, permutation, mask)
        mapping = scrambler.mapping()
        assert sorted(mapping) == list(range(1 << bits))
        for logical in range(1 << bits):
            assert scrambler.logical(scrambler.physical(logical)) == logical


class TestScrambledCheckerboard:
    """The coverage consequence: a logical checkerboard through a
    scrambled decoder is not a physical checkerboard, and physical
    bridge faults escape."""

    N = 16

    def _bridge_universe(self, scrambler=None):
        """State-coupling bridges between *physically* adjacent cells."""
        grid = CellGrid(self.N, 1)
        faults = []
        seen = set()
        for physical in range(self.N):
            for neighbour, _bit in grid.neighbours((physical, 0)):
                pair = tuple(sorted((physical, neighbour)))
                if pair in seen:
                    continue
                seen.add(pair)
                # Bridges live on physical cells; the memory is addressed
                # logically, so translate.
                l1 = scrambler.logical(pair[0]) if scrambler else pair[0]
                l2 = scrambler.logical(pair[1]) if scrambler else pair[1]
                for state in (0, 1):
                    faults.append(StateCouplingFault(l1, 0, l2, 0, state, state))
                    faults.append(StateCouplingFault(l2, 0, l1, 0, state, state))
        universe = FaultUniverse("physical bridges")
        universe.extend(faults)
        return universe

    def test_identity_scrambling_full_coverage(self):
        universe = self._bridge_universe()
        report = evaluate_stream_coverage(
            lambda: checkerboard(self.N), Sram(self.N), universe
        )
        assert report.overall == 1.0

    def test_naive_checkerboard_misses_bridges_under_scrambling(self):
        # Swapping the top two address bits breaks checkerboard parity
        # (a pure transpose or fold would preserve it on a square grid).
        scrambler = AddressScrambler(4, bit_permutation=[0, 1, 3, 2])
        universe = self._bridge_universe(scrambler)
        report = evaluate_stream_coverage(
            lambda: checkerboard(self.N),  # scrambling ignored!
            Sram(self.N), universe,
        )
        assert report.overall < 1.0

    def test_descrambled_checkerboard_recovers_coverage(self):
        scrambler = AddressScrambler(4, bit_permutation=[0, 1, 3, 2])
        universe = self._bridge_universe(scrambler)
        report = evaluate_stream_coverage(
            lambda: checkerboard(self.N, scrambler=scrambler),
            Sram(self.N), universe,
        )
        assert report.overall == 1.0

    def test_march_coverage_unaffected_by_scrambling(self):
        """March tests are scrambling-independent for position-free
        fault models — the classical argument for them."""
        from repro.march import library
        from repro.march.simulator import expand

        scrambler = AddressScrambler.folded(4)
        universe = self._bridge_universe(scrambler)
        report = evaluate_stream_coverage(
            lambda: expand(library.MARCH_C, self.N), Sram(self.N), universe
        )
        assert report.overall == 1.0


class TestScrambledBitmap:
    def test_bitmap_descrambles_positions(self):
        from repro.diagnostics import FailBitmap, FailLog
        from repro.march.simulator import Failure

        scrambler = AddressScrambler(4, xor_mask=0b1000)
        log = FailLog(
            test_name="x",
            failures=[Failure(0, 0, 3, expected=1, observed=0)],
        )
        bitmap = FailBitmap.from_log(log, 16, scrambler=scrambler)
        assert bitmap.is_failing(3 ^ 8, 0)
        assert not bitmap.is_failing(3, 0)
