"""Unit tests for the content-hashed result store (`repro.service.store`)."""

import json

import pytest

import repro.service.store as store_mod
from repro.service.store import (
    ResultStore,
    canonical_json,
    code_version,
    payload_digest,
)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestCanonicalisation:
    def test_canonical_json_sorts_keys_and_strips_spaces(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_payload_digest_is_order_insensitive_for_dicts(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )

    def test_payload_digest_differs_on_content(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})

    def test_code_version_is_cached_and_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64


class TestKeys:
    def test_key_is_deterministic(self, store):
        one = store.key(kind="x", geometry=[8, 2, 1])
        two = store.key(geometry=[8, 2, 1], kind="x")
        assert one.digest == two.digest

    def test_key_folds_code_version(self, store, monkeypatch):
        before = store.key(kind="x")
        monkeypatch.setattr(store_mod, "_CODE_VERSION", "f" * 64)
        after = store.key(kind="x")
        assert before.digest != after.digest

    def test_distinct_fields_distinct_keys(self, store):
        assert (
            store.key(kind="x", mode="sequential").digest
            != store.key(kind="x", mode="concurrent").digest
        )


class TestRoundTrip:
    def test_get_missing_is_none_and_counts_miss(self, store):
        key = store.key(kind="x")
        assert store.get(key) is None
        assert store.stats()["misses"] == 1

    def test_put_then_get_hits(self, store):
        key = store.key(kind="x")
        payload = {"checked": 4, "nested": {"ok": True}}
        store.put(key, payload)
        assert store.get(key) == payload
        stats = store.stats()
        assert stats["puts"] == 1
        assert stats["hits"] == 1
        assert len(store) == 1

    def test_contains(self, store):
        key = store.key(kind="x")
        assert not store.contains(key)
        store.put(key, {"v": 1})
        assert store.contains(key)

    def test_forget(self, store):
        key = store.key(kind="x")
        store.put(key, {"v": 1})
        assert store.forget(key)
        assert store.get(key) is None
        assert not store.forget(key)

    def test_put_overwrites_atomically(self, store):
        key = store.key(kind="x")
        store.put(key, {"v": 1})
        store.put(key, {"v": 2})
        assert store.get(key) == {"v": 2}
        assert len(store) == 1
        # No tmp droppings left behind.
        leftovers = [
            p for p in store.entry_paths() if not p.name.endswith(".json")
        ]
        assert leftovers == []


class TestCorruption:
    def test_bitflipped_payload_is_evicted(self, store):
        key = store.key(kind="x")
        store.put(key, {"checked": 4})
        (path,) = store.entry_paths()
        entry = json.loads(path.read_text())
        entry["payload"]["checked"] = 9999  # stale sha256 now lies
        path.write_text(json.dumps(entry))

        assert store.get(key) is None
        assert store.stats()["corruptions"] == 1
        assert not path.exists()

    def test_truncated_entry_is_evicted(self, store):
        key = store.key(kind="x")
        store.put(key, {"checked": 4})
        (path,) = store.entry_paths()
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        assert store.get(key) is None
        assert store.stats()["corruptions"] == 1

    def test_key_mismatch_is_evicted(self, store):
        first = store.key(kind="x")
        second = store.key(kind="y")
        store.put(first, {"v": 1})
        (path,) = store.entry_paths()
        entry = json.loads(path.read_text())
        target = store.entries_dir / second.digest[:2] / (
            second.digest + ".json"
        )
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(entry))

        assert store.get(second) is None
        assert store.stats()["corruptions"] == 1

    def test_recompute_after_eviction(self, store):
        key = store.key(kind="x")
        store.put(key, {"checked": 4})
        (path,) = store.entry_paths()
        entry = json.loads(path.read_text())
        entry["payload"]["checked"] = 9999
        path.write_text(json.dumps(entry))

        assert store.get(key) is None  # detected + evicted
        store.put(key, {"checked": 4})  # recomputed by the caller
        assert store.get(key) == {"checked": 4}


class TestChaosCorruptionHelper:
    def test_corrupt_store_entry_defeats_hash_check(self, store):
        from repro.service.chaos import corrupt_store_entry

        key = store.key(kind="x")
        store.put(key, {"checked": 4})
        corrupt_store_entry(store, key)
        assert store.get(key) is None
        assert store.stats()["corruptions"] == 1
