"""Self-lint: every library algorithm passes the static verifier.

The lint engine must accept everything the assembler legitimately
produces — compressed and uncompressed, across geometries — with zero
error-severity findings (warnings and advisories are allowed).  This is
the no-false-positives contract that lets ``assemble`` and the
controller verify by default.
"""

import pytest

from repro.analysis import Verdict, verify_march, verify_program
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import assemble
from repro.march import library

GEOMETRIES = [
    ControllerCapabilities(n_words=64),
    ControllerCapabilities(n_words=16, width=4, ports=2),
    ControllerCapabilities(n_words=1),
]


@pytest.mark.parametrize("name", sorted(library.ALGORITHMS))
@pytest.mark.parametrize("compress", [True, False])
def test_library_algorithm_lints_clean(name, compress):
    test = library.get(name)
    for caps in GEOMETRIES:
        program = assemble(test, caps, compress=compress, verify=False)
        report = verify_program(program, caps)
        assert not report.has_errors, report.format()


@pytest.mark.parametrize("name", sorted(library.ALGORITHMS))
def test_library_algorithm_march_lint_clean(name):
    report = verify_march(library.get(name), target="microcode")
    assert not report.has_errors, report.format()


@pytest.mark.parametrize("name", sorted(library.ALGORITHMS))
def test_library_algorithm_termination_proved(name):
    caps = ControllerCapabilities(n_words=32, width=2)
    program = assemble(library.get(name), caps)
    from repro.analysis import interpret

    result = interpret(program, caps)
    assert result.verdict is Verdict.TERMINATES
    assert result.cycles is not None and result.cycles > 0


def test_every_program_warning_is_expected():
    """The library may trigger advisories (e.g. MC007's storage
    auto-grow note for March C++) but never error-severity findings
    from the hang/overflow rules."""
    forbidden = {"MC003", "MC004", "MC005", "MC006", "MC007", "MC008",
                 "MC010", "MC011"}
    caps = ControllerCapabilities(n_words=8)
    for name in library.ALGORITHMS:
        program = assemble(library.get(name), caps, verify=False)
        report = verify_program(program, caps)
        fired = {d.rule for d in report.errors}
        assert not fired & forbidden, f"{name}: {report.format()}"
