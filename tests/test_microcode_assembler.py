"""Unit tests for the march → microcode assembler and disassembler."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import AssemblyError, assemble
from repro.core.microcode.disassembler import disassemble
from repro.core.microcode.isa import ConditionOp
from repro.march import library
from repro.march.notation import parse_test

BIT_CAPS = ControllerCapabilities(n_words=64)
FULL_CAPS = ControllerCapabilities(n_words=64, width=8, ports=2)


class TestProgramShapes:
    def test_march_c_is_nine_rows_full_config(self):
        """The paper's Fig. 2 March C program has exactly 9 instructions
        in the word-oriented multiport configuration."""
        program = assemble(library.MARCH_C, FULL_CAPS)
        assert len(program) == 9
        assert program.compressed

    def test_march_c_row_roles(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        conds = [i.cond for i in program.instructions]
        assert conds == [
            ConditionOp.LOOP,       # w0 element
            ConditionOp.NOP,        # r0
            ConditionOp.LOOP,       # w1 + loop
            ConditionOp.NOP,        # r1
            ConditionOp.LOOP,       # w0 + loop
            ConditionOp.REPEAT,     # symmetric repeat
            ConditionOp.LOOP,       # final r0 element
            ConditionOp.NEXT_BG,    # background loop
            ConditionOp.INC_PORT,   # port loop / terminate
        ]

    def test_march_c_repeat_carries_order_complement_only(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        repeat = program.instructions[5]
        assert repeat.addr_down and not repeat.data_inv and not repeat.compare

    def test_march_a_repeat_carries_full_complement(self):
        program = assemble(library.MARCH_A, FULL_CAPS)
        repeat = next(
            i for i in program.instructions if i.cond is ConditionOp.REPEAT
        )
        assert repeat.addr_down and repeat.data_inv and repeat.compare

    def test_bit_oriented_single_port_ends_with_terminate(self):
        program = assemble(library.MARCH_C, BIT_CAPS)
        assert program.instructions[-1].cond is ConditionOp.TERMINATE
        assert not any(
            i.cond in (ConditionOp.NEXT_BG, ConditionOp.INC_PORT)
            for i in program.instructions
        )

    def test_word_oriented_single_port_has_next_bg_then_terminate(self):
        caps = ControllerCapabilities(n_words=64, width=8)
        program = assemble(library.MARCH_C, caps)
        assert program.instructions[-2].cond is ConditionOp.NEXT_BG
        assert program.instructions[-1].cond is ConditionOp.TERMINATE

    def test_multiport_ends_with_inc_port(self):
        caps = ControllerCapabilities(n_words=64, ports=2)
        program = assemble(library.MARCH_C, caps)
        assert program.instructions[-1].cond is ConditionOp.INC_PORT

    def test_pause_becomes_hold_row(self):
        program = assemble(library.MARCH_C_PLUS, BIT_CAPS)
        holds = [i for i in program.instructions if i.cond is ConditionOp.HOLD]
        assert len(holds) == 2
        assert all(h.hold_duration == 1024 for h in holds)

    def test_compression_saves_rows(self):
        compressed = assemble(library.MARCH_A, BIT_CAPS, compress=True)
        flat = assemble(library.MARCH_A, BIT_CAPS, compress=False)
        assert len(compressed) < len(flat)
        # March A: body of 7 ops stored once, repeat row added.
        assert len(flat) - len(compressed) == 7 - 1

    def test_uncompressed_row_count_is_op_count_plus_tail(self):
        program = assemble(library.MARCH_C, BIT_CAPS, compress=False)
        assert len(program) == library.MARCH_C.operation_count + 1

    def test_non_power_of_two_pause_rejected(self):
        test = parse_test("~(w0); Del(1000); ~(r0)")
        with pytest.raises(AssemblyError):
            assemble(test, BIT_CAPS)

    def test_element_final_ops_carry_addr_inc(self):
        program = assemble(library.MARCH_C, BIT_CAPS)
        for instr in program.instructions:
            if instr.cond is ConditionOp.LOOP:
                assert instr.addr_inc
            if instr.cond is ConditionOp.NOP:
                assert not instr.addr_inc

    def test_down_elements_carry_down_bit(self):
        program = assemble(parse_test("~(w0); v(r0,w1)"), BIT_CAPS, compress=False)
        down_rows = [i for i in program.instructions if i.addr_down]
        assert len(down_rows) == 2  # both ops of the down element


class TestDisassembler:
    def test_listing_contains_all_rows(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        listing = disassemble(program)
        assert listing.count("\n") >= len(program)

    def test_listing_shows_compression(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        assert "REPEAT-compressed" in disassemble(program)

    def test_listing_shows_operations(self):
        listing = disassemble(assemble(library.MARCH_C, FULL_CAPS))
        assert "w0" in listing and "r1" in listing and "repeat(~order)" in listing

    def test_hold_rendered_with_duration(self):
        listing = disassemble(assemble(library.MARCH_C_PLUS, BIT_CAPS))
        assert "hold 1024" in listing
