"""Unit tests for coupling and NPSF fault models."""

import pytest

from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.neighborhood import ActiveNpsf, CellGrid, PassiveNpsf
from repro.memory.sram import Sram


class TestInversionCoupling:
    def test_same_cell_rejected(self):
        with pytest.raises(ValueError):
            InversionCouplingFault(1, 0, 1, 0, True)

    def test_rising_trigger_inverts_victim(self):
        memory = Sram(4)
        memory.attach(InversionCouplingFault(0, 0, 1, 0, rising=True))
        memory.poke(1, 1)
        memory.write(0, 0, 1)  # aggressor 0->1
        assert memory.peek(1) == 0

    def test_falling_edge_ignored_by_rising_fault(self):
        memory = Sram(4)
        memory.attach(InversionCouplingFault(0, 0, 1, 0, rising=True))
        memory.poke(0, 1)
        memory.poke(1, 1)
        memory.write(0, 0, 0)  # aggressor 1->0
        assert memory.peek(1) == 1

    def test_no_transition_no_effect(self):
        memory = Sram(4)
        memory.attach(InversionCouplingFault(0, 0, 1, 0, rising=True))
        memory.write(0, 0, 0)  # 0 -> 0
        assert memory.peek(1) == 0

    def test_two_triggers_cancel(self):
        memory = Sram(4)
        memory.attach(InversionCouplingFault(0, 0, 1, 0, rising=True))
        memory.write(0, 0, 1)
        memory.write(0, 0, 0)
        memory.write(0, 0, 1)
        assert memory.peek(1) == 0  # inverted twice


class TestIdempotentCoupling:
    def test_invalid_forced_value_rejected(self):
        with pytest.raises(ValueError):
            IdempotentCouplingFault(0, 0, 1, 0, True, 2)

    def test_trigger_forces_victim(self):
        memory = Sram(4)
        memory.attach(IdempotentCouplingFault(0, 0, 1, 0, rising=True,
                                              forced_value=1))
        memory.write(0, 0, 1)
        assert memory.peek(1) == 1

    def test_idempotent_repeat_harmless(self):
        memory = Sram(4)
        memory.attach(IdempotentCouplingFault(0, 0, 1, 0, rising=True,
                                              forced_value=1))
        memory.write(0, 0, 1)
        memory.write(0, 0, 0)
        memory.write(0, 0, 1)
        assert memory.peek(1) == 1

    def test_falling_variant(self):
        memory = Sram(4)
        memory.attach(IdempotentCouplingFault(0, 0, 1, 0, rising=False,
                                              forced_value=0))
        memory.poke(0, 1)
        memory.poke(1, 1)
        memory.write(0, 0, 0)
        assert memory.peek(1) == 0


class TestStateCoupling:
    def test_invalid_state_rejected(self):
        with pytest.raises(ValueError):
            StateCouplingFault(0, 0, 1, 0, 2, 0)

    def test_victim_distorted_while_aggressor_in_state(self):
        memory = Sram(4)
        memory.attach(StateCouplingFault(0, 0, 1, 0, aggressor_state=1,
                                         forced_value=0))
        memory.poke(0, 1)
        memory.poke(1, 1)
        assert memory.read(0, 1) == 0

    def test_victim_recovers_when_aggressor_leaves_state(self):
        memory = Sram(4)
        memory.attach(StateCouplingFault(0, 0, 1, 0, aggressor_state=1,
                                         forced_value=0))
        memory.poke(0, 0)
        memory.poke(1, 1)
        assert memory.read(0, 1) == 1

    def test_stored_value_not_corrupted(self):
        memory = Sram(4)
        memory.attach(StateCouplingFault(0, 0, 1, 0, aggressor_state=1,
                                         forced_value=0))
        memory.poke(0, 1)
        memory.poke(1, 1)
        memory.read(0, 1)
        assert memory.peek(1) == 1  # only the observation is distorted


class TestCellGrid:
    def test_square_grid(self):
        grid = CellGrid(16, 1)
        assert grid.cols == 4
        assert grid.rows == 4

    def test_linear_and_cell_at_roundtrip(self):
        grid = CellGrid(8, 4)
        for word in range(8):
            for bit in range(4):
                assert grid.cell_at(grid.linear((word, bit))) == (word, bit)

    def test_corner_has_two_neighbours(self):
        grid = CellGrid(16, 1)
        assert len(grid.neighbours((0, 0))) == 2

    def test_interior_has_four_neighbours(self):
        grid = CellGrid(16, 1)
        # Cell 5 sits at row 1, col 1 of the 4x4 grid.
        assert len(grid.neighbours((5, 0))) == 4

    def test_neighbours_within_array(self):
        grid = CellGrid(10, 1)  # non-square fill
        for index in range(10):
            for neighbour in grid.neighbours(grid.cell_at(index)):
                assert 0 <= grid.linear(neighbour) < 10


class TestNpsf:
    def test_passive_freezes_base_when_pattern_matches(self):
        memory = Sram(16)
        grid = CellGrid(16, 1)
        base = (5, 0)
        neighbours = grid.neighbours(base)
        for word, bit in neighbours:
            memory.force_bit(word, bit, 1)
        memory.attach(PassiveNpsf(base, neighbours, tuple([1] * len(neighbours))))
        memory.write(0, 5, 1)
        assert memory.peek(5) == 0  # frozen at 0

    def test_passive_releases_when_pattern_broken(self):
        memory = Sram(16)
        grid = CellGrid(16, 1)
        base = (5, 0)
        neighbours = grid.neighbours(base)
        memory.attach(PassiveNpsf(base, neighbours, tuple([1] * len(neighbours))))
        memory.write(0, 5, 1)  # neighbours are 0: pattern mismatch
        assert memory.peek(5) == 1

    def test_passive_pattern_length_checked(self):
        with pytest.raises(ValueError):
            PassiveNpsf((0, 0), [(1, 0)], (1, 1))

    def test_active_trigger_flips_base(self):
        memory = Sram(16)
        memory.attach(ActiveNpsf(base=(5, 0), trigger=(6, 0), rising=True))
        memory.write(0, 6, 1)
        assert memory.peek(5) == 1

    def test_active_pattern_gates_flip(self):
        memory = Sram(16)
        memory.attach(
            ActiveNpsf(base=(5, 0), trigger=(6, 0), rising=True,
                       others=[(4, 0)], pattern=(1,))
        )
        memory.write(0, 6, 1)  # cell 4 is 0, pattern wants 1
        assert memory.peek(5) == 0
        memory.write(0, 6, 0)
        memory.poke(4, 1)
        memory.write(0, 6, 1)
        assert memory.peek(5) == 1
