"""Unit tests for the per-cell fault models (SAF, TF, SOF, DRF)."""

import pytest

from repro.faults.retention import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.stuck_open import StuckOpenFault
from repro.faults.transition import TransitionFault
from repro.memory.sram import Sram


class TestStuckAt:
    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault(0, 0, 2)

    def test_stuck_at_zero_blocks_write_one(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(2, 0, 0))
        memory.write(0, 2, 1)
        assert memory.read(0, 2) == 0

    def test_stuck_at_one_blocks_write_zero(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(2, 0, 1))
        memory.write(0, 2, 0)
        assert memory.read(0, 2) == 1

    def test_install_forces_initial_value(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(2, 0, 1))
        assert memory.peek(2) == 1

    def test_other_cells_unaffected(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(2, 0, 0))
        memory.write(0, 1, 1)
        assert memory.read(0, 1) == 1

    def test_word_oriented_single_bit(self):
        memory = Sram(4, width=8)
        memory.attach(StuckAtFault(1, 3, 0))
        memory.write(0, 1, 0xFF)
        assert memory.read(0, 1) == 0xFF & ~(1 << 3)

    def test_describe(self):
        assert "stuck-at-1" in StuckAtFault(3, 2, 1).describe()


class TestTransition:
    def test_up_transition_blocked(self):
        memory = Sram(4)
        memory.attach(TransitionFault(1, 0, rising=True))
        memory.write(0, 1, 1)  # 0 -> 1 fails
        assert memory.read(0, 1) == 0

    def test_up_fault_allows_down(self):
        memory = Sram(4)
        memory.attach(TransitionFault(1, 0, rising=True))
        memory.poke(1, 1)
        memory.write(0, 1, 0)
        assert memory.read(0, 1) == 0

    def test_down_transition_blocked(self):
        memory = Sram(4)
        memory.attach(TransitionFault(1, 0, rising=False))
        memory.poke(1, 1)
        memory.write(0, 1, 0)  # 1 -> 0 fails
        assert memory.read(0, 1) == 1

    def test_down_fault_allows_up(self):
        memory = Sram(4)
        memory.attach(TransitionFault(1, 0, rising=False))
        memory.write(0, 1, 1)
        assert memory.read(0, 1) == 1

    def test_rewrite_same_value_fine(self):
        memory = Sram(4)
        memory.attach(TransitionFault(1, 0, rising=True))
        memory.write(0, 1, 0)
        assert memory.read(0, 1) == 0

    def test_describe(self):
        assert "0->1" in TransitionFault(0, 0, True).describe()
        assert "1->0" in TransitionFault(0, 0, False).describe()


class TestStuckOpen:
    def test_invalid_weak_value_rejected(self):
        with pytest.raises(ValueError):
            StuckOpenFault(0, 0, 2)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            StuckOpenFault(0, 0, 1, disturb_threshold=0)

    def test_single_read_correct(self):
        memory = Sram(4)
        memory.attach(StuckOpenFault(1, 0, weak_value=1))
        memory.write(0, 1, 1)
        assert memory.read(0, 1) == 1

    def test_third_read_observes_collapse(self):
        memory = Sram(4)
        memory.attach(StuckOpenFault(1, 0, weak_value=1))
        memory.write(0, 1, 1)
        assert memory.read(0, 1) == 1  # disturb 1
        assert memory.read(0, 1) == 1  # disturb 2, node collapses
        assert memory.read(0, 1) == 0  # observed

    def test_write_resets_disturb_counter(self):
        memory = Sram(4)
        memory.attach(StuckOpenFault(1, 0, weak_value=1))
        memory.write(0, 1, 1)
        memory.read(0, 1)
        memory.write(0, 1, 1)  # refresh
        assert memory.read(0, 1) == 1
        assert memory.read(0, 1) == 1
        assert memory.read(0, 1) == 0

    def test_opposite_value_reads_harmless(self):
        memory = Sram(4)
        memory.attach(StuckOpenFault(1, 0, weak_value=1))
        for _ in range(10):
            assert memory.read(0, 1) == 0  # stores 0, weak value is 1

    def test_weak_zero_polarity(self):
        memory = Sram(4)
        memory.attach(StuckOpenFault(1, 0, weak_value=0))
        memory.write(0, 1, 0)
        memory.read(0, 1)
        memory.read(0, 1)
        assert memory.read(0, 1) == 1

    def test_reset_clears_counter(self):
        fault = StuckOpenFault(1, 0, 1)
        memory = Sram(4)
        memory.attach(fault)
        memory.write(0, 1, 1)
        memory.read(0, 1)
        fault.reset()
        assert memory.read(0, 1) == 1
        assert memory.read(0, 1) == 1


class TestDataRetention:
    def test_invalid_from_value_rejected(self):
        with pytest.raises(ValueError):
            DataRetentionFault(0, 0, 2)

    def test_invalid_decay_time_rejected(self):
        with pytest.raises(ValueError):
            DataRetentionFault(0, 0, 1, decay_time=0)

    def test_decays_after_idle(self):
        memory = Sram(4)
        memory.attach(DataRetentionFault(1, 0, from_value=1, decay_time=500))
        memory.write(0, 1, 1)
        memory.elapse(600)
        assert memory.read(0, 1) == 0

    def test_short_idle_is_fine(self):
        memory = Sram(4)
        memory.attach(DataRetentionFault(1, 0, from_value=1, decay_time=500))
        memory.write(0, 1, 1)
        memory.elapse(100)
        assert memory.read(0, 1) == 1

    def test_idle_accumulates_across_pauses(self):
        memory = Sram(4)
        memory.attach(DataRetentionFault(1, 0, from_value=1, decay_time=500))
        memory.write(0, 1, 1)
        memory.elapse(300)
        memory.elapse(300)
        assert memory.read(0, 1) == 0

    def test_access_refreshes(self):
        memory = Sram(4)
        memory.attach(DataRetentionFault(1, 0, from_value=1, decay_time=500))
        memory.write(0, 1, 1)
        memory.elapse(300)
        memory.read(0, 1)  # refresh
        memory.elapse(300)
        assert memory.read(0, 1) == 1

    def test_opposite_state_does_not_decay(self):
        memory = Sram(4)
        memory.attach(DataRetentionFault(1, 0, from_value=1, decay_time=500))
        memory.write(0, 1, 0)
        memory.elapse(10_000)
        assert memory.read(0, 1) == 0

    def test_zero_decay_direction(self):
        memory = Sram(4)
        memory.attach(DataRetentionFault(1, 0, from_value=0, decay_time=500))
        memory.write(0, 1, 0)
        memory.elapse(600)
        assert memory.read(0, 1) == 1
