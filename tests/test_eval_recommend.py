"""Unit tests for the algorithm recommender."""

import pytest

from repro.eval.coverage_study import coverage_table
from repro.eval.recommend import (
    NoAlgorithmError,
    recommend,
    stage_plan,
)


@pytest.fixture(scope="module")
def rows():
    return coverage_table(n_words=8)


class TestRecommend:
    def test_saf_only_picks_cheapest(self, rows):
        choice = recommend(["SAF"], rows=rows)
        # Zero-One (4N) is the cheapest full-SAF algorithm in the library.
        assert choice.test.name == "Zero-One"

    def test_saf_tf_picks_mats_plus_plus(self, rows):
        choice = recommend(["SAF", "TF"], rows=rows)
        assert choice.test.name == "MATS++"

    def test_full_coupling_picks_march_c(self, rows):
        choice = recommend(["SAF", "TF", "AF", "CFin", "CFid", "CFst"],
                           rows=rows)
        assert choice.test.name == "March C"

    def test_retention_requires_plus_variant(self, rows):
        choice = recommend(["SAF", "DRF"], rows=rows)
        assert choice.test.has_pauses

    def test_everything_requires_march_c_plus_plus(self, rows):
        choice = recommend(
            ["SAF", "TF", "AF", "CFin", "CFid", "CFst", "SOF", "DRF"],
            rows=rows,
        )
        assert choice.test.name == "March C++"

    def test_alternatives_are_costlier(self, rows):
        from repro.march import library

        choice = recommend(["SAF", "TF"], rows=rows)
        for name in choice.alternatives:
            assert (
                library.get(name).operation_count
                >= choice.operation_factor
            )

    def test_unknown_class_rejected(self, rows):
        with pytest.raises(ValueError):
            recommend(["SAF", "XYZ"], rows=rows)

    def test_empty_request_rejected(self, rows):
        with pytest.raises(ValueError):
            recommend([], rows=rows)

    def test_str(self, rows):
        text = str(recommend(["SAF"], rows=rows))
        assert "covers" in text and "SAF" in text


class TestStagePlan:
    def test_typical_flow(self):
        plan = stage_plan([
            ("wafer sort", ["SAF", "TF", "AF"]),
            ("package test", ["SAF", "TF", "AF", "CFin", "CFid", "CFst",
                              "DRF"]),
            ("burn-in", ["SAF", "TF", "AF", "CFin", "CFid", "CFst", "SOF",
                         "DRF"]),
        ])
        names = [recommendation.test.name for _, recommendation in plan]
        assert names == ["MATS++", "March C+", "March C++"]

    def test_costs_increase_along_the_flow(self):
        plan = stage_plan([
            ("fast", ["SAF"]),
            ("full", ["SAF", "TF", "CFin", "CFid", "CFst"]),
        ])
        costs = [r.operation_factor for _, r in plan]
        assert costs == sorted(costs)

    def test_impossible_stage_raises(self):
        # NPSF is not a coverage column; unknown class is a ValueError,
        # but a column nothing covers raises NoAlgorithmError — build one
        # by filtering the table to weak algorithms only.
        rows = coverage_table(n_words=8, algorithms=("Zero-One", "MATS"))
        with pytest.raises(NoAlgorithmError):
            recommend(["CFst"], rows=rows)


class TestReadFaultRecommendations:
    @pytest.fixture(scope="class")
    def rows(self):
        return coverage_table(n_words=8)

    def test_drdf_picks_march_y(self, rows):
        """The cheapest re-read structure in the library is March Y."""
        choice = recommend(["SAF", "DRDF"], rows=rows)
        assert choice.test.name == "March Y"

    def test_drdf_plus_couplings_picks_pmovi(self, rows):
        choice = recommend(
            ["SAF", "TF", "CFin", "CFst", "DRDF"], rows=rows
        )
        assert choice.test.name == "PMOVI"

    def test_all_eleven_classes_still_march_c_plus_plus(self, rows):
        from repro.eval.coverage_study import COVERAGE_COLUMNS

        choice = recommend(COVERAGE_COLUMNS, rows=rows)
        assert choice.test.name == "March C++"
        assert choice.alternatives == ()
