"""Operation-stream and fault-detection tests for the classic patterns.

Mirrors ``test_march_simulator.py``: exact expected streams for tiny
memories (so any generator change is visible op-for-op in a diff) plus
per-pattern detection assertions that tie a specific injected fault to
the specific operation that catches it.
"""

from repro.classic import (
    checkerboard,
    galpat,
    galpat_op_count,
    pseudorandom_test,
    walking_ones,
    walking_op_count,
    walking_zeros,
)
from repro.faults import DataRetentionFault, StuckAtFault, TransitionFault
from repro.faults.coupling import InversionCouplingFault
from repro.march.simulator import run_on_memory
from repro.memory import Sram


def _stream(ops):
    """Compact comparable encoding, one tuple per operation."""
    out = []
    for op in ops:
        if op.is_delay:
            out.append(("d", op.port, op.delay))
        elif op.is_write:
            out.append(("w", op.port, op.address, op.value))
        else:
            out.append(("r", op.port, op.address, op.expected))
    return out


class TestWalkingStream:
    def test_walking_ones_exact_stream_two_words(self):
        assert _stream(walking_ones(2)) == [
            ("w", 0, 0, 0), ("w", 0, 1, 0),        # clear
            ("r", 0, 0, 0), ("w", 0, 0, 1),        # tenure of cell 0
            ("r", 0, 1, 0), ("r", 0, 0, 1),
            ("w", 0, 0, 0),
            ("r", 0, 1, 0), ("w", 0, 1, 1),        # tenure of cell 1
            ("r", 0, 0, 0), ("r", 0, 1, 1),
            ("w", 0, 1, 0),
            ("r", 0, 0, 0), ("r", 0, 1, 0),        # final sweep
        ]

    def test_walking_zeros_is_polarity_mirror(self):
        ones = _stream(walking_ones(3))
        zeros = _stream(walking_zeros(3))
        assert len(ones) == len(zeros)
        for one, zero in zip(ones, zeros):
            assert one[:3] == zero[:3]      # same kind/port/address order
            assert one[3] == 1 - zero[3]    # complementary data

    def test_op_count_formula(self):
        for n in (2, 3, 5, 8):
            assert len(list(walking_ones(n))) == walking_op_count(n)
            assert walking_op_count(n) == n * n + 5 * n

    def test_each_tenure_reads_every_other_cell(self):
        n = 5
        ops = list(walking_ones(n))
        reads_of_others = [
            op for op in ops
            if op.is_read and op.expected == 0
        ]
        # background reads: n(n-1) during tenures + n final sweep... the
        # invariant that matters: every cell is read while every other
        # cell holds the walking 1.
        assert len(reads_of_others) >= n * (n - 1)

    def test_detects_stuck_at_zero_at_tenure_read(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(2, 0, 0))
        result = run_on_memory(walking_ones(4), memory)
        assert not result.passed
        first = result.failures[0]
        assert first.address == 2
        assert first.expected == 1  # the walked-1 read-back

    def test_detects_coupling_between_any_pair(self):
        memory = Sram(4)
        memory.attach(InversionCouplingFault(1, 0, 3, 0, True))
        assert not run_on_memory(walking_ones(4), memory).passed


class TestGalpatStream:
    def test_exact_stream_two_words_first_pass(self):
        ops = _stream(galpat(2))
        assert len(ops) == galpat_op_count(2)
        # Pass 1 (background 0) is exactly the walking-ones tenure
        # structure with the ping-pong re-read of the marked cell.
        assert ops[:14] == _stream(walking_ones(2))

    def test_second_pass_is_complement(self):
        ops = _stream(galpat(2))
        half = len(ops) // 2
        for first, second in zip(ops[:half], ops[half:]):
            assert first[:3] == second[:3]
            assert first[3] == 1 - second[3]

    def test_op_count_formula(self):
        for n in (2, 3, 4):
            assert galpat_op_count(n) == 2 * (2 * n * n + 3 * n)

    def test_detects_transition_fault_named_cell(self):
        memory = Sram(4)
        memory.attach(TransitionFault(1, 0, True))  # can't rise
        result = run_on_memory(galpat(4), memory)
        assert not result.passed
        assert result.failures[0].address == 1

    def test_detects_stuck_at_on_both_polarities(self):
        for value in (0, 1):
            memory = Sram(3)
            memory.attach(StuckAtFault(0, 0, value))
            assert not run_on_memory(galpat(3), memory).passed


class TestCheckerboardStream:
    def test_exact_stream_four_words(self):
        # Physical checkerboard on the 2x2 cell grid: words 1,2 carry
        # the complement of words 0,3 (not address parity).
        assert _stream(checkerboard(4)) == [
            ("w", 0, 0, 0), ("w", 0, 1, 1), ("w", 0, 2, 1), ("w", 0, 3, 0),
            ("r", 0, 0, 0), ("r", 0, 1, 1), ("r", 0, 2, 1), ("r", 0, 3, 0),
            ("w", 0, 0, 1), ("w", 0, 1, 0), ("w", 0, 2, 0), ("w", 0, 3, 1),
            ("r", 0, 0, 1), ("r", 0, 1, 0), ("r", 0, 2, 0), ("r", 0, 3, 1),
        ]

    def test_bake_delays_sit_between_write_and_read_phases(self):
        ops = list(checkerboard(4, bake=256))
        kinds = [
            "d" if op.is_delay else ("w" if op.is_write else "r")
            for op in ops
        ]
        assert kinds == ["w"] * 4 + ["d"] + ["r"] * 4 + \
            ["w"] * 4 + ["d"] + ["r"] * 4

    def test_detects_retention_fault_only_with_bake(self):
        def faulty():
            memory = Sram(16)
            memory.attach(
                DataRetentionFault(6, 0, from_value=1, decay_time=400)
            )
            return memory

        assert run_on_memory(checkerboard(16), faulty()).passed
        assert not run_on_memory(checkerboard(16, bake=1024), faulty()).passed

    def test_detects_stuck_at_in_read_phase(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(3, 0, 1))
        result = run_on_memory(checkerboard(4), memory)
        assert not result.passed
        first = result.failures[0]
        assert first.address == 3 and first.expected == 0


class TestPseudorandomStream:
    def test_deterministic_per_seed(self):
        a = _stream(pseudorandom_test(8, length=64))
        b = _stream(pseudorandom_test(8, length=64))
        assert a == b

    def test_reads_always_expect_shadow_value(self):
        """Every read's expectation equals the last value written to
        that address — the shadow-memory invariant that makes the
        pseudorandom stream self-checking."""
        shadow = {}
        checked = 0
        for op in pseudorandom_test(8, length=500):
            if op.is_write:
                shadow[op.address] = op.value
            elif op.is_read:
                assert op.expected == shadow.get(op.address, 0)
                checked += 1
        assert checked > 0

    def test_addresses_stay_in_range(self):
        assert all(
            0 <= op.address < 8
            for op in pseudorandom_test(8, length=300)
        )

    def test_detects_stuck_at_with_sufficient_budget(self):
        memory = Sram(8)
        memory.attach(StuckAtFault(3, 0, 1))
        result = run_on_memory(pseudorandom_test(8, length=2000), memory)
        assert not result.passed
        assert result.failures[0].address == 3
