"""Unit tests for the decompiler and the program interchange format."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController, assemble
from repro.core.microcode.decompiler import DecompileError, decompile
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.core.programming import (
    ProgramFormatError,
    dump_program,
    load_program,
)
from repro.core.progfsm import ProgrammableFsmBistController, compile_to_sm
from repro.march import library
from repro.march.simulator import expand

CAPS = ControllerCapabilities(n_words=8)
FULL_CAPS = ControllerCapabilities(n_words=8, width=4, ports=2)


def streams_equal(test_a, test_b, n=8, w=1, p=1):
    return list(expand(test_a, n, width=w, ports=p)) == list(
        expand(test_b, n, width=w, ports=p)
    )


class TestDecompiler:
    @pytest.mark.parametrize(
        "test", list(library.ALGORITHMS.values()), ids=lambda t: t.name
    )
    def test_assemble_decompile_semantic_roundtrip(self, test):
        program = assemble(test, CAPS)
        recovered = decompile(program.instructions, name=test.name)
        assert streams_equal(test, recovered)

    def test_uncompressed_roundtrip(self):
        program = assemble(library.MARCH_A, CAPS, compress=False)
        recovered = decompile(program.instructions)
        assert streams_equal(library.MARCH_A, recovered)

    def test_pause_recovered(self):
        program = assemble(library.MARCH_C_PLUS, CAPS)
        recovered = decompile(program.instructions)
        assert recovered.has_pauses
        assert recovered.pauses[0].duration == 1024

    def test_dangling_element_rejected(self):
        rows = [MicroInstruction(read_en=True)]  # NOP, never LOOPs
        with pytest.raises(DecompileError):
            decompile(rows)

    def test_repeat_without_body_rejected(self):
        rows = [
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(addr_down=True, cond=ConditionOp.REPEAT),
        ]
        with pytest.raises(DecompileError):
            decompile(rows)

    def test_order_change_mid_element_rejected(self):
        rows = [
            MicroInstruction(read_en=True, addr_down=False),
            MicroInstruction(write_en=True, addr_down=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
        ]
        with pytest.raises(DecompileError):
            decompile(rows)

    def test_empty_program_rejected(self):
        with pytest.raises(DecompileError):
            decompile([MicroInstruction(cond=ConditionOp.TERMINATE)])


class TestInterchangeFormat:
    def test_microcode_dump_contains_header_and_rows(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        text = dump_program(program)
        assert "# repro-bist-program v1" in text
        assert "# kind: microcode" in text
        assert "# name: March C" in text
        assert text.count("\n") >= len(program.instructions)

    @pytest.mark.parametrize(
        "test", [library.MARCH_C, library.MARCH_A_PLUS, library.MARCH_B],
        ids=lambda t: t.name,
    )
    def test_microcode_load_roundtrip(self, test):
        program = assemble(test, FULL_CAPS)
        loaded = load_program(dump_program(program))
        assert [i.encode() for i in loaded.instructions] == [
            i.encode() for i in program.instructions
        ]
        assert streams_equal(test, loaded.source, n=8, w=4, p=2)

    def test_loaded_program_drives_controller_identically(self):
        program = assemble(library.MARCH_C, CAPS)
        loaded = load_program(dump_program(program))
        original = MicrocodeBistController(program, CAPS)
        reloaded = MicrocodeBistController(loaded, CAPS)
        assert list(original.operations()) == list(reloaded.operations())

    def test_fsm_dump_and_load_roundtrip(self):
        program = compile_to_sm(library.MARCH_C, FULL_CAPS)
        loaded = load_program(dump_program(program))
        assert [i.encode() for i in loaded.instructions] == [
            i.encode() for i in program.instructions
        ]
        controller = ProgrammableFsmBistController(loaded, FULL_CAPS)
        assert list(controller.operations()) == list(
            expand(library.MARCH_C, 8, width=4, ports=2)
        )

    def test_fsm_hold_recovered_as_pause(self):
        program = compile_to_sm(library.MARCH_C_PLUS, CAPS)
        loaded = load_program(dump_program(program))
        assert loaded.source.has_pauses

    def test_missing_tag_rejected(self):
        with pytest.raises(ProgramFormatError):
            load_program("# kind: microcode\n0c1\n")

    def test_missing_kind_rejected(self):
        with pytest.raises(ProgramFormatError):
            load_program("# repro-bist-program v1\n0c1\n")

    def test_bad_hex_rejected(self):
        text = "# repro-bist-program v1\n# kind: microcode\nzz\n"
        with pytest.raises(ProgramFormatError):
            load_program(text)

    def test_empty_body_rejected(self):
        text = "# repro-bist-program v1\n# kind: microcode\n"
        with pytest.raises(ProgramFormatError):
            load_program(text)

    def test_invalid_word_rejected(self):
        # read+write both set is not a decodable instruction.
        bad = (1 << 5) | (1 << 6)
        text = f"# repro-bist-program v1\n# kind: microcode\n{bad:03x}\n"
        with pytest.raises(ValueError):
            load_program(text)

    def test_comments_and_blank_lines_ignored(self):
        program = assemble(library.MARCH_C, CAPS)
        text = dump_program(program)
        noisy = "\n\n# a comment\n" + text + "\n   \n"
        loaded = load_program(noisy)
        assert len(loaded.instructions) == len(program.instructions)
