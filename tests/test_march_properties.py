"""Unit tests for symmetry analysis (the REPEAT-compression basis)."""

import pytest

from repro.march import library
from repro.march.element import AddressOrder, MarchElement, R0, R1, W0, W1
from repro.march.notation import parse_test
from repro.march.properties import (
    AuxComplement,
    is_symmetric,
    stored_element_count,
    symmetric_split,
)


class TestAuxComplement:
    def test_order_only(self):
        aux = AuxComplement(True, False, False)
        element = MarchElement(AddressOrder.UP, [R0, W1])
        applied = aux.apply(element)
        assert applied.order is AddressOrder.DOWN
        assert applied.ops == (R0, W1)

    def test_data_only_flips_writes(self):
        aux = AuxComplement(False, True, False)
        element = MarchElement(AddressOrder.UP, [R0, W1])
        assert aux.apply(element).ops == (R0, W0)

    def test_compare_only_flips_reads(self):
        aux = AuxComplement(False, False, True)
        element = MarchElement(AddressOrder.UP, [R0, W1])
        assert aux.apply(element).ops == (R1, W1)

    def test_full_complement_equals_inverted(self):
        aux = AuxComplement(True, True, True)
        element = MarchElement(AddressOrder.UP, [R0, W1, W0])
        assert aux.apply(element) == element.inverted()

    def test_any_order_resolves_before_reversal(self):
        """'Either' elements re-execute concretely downward (hardware XOR)."""
        aux = AuxComplement(True, False, False)
        element = MarchElement(AddressOrder.ANY, [R0])
        assert aux.apply(element).order is AddressOrder.DOWN

    def test_any_flag(self):
        assert not AuxComplement(False, False, False).any
        assert AuxComplement(True, False, False).any

    def test_str(self):
        assert str(AuxComplement(True, True, True)) == "order+data+compare"
        assert str(AuxComplement(False, False, False)) == "none"


class TestSymmetricSplit:
    def test_march_c_is_order_symmetric(self):
        split = symmetric_split(library.MARCH_C)
        assert split is not None
        assert split.aux == AuxComplement(True, False, False)
        assert len(split.prefix) == 1
        assert len(split.body) == 2
        assert len(split.suffix) == 1

    def test_march_a_is_fully_symmetric(self):
        split = symmetric_split(library.MARCH_A)
        assert split is not None
        assert split.aux == AuxComplement(True, True, True)
        assert len(split.body) == 2
        assert len(split.suffix) == 0

    def test_march_c_plus_compresses_base_keeps_retention_suffix(self):
        split = symmetric_split(library.MARCH_C_PLUS)
        assert split is not None
        assert len(split.body) == 2
        # Suffix carries the final read element plus the retention tail.
        assert len(split.suffix) == 5

    def test_march_c_plus_plus_still_symmetric(self):
        assert is_symmetric(library.MARCH_C_PLUS_PLUS)

    def test_mats_plus_symmetric(self):
        """MATS+ down sweep is the full complement of the up sweep."""
        split = symmetric_split(library.MATS_PLUS)
        assert split is not None
        assert split.aux == AuxComplement(True, True, True)

    def test_asymmetric_test_returns_none(self):
        test = parse_test("~(w0); ^(r0,w1); v(r1,w0,w1)")
        assert symmetric_split(test) is None

    def test_saved_rows(self):
        split = symmetric_split(library.MARCH_A)
        assert split.saved_rows == 2

    def test_stored_element_count_march_c(self):
        # 6 elements, 2 saved.
        assert stored_element_count(library.MARCH_C) == 4

    def test_stored_element_count_asymmetric(self):
        test = parse_test("~(w0); ^(r0,w1); v(r1,w0,w1)")
        assert stored_element_count(test) == 3

    def test_single_op_prefix_constraint_accepts_march_c(self):
        split = symmetric_split(library.MARCH_C, require_single_op_prefix=True)
        assert split is not None
        assert len(split.prefix) == 1
        assert split.prefix[0].op_count == 1

    def test_single_op_prefix_constraint_rejects_wide_prefix(self):
        # Symmetric around a two-op prefix element: ^(w0,w0) then mirror.
        test = parse_test("^(w0,w0); ^(r0,w1); v(r0,w1)")
        unconstrained = symmetric_split(test)
        assert unconstrained is not None
        constrained = symmetric_split(test, require_single_op_prefix=True)
        assert constrained is None

    def test_reconstruction_equals_original(self):
        """prefix + body + aux(body) + suffix reproduces the elements."""
        for test in (library.MARCH_C, library.MARCH_A, library.MATS_PLUS):
            split = symmetric_split(test)
            rebuilt = (
                list(split.prefix)
                + list(split.body)
                + [split.aux.apply(e) for e in split.body]
            )
            originals = list(test.elements)[: len(rebuilt)]
            for got, want in zip(rebuilt, originals):
                assert got.ops == want.ops
                assert got.order.resolve() is want.order.resolve()

    def test_mirror_in_pause_region_not_compressed(self):
        """Pauses inside the would-be mirror region block compression."""
        test = parse_test("~(w0); ^(r0,w1); Del(512); v(r1,w0)")
        assert symmetric_split(test) is None
