"""Control-flow-graph construction over microcode programs."""

from repro.analysis import EXIT, EdgeKind, build_cfg
from repro.analysis.cfg import loop_target
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import assemble
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.march import library

W_LOOP = MicroInstruction(write_en=True, addr_inc=True, cond=ConditionOp.LOOP)
R_LOOP = MicroInstruction(read_en=True, addr_inc=True, cond=ConditionOp.LOOP)
NOP_W = MicroInstruction(write_en=True)
TERM = MicroInstruction(cond=ConditionOp.TERMINATE)


def kinds(cfg, index):
    return {edge.kind for edge in cfg.successors(index)}


class TestLoopTarget:
    def test_power_on_branch_register_is_zero(self):
        assert loop_target([W_LOOP], 0) == 0

    def test_scans_back_over_the_nop_body(self):
        # element body: rows 1-2 are NOPs, row 3 loops; row 0 is the
        # previous element whose LOOP re-seeded the branch register.
        rows = [W_LOOP, NOP_W, NOP_W, R_LOOP]
        assert loop_target(rows, 3) == 1

    def test_adjacent_loops_sweep_single_rows(self):
        rows = [W_LOOP, R_LOOP]
        assert loop_target(rows, 1) == 1


class TestEdges:
    def test_loop_has_back_edge_and_fallthrough(self):
        cfg = build_cfg([W_LOOP, TERM])
        assert kinds(cfg, 0) == {EdgeKind.LOOP_BACK, EdgeKind.FALLTHROUGH}
        back = [e for e in cfg.successors(0)
                if e.kind is EdgeKind.LOOP_BACK][0]
        assert back.dst == 0

    def test_repeat_resets_to_instruction_one(self):
        rows = [W_LOOP, R_LOOP, MicroInstruction(cond=ConditionOp.REPEAT),
                TERM]
        cfg = build_cfg(rows)
        reset = [e for e in cfg.successors(2) if e.kind is EdgeKind.RESET1]
        assert [e.dst for e in reset] == [1]

    def test_next_bg_resets_to_instruction_zero(self):
        rows = [W_LOOP,
                MicroInstruction(data_inc=True, cond=ConditionOp.NEXT_BG),
                TERM]
        cfg = build_cfg(rows)
        reset = [e for e in cfg.successors(1) if e.kind is EdgeKind.RESET0]
        assert [e.dst for e in reset] == [0]

    def test_inc_port_resets_or_exits(self):
        rows = [W_LOOP, MicroInstruction(cond=ConditionOp.INC_PORT)]
        cfg = build_cfg(rows)
        assert kinds(cfg, 1) == {EdgeKind.RESET0, EdgeKind.END}

    def test_terminate_goes_to_exit_only(self):
        cfg = build_cfg([W_LOOP, TERM])
        assert [e.dst for e in cfg.successors(1)] == [EXIT]

    def test_fall_off_the_last_row_is_an_end_edge(self):
        cfg = build_cfg([W_LOOP])
        assert kinds(cfg, 0) == {EdgeKind.LOOP_BACK, EdgeKind.END}


class TestReachability:
    def test_rows_after_terminate_are_unreachable(self):
        cfg = build_cfg([W_LOOP, TERM, NOP_W, R_LOOP])
        assert cfg.unreachable() == [2, 3]

    def test_repeat_keeps_the_whole_body_reachable(self):
        program = assemble(
            library.MARCH_C, ControllerCapabilities(n_words=8)
        )
        cfg = build_cfg(program)
        assert cfg.unreachable() == []

    def test_exits_explicitly_true_for_terminate(self):
        assert build_cfg([W_LOOP, TERM]).exits_explicitly()

    def test_exits_explicitly_false_for_fall_off(self):
        assert not build_cfg([W_LOOP]).exits_explicitly()

    def test_exits_explicitly_false_for_dead_terminate(self):
        # TERMINATE exists but sits behind an earlier TERMINATE's exit.
        cfg = build_cfg([TERM, TERM])
        assert cfg.exits_explicitly()
        # ... whereas an unreachable one after a fall-off end does not
        # count (the END edge of row 0 is the real exit).
        stuck = build_cfg([W_LOOP, TERM, TERM])
        assert stuck.exits_explicitly()


class TestAssembledShapes:
    def test_compressed_march_c_geometry(self):
        caps = ControllerCapabilities(n_words=8)
        program = assemble(library.MARCH_C, caps)
        cfg = build_cfg(program)
        conds = [instr.cond for instr in program.instructions]
        repeat_at = conds.index(ConditionOp.REPEAT)
        assert kinds(cfg, repeat_at) == {EdgeKind.RESET1,
                                         EdgeKind.FALLTHROUGH}
        # every LOOP row has exactly one back edge into the program
        for index, cond in enumerate(conds):
            if cond is ConditionOp.LOOP:
                back = [e for e in cfg.successors(index)
                        if e.kind is EdgeKind.LOOP_BACK]
                assert len(back) == 1
                assert 0 <= back[0].dst <= index

    def test_multiport_word_oriented_tail(self):
        caps = ControllerCapabilities(n_words=4, width=4, ports=2)
        program = assemble(library.MARCH_Y, caps)
        cfg = build_cfg(program)
        conds = [instr.cond for instr in program.instructions]
        assert conds[-2:] == [ConditionOp.NEXT_BG, ConditionOp.INC_PORT]
        assert cfg.exits_explicitly()
        assert cfg.terminating_edges()[-1].src == len(conds) - 1
