"""Property-style tests on the area model: monotonicity and sanity."""

import pytest

from repro.area.estimator import estimate
from repro.area.technology import IBM_CMOS5S, Technology
from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.march import library


def ge_of(controller):
    return estimate(controller.hardware()).gate_equivalents


CONTROLLERS = {
    "microcode": lambda caps: MicrocodeBistController(library.MARCH_C, caps),
    "progfsm": lambda caps: ProgrammableFsmBistController(library.MARCH_C, caps),
    "hardwired": lambda caps: HardwiredBistController(library.MARCH_C, caps),
}


@pytest.mark.parametrize("name,factory", CONTROLLERS.items())
class TestGeometryMonotonicity:
    def test_wider_words_cost_more(self, name, factory):
        areas = [
            ge_of(factory(ControllerCapabilities(n_words=64, width=width)))
            for width in (1, 4, 16)
        ]
        assert areas == sorted(areas)
        assert areas[0] < areas[-1]

    def test_more_ports_cost_more(self, name, factory):
        areas = [
            ge_of(factory(ControllerCapabilities(n_words=64, ports=ports)))
            for ports in (1, 2, 4)
        ]
        assert areas == sorted(areas)
        assert areas[0] < areas[-1]

    def test_depth_grows_datapath_only(self, name, factory):
        """Memory depth touches only the datapath (address counter and
        last-address detect); the controller logic is depth-independent."""
        small = estimate(
            factory(ControllerCapabilities(n_words=256)).hardware()
        )
        large = estimate(
            factory(ControllerCapabilities(n_words=65536)).hardware()
        )
        assert large.gate_equivalents > small.gate_equivalents
        assert large.component_ge("controller/") == pytest.approx(
            small.component_ge("controller/")
        )
        assert large.component_ge("datapath/") > small.component_ge(
            "datapath/"
        )


class TestMicrocodeKnobs:
    def test_storage_depth_monotone(self):
        areas = [
            ge_of(
                MicrocodeBistController(
                    library.MARCH_C,
                    ControllerCapabilities(n_words=64),
                    storage_rows=rows,
                )
            )
            for rows in (12, 20, 32, 64)
        ]
        assert areas == sorted(areas)

    def test_scan_only_never_larger(self):
        for caps in (
            ControllerCapabilities(n_words=64),
            ControllerCapabilities(n_words=64, width=8, ports=2),
        ):
            full = ge_of(MicrocodeBistController(library.MARCH_C, caps))
            adjusted = ge_of(
                MicrocodeBistController(
                    library.MARCH_C, caps, storage_cell="scan_only"
                )
            )
            assert adjusted < full

    def test_scan_only_savings_track_the_ratio(self):
        caps = ControllerCapabilities(n_words=64)
        previous = None
        for ratio in (2.0, 3.0, 4.0, 5.0, 6.0):
            tech = IBM_CMOS5S.with_scan_only_ratio(ratio)
            area = estimate(
                MicrocodeBistController(
                    library.MARCH_C, caps, storage_cell="scan_only"
                ).hardware(),
                tech,
            ).gate_equivalents
            if previous is not None:
                assert area < previous
            previous = area


class TestHardwiredComplexityTrend:
    def test_area_correlates_with_operation_count(self):
        """Hardwired area tracks algorithm size strongly — but not
        perfectly monotonically: two-level minimisation rewards regular
        element structures (March LR synthesises smaller than the
        shorter PMOVI), which is a genuine property of synthesis, not a
        model artefact.  Assert the strong rank correlation and the
        endpoint ordering instead."""
        import numpy

        caps = ControllerCapabilities(n_words=64)
        plain = [t for t in library.ALGORITHMS.values() if not t.has_pauses]
        ops = [t.operation_count for t in plain]
        areas = [ge_of(HardwiredBistController(t, caps)) for t in plain]
        correlation = numpy.corrcoef(ops, areas)[0, 1]
        assert correlation > 0.85
        by_name = {t.name: a for t, a in zip(plain, areas)}
        assert by_name["Zero-One"] < by_name["March C"] < by_name["March B"]


class TestTechnologyScaling:
    def test_um2_linear_in_nand_area(self):
        caps = ControllerCapabilities(n_words=64)
        spec = MicrocodeBistController(library.MARCH_C, caps).hardware()
        small = estimate(spec, Technology("a", nand2_area_um2=10.0))
        large = estimate(spec, Technology("b", nand2_area_um2=20.0))
        assert large.area_um2 == pytest.approx(2 * small.area_um2)
        assert large.gate_equivalents == small.gate_equivalents

    def test_all_component_costs_nonnegative(self):
        caps = ControllerCapabilities(n_words=64, width=8, ports=2)
        for factory in CONTROLLERS.values():
            report = estimate(factory(caps).hardware())
            assert all(ge >= 0 for _, ge in report.breakdown)
