"""ROM-image readback: the export path must round-trip bit-exactly."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import assemble
from repro.march import library
from repro.march.simulator import expand
from repro.rtl import (
    ReadbackError,
    program_memh,
    rom_readback,
    verify_rom_image,
)

CAPS = ControllerCapabilities(n_words=8, width=1, ports=1)


class TestRomReadback:
    @pytest.mark.parametrize(
        "name", list(library.ALGORITHMS), ids=lambda n: n
    )
    @pytest.mark.parametrize("compress", [True, False],
                             ids=["compressed", "uncompressed"])
    def test_library_round_trips_bit_exactly(self, name, compress):
        program = assemble(library.get(name), CAPS, compress=compress)
        recovered = rom_readback(
            program_memh(program, rows=64), name=name
        )
        assert recovered.instructions == program.instructions

    def test_recovered_source_is_stream_equivalent(self):
        program = assemble(library.get("March C"), CAPS)
        recovered = rom_readback(program_memh(program))
        assert list(expand(recovered.source, 4)) == list(
            expand(program.source, 4)
        )

    def test_padding_rows_stripped(self):
        program = assemble(library.get("MATS+"), CAPS)
        padded = program_memh(program, rows=128)
        assert len(rom_readback(padded).instructions) == len(
            program.instructions
        )

    def test_comments_and_blank_lines_ignored(self):
        program = assemble(library.get("MATS+"), CAPS)
        text = program_memh(program)
        noisy = "// banner\n\n" + text.replace(
            "\n", "  // trailing comment\n", 1
        )
        recovered = rom_readback(noisy)
        assert recovered.instructions == program.instructions

    def test_garbage_line_rejected(self):
        with pytest.raises(ReadbackError):
            rom_readback("zzz\n")


class TestVerifyRomImage:
    def _program(self):
        return assemble(library.get("March C"), CAPS)

    def test_self_check_clean(self):
        report = verify_rom_image(self._program(), rows=20)
        assert not report.has_errors

    def test_corrupted_word_flagged_with_row(self):
        program = self._program()
        lines = program_memh(program, rows=20).splitlines()
        lines[3] = f"{int(lines[3], 16) ^ 0x8:03x}"  # flip one bit, row 2
        report = verify_rom_image(program, "\n".join(lines))
        assert report.has_errors
        findings = report.by_rule("RT003")
        assert len(findings) == 1
        assert findings[0].location.instruction == 2

    def test_truncated_image_flagged(self):
        program = self._program()
        lines = program_memh(program).splitlines()
        report = verify_rom_image(program, "\n".join(lines[:-2]))
        assert report.by_rule("RT002")

    def test_unparseable_image_flagged(self):
        report = verify_rom_image(self._program(), "not hex\n")
        assert report.by_rule("RT001")

    def test_undecompilable_image_flagged(self):
        """An image of dangling element rows (never LOOPs) decodes as
        instructions but is not a program the assembler emits."""
        program = self._program()
        # A single read row with no terminator: 3 identical rows.
        row = program.instructions[0].encode()
        report = verify_rom_image(program, f"{row:03x}\n" * len(
            program.instructions
        ))
        # Rows differ from the program -> RT003 fires first.
        assert report.has_errors
