"""Unit tests for the resilient job engine (`repro.service.engine`)."""

import os
import signal
import time

import pytest

from repro.service.engine import (
    FAILED,
    OK,
    QUARANTINED,
    EngineReport,
    Job,
    JobEngine,
    JobOutcome,
    JobsInterrupted,
    RetryPolicy,
    ServiceError,
)


def _double(x):
    return x * 2


def _raise_always(_x):
    raise RuntimeError("boom")


def _raise_until_attempt(path):
    """Fail until a sentinel exists, then succeed (retry-then-ok)."""
    if not os.path.exists(path):
        with open(path, "w") as handle:
            handle.write("fired\n")
        raise RuntimeError("first attempt fails")
    return "recovered"


def _kill_self(_x):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep(seconds):
    time.sleep(seconds)
    return "slept"


def _quick_policy(**overrides):
    defaults = dict(backoff_base=0.01, backoff_cap=0.05)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRunBasics:
    def test_runs_jobs_in_submission_order(self):
        with JobEngine(workers=2, policy=_quick_policy()) as engine:
            report = engine.run(
                [Job(key=f"j{i}", fn=_double, payload=i) for i in range(7)]
            )
        assert report.ok
        assert [o.value for o in report.outcomes] == [0, 2, 4, 6, 8, 10, 12]
        assert [o.key for o in report.outcomes] == [f"j{i}" for i in range(7)]

    def test_engine_is_reusable_across_runs(self):
        with JobEngine(workers=2, policy=_quick_policy()) as engine:
            first = engine.run([Job(key="a", fn=_double, payload=1)])
            second = engine.run([Job(key="b", fn=_double, payload=2)])
        assert first.outcomes[0].value == 2
        assert second.outcomes[0].value == 4

    def test_closed_engine_refuses_to_run(self):
        engine = JobEngine(workers=1)
        engine.close()
        with pytest.raises(ServiceError):
            engine.run([Job(key="a", fn=_double, payload=1)])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            JobEngine(workers=0)

    def test_stats_shape(self):
        with JobEngine(workers=1, policy=_quick_policy()) as engine:
            stats = engine.run(
                [Job(key="a", fn=_double, payload=1)]
            ).stats()
        assert stats["jobs"] == 1
        assert stats["crashes"] == 0
        assert stats["degraded"] is False


class TestRetries:
    def test_raising_job_fails_after_max_attempts(self):
        with JobEngine(
            workers=1, policy=_quick_policy(max_attempts=2)
        ) as engine:
            report = engine.run(
                [Job(key="bad", fn=_raise_always, payload=None)]
            )
        outcome = report.outcomes[0]
        assert outcome.status == FAILED
        assert "boom" in outcome.error
        assert outcome.attempts == 2
        assert report.retries == 1
        # Raising jobs never crashed a worker: safe to retry inline.
        assert outcome.safe_inline

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        sentinel = str(tmp_path / "fired")
        with JobEngine(workers=1, policy=_quick_policy()) as engine:
            report = engine.run(
                [Job(key="flaky", fn=_raise_until_attempt, payload=sentinel)]
            )
        outcome = report.outcomes[0]
        assert outcome.status == OK
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_backoff_is_deterministic_and_jittered(self):
        policy = RetryPolicy()
        first = policy.backoff("key", 1)
        assert first == policy.backoff("key", 1)
        assert first != policy.backoff("key", 2)
        assert first != policy.backoff("other", 1)
        nominal = policy.backoff_base
        assert nominal * 0.5 <= first <= nominal

    def test_backoff_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=2.0)
        assert policy.backoff("k", 30) <= 2.0


class TestCrashes:
    def test_crashed_worker_requeues_and_completes_others(self):
        jobs = [Job(key="killer", fn=_kill_self, payload=None)] + [
            Job(key=f"ok{i}", fn=_double, payload=i) for i in range(4)
        ]
        with JobEngine(
            workers=2, policy=_quick_policy(max_crashes=1)
        ) as engine:
            report = engine.run(jobs)
        killer = report.outcome("killer")
        assert killer.status == QUARANTINED
        assert killer.crashes == 2
        assert not killer.safe_inline
        assert report.quarantined == 1
        # Every other job still completed.
        for i in range(4):
            assert report.outcome(f"ok{i}").value == i * 2

    def test_pool_rebuild_counted(self):
        jobs = [Job(key="killer", fn=_kill_self, payload=None)] + [
            Job(key=f"ok{i}", fn=_double, payload=i) for i in range(3)
        ]
        with JobEngine(
            workers=2, policy=_quick_policy(max_crashes=0)
        ) as engine:
            report = engine.run(jobs)
        assert report.crashes >= 1
        assert report.pool_rebuilds >= 1


class TestTimeouts:
    def test_hung_job_is_killed_and_fails(self):
        with JobEngine(
            workers=1,
            policy=_quick_policy(max_attempts=1, timeout=0.5),
        ) as engine:
            report = engine.run(
                [Job(key="hang", fn=_sleep, payload=60)]
            )
        outcome = report.outcomes[0]
        assert outcome.status == FAILED
        assert "timed out" in outcome.error
        assert outcome.timeouts == 1
        assert not outcome.safe_inline

    def test_timeout_only_hits_slow_jobs(self):
        jobs = [
            Job(key="hang", fn=_sleep, payload=60),
            Job(key="fast", fn=_double, payload=21),
        ]
        with JobEngine(
            workers=2,
            policy=_quick_policy(max_attempts=1, timeout=1.0),
        ) as engine:
            report = engine.run(jobs)
        assert report.outcome("hang").status == FAILED
        assert report.outcome("fast").value == 42


class TestDegradedMode:
    def test_unbuildable_pool_degrades_to_serial(self, monkeypatch):
        import repro.service.engine as engine_mod

        def _no_spawn(*_args, **_kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(engine_mod, "_Worker", _no_spawn)
        with JobEngine(
            workers=2, policy=_quick_policy(max_spawn_failures=2)
        ) as engine:
            report = engine.run(
                [Job(key=f"j{i}", fn=_double, payload=i) for i in range(3)]
            )
        assert report.degraded
        assert report.ok
        assert all(o.ran_inline for o in report.outcomes)
        assert [o.value for o in report.outcomes] == [0, 2, 4]

    def test_degraded_mode_reports_inline_errors(self, monkeypatch):
        import repro.service.engine as engine_mod

        monkeypatch.setattr(
            engine_mod, "_Worker",
            lambda *_a, **_k: (_ for _ in ()).throw(OSError("nope")),
        )
        with JobEngine(
            workers=1, policy=_quick_policy(max_spawn_failures=1)
        ) as engine:
            report = engine.run(
                [Job(key="bad", fn=_raise_always, payload=None)]
            )
        outcome = report.outcomes[0]
        assert outcome.status == FAILED
        assert outcome.ran_inline
        assert "boom" in outcome.error


class TestBadJobs:
    def test_unpicklable_job_fails_without_retry_loop(self):
        unpicklable = lambda x: x  # noqa: E731 - deliberately local
        with JobEngine(workers=1, policy=_quick_policy()) as engine:
            report = engine.run(
                [
                    Job(key="local", fn=unpicklable, payload=1),
                    Job(key="fine", fn=_double, payload=3),
                ]
            )
        assert report.outcome("local").status == FAILED
        assert "unpicklable" in report.outcome("local").error
        assert report.outcome("fine").value == 6


class TestOutcomeContracts:
    def test_outcome_to_dict_roundtrips_fields(self):
        outcome = JobOutcome(key="k", status=FAILED, error="e", attempts=2)
        payload = outcome.to_dict()
        assert payload["key"] == "k"
        assert payload["status"] == FAILED
        assert payload["attempts"] == 2

    def test_report_ok_requires_every_outcome_ok(self):
        report = EngineReport(outcomes=[
            JobOutcome(key="a", status=OK),
            JobOutcome(key="b", status=FAILED),
        ])
        assert not report.ok

    def test_jobs_interrupted_carries_outcomes(self):
        exc = JobsInterrupted([JobOutcome(key="a", status=OK)])
        assert len(exc.outcomes) == 1
