"""Fault specification strings and injector robustness.

The spec format (``repro.faults.spec``) is the wire form every fault
takes when it travels as data — CLI flags, shrinker fault axis, fuzz
reproducers, corpus regression entries — so the round trip must be
exact.  The injector tests pin the exception-safety contract that the
fault-response differential leans on: a fault whose ``remove`` raises
must not leak into the next BIST session.
"""

import pytest

from repro.faults import (
    ActiveNpsf,
    PassiveNpsf,
    StuckAtFault,
    TransitionFault,
)
from repro.faults.linked import CompositeFault
from repro.faults.port import PortRestrictedFault
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpecError, format_fault, parse_fault
from repro.faults.universe import standard_universe
from repro.memory.sram import Sram


ROUND_TRIP_SPECS = [
    "saf:3:0:1",
    "saf:0:2:0",
    "tf:1:0:up",
    "tf:2:1:down",
    "drf:1:0:1",
    "sof:2:0:0",
    "irf:0:0:1",
    "rdf:3:1:0",
    "drdf:2:2:1",
    "cfin:1:0:2:0:up",
    "cfin:0:1:3:1:down",
    "cfid:1:0:2:0:down:1",
    "cfst:0:0:1:0:1:0",
    "af1:5",
    "af2:0:2",
    "af3:1:3",
    "af4:2:0",
    "paf:1:2:0",
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ROUND_TRIP_SPECS)
    def test_format_inverts_parse(self, spec):
        assert format_fault(parse_fault(spec)) == spec

    @pytest.mark.parametrize("spec", ROUND_TRIP_SPECS)
    def test_reparse_builds_equivalent_fault(self, spec):
        first = parse_fault(spec)
        second = parse_fault(format_fault(first))
        assert type(first) is type(second)
        assert vars(first) == vars(second)

    def test_direction_synonyms_normalise(self):
        assert format_fault(parse_fault("tf:0:0:rising")) == "tf:0:0:up"
        assert format_fault(parse_fault("tf:0:0:0")) == "tf:0:0:down"

    def test_spec_is_case_insensitive(self):
        assert format_fault(parse_fault("SAF:1:0:1")) == "saf:1:0:1"

    def test_standard_universe_round_trips(self):
        # Every non-NPSF fault the generator can produce must survive
        # the wire format bit-identically — this is what lets the fuzz
        # fault draw and the corpus regressions rebuild faults from
        # their spec strings alone.
        universe = standard_universe(4, width=2, include_npsf=False)
        for fault in universe.faults:
            spec = format_fault(fault)
            assert spec is not None, fault.kind
            rebuilt = parse_fault(spec)
            assert vars(rebuilt) == vars(fault)


class TestInexpressible:
    def test_npsf_has_no_spec_form(self):
        passive = PassiveNpsf((0, 0), [(1, 0)], (1,))
        active = ActiveNpsf((0, 0), (1, 0), True, [], ())
        assert format_fault(passive) is None
        assert format_fault(active) is None

    def test_linked_composite_has_no_spec_form(self):
        linked = CompositeFault(
            [StuckAtFault(0, 0, 1), TransitionFault(1, 0, True)]
        )
        assert format_fault(linked) is None

    def test_port_restricted_wrapper_has_no_spec_form(self):
        wrapped = PortRestrictedFault(1, StuckAtFault(0, 0, 1))
        assert format_fault(wrapped) is None


class TestParseErrors:
    @pytest.mark.parametrize(
        "spec",
        [
            "unknown:1:2:3",
            "saf",
            "saf:1:0",
            "saf:one:0:1",
            "tf:0:0:sideways",
            "cfin:1:0:2:0",
            "",
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault(spec)

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            parse_fault("saf:bad")


class _ExplodingRemove(StuckAtFault):
    """A fault model whose detach path itself is defective."""

    def remove(self, memory):
        super().remove(memory)
        raise RuntimeError("remove exploded")


class TestInjectorDetachSafety:
    def test_misbehaving_remove_does_not_leak_fault(self):
        memory = Sram(n_words=4, width=1, ports=1)
        injector = FaultInjector(memory)
        with pytest.raises(RuntimeError, match="remove exploded"):
            with injector.injected(_ExplodingRemove(1, 0, 1)):
                pass
        # The error propagated, but the fault list is clear, the decoder
        # restored and the state reset — the injector stays usable.
        assert memory.faults == []
        assert memory.read(0, 1) == 0

    def test_injector_reusable_after_detach_error(self):
        memory = Sram(n_words=4, width=1, ports=1)
        injector = FaultInjector(memory)
        with pytest.raises(RuntimeError):
            with injector.injected(_ExplodingRemove(1, 0, 1)):
                pass
        with injector.injected(StuckAtFault(2, 0, 1)) as faulty:
            assert faulty.read(0, 2) == 1
        assert memory.faults == []

    def test_detach_all_restores_decoder_despite_error(self):
        memory = Sram(n_words=4, width=1, ports=1)
        memory.attach(_ExplodingRemove(0, 0, 1))
        with pytest.raises(RuntimeError):
            memory.detach_all()
        # A second detach is a no-op, not a second explosion.
        memory.detach_all()
        assert memory.faults == []
