"""``lint --fix`` mechanics: each fix fires, composes, and never lies.

Every fix must leave a program the verifier accepts with the original
finding gone — and ``apply_fixes`` on a clean program must be an exact
no-op.
"""

from repro.analysis import apply_fixes, verify_program
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import assemble
from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.march import library

CAPS = ControllerCapabilities(n_words=8)


def program_of(*instructions, name="handwritten", source=None):
    return MicrocodeProgram(
        name=name, instructions=list(instructions), source=source
    )


def op_row(**kwargs):
    return MicroInstruction(**kwargs)


class TestAppendTerminator:
    def test_fall_off_termination_is_made_explicit(self):
        program = program_of(op_row(), op_row())
        result = apply_fixes(program, CAPS)
        assert result.changed
        assert any("MC001" in fix for fix in result.applied)
        assert result.program.instructions[-1].cond is ConditionOp.TERMINATE
        report = verify_program(result.program, CAPS)
        assert not report.by_rule("MC001")

    def test_input_is_never_mutated(self):
        program = program_of(op_row())
        rows_before = list(program.instructions)
        apply_fixes(program, CAPS)
        assert program.instructions == rows_before


class TestDropDeadRows:
    def test_rows_behind_terminate_are_dropped(self):
        program = program_of(
            op_row(),
            op_row(cond=ConditionOp.TERMINATE),
            op_row(),
            op_row(),
        )
        result = apply_fixes(program, CAPS)
        assert any("MC002" in fix for fix in result.applied)
        assert len(result.program.instructions) == 2
        assert not verify_program(result.program, CAPS).by_rule("MC002")


class TestRecompression:
    def test_symmetric_uncompressed_program_is_recompressed(self):
        program = assemble(
            library.MARCH_C, CAPS, compress=False, verify=False
        )
        result = apply_fixes(program, CAPS)
        assert any("MC012" in fix for fix in result.applied)
        assert any(
            row.cond is ConditionOp.REPEAT
            for row in result.program.instructions
        )
        assert result.program.name == program.name
        assert result.program.source is program.source
        assert not verify_program(result.program, CAPS).by_rule("MC012")

    def test_without_capabilities_recompression_is_skipped(self):
        program = assemble(
            library.MARCH_C, CAPS, compress=False, verify=False
        )
        result = apply_fixes(program, capabilities=None)
        assert not any("MC012" in fix for fix in result.applied)


class TestNoOp:
    def test_clean_program_is_returned_unchanged(self):
        program = assemble(library.MARCH_C, CAPS, verify=False)
        result = apply_fixes(program, CAPS)
        assert not result.changed
        assert result.program is program

    def test_fixed_programs_still_run(self):
        from repro.core.microcode import MicrocodeBistController

        program = program_of(op_row(), op_row())
        fixed = apply_fixes(program, CAPS).program
        controller = MicrocodeBistController(fixed, CAPS)
        assert sum(1 for _ in controller.trace()) > 0
