"""Model-based testing of the SRAM: random access sequences against a
plain dictionary reference model.

A fault-free :class:`repro.memory.sram.Sram` must behave exactly like a
dict of words, for any interleaving of reads, writes and pauses across
ports — and after detaching faults it must return to that behaviour.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.faults import StuckAtFault
from repro.memory import Sram

N_WORDS = 8
WIDTH = 4
PORTS = 2

operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "elapse"]),
        st.integers(0, PORTS - 1),
        st.integers(0, N_WORDS - 1),
        st.integers(0, (1 << WIDTH) - 1),
    ),
    max_size=60,
)


@settings(deadline=None, max_examples=150)
@given(operations)
def test_fault_free_sram_matches_dict_model(sequence):
    memory = Sram(N_WORDS, width=WIDTH, ports=PORTS)
    model = {address: 0 for address in range(N_WORDS)}
    for kind, port, address, value in sequence:
        if kind == "write":
            memory.write(port, address, value)
            model[address] = value
        elif kind == "read":
            assert memory.read(port, address) == model[address]
        else:
            memory.elapse(value + 1)
    assert list(memory.snapshot()) == [model[a] for a in range(N_WORDS)]


@settings(deadline=None, max_examples=80)
@given(operations)
def test_detach_all_restores_dict_behaviour(sequence):
    memory = Sram(N_WORDS, width=WIDTH, ports=PORTS)
    memory.attach(StuckAtFault(3, 1, 1))
    # Arbitrary faulty activity...
    for kind, port, address, value in sequence[:20]:
        if kind == "write":
            memory.write(port, address, value)
        elif kind == "read":
            memory.read(port, address)
    # ...then the part is 'repaired' and must behave like the model.
    memory.detach_all()
    memory.reset_state()
    model = {address: 0 for address in range(N_WORDS)}
    for kind, port, address, value in sequence:
        if kind == "write":
            memory.write(port, address, value)
            model[address] = value
        elif kind == "read":
            assert memory.read(port, address) == model[address]


@settings(deadline=None, max_examples=80)
@given(operations, st.integers(0, N_WORDS - 1), st.integers(0, WIDTH - 1),
       st.integers(0, 1))
def test_stuck_bit_is_the_only_deviation(sequence, word, bit, value):
    """With one SAF attached, behaviour equals the dict model with that
    single bit forced — everywhere, always."""
    memory = Sram(N_WORDS, width=WIDTH, ports=PORTS)
    memory.attach(StuckAtFault(word, bit, value))

    def force(model_value, address):
        if address != word:
            return model_value
        if value:
            return model_value | (1 << bit)
        return model_value & ~(1 << bit)

    model = {address: force(0, address) for address in range(N_WORDS)}
    for kind, port, address, data in sequence:
        if kind == "write":
            memory.write(port, address, data)
            model[address] = force(data, address)
        elif kind == "read":
            assert memory.read(port, address) == model[address]
