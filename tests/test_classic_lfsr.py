"""Maximal-length guarantees of the LFSR tap table.

The table in ``repro.classic.pseudorandom`` is a correctness contract:
every entry must produce a maximal-period (2^w - 1 state) Galois LFSR,
because the pseudorandom generator's address/data quality and the
pseudo-ring scheme's circulation both lean on it.  Small widths are
walked exhaustively; wide entries are verified algebraically via the
order of the GF(2) step map (binary exponentiation of the update
matrix), which is exact and fast where walking 2^24 states is not.
"""

import pytest

from repro.classic.pseudorandom import (
    _TAPS,
    MAX_LFSR_WIDTH,
    Lfsr,
    lfsr_taps,
)

# -- GF(2) linear-map machinery (columns as bitmasks) ---------------------


def _step_map(width, taps):
    """The one-step Galois update as a list of column bitmasks."""
    columns = []
    for bit in range(width):
        state = 1 << bit
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= taps
        columns.append(state)
    return columns


def _compose(outer, inner):
    out = []
    for column in inner:
        acc = 0
        bit = 0
        while column:
            if column & 1:
                acc ^= outer[bit]
            column >>= 1
            bit += 1
        out.append(acc)
    return out


def _map_pow(matrix, exponent, width):
    result = [1 << bit for bit in range(width)]  # identity
    base = matrix
    while exponent:
        if exponent & 1:
            result = _compose(base, result)
        base = _compose(base, base)
        exponent >>= 1
    return result


def _prime_factors(number):
    factors = set()
    candidate = 2
    while candidate * candidate <= number:
        while number % candidate == 0:
            factors.add(candidate)
            number //= candidate
        candidate += 1
    if number > 1:
        factors.add(number)
    return factors


def _is_maximal(width, taps):
    """True iff the step map's multiplicative order is 2^width - 1."""
    identity = [1 << bit for bit in range(width)]
    matrix = _step_map(width, taps)
    period = (1 << width) - 1
    if _map_pow(matrix, period, width) != identity:
        return False
    return all(
        _map_pow(matrix, period // q, width) != identity
        for q in _prime_factors(period)
    )


# -- the table itself -----------------------------------------------------


class TestTapTable:
    def test_covers_every_width_through_24(self):
        assert sorted(_TAPS) == list(range(1, 25))
        assert MAX_LFSR_WIDTH == 24

    @pytest.mark.parametrize("width", sorted(w for w in _TAPS if w <= 12))
    def test_small_widths_walk_full_period(self, width):
        lfsr = Lfsr(width, seed=1)
        seen = {1}
        for _ in range((1 << width) - 2):
            lfsr.step()
            seen.add(lfsr.state)
        assert len(seen) == (1 << width) - 1
        lfsr.step()
        assert lfsr.state == 1  # and the cycle closes

    @pytest.mark.parametrize("width", (13, 14, 15))
    def test_gap_widths_walk_full_period(self, width):
        """Widths 13-15 were missing from the original table; the fix
        is only a fix if their masks really are maximal."""
        lfsr = Lfsr(width, seed=1)
        period = 0
        while True:
            lfsr.step()
            period += 1
            if lfsr.state == 1:
                break
        assert period == (1 << width) - 1

    @pytest.mark.parametrize("width", sorted(w for w in _TAPS if w > 12))
    def test_wide_widths_maximal_by_map_order(self, width):
        assert _is_maximal(width, _TAPS[width])

    def test_map_order_check_rejects_a_bad_mask(self):
        # Sanity-check the checker: x^4 + x^2 + 1 factors, so taps
        # 0b0101 at width 4 is not maximal (period 6, not 15).
        assert not _is_maximal(4, 0b0101)
        assert _is_maximal(4, _TAPS[4])


class TestLfsrTapsApi:
    def test_returns_table_entry(self):
        for width, taps in _TAPS.items():
            assert lfsr_taps(width) == taps

    @pytest.mark.parametrize("width", (0, -3))
    def test_rejects_nonpositive_width(self, width):
        with pytest.raises(ValueError):
            lfsr_taps(width)

    def test_rejects_width_beyond_table_with_guidance(self):
        with pytest.raises(ValueError, match="extend _TAPS"):
            lfsr_taps(MAX_LFSR_WIDTH + 1)

    def test_lfsr_constructor_uses_table(self):
        assert Lfsr(13, seed=1).taps == _TAPS[13]
        with pytest.raises(ValueError):
            Lfsr(25, seed=1)
