"""Unit tests for address-decoder faults, the injector and universes."""

import pytest

from repro.faults.address_decoder import (
    AddressMapsNowhere,
    AddressMapsToMultiple,
    AddressMapsToWrongCell,
    TwoAddressesOneCell,
)
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.faults.universe import (
    address_fault_universe,
    coupling_universe,
    retention_universe,
    standard_universe,
    stuck_at_universe,
    stuck_open_universe,
    transition_universe,
)
from repro.memory.sram import Sram


class TestAddressFaults:
    def test_af1_write_lost(self):
        memory = Sram(8)
        memory.attach(AddressMapsNowhere(3))
        memory.write(0, 3, 1)
        assert memory.read(0, 3) == 0  # floating read

    def test_af1_remove_restores(self):
        memory = Sram(8)
        fault = AddressMapsNowhere(3)
        memory.attach(fault)
        memory.detach_all()
        memory.write(0, 3, 1)
        assert memory.read(0, 3) == 1

    def test_af2_accesses_wrong_cell(self):
        memory = Sram(8)
        memory.attach(AddressMapsToWrongCell(3, 5))
        memory.write(0, 3, 1)
        assert memory.peek(5) == 1
        assert memory.peek(3) == 0

    def test_af2_same_cell_rejected(self):
        with pytest.raises(ValueError):
            AddressMapsToWrongCell(3, 3)

    def test_af3_aliasing(self):
        memory = Sram(8)
        memory.attach(TwoAddressesOneCell(2, 6))
        memory.write(0, 6, 1)  # lands in cell 2
        assert memory.read(0, 2) == 1

    def test_af3_distinct_addresses_required(self):
        with pytest.raises(ValueError):
            TwoAddressesOneCell(2, 2)

    def test_af4_writes_both_cells(self):
        memory = Sram(8)
        memory.attach(AddressMapsToMultiple(2, 6))
        memory.write(0, 2, 1)
        assert memory.peek(2) == 1 and memory.peek(6) == 1

    def test_af4_read_wired_and(self):
        memory = Sram(8)
        memory.attach(AddressMapsToMultiple(2, 6))
        memory.poke(2, 1)
        memory.poke(6, 0)
        assert memory.read(0, 2) == 0


class TestInjector:
    def test_injected_context_attaches_and_removes(self):
        memory = Sram(8)
        injector = FaultInjector(memory)
        fault = StuckAtFault(1, 0, 1)
        with injector.injected(fault) as faulty:
            assert faulty.faults == [fault]
        assert memory.faults == []

    def test_state_reset_between_injections(self):
        memory = Sram(8)
        injector = FaultInjector(memory)
        with injector.injected(StuckAtFault(1, 0, 1)):
            pass
        with injector.injected(StuckAtFault(2, 0, 1)) as faulty:
            assert faulty.peek(1) == 0  # previous stuck level cleared

    def test_removal_on_exception(self):
        memory = Sram(8)
        injector = FaultInjector(memory)
        with pytest.raises(RuntimeError):
            with injector.injected(StuckAtFault(1, 0, 1)):
                raise RuntimeError("boom")
        assert memory.faults == []

    def test_pristine(self):
        memory = Sram(8)
        memory.attach(StuckAtFault(0, 0, 1))
        injector = FaultInjector(memory)
        pristine = injector.pristine()
        assert pristine.faults == []
        assert pristine.peek(0) == 0


class TestUniverses:
    def test_stuck_at_universe_size(self):
        assert len(stuck_at_universe(8, 1)) == 16
        assert len(stuck_at_universe(4, 2)) == 16

    def test_transition_universe_size(self):
        assert len(transition_universe(8)) == 16

    def test_stuck_open_universe_size(self):
        assert len(stuck_open_universe(8)) == 16

    def test_retention_universe_size(self):
        assert len(retention_universe(8)) == 16

    def test_address_universe_has_four_classes(self):
        faults = address_fault_universe(8)
        kinds = {f.kind for f in faults}
        assert kinds == {"AF1", "AF2", "AF3", "AF4"}
        assert len(faults) == 32

    def test_coupling_universe_neighbour_local(self):
        faults = coupling_universe(16, 1)
        kinds = {f.kind for f in faults}
        assert kinds == {"CFin", "CFid", "CFst"}

    def test_standard_universe_composition(self):
        universe = standard_universe(8, 1)
        kinds = set(universe.kinds())
        assert {"SAF", "TF", "CFin", "CFid", "CFst", "AF1", "DRF", "SOF"} <= kinds

    def test_standard_universe_without_npsf(self):
        universe = standard_universe(8, 1, include_npsf=False)
        assert not any(k.endswith("NPSF") for k in universe.kinds())

    def test_by_kind_partitions(self):
        universe = standard_universe(4, 1)
        groups = universe.by_kind()
        assert sum(len(g) for g in groups.values()) == len(universe)

    def test_single_word_universe_skips_pairs(self):
        faults = address_fault_universe(1)
        assert faults == []
