"""Fault-coverage tests: the classical march coverage theory, measured.

These are the library's deepest semantic checks: each march algorithm
must detect exactly the fault classes the literature proves it detects.
"""

import pytest

from repro.faults.universe import (
    FaultUniverse,
    address_fault_universe,
    coupling_universe,
    retention_universe,
    standard_universe,
    stuck_at_universe,
    stuck_open_universe,
    transition_universe,
)
from repro.march import library
from repro.march.coverage import evaluate_coverage

N_WORDS = 8


def _universe(name, faults):
    universe = FaultUniverse(name)
    universe.extend(faults)
    return universe


def coverage_of(test, faults, name="u"):
    report = evaluate_coverage(test, _universe(name, faults), N_WORDS)
    return report.overall


class TestStuckAtCoverage:
    def test_march_c_detects_all_safs(self):
        assert coverage_of(library.MARCH_C, stuck_at_universe(N_WORDS)) == 1.0

    def test_mats_detects_all_safs(self):
        assert coverage_of(library.MATS, stuck_at_universe(N_WORDS)) == 1.0

    def test_zero_one_detects_all_safs(self):
        assert coverage_of(library.ZERO_ONE, stuck_at_universe(N_WORDS)) == 1.0


class TestTransitionCoverage:
    def test_march_c_detects_all_tfs(self):
        assert coverage_of(library.MARCH_C, transition_universe(N_WORDS)) == 1.0

    def test_march_y_detects_all_tfs(self):
        assert coverage_of(library.MARCH_Y, transition_universe(N_WORDS)) == 1.0

    def test_mats_misses_some_tfs(self):
        """MATS has no read-after-down-transition; TF coverage < 100 %."""
        assert coverage_of(library.MATS, transition_universe(N_WORDS)) < 1.0

    def test_zero_one_misses_tfs(self):
        assert coverage_of(library.ZERO_ONE, transition_universe(N_WORDS)) < 1.0


class TestCouplingCoverage:
    def test_march_c_detects_all_unlinked_cfs(self):
        assert coverage_of(library.MARCH_C, coupling_universe(N_WORDS)) == 1.0

    def test_march_c_orig_detects_all_unlinked_cfs(self):
        assert coverage_of(library.MARCH_C_ORIG, coupling_universe(N_WORDS)) == 1.0

    def test_mats_plus_misses_couplings(self):
        assert coverage_of(library.MATS_PLUS, coupling_universe(N_WORDS)) < 1.0

    def test_march_x_detects_inversion_couplings(self):
        inversions = [f for f in coupling_universe(N_WORDS) if f.kind == "CFin"]
        assert coverage_of(library.MARCH_X, inversions) == 1.0


class TestAddressDecoderCoverage:
    @pytest.mark.parametrize(
        "test",
        [library.MATS_PLUS, library.MARCH_C, library.MARCH_A, library.MARCH_Y],
        ids=lambda t: t.name,
    )
    def test_march_tests_detect_all_afs(self, test):
        assert coverage_of(test, address_fault_universe(N_WORDS)) == 1.0

    def test_zero_one_misses_afs(self):
        """Zero-One lacks the up/down read-write structure AF detection
        needs (classic result)."""
        assert coverage_of(library.ZERO_ONE, address_fault_universe(N_WORDS)) < 1.0


class TestRetentionCoverage:
    def test_plain_march_c_misses_all_drfs(self):
        assert coverage_of(library.MARCH_C, retention_universe(N_WORDS)) == 0.0

    def test_march_c_plus_detects_all_drfs(self):
        assert coverage_of(library.MARCH_C_PLUS, retention_universe(N_WORDS)) == 1.0

    def test_march_a_plus_detects_all_drfs(self):
        assert coverage_of(library.MARCH_A_PLUS, retention_universe(N_WORDS)) == 1.0


class TestStuckOpenCoverage:
    def test_plain_march_c_misses_all_sofs(self):
        assert coverage_of(library.MARCH_C, stuck_open_universe(N_WORDS)) == 0.0

    def test_march_c_plus_plus_detects_all_sofs(self):
        assert (
            coverage_of(library.MARCH_C_PLUS_PLUS, stuck_open_universe(N_WORDS))
            == 1.0
        )

    def test_march_a_plus_plus_detects_all_sofs(self):
        assert (
            coverage_of(library.MARCH_A_PLUS_PLUS, stuck_open_universe(N_WORDS))
            == 1.0
        )


class TestEnhancementMonotonicity:
    """The paper's premise: enhanced algorithms strictly widen coverage."""

    def test_c_family_monotone(self):
        universe = standard_universe(N_WORDS)
        plain = evaluate_coverage(library.MARCH_C, universe, N_WORDS).overall
        plus = evaluate_coverage(library.MARCH_C_PLUS, universe, N_WORDS).overall
        plusplus = evaluate_coverage(
            library.MARCH_C_PLUS_PLUS, universe, N_WORDS
        ).overall
        assert plain < plus < plusplus

    def test_a_family_monotone(self):
        universe = standard_universe(N_WORDS)
        plain = evaluate_coverage(library.MARCH_A, universe, N_WORDS).overall
        plus = evaluate_coverage(library.MARCH_A_PLUS, universe, N_WORDS).overall
        plusplus = evaluate_coverage(
            library.MARCH_A_PLUS_PLUS, universe, N_WORDS
        ).overall
        assert plain < plus < plusplus


class TestReportShape:
    def test_report_totals_consistent(self):
        universe = standard_universe(4)
        report = evaluate_coverage(library.MARCH_C, universe, 4)
        assert report.total_count == len(universe)
        assert report.detected_count + len(report.escapes) == report.total_count

    def test_rows_percentages(self):
        universe = standard_universe(4)
        report = evaluate_coverage(library.MARCH_C, universe, 4)
        for kind, detected, total, percent in report.as_rows():
            assert 0 <= detected <= total
            assert abs(percent - 100.0 * detected / total) < 1e-9

    def test_str_mentions_test_name(self):
        universe = standard_universe(4)
        report = evaluate_coverage(library.MARCH_C, universe, 4)
        assert "March C" in str(report)
