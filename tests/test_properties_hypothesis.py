"""Property-based tests (hypothesis) on the library's core invariants.

The central property: for ANY march test and ANY memory geometry, all
three controller architectures issue exactly the golden operation stream
(microcode and hardwired always; programmable-FSM whenever the test is
SM-composable).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp, INSTRUCTION_BITS
from repro.core.progfsm import ProgrammableFsmBistController
from repro.core.progfsm.compiler import CompileError
from repro.core.progfsm.instruction import FsmInstruction
from repro.area.logic_min import minimize_sop
from repro.march.backgrounds import apply_polarity, data_backgrounds
from repro.march.element import AddressOrder, MarchElement, OpKind, Operation, Pause
from repro.march.notation import format_test, parse_test
from repro.march.properties import symmetric_split
from repro.march.simulator import expand
from repro.march.test import MarchTest

# ---------------------------------------------------------------------------
# Strategies.
# ---------------------------------------------------------------------------

operations = st.builds(
    Operation,
    st.sampled_from([OpKind.READ, OpKind.WRITE]),
    st.integers(min_value=0, max_value=1),
)

orders = st.sampled_from(list(AddressOrder))

elements = st.builds(
    MarchElement,
    orders,
    st.lists(operations, min_size=1, max_size=5),
)

pauses = st.builds(Pause, st.sampled_from([256, 512, 1024]))

march_tests = st.builds(
    MarchTest,
    st.just("generated"),
    st.lists(st.one_of(elements, elements, elements, pauses), min_size=1,
             max_size=7),
)

geometries = st.tuples(
    st.integers(min_value=1, max_value=6),     # n_words
    st.sampled_from([1, 2, 4]),                # width
    st.integers(min_value=1, max_value=2),     # ports
)

# ---------------------------------------------------------------------------
# Notation round-trip.
# ---------------------------------------------------------------------------


@given(march_tests)
def test_notation_round_trip(test):
    assert parse_test(format_test(test)).items == test.items


# ---------------------------------------------------------------------------
# Controller equivalence (the keystone property).
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.too_slow])
@given(march_tests, geometries)
def test_microcode_matches_golden(test, geometry):
    n_words, width, ports = geometry
    caps = ControllerCapabilities(n_words=n_words, width=width, ports=ports)
    controller = MicrocodeBistController(test, caps)
    assert list(controller.operations()) == list(
        expand(test, n_words, width=width, ports=ports)
    )


@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.too_slow])
@given(march_tests, geometries)
def test_microcode_uncompressed_matches_golden(test, geometry):
    n_words, width, ports = geometry
    caps = ControllerCapabilities(n_words=n_words, width=width, ports=ports)
    controller = MicrocodeBistController(test, caps, compress=False)
    assert list(controller.operations()) == list(
        expand(test, n_words, width=width, ports=ports)
    )


@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.too_slow])
@given(march_tests, geometries)
def test_hardwired_matches_golden(test, geometry):
    n_words, width, ports = geometry
    caps = ControllerCapabilities(n_words=n_words, width=width, ports=ports)
    controller = HardwiredBistController(test, caps)
    assert list(controller.operations()) == list(
        expand(test, n_words, width=width, ports=ports)
    )


@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.too_slow])
@given(march_tests, geometries)
def test_progfsm_matches_golden_when_compilable(test, geometry):
    n_words, width, ports = geometry
    caps = ControllerCapabilities(n_words=n_words, width=width, ports=ports)
    try:
        controller = ProgrammableFsmBistController(test, caps, buffer_rows=16)
    except CompileError:
        return  # outside the SM library: the documented boundary
    assert list(controller.operations()) == list(
        expand(test, n_words, width=width, ports=ports)
    )


# ---------------------------------------------------------------------------
# Symmetric split soundness.
# ---------------------------------------------------------------------------


@given(march_tests)
def test_symmetric_split_reconstructs(test):
    split = symmetric_split(test)
    if split is None:
        return
    rebuilt = (
        list(split.prefix)
        + list(split.body)
        + [split.aux.apply(e) for e in split.body]
    )
    originals = list(test.elements)[: len(rebuilt)]
    assert len(rebuilt) == len(originals)
    for got, want in zip(rebuilt, originals):
        assert got.ops == want.ops
        assert got.order.resolve() is want.order.resolve()


# ---------------------------------------------------------------------------
# Encodings.
# ---------------------------------------------------------------------------

micro_instructions = st.one_of(
    st.builds(
        MicroInstruction,
        addr_inc=st.booleans(),
        addr_down=st.booleans(),
        data_inc=st.booleans(),
        data_inv=st.booleans(),
        compare=st.booleans(),
        read_en=st.booleans(),
        write_en=st.just(False),
        cond=st.sampled_from([ConditionOp.NOP, ConditionOp.LOOP]),
    ),
    st.builds(
        MicroInstruction,
        cond=st.just(ConditionOp.HOLD),
        hold_exponent=st.integers(min_value=0, max_value=127),
    ),
)


@given(micro_instructions)
def test_micro_instruction_roundtrip(instr):
    word = instr.encode()
    assert 0 <= word < (1 << INSTRUCTION_BITS)
    assert MicroInstruction.decode(word) == instr


@given(st.integers(min_value=0, max_value=255))
def test_fsm_instruction_roundtrip(word):
    assert FsmInstruction.decode(word).encode() == word


# ---------------------------------------------------------------------------
# Backgrounds.
# ---------------------------------------------------------------------------


@given(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
def test_background_count_property(width):
    patterns = data_backgrounds(width)
    assert len(patterns) == width.bit_length()
    assert len(set(patterns)) == len(patterns)
    for pattern in patterns:
        assert 0 <= pattern < (1 << width)


@given(st.sampled_from([1, 2, 4, 8, 16]), st.integers(0, 1))
def test_apply_polarity_involution(width, polarity):
    for pattern in data_backgrounds(width):
        once = apply_polarity(pattern, polarity, width)
        assert apply_polarity(once, polarity, width) == (
            pattern if polarity == 0 else pattern
        ) or polarity == 0
        # complementing twice restores:
        assert apply_polarity(apply_polarity(pattern, 1, width), 1, width) == pattern


# ---------------------------------------------------------------------------
# Logic minimisation equivalence.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=40)
@given(
    st.integers(min_value=1, max_value=6),
    st.data(),
)
def test_minimize_sop_equivalence(n_vars, data):
    space = 1 << n_vars
    ones = data.draw(
        st.lists(st.integers(0, space - 1), unique=True, max_size=space)
    )
    remaining = [m for m in range(space) if m not in set(ones)]
    dont_cares = data.draw(
        st.lists(st.sampled_from(remaining), unique=True, max_size=len(remaining))
        if remaining
        else st.just([])
    )
    cover = minimize_sop(n_vars, ones, dont_cares)
    dc = set(dont_cares)
    for minterm in range(space):
        covered = any(
            (minterm & care) == (value & care) for value, care in cover
        )
        if minterm in set(ones):
            assert covered
        elif minterm not in dc:
            assert not covered


# ---------------------------------------------------------------------------
# Golden stream invariants.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=50)
@given(march_tests, geometries)
def test_expand_stream_wellformed(test, geometry):
    n_words, width, ports = geometry
    mask = (1 << width) - 1
    backgrounds = len(data_backgrounds(width))
    ops = list(expand(test, n_words, width=width, ports=ports))
    expected_count = ports * backgrounds * (
        test.operation_count * n_words + len(test.pauses)
    )
    assert len(ops) == expected_count
    for op in ops:
        assert 0 <= op.port < ports
        assert 0 <= op.address < n_words
        if op.is_write:
            assert 0 <= op.value <= mask
        elif op.is_read:
            assert 0 <= op.expected <= mask


# ---------------------------------------------------------------------------
# Field-programming round-trips.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=40)
@given(march_tests)
def test_assemble_decompile_roundtrip(test):
    """decompile(assemble(t)) expands to t's exact stream."""
    from repro.core.microcode.assembler import AssemblyError, assemble
    from repro.core.microcode.decompiler import decompile

    caps = ControllerCapabilities(n_words=4)
    try:
        program = assemble(test, caps)
    except AssemblyError:
        return  # non-power-of-two pause durations are rejected by design
    recovered = decompile(program.instructions)
    assert list(expand(recovered, 4)) == list(expand(test, 4))


@settings(deadline=None, max_examples=40)
@given(march_tests)
def test_dump_load_program_roundtrip(test):
    from repro.core.microcode.assembler import AssemblyError, assemble
    from repro.core.programming import dump_program, load_program

    caps = ControllerCapabilities(n_words=4, width=2, ports=2)
    try:
        program = assemble(test, caps)
    except AssemblyError:
        return
    loaded = load_program(dump_program(program))
    assert [i.encode() for i in loaded.instructions] == [
        i.encode() for i in program.instructions
    ]


@settings(deadline=None, max_examples=30)
@given(march_tests)
def test_storage_scan_roundtrip(test):
    from repro.core.microcode.assembler import AssemblyError, assemble
    from repro.core.microcode.storage import StorageUnit

    caps = ControllerCapabilities(n_words=4)
    try:
        program = assemble(test, caps)
    except AssemblyError:
        return
    storage = StorageUnit(rows=max(2, len(program.instructions)))
    storage.load(program.instructions)
    image = storage.scan_dump()
    other = StorageUnit(rows=storage.rows)
    other.scan_load(image)
    assert other.scan_dump() == image


# ---------------------------------------------------------------------------
# Concurrent expansion and in-field session invariants.
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=50,
          suppress_health_check=[HealthCheck.too_slow])
@given(march_tests, st.integers(min_value=1, max_value=6),
       st.sampled_from([1, 2, 4]))
def test_concurrent_single_port_equals_sequential(test, n_words, width):
    """With one port there is no companion: the concurrent cycle stream
    degenerates op-for-op to the sequential golden expansion."""
    from repro.march.concurrent import expand_concurrent

    cycles = list(expand_concurrent(test, n_words, width=width, ports=1))
    sequential = list(expand(test, n_words, width=width, ports=1))
    assert [cycle.ops for cycle in cycles] == [(op,) for op in sequential]


@settings(deadline=None, max_examples=50,
          suppress_health_check=[HealthCheck.too_slow])
@given(march_tests, geometries)
def test_concurrent_base_ops_are_the_sequential_stream(test, geometry):
    """The base-port operation of concurrent cycle *i* is exactly
    operation *i* of the sequential stream, on any geometry."""
    from repro.march.concurrent import cycle_count, expand_concurrent

    n_words, width, ports = geometry
    cycles = list(
        expand_concurrent(test, n_words, width=width, ports=ports)
    )
    sequential = list(expand(test, n_words, width=width, ports=ports))
    assert len(cycles) == len(sequential)
    assert len(cycles) == cycle_count(test, n_words, width, ports)
    for cycle, golden in zip(cycles, sequential):
        base_ops = [op for op in cycle if op.port == golden.port]
        assert base_ops == [golden]


@settings(deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=2**32), geometries)
def test_infield_session_preserves_arbitrary_user_data(seed, geometry):
    """Identity (h), property form: on ANY geometry and ANY session
    seed (i.e. arbitrary seeded user data and traffic), the fault-free
    in-field session raises no events and every checkpoint finds the
    user's data bit-identical to the traffic-only shadow."""
    from repro.conformance.infield import (
        build_infield_plan,
        run_infield_session,
    )
    from repro.memory.sram import Sram

    n_words, width, ports = geometry
    caps = ControllerCapabilities(n_words=n_words, width=width, ports=ports)
    plan = build_infield_plan(caps, seed=seed)
    result = run_infield_session(
        plan, Sram(n_words, width=width, ports=ports)
    )
    assert result.events == []
    assert result.user_data_preserved
