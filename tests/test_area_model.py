"""Unit tests for technology, components and the estimator."""

import pytest

from repro.area.components import (
    Comparator,
    Counter,
    Decoder,
    HardwareSpec,
    LogicBlock,
    Mux,
    Register,
    XorArray,
)
from repro.area.estimator import estimate
from repro.area.report import format_breakdown, format_comparison
from repro.area.technology import IBM_CMOS5S, Technology


class TestTechnology:
    def test_cell_ge_lookup(self):
        assert IBM_CMOS5S.cell_ge("dff") == IBM_CMOS5S.dff_ge
        assert IBM_CMOS5S.cell_ge("scan_dff") == IBM_CMOS5S.scan_dff_ge
        assert IBM_CMOS5S.cell_ge("scan_only") == IBM_CMOS5S.scan_only_cell_ge

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            IBM_CMOS5S.cell_ge("latch")

    def test_scan_only_in_paper_ratio(self):
        """Scan-only cells are 4-5x smaller than full scan registers."""
        ratio = IBM_CMOS5S.scan_dff_ge / IBM_CMOS5S.scan_only_cell_ge
        assert 4.0 <= ratio <= 5.0

    def test_to_um2(self):
        assert IBM_CMOS5S.to_um2(10) == 10 * IBM_CMOS5S.nand2_area_um2

    def test_with_scan_only_ratio(self):
        tech = IBM_CMOS5S.with_scan_only_ratio(6.0)
        assert tech.scan_only_cell_ge == pytest.approx(tech.scan_dff_ge / 6.0)
        assert IBM_CMOS5S.scan_only_cell_ge != tech.scan_only_cell_ge

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            IBM_CMOS5S.with_scan_only_ratio(0)


class TestComponents:
    def test_register_bits(self):
        register = Register("r", width=10, rows=4)
        assert register.bits == 40

    def test_register_cell_kind_changes_cost(self):
        scan = Register("r", 10, cell="scan_dff")
        scan_only = Register("r", 10, cell="scan_only")
        assert scan.gate_equivalents(IBM_CMOS5S) > (
            scan_only.gate_equivalents(IBM_CMOS5S)
        )

    def test_register_dimension_validation(self):
        with pytest.raises(ValueError):
            Register("r", 0)
        with pytest.raises(ValueError):
            Register("r", 4, rows=0)

    def test_counter_options_monotone(self):
        plain = Counter("c", 8)
        updown = Counter("c", 8, up_down=True)
        loadable = Counter("c", 8, up_down=True, loadable=True)
        assert (
            plain.gate_equivalents(IBM_CMOS5S)
            < updown.gate_equivalents(IBM_CMOS5S)
            < loadable.gate_equivalents(IBM_CMOS5S)
        )

    def test_counter_width_validation(self):
        with pytest.raises(ValueError):
            Counter("c", 0)

    def test_mux_cost_scales_with_ways_and_width(self):
        small = Mux("m", ways=2, width=4)
        wide = Mux("m", ways=2, width=8)
        deep = Mux("m", ways=4, width=4)
        assert small.gate_equivalents(IBM_CMOS5S) < wide.gate_equivalents(IBM_CMOS5S)
        assert small.gate_equivalents(IBM_CMOS5S) < deep.gate_equivalents(IBM_CMOS5S)

    def test_single_way_mux_free(self):
        assert Mux("m", ways=1, width=8).gate_equivalents(IBM_CMOS5S) == 0

    def test_xor_array(self):
        assert XorArray("x", 4).gate_equivalents(IBM_CMOS5S) == 4 * IBM_CMOS5S.xor2_ge

    def test_comparator_cost(self):
        comparator = Comparator("cmp", 8)
        expected = 8 * IBM_CMOS5S.xor2_ge + 7 * IBM_CMOS5S.nand2_ge
        assert comparator.gate_equivalents(IBM_CMOS5S) == expected

    def test_decoder_trivial_free(self):
        assert Decoder("d", 1).gate_equivalents(IBM_CMOS5S) == 0

    def test_decoder_grows_with_outputs(self):
        small = Decoder("d", 8)
        large = Decoder("d", 32)
        assert small.gate_equivalents(IBM_CMOS5S) < large.gate_equivalents(IBM_CMOS5S)

    def test_logic_block_fixed_cost(self):
        assert LogicBlock("l", 42.5).gate_equivalents(IBM_CMOS5S) == 42.5

    def test_logic_block_negative_rejected(self):
        with pytest.raises(ValueError):
            LogicBlock("l", -1)


class TestHardwareSpecAndEstimate:
    def _spec(self):
        spec = HardwareSpec("demo")
        spec.add(Register("reg", 8))
        spec.add(Counter("cnt", 4))
        return spec

    def test_total_ge_sums_components(self):
        spec = self._spec()
        total = spec.total_ge(IBM_CMOS5S)
        assert total == sum(ge for _, ge in spec.breakdown(IBM_CMOS5S))

    def test_estimate_report_fields(self):
        report = estimate(self._spec())
        assert report.name == "demo"
        assert report.technology == IBM_CMOS5S.name
        assert report.area_um2 == pytest.approx(
            report.gate_equivalents * IBM_CMOS5S.nand2_area_um2
        )

    def test_estimate_custom_technology(self):
        tech = Technology("toy", nand2_area_um2=1.0)
        report = estimate(self._spec(), tech)
        assert report.area_um2 == report.gate_equivalents

    def test_component_ge_prefix_sum(self):
        report = estimate(self._spec())
        assert report.component_ge("reg") > 0
        assert report.component_ge("nonexistent") == 0

    def test_format_breakdown_lists_components(self):
        text = format_breakdown(estimate(self._spec()))
        assert "reg" in text and "cnt" in text

    def test_format_comparison_alignment(self):
        reports = [estimate(self._spec()), estimate(self._spec())]
        text = format_comparison(reports)
        assert text.count("demo") == 2
