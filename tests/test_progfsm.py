"""Unit tests for the programmable FSM architecture: SM matching,
instruction format, compiler, circular buffer and lower FSM."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.progfsm.compiler import CompileError, compile_to_sm, is_realizable
from repro.core.progfsm.instruction import DataControl, FsmInstruction
from repro.core.progfsm.lower_fsm import (
    LowerFsm,
    LowerFsmState,
    lower_fsm_step,
    lower_fsm_truth_table,
)
from repro.core.progfsm.march_elements import (
    MAX_SM_OPS,
    SM_PATTERNS,
    match_element,
    realizable,
    sm_element,
)
from repro.core.progfsm.upper_buffer import CircularBuffer
from repro.march import library
from repro.march.element import AddressOrder, MarchElement, R0, R1, W0, W1
from repro.march.notation import parse_test

CAPS = ControllerCapabilities(n_words=8)
FULL_CAPS = ControllerCapabilities(n_words=8, width=8, ports=2)


class TestSmPatterns:
    def test_eight_patterns(self):
        assert len(SM_PATTERNS) == 8

    def test_max_four_ops(self):
        assert MAX_SM_OPS == 4

    def test_sm_element_round_trip_all(self):
        """Every (SM, D, C) realisation matches back to itself."""
        for sm in range(8):
            for data in (0, 1):
                for compare in (0, 1):
                    element = sm_element(sm, AddressOrder.UP, data, compare)
                    match = match_element(element)
                    assert match is not None
                    matched_sm, matched_d, matched_c = match
                    rebuilt = sm_element(
                        matched_sm, AddressOrder.UP, matched_d, matched_c
                    )
                    assert rebuilt.ops == element.ops

    def test_march_c_elements_all_match(self):
        for element in library.MARCH_C.elements:
            assert realizable(element), str(element)

    def test_march_a_elements_all_match(self):
        for element in library.MARCH_A.elements:
            assert realizable(element), str(element)

    def test_march_b_long_element_no_match(self):
        long_element = library.MARCH_B.elements[1]  # 6 operations
        assert match_element(long_element) is None

    def test_triple_read_write_mix_no_match(self):
        element = MarchElement(AddressOrder.UP, [R0, R0, R0, W1])
        assert match_element(element) is None

    def test_march_c_element_assignments(self):
        """March C maps to SM0, SM1 x4, SM5 (paper Section 2.2)."""
        matches = [match_element(e)[0] for e in library.MARCH_C.elements]
        assert matches == [0, 1, 1, 1, 1, 5]

    def test_march_a_element_assignments(self):
        matches = [match_element(e)[0] for e in library.MARCH_A.elements]
        assert matches == [0, 6, 3, 6, 3]

    def test_inconsistent_polarity_no_match(self):
        # (r0, w1, w1): rel pattern would need D=1 and D=0 simultaneously
        # for SM3 (r,w,w) = (rD, wD', wD).
        element = MarchElement(AddressOrder.UP, [R0, W1, W1])
        assert match_element(element) is None


class TestFsmInstruction:
    def test_element_encode_decode_roundtrip(self):
        instr = FsmInstruction(
            hold=True, addr_down=True, data_ctrl=DataControl.BASE1,
            compare=True, mode=7,
        )
        assert FsmInstruction.decode(instr.encode()) == instr

    def test_loop_rows_roundtrip(self):
        for ctrl in (DataControl.LOOP_BG, DataControl.LOOP_PORT):
            instr = FsmInstruction(data_ctrl=ctrl)
            assert FsmInstruction.decode(instr.encode()) == instr

    def test_all_words_roundtrip(self):
        for word in range(256):
            instr = FsmInstruction.decode(word)
            assert instr.encode() == word

    def test_mode_range_checked(self):
        with pytest.raises(ValueError):
            FsmInstruction(mode=8)

    def test_oversized_word_rejected(self):
        with pytest.raises(ValueError):
            FsmInstruction.decode(256)

    def test_base_data(self):
        assert FsmInstruction(data_ctrl=DataControl.BASE1).base_data == 1
        assert FsmInstruction(data_ctrl=DataControl.BASE0).base_data == 0

    def test_is_element(self):
        assert FsmInstruction(data_ctrl=DataControl.BASE0).is_element
        assert not FsmInstruction(data_ctrl=DataControl.LOOP_BG).is_element

    def test_str_forms(self):
        assert "SM1" in str(FsmInstruction(mode=1))
        assert "path A" in str(FsmInstruction(data_ctrl=DataControl.LOOP_BG))
        assert "path B" in str(FsmInstruction(data_ctrl=DataControl.LOOP_PORT))


class TestCompiler:
    def test_march_c_compiles_to_eight_rows_full_config(self):
        """Fig. 5's March C program: 6 element rows + 2 loop rows."""
        program = compile_to_sm(library.MARCH_C, FULL_CAPS)
        assert len(program) == 8

    def test_march_c_six_rows_bit_single_port(self):
        program = compile_to_sm(library.MARCH_C, CAPS)
        assert len(program) == 6

    def test_loop_rows_in_order(self):
        program = compile_to_sm(library.MARCH_C, FULL_CAPS)
        assert program.instructions[-2].data_ctrl is DataControl.LOOP_BG
        assert program.instructions[-1].data_ctrl is DataControl.LOOP_PORT

    def test_march_b_rejected(self):
        with pytest.raises(CompileError):
            compile_to_sm(library.MARCH_B, CAPS)

    def test_march_c_plus_plus_rejected(self):
        with pytest.raises(CompileError):
            compile_to_sm(library.MARCH_C_PLUS_PLUS, CAPS)

    def test_pause_sets_hold_on_following_element(self):
        program = compile_to_sm(library.MARCH_C_PLUS, CAPS)
        holds = [i for i in program.instructions if i.hold]
        assert len(holds) == 2
        assert program.pause_duration == library.RETENTION_PAUSE

    def test_trailing_pause_rejected(self):
        test = parse_test("~(w0); ~(r0); Del(512)")
        with pytest.raises(CompileError):
            compile_to_sm(test, CAPS)

    def test_mismatched_pause_durations_rejected(self):
        test = parse_test("~(w0); Del(512); ~(r0); Del(256); ~(r0)")
        with pytest.raises(CompileError):
            compile_to_sm(test, CAPS)

    def test_is_realizable(self):
        assert is_realizable(library.MARCH_C)
        assert is_realizable(library.MARCH_A_PLUS)
        assert not is_realizable(library.MARCH_B)
        assert not is_realizable(library.MARCH_A_PLUS_PLUS)


class TestCircularBuffer:
    def _program(self):
        return compile_to_sm(library.MARCH_C, CAPS).instructions

    def test_load_and_current(self):
        buffer = CircularBuffer(rows=8, default_program=self._program())
        assert buffer.current().mode == 0

    def test_advance_wraps_within_used_rows(self):
        program = self._program()
        buffer = CircularBuffer(rows=12, default_program=program)
        for _ in range(len(program)):
            buffer.advance()
        assert buffer.pointer == 0

    def test_wrap(self):
        buffer = CircularBuffer(rows=8, default_program=self._program())
        buffer.advance()
        buffer.wrap()
        assert buffer.pointer == 0

    def test_program_too_long_rejected(self):
        with pytest.raises(ValueError):
            CircularBuffer(rows=2, default_program=self._program())

    def test_initialize_default_restores(self):
        program = self._program()
        buffer = CircularBuffer(rows=8, default_program=program)
        buffer.load([FsmInstruction(mode=5)])
        buffer.initialize_default()
        assert buffer.used_rows == len(program)

    def test_hardware_uses_functional_rate_cells(self):
        buffer = CircularBuffer(rows=8)
        registers = [
            c for c in buffer.hardware() if c.name.endswith("circular buffer")
        ]
        assert registers[0].cell == "scan_dff"


class TestLowerFsm:
    def test_idle_waits_for_start(self):
        out = lower_fsm_step(LowerFsmState.IDLE, 0, False, start=False, hold=False)
        assert out.next_state is LowerFsmState.IDLE

    def test_idle_to_reset_on_start(self):
        out = lower_fsm_step(LowerFsmState.IDLE, 0, False, start=True, hold=False)
        assert out.next_state is LowerFsmState.RESET

    def test_reset_loads_sweep(self):
        out = lower_fsm_step(LowerFsmState.RESET, 0, False, True, False)
        assert out.addr_start and out.next_state is LowerFsmState.RW0

    def test_sm0_single_op_loops_until_last(self):
        out = lower_fsm_step(LowerFsmState.RW0, 0, last_address=False,
                             start=True, hold=False)
        assert out.write and out.addr_inc
        assert out.next_state is LowerFsmState.RW0

    def test_sm0_done_on_last_address(self):
        out = lower_fsm_step(LowerFsmState.RW0, 0, last_address=True,
                             start=True, hold=False)
        assert out.next_state is LowerFsmState.DONE

    def test_sm2_walks_four_states(self):
        state = LowerFsmState.RW0
        kinds = []
        for _ in range(4):
            out = lower_fsm_step(state, 2, last_address=True, start=True,
                                 hold=False)
            kinds.append((out.read, out.write, out.rel_polarity))
            state = out.next_state
        assert kinds == [
            (True, False, 0), (False, True, 1), (True, False, 1),
            (False, True, 0),
        ]
        assert state is LowerFsmState.DONE

    def test_done_holds_with_hold_input(self):
        out = lower_fsm_step(LowerFsmState.DONE, 0, False, False, hold=True)
        assert out.next_state is LowerFsmState.DONE and out.done

    def test_done_returns_to_idle(self):
        out = lower_fsm_step(LowerFsmState.DONE, 0, False, False, hold=False)
        assert out.next_state is LowerFsmState.IDLE

    def test_sequential_wrapper(self):
        fsm = LowerFsm()
        fsm.step(mode=0, last_address=False, start=True, hold=False)
        assert fsm.state is LowerFsmState.RESET
        fsm.reset()
        assert fsm.state is LowerFsmState.IDLE

    def test_truth_table_matches_function(self):
        table = lower_fsm_truth_table()
        covers = table.synthesize()
        for minterm in range(512):
            state_code = minterm & 0b111
            if state_code > int(LowerFsmState.DONE):
                continue
            out = lower_fsm_step(
                LowerFsmState(state_code),
                (minterm >> 3) & 0b111,
                bool(minterm >> 6 & 1),
                bool(minterm >> 7 & 1),
                bool(minterm >> 8 & 1),
            )
            expected = {
                "ns0": bool(int(out.next_state) & 1),
                "ns1": bool(int(out.next_state) & 2),
                "ns2": bool(int(out.next_state) & 4),
                "read": out.read,
                "write": out.write,
                "rel_polarity": bool(out.rel_polarity),
                "addr_start": out.addr_start,
                "addr_inc": out.addr_inc,
                "done": out.done,
            }
            for name, cover in covers.items():
                got = any(
                    (minterm & care) == (value & care) for value, care in cover
                )
                assert got == expected[name], (name, minterm)
