"""Edge-case tests for the microcode controller's control flow."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.controller import MicrocodeBistController
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.march.notation import parse_test
from repro.march.simulator import MemoryOperation

CAPS = ControllerCapabilities(n_words=4)


def program_of(*instructions, name="handwritten"):
    return MicrocodeProgram(
        name=name,
        instructions=list(instructions),
        source=parse_test("~(w0)", name=name),
    )


def run(program, caps=CAPS, **kwargs):
    controller = MicrocodeBistController(program, caps, **kwargs)
    return list(controller.operations())


class TestInstructionCounterExhaustion:
    def test_running_off_the_end_terminates(self):
        """The paper: test end 'by exhausting the allowed instruction
        addresses' — a program without TERMINATE simply ends."""
        program = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
        )
        ops = run(program)
        assert len(ops) == 4  # one write sweep, then IC runs off

    def test_empty_program_is_an_immediate_end(self):
        program = program_of(
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        assert run(program) == []


class TestSaveInstruction:
    def test_explicit_save_builds_a_loop(self):
        """SAVE marks the next row as a branch target; a LOOP row then
        sweeps the element between them."""
        program = program_of(
            MicroInstruction(cond=ConditionOp.SAVE),
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        ops = run(program)
        assert [op.address for op in ops] == [0, 1, 2, 3]
        assert all(op.is_write for op in ops)


class TestHoldInstruction:
    def test_standalone_hold_emits_delay(self):
        program = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.HOLD, hold_exponent=5),
            MicroInstruction(read_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        ops = run(program)
        delays = [op for op in ops if op.is_delay]
        assert len(delays) == 1
        assert delays[0].delay == 32

    def test_hold_restarts_the_next_element(self):
        """Reads after a pause start a fresh sweep at address 0."""
        program = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.HOLD, hold_exponent=3),
            MicroInstruction(read_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        reads = [op for op in run(program) if op.is_read]
        assert [op.address for op in reads] == [0, 1, 2, 3]


class TestRepeatEdgeCases:
    def test_repeat_without_aux_bits_reruns_body_verbatim(self):
        """An all-zero aux REPEAT just executes the body twice."""
        program = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(read_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.REPEAT),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        ops = run(program)
        reads = [op for op in ops if op.is_read]
        assert len(reads) == 8  # the read element ran twice
        assert [op.address for op in reads] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_repeat_order_complement_reverses_second_pass(self):
        program = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(read_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(addr_down=True, cond=ConditionOp.REPEAT),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        reads = [op for op in run(program) if op.is_read]
        assert [op.address for op in reads] == [0, 1, 2, 3, 3, 2, 1, 0]

    def test_repeat_compare_complement_flips_expectations(self):
        program = program_of(
            MicroInstruction(write_en=True, data_inv=True, addr_inc=True,
                             cond=ConditionOp.LOOP),  # w1 everywhere
            MicroInstruction(read_en=True, compare=True, addr_inc=True,
                             cond=ConditionOp.LOOP),  # r1
            MicroInstruction(compare=True, cond=ConditionOp.REPEAT),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        reads = [op for op in run(program) if op.is_read]
        assert [op.expected for op in reads[:4]] == [1, 1, 1, 1]
        assert [op.expected for op in reads[4:]] == [0, 0, 0, 0]


class TestSingleWordMemory:
    def test_every_loop_falls_through_immediately(self):
        caps = ControllerCapabilities(n_words=1)
        program = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(read_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        ops = run(program, caps=caps)
        assert [str(op) for op in ops] == ["p0 w@0=0", "p0 r@0?0"]


class TestStorageInteraction:
    def test_program_larger_than_explicit_storage_rejected(self):
        program = program_of(
            *[MicroInstruction(read_en=True) for _ in range(3)],
        )
        with pytest.raises(ValueError):
            MicrocodeBistController(program, CAPS, storage_rows=2)

    def test_unused_rows_execute_as_nops_until_exhaustion(self):
        """Falling into the zeroed tail of the storage does nothing and
        the test ends at the last row — matches the 'exhaust addresses'
        termination (operations() iterates program rows only)."""
        program = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(),  # explicit NOP, no memory op
        )
        ops = run(program)
        assert len(ops) == 4
