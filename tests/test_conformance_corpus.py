"""The checked-in golden-trace corpus, validated in-process.

``test_checked_in_corpus_is_green`` is the tier-1 equivalent of the CI
``repro conformance corpus-check`` gate: every golden and regression
trace under ``tests/corpus/`` must replay op-for-op.
"""

import json
import pathlib

import pytest

from repro.conformance import check_corpus, record_golden
from repro.conformance.corpus import (
    GOLDEN_GEOMETRIES,
    STREAM_GENERATORS,
    STREAM_GEOMETRIES,
    build_entry,
    build_stream_entry,
    check_entry,
    decode_op,
    encode_op,
    load_entry,
    promote_from_report,
    record_regression,
    record_streams,
    trace_digest,
    write_entry,
)
from repro.march import library
from repro.march.simulator import MemoryOperation

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


class TestOpEncoding:
    @pytest.mark.parametrize("op", [
        MemoryOperation(0, 3, True, value=2),
        MemoryOperation(1, 0, False, expected=1),
        MemoryOperation(2, 0, False, delay=512),
    ])
    def test_round_trip(self, op):
        decoded = decode_op(encode_op(op))
        assert encode_op(decoded) == encode_op(op)

    def test_digest_changes_with_content(self):
        a = trace_digest(["w 0 0 0"])
        b = trace_digest(["w 0 0 1"])
        assert a != b

    def test_bad_line_rejected(self):
        from repro.conformance.corpus import CorpusError

        with pytest.raises(CorpusError):
            decode_op("x 0 0 0")


class TestCheckedInCorpus:
    def test_corpus_exists_and_covers_grid(self):
        golden = list(CORPUS_DIR.glob("golden/*.json"))
        # full library x geometry grid
        assert len(golden) == len(library.ALGORITHMS) * len(
            GOLDEN_GEOMETRIES
        )
        assert list(CORPUS_DIR.glob("regressions/*.json"))

    def test_checked_in_corpus_is_green(self):
        report = check_corpus(CORPUS_DIR)
        assert report.checked > 0
        assert report.ok, report.format()

    def test_progfsm_listed_only_when_realizable(self):
        from repro.core.progfsm.compiler import is_realizable

        for path in CORPUS_DIR.glob("golden/*.json"):
            entry = load_entry(path)
            test = library.get(entry["name"])
            listed = "progfsm" in entry["architectures"]
            assert listed == is_realizable(test), entry["name"]


class TestCorpusChecker:
    def test_tampered_ops_detected(self, tmp_path):
        record_golden(tmp_path, geometries=[(2, 1, 1)],
                      algorithms=["MATS+"])
        path = next(tmp_path.glob("golden/*.json"))
        entry = json.loads(path.read_text())
        entry["ops"][0] = "w 0 0 1"  # flip the first write's value
        path.write_text(json.dumps(entry))
        result = check_entry(path)
        assert not result.ok
        # Both the hash and the fresh golden expansion disagree.
        assert any("hash" in p for p in result.problems)
        assert any("drifted" in p for p in result.problems)

    def test_rehashed_tamper_still_detected(self, tmp_path):
        """Fixing up the hash after an edit doesn't help — the fresh
        golden expansion still disagrees."""
        from repro.conformance.corpus import trace_digest as digest

        record_golden(tmp_path, geometries=[(2, 1, 1)],
                      algorithms=["MATS+"])
        path = next(tmp_path.glob("golden/*.json"))
        entry = json.loads(path.read_text())
        entry["ops"][0] = "w 0 0 1"
        entry["sha256"] = digest(entry["ops"])
        path.write_text(json.dumps(entry))
        result = check_entry(path)
        assert not result.ok
        assert any("drifted" in p for p in result.problems)

    def test_unreadable_entry_reported_not_raised(self, tmp_path):
        path = tmp_path / "golden" / "broken.json"
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        result = check_entry(path)
        assert not result.ok
        assert "unreadable" in result.problems[0]

    def test_empty_corpus_not_ok(self, tmp_path):
        report = check_corpus(tmp_path)
        assert report.checked == 0
        assert not report.ok

    def test_regression_entry_round_trips(self, tmp_path):
        path = record_regression(
            tmp_path, "~(w0); ^(r0)", (2, 1, 1), name="demo",
            provenance={"seed": 7},
        )
        entry = load_entry(path)
        assert entry["kind"] == "regression"
        assert entry["provenance"]["seed"] == 7
        assert check_entry(path).ok


class TestStreamCorpus:
    def test_checked_in_streams_cover_the_registry(self):
        streams = list(CORPUS_DIR.glob("streams/*.json"))
        assert len(streams) == len(STREAM_GENERATORS) * len(
            STREAM_GEOMETRIES
        )

    def test_record_streams_writes_checkable_entries(self, tmp_path):
        written = record_streams(
            tmp_path,
            geometries=[(4, 1, 1)],
            generators=["walking-ones", "transparent-mats+"],
        )
        assert len(written) == 2
        for path in written:
            result = check_entry(path)
            assert result.ok, result.problems

    def test_stream_drift_detected_even_when_rehashed(self, tmp_path):
        [path] = record_streams(
            tmp_path, geometries=[(4, 1, 1)], generators=["walking-zeros"]
        )
        entry = json.loads(path.read_text())
        tampered = "w 0 0 0" if entry["ops"][0] == "w 0 0 1" else "w 0 0 1"
        entry["ops"][0] = tampered
        entry["sha256"] = trace_digest(entry["ops"])
        path.write_text(json.dumps(entry))
        result = check_entry(path)
        assert not result.ok
        assert any("drifted" in p for p in result.problems)

    def test_unknown_generator_reported(self, tmp_path):
        entry = build_stream_entry("walking-ones", (4, 1, 1))
        entry["generator"] = entry["name"] = "nonesuch"
        path = tmp_path / "streams" / "nonesuch.json"
        path.parent.mkdir(parents=True)
        path = write_entry(path, entry)
        result = check_entry(path)
        assert not result.ok
        assert any("unknown stream generator" in p for p in result.problems)

    def test_transparent_entries_pin_read_verify_phases(self):
        entry = build_stream_entry("transparent-mats+", (4, 1, 1))
        lines = entry["ops"]
        # A transparent session both writes and verifies with expected
        # values derived from the preserved contents.
        assert any(line.startswith("w ") for line in lines)
        assert any(line.startswith("r ") for line in lines)


class TestFaultRegressionEntries:
    def test_fault_entry_round_trips_and_checks(self, tmp_path):
        path = record_regression(
            tmp_path, "^(r0)", (1, 1, 1), name="faulty-demo",
            fault="saf:0:0:1",
            provenance={"scenario": "seeded fail-log off-by-one"},
        )
        entry = load_entry(path)
        assert entry["fault"] == "saf:0:0:1"
        result = check_entry(path)
        assert result.ok, result.problems

    def test_invalid_fault_spec_rejected_at_record_time(self, tmp_path):
        from repro.faults.spec import FaultSpecError

        with pytest.raises(FaultSpecError):
            record_regression(
                tmp_path, "^(r0)", (1, 1, 1), name="bad",
                fault="saf:not-a-number",
            )

    def test_fault_divergence_flagged_on_replay(self, tmp_path, monkeypatch):
        """A checked-in faulty reproducer re-runs the differential: if
        the seeded response defect reappears, the corpus check fails."""
        import dataclasses

        from repro.conformance.faulty import capture_response
        from repro.conformance.faulty import check as faulty_check

        path = record_regression(
            tmp_path, "^(r0)", (1, 1, 1), name="faulty-demo",
            fault="saf:0:0:1",
        )
        assert check_entry(path).ok

        def shifted(stream, memory, max_ops=None):
            capture = capture_response(stream, memory, max_ops=max_ops)
            capture.events = [
                dataclasses.replace(event, op_index=event.op_index + 1)
                for event in capture.events
            ]
            return capture

        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "microcode", shifted
        )
        result = check_entry(path)
        assert not result.ok
        assert any(
            "fault-response regression under saf:0:0:1" in p
            for p in result.problems
        )


class TestPromoteFromReport:
    def test_prefers_shrunk_reproducer(self, tmp_path):
        report = {
            "seed": 3,
            "mismatches": [{
                "index": 12,
                "sample_seed": "3:12",
                "notation": "~(w0); ^(r0,w1); v(r1)",
                "geometry": [5, 2, 2],
                "compress": True,
                "mismatches": ["behavioural divergence: demo"],
                "shrunk": {
                    "notation": "~(w0)",
                    "geometry": [1, 1, 1],
                    "checks": 9,
                    "reduced": True,
                },
            }],
        }
        written = promote_from_report(tmp_path, report)
        assert len(written) == 1
        entry = load_entry(written[0])
        assert entry["notation"] == "~(w0)"
        assert entry["geometry"] == [1, 1, 1]
        assert entry["provenance"]["sample_seed"] == "3:12"
        assert entry["provenance"]["original_notation"] == (
            "~(w0); ^(r0,w1); v(r1)"
        )

    def test_prefers_faulty_reproducer_and_pins_the_fault(self, tmp_path):
        report = {
            "seed": 5,
            "mismatches": [{
                "index": 4,
                "sample_seed": "5:4",
                "notation": "~(w0); ^(r0,w1); v(r1)",
                "geometry": [5, 2, 2],
                "compress": True,
                "fault_spec": "tf:3:1:up",
                "mismatches": ["fault-response divergence under tf:3:1:up"],
                "shrunk": None,
                "shrunk_faulty": {
                    "notation": "^(r0)",
                    "geometry": [1, 1, 1],
                    "fault": "saf:0:0:1",
                    "checks": 17,
                    "reduced": True,
                },
            }],
        }
        written = promote_from_report(tmp_path, report)
        assert len(written) == 1
        entry = load_entry(written[0])
        assert entry["notation"] == "^(r0)"
        assert entry["geometry"] == [1, 1, 1]
        assert entry["fault"] == "saf:0:0:1"
        assert entry["provenance"]["original_fault"] == "tf:3:1:up"
        assert check_entry(written[0]).ok

    def test_falls_back_to_full_sample(self, tmp_path):
        report = {
            "seed": 0,
            "mismatches": [{
                "index": 1,
                "notation": "^(r0)",
                "geometry": [2, 1, 1],
                "mismatches": ["demo"],
                "shrunk": None,
            }],
        }
        written = promote_from_report(tmp_path, report)
        assert load_entry(written[0])["notation"] == "^(r0)"

    def test_clean_report_writes_nothing(self, tmp_path):
        assert promote_from_report(tmp_path, {"mismatches": []}) == []


class TestBuildEntry:
    def test_entry_is_self_consistent(self):
        entry = build_entry(library.get("MATS+"), (2, 1, 1))
        assert entry["sha256"] == trace_digest(entry["ops"])
        assert entry["architectures"] == [
            "microcode", "progfsm", "hardwired"
        ]

    def test_written_entry_ends_with_newline(self, tmp_path):
        entry = build_entry(library.get("MATS+"), (2, 1, 1))
        path = write_entry(tmp_path / "x.json", entry)
        assert path.read_text().endswith("\n")
