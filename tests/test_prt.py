"""Pseudo-ring testing: session, controller, and plumbing tests.

Mirrors ``test_classic_streams.py`` for the new family: an exact
expected stream for a tiny ring (any generator change is visible
op-for-op), seeded-defect detection pinned to exact fail-event keys,
plus the integration seams — conformance dispatch, fault sweeps on two
geometries, the coverage study, the area row, fuzz identity (j) and the
CLI subcommands.
"""

import pytest

from repro.cli import main
from repro.core.controller import ControllerCapabilities
from repro.faults import (
    DataRetentionFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
)
from repro.faults.coupling import InversionCouplingFault
from repro.march.simulator import run_on_memory
from repro.memory import Sram
from repro.prt import (
    PRT_RING_DOWN,
    PRT_RING_UP,
    PrtConfig,
    PrtController,
    PrtSession,
    ring_taps,
)


def _caps(n_words, width=1, ports=1):
    return ControllerCapabilities(n_words=n_words, width=width, ports=ports)


def _stream(ops):
    return [
        ("w", op.port, op.address, op.value) if op.is_write
        else ("r", op.port, op.address, op.expected)
        for op in ops
    ]


class TestPrtConfig:
    def test_rejects_zero_passes(self):
        with pytest.raises(ValueError, match="pass"):
            PrtConfig(passes=0)

    @pytest.mark.parametrize("seed", (0, 1 << 16, -5))
    def test_rejects_out_of_range_seed(self, seed):
        with pytest.raises(ValueError, match="seed"):
            PrtConfig(seed=seed)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            PrtConfig(order="sideways")

    def test_names_are_config_derived(self):
        session = PrtSession(PrtConfig(passes=3, seed=7, order="down"))
        assert session.name == "prt-down-p3-s7"
        assert session.notation == "PRT(passes=3,seed=7,order=down)"


class TestRingTaps:
    def test_table_lengths_use_verified_masks(self):
        from repro.classic.pseudorandom import _TAPS

        for n_words in (3, 4, 8, 24):
            mask = _TAPS[n_words]
            assert ring_taps(n_words) == tuple(
                b for b in range(n_words) if (mask >> b) & 1
            )

    def test_beyond_table_falls_back_to_two_tap_ring(self):
        assert ring_taps(30) == (0, 29)
        assert ring_taps(100) == (0, 99)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ring_taps(0)


class TestPrtSessionStream:
    def test_exact_stream_three_words_one_pass(self):
        session = PrtSession(PrtConfig(passes=1, seed=0x2D5C))
        assert _stream(session.operations(_caps(3))) == [
            ("w", 0, 0, 0), ("w", 0, 1, 1), ("w", 0, 2, 1),  # seed
            ("r", 0, 1, 1), ("r", 0, 2, 1),                  # taps {1,2}
            ("r", 0, 0, 0), ("w", 0, 0, 0),                  # shift pos 0
            ("r", 0, 1, 1), ("w", 0, 1, 0),                  # shift pos 1
            ("r", 0, 2, 1), ("w", 0, 2, 1),                  # shift pos 2
            ("r", 0, 0, 0), ("r", 0, 1, 0), ("r", 0, 2, 1),  # readout
        ]

    def test_deterministic_per_config(self):
        caps = _caps(5, width=2, ports=2)
        assert _stream(PRT_RING_UP.operations(caps)) == _stream(
            PRT_RING_UP.operations(caps)
        )

    def test_op_count_formula(self):
        for caps in (_caps(2), _caps(5), _caps(4, 2, 1), _caps(3, 2, 2)):
            ops = list(PRT_RING_UP.operations(caps))
            assert len(ops) == PRT_RING_UP.op_count(caps)
            taps = len(ring_taps(caps.n_words))
            assert PRT_RING_UP.op_count(caps) == caps.ports * (
                2 * caps.n_words
                + PRT_RING_UP.config.passes * (taps + 2 * caps.n_words)
            )

    def test_default_session_is_10n_plus_4t(self):
        caps = _caps(8)
        assert PRT_RING_UP.op_count(caps) == 10 * 8 + 4 * len(ring_taps(8))

    def test_reads_always_expect_shadow_value(self):
        shadow = {}
        checked = 0
        for op in PRT_RING_UP.operations(_caps(6, width=2)):
            if op.is_write:
                shadow[op.address] = op.value
            else:
                assert op.expected == shadow[op.address]
                checked += 1
        assert checked > 0

    def test_down_order_mirrors_addresses(self):
        n = 5
        up = PrtSession(PrtConfig(passes=2, seed=0x2D5C, order="up"))
        down = PrtSession(PrtConfig(passes=2, seed=0x2D5C, order="down"))
        for a, b in zip(up.operations(_caps(n)), down.operations(_caps(n))):
            assert b.address == n - 1 - a.address
            assert (a.is_write, a.value, a.expected) == (
                b.is_write, b.value, b.expected
            )

    def test_fault_free_run_passes_and_signatures_match(self):
        caps = _caps(7, width=2)
        memory = Sram(7, width=2)
        assert run_on_memory(PRT_RING_UP.operations(caps), memory).passed
        predicted, observed = PRT_RING_UP.signatures(
            Sram(7, width=2), caps
        )
        assert predicted == observed
        assert predicted == PRT_RING_UP.predicted_signature(caps)


class TestPrtDetection:
    """Named faults on a 4-word ring, pinned to exact fail-event keys."""

    def _run(self, fault):
        memory = Sram(4)
        memory.attach(fault)
        return run_on_memory(PRT_RING_UP.operations(_caps(4)), memory)

    def test_stuck_at_zero_fails_first_tap_read(self):
        result = self._run(StuckAtFault(2, 0, 0))
        assert not result.passed
        first = result.failures[0]
        assert (first.op_index, first.address) == (4, 2)
        assert (first.expected, first.observed) == (1, 0)

    def test_stuck_at_one_fails_in_circulation(self):
        result = self._run(StuckAtFault(2, 0, 1))
        assert not result.passed
        first = result.failures[0]
        assert (first.op_index, first.address) == (24, 2)
        assert (first.expected, first.observed) == (0, 1)

    def test_transition_fault_caught_at_shift_read(self):
        result = self._run(TransitionFault(1, 0, True))  # can't rise
        assert not result.passed
        first = result.failures[0]
        assert (first.op_index, first.address) == (8, 1)

    def test_inversion_coupling_caught_on_victim(self):
        result = self._run(InversionCouplingFault(0, 0, 3, 0, True))
        assert not result.passed
        first = result.failures[0]
        assert (first.op_index, first.address) == (32, 3)

    def test_stuck_open_and_retention_escape(self):
        # Known blind spots the coverage study reports: SOF needs a
        # specific read-after-read relation, DRF a pause - PRT has
        # neither.  Pinning the misses keeps the study's "loses" rows
        # honest.
        assert self._run(StuckOpenFault(1, 0, 1)).passed
        assert self._run(
            DataRetentionFault(2, 0, from_value=1, decay_time=400)
        ).passed

    def test_signature_flags_stuck_at_one(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(2, 0, 1))
        predicted, observed = PRT_RING_UP.signatures(memory, _caps(4))
        assert predicted != observed

    def test_signature_can_alias_where_events_detect(self):
        # saf:2:0:0 fails mid-circulation but the readout state happens
        # to match the prediction - the aliasing escape probability the
        # event-layer capture avoids.
        memory = Sram(4)
        memory.attach(StuckAtFault(2, 0, 0))
        predicted, observed = PRT_RING_UP.signatures(memory, _caps(4))
        assert predicted == observed
        assert not self._run(StuckAtFault(2, 0, 0)).passed


class TestPrtController:
    @pytest.mark.parametrize(
        "caps",
        (_caps(2), _caps(5), _caps(4, 2, 1), _caps(3, 2, 2)),
        ids=lambda c: f"{c.n_words}x{c.width}x{c.ports}",
    )
    def test_engine_matches_golden_expansion(self, caps):
        for session in (PRT_RING_UP, PRT_RING_DOWN):
            controller = PrtController(session.config, caps)
            engine = [e.op for e in controller.attributed_stream()]
            golden = list(session.operations(caps))
            assert engine == golden
            assert controller.signature == session.predicted_signature(
                caps
            )

    def test_hardware_has_no_program_storage(self):
        spec = PrtController(PrtConfig(), _caps(1024)).hardware()
        names = [c.name for c in spec.components]
        assert any("seed lfsr" in n for n in names)
        assert any("misr" in n for n in names)
        assert not any("storage" in n or "microcode" in n for n in names)

    def test_flexibility_and_architecture_grades(self):
        from repro.core.controller import Flexibility

        assert PrtController.architecture == "Pseudo-Ring"
        assert PrtController.flexibility is Flexibility.LOW


class TestPrtConformance:
    def test_fault_conformance_dispatches_on_session(self):
        from repro.conformance import check_fault_conformance

        result = check_fault_conformance(
            PRT_RING_UP, _caps(4), StuckAtFault(2, 0, 1)
        )
        assert result.ok
        assert result.detected

    def test_non_sequential_mode_is_rejected(self):
        from repro.conformance import check_fault_conformance

        with pytest.raises(ValueError, match="sequential"):
            check_fault_conformance(
                PRT_RING_UP, _caps(4, ports=2), StuckAtFault(2, 0, 1),
                mode="concurrent",
            )

    @pytest.mark.parametrize("geometry", ((4, 1, 1), (3, 2, 2)))
    def test_fault_sweep_accepts_prt_sessions(self, geometry):
        from repro.conformance import run_fault_sweep, sweep_faults
        from repro.march import library

        caps = _caps(*geometry)
        faults = sweep_faults(caps, per_kind=1, seed=0)
        report = run_fault_sweep(
            [PRT_RING_UP, PRT_RING_DOWN, library.MARCH_C], caps, faults
        )
        assert report.ok
        assert report.checked == 3 * len(faults)

    def test_vector_engine_falls_back_and_agrees(self):
        from repro.vector import HAVE_NUMPY

        if not HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        from repro.conformance import run_fault_sweep

        caps = _caps(4)
        faults = [StuckAtFault(2, 0, 1), TransitionFault(1, 0, True)]
        scalar = run_fault_sweep([PRT_RING_UP], caps, faults)
        vector = run_fault_sweep(
            [PRT_RING_UP], caps, faults, engine="vector"
        )
        assert scalar.to_json(include_timing=False) == vector.to_json(
            include_timing=False
        )


class TestPrtStudy:
    def test_report_states_per_kind_coverage_vs_march_c(self):
        from repro.eval.prt_study import prt_vs_march

        report = prt_vs_march(8)
        assert report.baseline_name == "March C"
        assert report.geometry == (8, 1, 1)
        kinds = {row.kind for row in report.rows}
        assert {"SAF", "TF", "CFid", "DRF", "PNPSF"} <= kinds
        for row in report.rows:
            assert row.verdict in ("wins", "loses", "ties", "n/a")
        # The tuned default's headline: wins the dynamic/NPSF corners,
        # loses the coupling exhaustiveness, ties the basics.
        assert "PNPSF" in report.wins and "DRDF" in report.wins
        assert "CFid" in report.losses
        by_kind = {row.kind: row for row in report.rows}
        assert by_kind["SAF"].verdict == "ties"
        assert by_kind["SAF"].prt_percent == 100.0

    def test_json_payload_carries_both_sides(self):
        from repro.eval.prt_study import prt_vs_march

        payload = prt_vs_march(4).to_json()
        assert payload["baseline"] == "March C"
        assert payload["prt_ops"] > 0 and payload["march_ops"] > 0
        assert set(payload["wins"]).isdisjoint(payload["losses"])
        assert len(payload["by_kind"]) == len(
            {row["kind"] for row in payload["by_kind"]}
        )

    def test_format_is_human_readable(self):
        from repro.eval.prt_study import prt_vs_march

        text = prt_vs_march(4).format()
        assert "pseudo-ring vs March C" in text
        assert "verdict" in text


class TestPrtAreaRow:
    def test_tables_gain_opt_in_ninth_row(self):
        from repro.eval.experiments import table1, table2

        default_rows = table1()
        assert len(default_rows) == 8  # the paper's pinned tables
        rows = table1(include_prt=True)
        assert len(rows) == 9
        assert rows[-1].method == "Pseudo-Ring PRT"
        assert rows[-1].flexibility == "LOW"
        assert rows[-1].gate_equivalents > 0
        rows2 = table2(include_prt=True)
        assert rows2[-1].method == "Pseudo-Ring PRT"

    def test_prt_row_undercuts_programmable_controllers(self):
        from repro.eval.experiments import table1

        rows = {r.method: r for r in table1(include_prt=True)}
        prt = rows["Pseudo-Ring PRT"].gate_equivalents
        assert prt < rows["Microcode-Based"].gate_equivalents
        assert prt < rows["Prog. FSM-Based"].gate_equivalents

    def test_lfsr_register_component_formula(self):
        from repro.area.components import LfsrRegister
        from repro.area.technology import IBM_CMOS5S as tech

        plain = LfsrRegister("x", 16, taps=4)
        misr = LfsrRegister("x", 16, taps=4, misr=True)
        assert plain.gate_equivalents(tech) == (
            16 * tech.cell_ge("dff") + 4 * tech.xor2_ge
        )
        assert misr.gate_equivalents(tech) == (
            plain.gate_equivalents(tech) + 16 * tech.xor2_ge
        )
        with pytest.raises(ValueError):
            LfsrRegister("x", 0, taps=1)


class TestFuzzIdentityJ:
    def test_prt_identity_runs_and_holds(self):
        from repro.analysis.fuzz import check_sample

        for index in range(3):
            result = check_sample(
                11, index,
                conformance=False, fault_conformance=False,
                coverage_conformance=False, vector_conformance=False,
                infield_conformance=False, service_conformance=False,
            )
            assert result.prt_checked
            assert result.ok, result.mismatches
            assert result.to_dict()["prt_checked"] is True

    def test_identity_is_skippable(self):
        from repro.analysis.fuzz import check_sample

        result = check_sample(
            11, 0,
            conformance=False, fault_conformance=False,
            coverage_conformance=False, vector_conformance=False,
            infield_conformance=False, service_conformance=False,
            prt_conformance=False,
        )
        assert not result.prt_checked


class TestPrtCli:
    def test_coverage_subcommand(self, capsys):
        assert main([
            "prt", "coverage", "--geometry", "4x1x1", "--min-overall", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "pseudo-ring vs March C" in out

    def test_coverage_gate_fails_below_threshold(self, capsys):
        assert main([
            "prt", "coverage", "--geometry", "4x1x1", "--min-overall", "101",
        ]) == 1

    def test_conformance_subcommand(self, capsys):
        assert main([
            "prt", "conformance", "--geometry", "4x1x1", "--per-kind", "1",
        ]) == 0
        assert "fault-response sweep" in capsys.readouterr().out
