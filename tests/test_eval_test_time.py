"""Unit tests for the test-time accounting module."""

import pytest

from repro.eval.test_time import march_test_time, render_test_time
from repro.eval.test_time import test_time_table as build_table
from repro.march import library
from repro.march.simulator import operation_count


class TestMarchTestTime:
    def test_operations_match_simulator(self):
        row = march_test_time(library.MARCH_C, 64)
        assert row.operations == operation_count(library.MARCH_C, 64)
        assert row.pause_time_units == 0

    def test_pause_accounting(self):
        row = march_test_time(library.MARCH_C_PLUS, 64)
        # Two 1024-unit pauses, single background, single port.
        assert row.pause_time_units == 2048
        # Pauses are reported separately, not in the op count.
        assert row.operations == 14 * 64

    def test_pauses_scale_with_backgrounds_and_ports(self):
        row = march_test_time(library.MARCH_C_PLUS, 64, width=4, ports=2)
        assert row.pause_time_units == 2048 * 3 * 2

    def test_wall_clock_conversion(self):
        row = march_test_time(library.MARCH_C, 100, clock_mhz=100.0)
        assert row.milliseconds == pytest.approx(1000 / (100.0 * 1e3))

    def test_faster_clock_shortens(self):
        slow = march_test_time(library.MARCH_C, 64, clock_mhz=50.0)
        fast = march_test_time(library.MARCH_C, 64, clock_mhz=200.0)
        assert fast.milliseconds < slow.milliseconds


class TestTable:
    def test_classical_rows_present_by_default(self):
        rows = build_table(64)
        names = [row.algorithm for row in rows]
        assert "GALPAT" in names and "Walking 1/0" in names

    def test_classical_rows_optional(self):
        rows = build_table(64, include_classical=False)
        assert all("GALPAT" != row.algorithm for row in rows)

    def test_march_rows_linear_classical_quadratic(self):
        small = {r.algorithm: r.operations for r in build_table(64)}
        large = {r.algorithm: r.operations for r in build_table(640)}
        assert large["March C"] == 10 * small["March C"]
        assert large["GALPAT"] > 50 * small["GALPAT"]

    def test_render(self):
        text = render_test_time(build_table(1024), 1024)
        assert "GALPAT" in text
        assert "March C" in text
        assert any(unit in text for unit in ("us", "ms", " s"))

    def test_cli_testtime(self, capsys):
        from repro.eval.__main__ import main

        assert main(["testtime", "--words", "256"]) == 0
        assert "Test time" in capsys.readouterr().out


class TestControllerCycles:
    """The analytic (proved) path must equal the simulated path."""

    def test_analytic_equals_simulated_both_architectures(self):
        from repro.eval.test_time import controller_cycle_table

        analytic = controller_cycle_table(17, width=2, ports=2,
                                          analytic=True)
        simulated = controller_cycle_table(17, width=2, ports=2,
                                           analytic=False)
        assert [(r.algorithm, r.architecture, r.cycles)
                for r in analytic] == \
               [(r.algorithm, r.architecture, r.cycles)
                for r in simulated]

    def test_unrealizable_algorithms_have_no_progfsm_row(self):
        from repro.eval.test_time import controller_cycle_table

        rows = controller_cycle_table(8, algorithms=["March B"])
        assert [r.architecture for r in rows] == ["microcode"]

    def test_analytic_path_scales_to_huge_memories(self):
        from repro.eval.test_time import controller_cycles
        from repro.march import library

        # 2^24 words would take minutes to simulate; the analytic path
        # answers instantly and linearly in N.
        big = controller_cycles(library.MARCH_C, 1 << 24, analytic=True)
        small = controller_cycles(library.MARCH_C, 1 << 12, analytic=True)
        assert big > 4000 * small / 2

    def test_render_controller_cycles(self):
        from repro.eval.test_time import (
            controller_cycle_table,
            render_controller_cycles,
        )

        text = render_controller_cycles(
            controller_cycle_table(16), 16, analytic=True
        )
        assert "proved analytically" in text
        assert "progfsm" in text

    def test_cli_testtime_analytic(self, capsys):
        from repro.eval.__main__ import main

        assert main(["testtime", "--words", "64", "--analytic"]) == 0
        out = capsys.readouterr().out
        assert "Controller cycles" in out
        assert "proved analytically" in out
