"""Unit tests for port-restricted multiport faults."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController
from repro.faults.port import (
    PortRestrictedFault,
    PortStuckOpenAccess,
    port_fault_universe,
)
from repro.faults.stuck_at import StuckAtFault
from repro.march import library
from repro.march.simulator import expand, run_on_memory
from repro.memory.sram import Sram


class TestPortRestrictedFault:
    def test_negative_port_rejected(self):
        with pytest.raises(ValueError):
            PortRestrictedFault(-1, StuckAtFault(0, 0, 0))

    def test_nonexistent_port_rejected_at_install(self):
        memory = Sram(4, ports=2)
        with pytest.raises(ValueError):
            memory.attach(PortRestrictedFault(2, StuckAtFault(0, 0, 0)))

    def test_fault_active_on_its_port(self):
        memory = Sram(4, ports=2)
        memory.attach(PortRestrictedFault(1, StuckAtFault(2, 0, 0)))
        memory.write(1, 2, 1)
        assert memory.read(1, 2) == 0

    def test_fault_silent_on_other_port(self):
        memory = Sram(4, ports=2)
        memory.attach(PortRestrictedFault(1, StuckAtFault(2, 0, 0)))
        memory.write(0, 2, 1)
        assert memory.read(0, 2) == 1

    def test_kind_tagged_with_port(self):
        fault = PortRestrictedFault(1, StuckAtFault(0, 0, 0))
        assert fault.kind == "SAF@p1"

    def test_describe(self):
        fault = PortRestrictedFault(0, StuckAtFault(1, 0, 1))
        assert "port 0" in fault.describe()


class TestPortStuckOpenAccess:
    def test_write_through_defective_port_lost(self):
        memory = Sram(4, ports=2)
        memory.attach(PortStuckOpenAccess(1, 2, 0))
        memory.write(1, 2, 1)
        assert memory.peek(2) == 0

    def test_read_through_defective_port_floats(self):
        memory = Sram(4, ports=2)
        memory.attach(PortStuckOpenAccess(1, 2, 0, open_value=0))
        memory.poke(2, 1)
        assert memory.read(1, 2) == 0
        assert memory.read(0, 2) == 1

    def test_other_cells_unaffected(self):
        memory = Sram(4, ports=2)
        memory.attach(PortStuckOpenAccess(1, 2, 0))
        memory.write(1, 3, 1)
        assert memory.read(1, 3) == 1

    def test_invalid_open_value(self):
        with pytest.raises(ValueError):
            PortStuckOpenAccess(0, 0, 0, open_value=2)

    def test_universe_size(self):
        assert len(port_fault_universe(4, 2, 3)) == 24


class TestPortLoopJustification:
    """The reason for per-port repetition: a single-port run misses
    port-1 access faults; the full per-port algorithm catches them."""

    def test_single_port_pass_misses_port1_fault(self):
        memory = Sram(8, ports=2)
        memory.attach(PortStuckOpenAccess(1, 3, 0))
        single_port = expand(library.MARCH_C, 8, ports=1)
        assert run_on_memory(single_port, memory).passed

    def test_per_port_run_catches_port1_fault(self):
        memory = Sram(8, ports=2)
        memory.attach(PortStuckOpenAccess(1, 3, 0))
        all_ports = expand(library.MARCH_C, 8, ports=2)
        result = run_on_memory(all_ports, memory)
        assert not result.passed
        assert all(f.port == 1 for f in result.failures)

    def test_microcode_inc_port_catches_every_port_fault(self):
        caps = ControllerCapabilities(n_words=4, ports=3)
        controller = MicrocodeBistController(library.MARCH_C, caps)
        for fault in port_fault_universe(4, 1, 3):
            memory = Sram(4, ports=3)
            memory.attach(fault)
            result = run_on_memory(controller.operations(), memory)
            assert not result.passed, fault.describe()

    def test_wrapped_coupling_trigger_stays_global(self):
        """Cell-internal mechanisms are not gated by the access port."""
        from repro.faults.coupling import InversionCouplingFault

        memory = Sram(4, ports=2)
        memory.attach(
            PortRestrictedFault(1, InversionCouplingFault(0, 0, 1, 0, True))
        )
        memory.write(0, 0, 1)  # aggressor toggled through the GOOD port
        assert memory.peek(1) == 1  # victim still flips
