"""End-to-end integration scenarios spanning the whole stack."""

import pytest

from repro import (
    ControllerCapabilities,
    HardwiredBistController,
    MemoryBistUnit,
    MicrocodeBistController,
    ProgrammableFsmBistController,
    Sram,
    library,
    parse_test,
)
from repro.core.transparent import TransparentBistRun, transparent_version
from repro.diagnostics import FailBitmap, FailLog, diagnose
from repro.faults import FaultInjector, StuckAtFault, standard_universe
from repro.march.coverage import evaluate_stream_coverage


class TestProductionFlow:
    """The paper's motivation: one programmable BIST unit serving every
    fabrication stage — production go/no-go, enhanced screening,
    retention screening — without hardware change."""

    def test_same_hardware_runs_all_stages(self):
        caps = ControllerCapabilities(n_words=32)
        controller = MicrocodeBistController(library.MARCH_A_PLUS_PLUS, caps)
        memory = Sram(32)
        memory.attach(StuckAtFault(17, 0, 0))
        unit = MemoryBistUnit(controller, memory)

        for stage_algorithm in (
            library.MARCH_C,          # wafer sort: fast go/no-go
            library.MARCH_C_PLUS,     # package test: retention screen
            library.MARCH_A_PLUS_PLUS,  # burn-in: full fault model
        ):
            controller.load(stage_algorithm)
            memory.reset_state()
            result = unit.run()
            assert not result.passed, stage_algorithm.name

    def test_stage_escalation_catches_weaker_defect(self):
        from repro.faults import DataRetentionFault

        caps = ControllerCapabilities(n_words=32)
        controller = MicrocodeBistController(library.MARCH_A_PLUS_PLUS, caps)
        memory = Sram(32)
        memory.attach(DataRetentionFault(9, 0, from_value=1))
        unit = MemoryBistUnit(controller, memory)

        controller.load(library.MARCH_C)
        memory.reset_state()
        assert unit.run().passed  # escapes the fast screen

        controller.load(library.MARCH_C_PLUS)
        memory.reset_state()
        assert not unit.run().passed  # caught by the retention screen


class TestCoverageEquivalence:
    """X1: controller streams have identical fault coverage to golden."""

    @pytest.mark.parametrize(
        "controller_cls",
        [
            MicrocodeBistController,
            ProgrammableFsmBistController,
            HardwiredBistController,
        ],
        ids=lambda c: c.__name__,
    )
    def test_controller_coverage_equals_golden(self, controller_cls):
        n_words = 6
        caps = ControllerCapabilities(n_words=n_words)
        universe = standard_universe(n_words, include_npsf=False)
        controller = controller_cls(library.MARCH_C_PLUS, caps)
        memory = Sram(n_words)
        report = evaluate_stream_coverage(
            controller.operations, memory, universe,
            test_name=controller.architecture,
        )
        from repro.march.coverage import evaluate_coverage

        golden = evaluate_coverage(library.MARCH_C_PLUS, universe, n_words)
        assert report.detected == golden.detected
        assert report.total == golden.total


class TestDiagnosticFlow:
    def test_bist_to_bitmap_pipeline(self):
        caps = ControllerCapabilities(n_words=64)
        memory = Sram(64)
        for word in (3, 4, 40):
            memory.attach(StuckAtFault(word, 0, 0))
        unit = MemoryBistUnit(
            MicrocodeBistController(library.MARCH_C_PLUS_PLUS, caps), memory
        )
        result = unit.run()
        log = FailLog.from_result(result)
        bitmap = FailBitmap.from_log(log, 64)
        assert bitmap.fail_count == 3
        assert {cell[0] for cluster in bitmap.clusters() for cell in cluster} == {
            3, 4, 40,
        }

    def test_diagnose_after_bist_failure(self):
        memory = Sram(32)
        memory.attach(StuckAtFault(11, 0, 1))
        diags = diagnose(memory)
        assert diags[0].label == "SA1/TF-down"


class TestTransparentOnline:
    """X4: the on-line testing extension the conclusion points to."""

    def test_online_test_between_workload_phases(self):
        memory = Sram(32, width=8)
        # A "live application" writes its working set.
        for word in range(32):
            memory.write(0, word, (word * 13) & 0xFF)
        working_set = memory.snapshot()

        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        result = run.run()
        assert result.passed
        assert memory.snapshot() == working_set  # application unaffected

    def test_online_test_catches_field_failure(self):
        memory = Sram(32, width=8)
        for word in range(32):
            memory.write(0, word, (word * 13) & 0xFF)
        memory.attach(StuckAtFault(20, 2, 0))
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        assert not run.run().passed


class TestCustomAlgorithmFlow:
    def test_user_defined_algorithm_end_to_end(self):
        algorithm = parse_test(
            "~(w0); ^(r0,w1,r1); v(r1,w0,r0); ~(r0)", name="My March"
        )
        caps = ControllerCapabilities(n_words=16)
        memory = Sram(16)
        unit = MemoryBistUnit(MicrocodeBistController(algorithm, caps), memory)
        assert unit.run().passed

    def test_injector_sweep_with_controller_stream(self):
        caps = ControllerCapabilities(n_words=4)
        controller = MicrocodeBistController(library.MARCH_C, caps)
        memory = Sram(4)
        injector = FaultInjector(memory)
        detected = 0
        faults = [StuckAtFault(w, 0, v) for w in range(4) for v in (0, 1)]
        for fault in faults:
            with injector.injected(fault) as faulty:
                from repro.march.simulator import run_on_memory

                if run_on_memory(controller.operations(), faulty).failures:
                    detected += 1
        assert detected == len(faults)
