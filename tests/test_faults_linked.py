"""Unit tests for linked faults and the March LR result."""

import pytest

from repro.faults.coupling import IdempotentCouplingFault
from repro.faults.linked import (
    CompositeFault,
    linked_cfid_pair,
    linked_cfid_universe,
)
from repro.faults.stuck_at import StuckAtFault
from repro.faults.universe import FaultUniverse
from repro.march import library
from repro.march.coverage import evaluate_coverage
from repro.memory import Sram

N = 8


def _universe(faults):
    universe = FaultUniverse("linked")
    universe.extend(faults)
    return universe


class TestCompositeFault:
    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            CompositeFault([StuckAtFault(0, 0, 1)])

    def test_kind_joined(self):
        composite = CompositeFault(
            [StuckAtFault(0, 0, 1), StuckAtFault(1, 0, 0)]
        )
        assert composite.kind == "SAF&SAF"

    def test_hooks_fan_out(self):
        memory = Sram(4)
        memory.attach(
            CompositeFault([StuckAtFault(0, 0, 1), StuckAtFault(1, 0, 1)])
        )
        memory.write(0, 0, 0)
        memory.write(0, 1, 0)
        assert memory.read(0, 0) == 1
        assert memory.read(0, 1) == 1

    def test_describe_lists_members(self):
        composite = CompositeFault(
            [StuckAtFault(0, 0, 1), StuckAtFault(1, 0, 0)]
        )
        text = composite.describe()
        assert "linked" in text and text.count("SAF") == 2


class TestMasking:
    def test_same_side_pair_masks_within_element(self):
        """Both aggressors toggled before the victim's read: the second
        force undoes the first."""
        memory = Sram(4)
        memory.attach(
            linked_cfid_pair(0, 1, 2, rising1=True, rising2=True, forced1=1)
        )
        memory.write(0, 0, 1)  # fires member 1: victim := 1
        memory.write(0, 1, 1)  # fires member 2: victim := 0
        assert memory.read(0, 2) == 0  # masked

    def test_single_member_alone_detectable(self):
        memory = Sram(4)
        memory.attach(IdempotentCouplingFault(0, 0, 2, 0, True, 1))
        memory.write(0, 0, 1)
        assert memory.read(0, 2) == 1  # visible corruption


class TestLinkedCoverage:
    """The van de Goor / Gaydadjiev result, measured."""

    @pytest.fixture(scope="class")
    def universe(self):
        return _universe(linked_cfid_universe(N))

    def test_universe_size(self, universe):
        # 8 combos x (3 geometries for interior victims, fewer at edges).
        assert len(universe) == sum(
            8 * ((1 if v >= 2 else 0) + (1 if v + 2 < N else 0)
                 + (1 if 1 <= v < N - 1 else 0))
            for v in range(N)
        )

    def test_march_c_misses_linked_cfids(self, universe):
        report = evaluate_coverage(library.MARCH_C, universe, N)
        assert report.overall < 1.0

    def test_march_lr_detects_all(self, universe):
        report = evaluate_coverage(library.MARCH_LR, universe, N)
        assert report.overall == 1.0

    def test_march_a_detects_all(self, universe):
        """March A was designed for linked CFids (van de Goor)."""
        report = evaluate_coverage(library.MARCH_A, universe, N)
        assert report.overall == 1.0

    def test_lr_strictly_better_than_c_here(self, universe):
        march_c = evaluate_coverage(library.MARCH_C, universe, N)
        march_lr = evaluate_coverage(library.MARCH_LR, universe, N)
        assert march_lr.overall > march_c.overall

    def test_march_c_escapes_are_same_side(self, universe):
        """Every March C escape has both aggressors on one side of the
        victim — the structural signature of the masking mechanism."""
        report = evaluate_coverage(library.MARCH_C, universe, N)
        assert report.escapes
        for fault in report.escapes:
            member1, member2 = fault.faults
            victim = member1.victim_word
            side1 = member1.aggressor_word < victim
            side2 = member2.aggressor_word < victim
            assert side1 == side2, fault.describe()
