"""In-field transparent conformance sessions: determinism, transparency,
mid-life fault detection and the infield fault-response mode.
"""

import pytest

from repro.conformance.faulty.events import ResponseBudgetExceeded
from repro.conformance.infield import (
    DEFAULT_INFIELD_TESTS,
    build_infield_plan,
    cached_infield_plan,
    fault_free_session,
    run_infield_session,
)
from repro.conformance import check_fault_conformance
from repro.core.controller import ControllerCapabilities
from repro.faults.spec import parse_fault
from repro.march import library
from repro.march.notation import parse_test
from repro.memory.sram import Sram

GEOMETRIES = [(4, 2, 2), (3, 1, 1), (5, 4, 2), (2, 2, 3)]


def _caps(geometry):
    words, width, ports = geometry
    return ControllerCapabilities(n_words=words, width=width, ports=ports)


def _memory(geometry):
    words, width, ports = geometry
    return Sram(words, width=width, ports=ports)


# ---------------------------------------------------------------------------
# Plan construction and determinism.
# ---------------------------------------------------------------------------


class TestPlan:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_same_inputs_same_plan(self, geometry):
        caps = _caps(geometry)
        first = build_infield_plan(caps, seed=11)
        second = build_infield_plan(caps, seed=11)
        assert first.stream == second.stream
        assert first.checkpoints == second.checkpoints

    def test_different_seeds_differ(self):
        caps = _caps((4, 2, 2))
        assert (
            build_infield_plan(caps, seed=0).stream
            != build_infield_plan(caps, seed=1).stream
        )

    def test_one_checkpoint_per_slot(self):
        plan = build_infield_plan(_caps((4, 2, 2)), seed=3)
        assert len(plan.checkpoints) == len(DEFAULT_INFIELD_TESTS)
        assert [c.slot for c in plan.checkpoints] == [0, 1, 2]
        # Checkpoints fire at strictly increasing stream positions, each
        # after its slot's transparent ops begin.
        indexes = [c.op_index for c in plan.checkpoints]
        assert indexes == sorted(indexes)
        for checkpoint in plan.checkpoints:
            assert checkpoint.start_index < checkpoint.op_index
        assert plan.checkpoints[-1].op_index == len(plan.stream)

    def test_every_op_is_attributed(self):
        plan = build_infield_plan(_caps((3, 2, 2)), seed=0)
        owners = {entry.owner.split()[0] for entry in plan.stream}
        assert owners == {"seed", "traffic", "slot"}

    def test_cache_returns_identical_plan(self):
        caps = _caps((4, 2, 2))
        assert cached_infield_plan(caps, seed=5) is cached_infield_plan(
            caps, seed=5
        )

    def test_rejects_write_only_slot_test(self):
        with pytest.raises(ValueError):
            build_infield_plan(
                _caps((2, 1, 1)), tests=(parse_test("^(w0)"),)
            )


# ---------------------------------------------------------------------------
# Transparency: fault-free sessions are invisible to the user.
# ---------------------------------------------------------------------------


class TestFaultFree:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_session_preserves_user_data(self, geometry, seed):
        result = fault_free_session(_caps(geometry), seed=seed)
        assert result.events == []
        assert result.user_data_preserved
        assert result.ops_applied > 0
        assert len(result.checkpoints) == len(DEFAULT_INFIELD_TESTS)

    def test_memory_ends_at_final_shadow(self):
        caps = _caps((4, 2, 2))
        plan = build_infield_plan(caps, seed=3)
        memory = _memory((4, 2, 2))
        run_infield_session(plan, memory)
        assert tuple(memory.snapshot()) == plan.checkpoints[-1].expected


# ---------------------------------------------------------------------------
# Mid-life defects: injection at slot boundaries is always detected.
# ---------------------------------------------------------------------------


class TestMidStreamInjection:
    @pytest.mark.parametrize("geometry", [(4, 2, 2), (3, 1, 1)])
    def test_saf_at_every_slot_boundary_is_caught_by_that_slot(
        self, geometry
    ):
        caps = _caps(geometry)
        plan = build_infield_plan(caps, seed=3)
        for checkpoint in plan.checkpoints:
            fault = parse_fault("saf:0:0:1")
            memory = _memory(geometry)
            result = run_infield_session(
                plan, memory, inject=(fault, checkpoint.start_index)
            )
            assert result.detected
            assert result.events[0].owner.startswith(
                f"slot {checkpoint.slot} "
            )

    def test_power_on_defect_is_caught(self):
        geometry = (4, 2, 2)
        plan = build_infield_plan(_caps(geometry), seed=0)
        memory = _memory(geometry)
        memory.attach(parse_fault("saf:1:0:1"))
        result = run_infield_session(plan, memory)
        assert result.detected


# ---------------------------------------------------------------------------
# Guard rails.
# ---------------------------------------------------------------------------


class TestGuards:
    def test_geometry_mismatch_rejected(self):
        plan = build_infield_plan(_caps((4, 2, 2)))
        with pytest.raises(ValueError, match="geometry"):
            run_infield_session(plan, _memory((4, 2, 1)))

    def test_op_budget_enforced(self):
        plan = build_infield_plan(_caps((3, 1, 1)))
        with pytest.raises(ResponseBudgetExceeded):
            run_infield_session(plan, _memory((3, 1, 1)), max_ops=5)


# ---------------------------------------------------------------------------
# The infield fault-response mode.
# ---------------------------------------------------------------------------


class TestInfieldMode:
    def test_stuck_at_detected_and_replay_conformant(self):
        caps = _caps((3, 2, 1))
        result = check_fault_conformance(
            library.MATS_PLUS, caps, parse_fault("saf:0:0:1"),
            mode="infield",
        )
        assert result.ok
        assert result.detected
        assert result.mode == "infield"

    def test_seed_changes_the_session(self):
        caps = _caps((3, 2, 1))
        base = check_fault_conformance(
            library.MATS_PLUS, caps, parse_fault("saf:0:0:1"),
            mode="infield",
        )
        other = check_fault_conformance(
            library.MATS_PLUS, caps, parse_fault("saf:0:0:1"),
            mode="infield", infield_seed=9,
        )
        assert base.ok and other.ok
        assert base.detected and other.detected

    def test_write_only_test_is_skipped_not_crashed(self):
        caps = _caps((2, 1, 1))
        result = check_fault_conformance(
            parse_test("^(w0)", name="writes"), caps,
            parse_fault("saf:0:0:1"), mode="infield",
        )
        assert result.ok
        assert all(
            response.status == "skipped" for response in result.responses
        )
