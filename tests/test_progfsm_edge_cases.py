"""Edge-case tests for the programmable FSM controller's control flow."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.progfsm.compiler import FsmProgram
from repro.core.progfsm.controller import ProgrammableFsmBistController
from repro.core.progfsm.instruction import DataControl, FsmInstruction
from repro.march.notation import parse_test

CAPS = ControllerCapabilities(n_words=4)


def program_of(*instructions, pause=64, name="handwritten"):
    return FsmProgram(
        name=name,
        instructions=list(instructions),
        source=parse_test("~(w0)", name=name),
        pause_duration=pause,
    )


def run(program, caps=CAPS, **kwargs):
    controller = ProgrammableFsmBistController(program, caps, **kwargs)
    return list(controller.operations())


class TestHandwrittenPrograms:
    def test_single_sm0_element(self):
        ops = run(program_of(FsmInstruction(mode=0)))
        assert [str(op) for op in ops] == [
            "p0 w@0=0", "p0 w@1=0", "p0 w@2=0", "p0 w@3=0",
        ]

    def test_down_element(self):
        ops = run(program_of(
            FsmInstruction(mode=0),
            FsmInstruction(mode=5, addr_down=True),
        ))
        reads = [op for op in ops if op.is_read]
        assert [op.address for op in reads] == [3, 2, 1, 0]

    def test_base_data_polarity(self):
        ops = run(program_of(
            FsmInstruction(mode=0, data_ctrl=DataControl.BASE1),
        ))
        assert all(op.value == 1 for op in ops)

    def test_hold_pause_duration_from_program(self):
        ops = run(program_of(
            FsmInstruction(mode=0),
            FsmInstruction(mode=5, hold=True),
            pause=128,
        ))
        delays = [op for op in ops if op.is_delay]
        assert len(delays) == 1 and delays[0].delay == 128

    def test_lone_loop_bg_row_single_background_terminates(self):
        """A LOOP_BG row on a bit-oriented memory immediately sees Last
        Data and ends the test."""
        ops = run(program_of(
            FsmInstruction(mode=0),
            FsmInstruction(data_ctrl=DataControl.LOOP_BG),
        ))
        assert len(ops) == 4  # one write sweep, then done

    def test_loop_port_row_single_port_terminates(self):
        ops = run(program_of(
            FsmInstruction(mode=0),
            FsmInstruction(data_ctrl=DataControl.LOOP_PORT),
        ))
        assert len(ops) == 4

    def test_empty_program_produces_nothing(self):
        program = program_of()
        program.instructions.clear()
        controller = ProgrammableFsmBistController(
            program, CAPS, buffer_rows=4
        )
        # Loading an empty program leaves the buffer unused; running it
        # terminates immediately.
        assert list(controller.operations()) == []

    def test_runaway_guard(self):
        program = program_of(FsmInstruction(mode=2))  # 4-op element
        controller = ProgrammableFsmBistController(
            program, CAPS, max_cycles=3
        )
        with pytest.raises(RuntimeError):
            list(controller.operations())

    def test_single_word_memory(self):
        caps = ControllerCapabilities(n_words=1)
        ops = run(program_of(
            FsmInstruction(mode=0),
            FsmInstruction(mode=5),
        ), caps=caps)
        assert [str(op) for op in ops] == ["p0 w@0=0", "p0 r@0?0"]

    def test_sm4_triple_read(self):
        ops = run(program_of(
            FsmInstruction(mode=0),
            FsmInstruction(mode=4),
        ))
        reads = [op for op in ops if op.is_read]
        assert [op.address for op in reads] == [0, 0, 0, 1, 1, 1, 2, 2, 2,
                                                3, 3, 3]
