"""Unit tests for the transparent-BIST extension."""

import pytest

from repro.core.transparent import TransparentBistRun, transparent_version
from repro.faults import StuckAtFault, TransitionFault
from repro.march import library
from repro.march.element import OpKind
from repro.march.notation import parse_test
from repro.memory import Sram


class TestTransform:
    def test_drops_initialising_write_element(self):
        transparent = transparent_version(library.MARCH_C)
        first = transparent.elements[0]
        assert any(op.kind is OpKind.READ for op in first.ops)

    def test_name(self):
        assert transparent_version(library.MARCH_C).name == "Transparent March C"

    def test_read_only_test_rejected_if_no_reads(self):
        with pytest.raises(ValueError):
            transparent_version(parse_test("~(w0); ~(w1)"))

    def test_final_state_polarity_balanced(self):
        """The transformed test's final write restores polarity 0."""
        for base in (library.MARCH_C, library.MARCH_A, library.MATS_PLUS):
            transparent = transparent_version(base)
            last_polarity = 0
            for element in transparent.elements:
                for op in element.ops:
                    if op.kind is OpKind.WRITE:
                        last_polarity = op.polarity
            assert last_polarity == 0, base.name

    def test_pauses_kept_after_first_read(self):
        transparent = transparent_version(library.MARCH_C_PLUS)
        assert transparent.has_pauses


class TestTransparentRun:
    def _memory_with_contents(self):
        memory = Sram(16)
        for word in range(16):
            memory.poke(word, (word * 7) % 2)
        return memory

    def test_fault_free_passes_and_preserves_contents(self):
        memory = self._memory_with_contents()
        before = memory.snapshot()
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        result = run.run()
        assert result.passed
        assert result.contents_preserved
        assert memory.snapshot() == before

    def test_stuck_at_detected(self):
        memory = self._memory_with_contents()
        memory.attach(StuckAtFault(5, 0, 0))
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        result = run.run()
        assert not result.passed
        assert result.mismatch_count > 0

    def test_transition_fault_detected(self):
        memory = self._memory_with_contents()
        memory.attach(TransitionFault(3, 0, rising=True))
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        assert not run.run().passed

    def test_signatures_differ_on_failure(self):
        memory = self._memory_with_contents()
        memory.attach(StuckAtFault(5, 0, 1))
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        result = run.run()
        assert result.predicted_signature != result.observed_signature

    def test_word_oriented_memory(self):
        memory = Sram(8, width=8)
        for word in range(8):
            memory.poke(word, (word * 37) & 0xFF)
        before = memory.snapshot()
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        result = run.run()
        assert result.passed
        assert memory.snapshot() == before

    def test_multiport_memory(self):
        memory = Sram(8, ports=2)
        memory.poke(3, 1)
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        assert run.run().passed

    def test_all_zero_contents(self):
        memory = Sram(8)
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        result = run.run()
        assert result.passed and result.contents_preserved

    def test_all_one_contents(self):
        memory = Sram(8)
        for word in range(8):
            memory.poke(word, 1)
        run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
        result = run.run()
        assert result.passed and result.contents_preserved
