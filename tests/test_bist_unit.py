"""Unit tests for the composed memory BIST unit."""

import pytest

from repro.core.bist_unit import MemoryBistUnit
from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.faults import DataRetentionFault, StuckAtFault, StuckOpenFault
from repro.march import library
from repro.memory import Sram

CAPS = ControllerCapabilities(n_words=16)


def make_unit(controller_cls=MicrocodeBistController, test=library.MARCH_C,
              caps=CAPS, memory=None):
    memory = memory or Sram(caps.n_words, width=caps.width, ports=caps.ports)
    return MemoryBistUnit(controller_cls(test, caps), memory), memory


class TestComposition:
    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryBistUnit(
                MicrocodeBistController(library.MARCH_C, CAPS), Sram(8)
            )

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryBistUnit(
                MicrocodeBistController(library.MARCH_C, CAPS),
                Sram(16, width=8),
            )

    def test_port_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryBistUnit(
                MicrocodeBistController(library.MARCH_C, CAPS),
                Sram(16, ports=2),
            )


class TestRuns:
    def test_fault_free_passes(self):
        unit, _ = make_unit()
        result = unit.run()
        assert result.passed
        assert result.operations == 160
        assert "PASS" in str(result)

    def test_stuck_at_detected(self):
        unit, memory = make_unit()
        memory.attach(StuckAtFault(5, 0, 0))
        result = unit.run()
        assert not result.passed
        assert any(f.address == 5 for f in result.failures)
        assert "FAIL" in str(result)

    def test_stop_at_first_failure(self):
        unit, memory = make_unit()
        memory.attach(StuckAtFault(5, 0, 0))
        result = unit.run(stop_at_first_failure=True)
        assert result.failure_count == 1

    def test_retention_fault_needs_plus_algorithm(self):
        caps = CAPS
        memory = Sram(16)
        memory.attach(DataRetentionFault(3, 0, from_value=1))
        plain = MemoryBistUnit(
            MicrocodeBistController(library.MARCH_C, caps), memory
        )
        assert plain.run().passed  # escapes March C
        memory.reset_state()
        plus = MemoryBistUnit(
            MicrocodeBistController(library.MARCH_C_PLUS, caps), memory
        )
        assert not plus.run().passed

    def test_stuck_open_needs_plus_plus_algorithm(self):
        memory = Sram(16)
        memory.attach(StuckOpenFault(7, 0, weak_value=1))
        plain = MemoryBistUnit(
            MicrocodeBistController(library.MARCH_C, CAPS), memory
        )
        assert plain.run().passed
        memory.reset_state()
        plusplus = MemoryBistUnit(
            MicrocodeBistController(library.MARCH_C_PLUS_PLUS, CAPS), memory
        )
        assert not plusplus.run().passed

    def test_all_architectures_agree_on_verdict(self):
        for controller_cls in (
            MicrocodeBistController,
            ProgrammableFsmBistController,
            HardwiredBistController,
        ):
            memory = Sram(16)
            memory.attach(StuckAtFault(9, 0, 1))
            unit = MemoryBistUnit(
                controller_cls(library.MARCH_C, CAPS), memory
            )
            result = unit.run()
            assert not result.passed, controller_cls.__name__

    def test_result_metadata(self):
        unit, _ = make_unit()
        result = unit.run()
        assert result.controller == "Microcode-Based"
        assert result.test_name == "March C"

    def test_area_report(self):
        unit, _ = make_unit()
        report = unit.area()
        assert report.gate_equivalents > 0

    def test_rerun_after_reset(self):
        unit, memory = make_unit()
        assert unit.run().passed
        memory.reset_state()
        assert unit.run().passed
