"""Abstract interpreter: the cycle bound is *exact*, not an estimate.

The headline identity: for every program the verifier accepts, the
interpreter's cycle count equals the number of entries the simulator's
trace produces — checked here for March C on a 64-word memory (the
acceptance benchmark) and across the whole library on mixed geometries.
"""

import pytest

from repro.analysis import Verdict, cycle_bound, interpret
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController, assemble
from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.march import library


def traced_cycles(program, caps):
    controller = MicrocodeBistController(program, caps, verify=False)
    return sum(1 for _ in controller.trace())


def program_of(*instructions, name="handwritten"):
    return MicrocodeProgram(
        name=name, instructions=list(instructions), source=None
    )


class TestMarchC64Exact:
    """Acceptance criterion: exact cycle counts for March C, 64 words."""

    CAPS = ControllerCapabilities(n_words=64)

    @pytest.mark.parametrize("compress", [True, False])
    def test_bound_matches_simulator_exactly(self, compress):
        program = assemble(library.MARCH_C, self.CAPS, compress=compress)
        result = interpret(program, self.CAPS)
        assert result.verdict is Verdict.TERMINATES
        assert result.cycles == traced_cycles(program, self.CAPS)

    def test_compressed_program_costs_two_extra_repeat_cycles(self):
        compressed = assemble(library.MARCH_C, self.CAPS, compress=True)
        plain = assemble(library.MARCH_C, self.CAPS, compress=False)
        # The REPEAT row executes twice (arm + clear); everything else
        # is the same 10N operation stream.
        assert cycle_bound(compressed, self.CAPS) == \
            cycle_bound(plain, self.CAPS) + 2


class TestExactnessAcrossLibrary:
    GEOMETRIES = [
        ControllerCapabilities(n_words=8),
        ControllerCapabilities(n_words=5, width=2, ports=2),
        ControllerCapabilities(n_words=4, width=4),
        ControllerCapabilities(n_words=1),
    ]

    @pytest.mark.parametrize("name", sorted(library.ALGORITHMS))
    @pytest.mark.parametrize("compress", [True, False])
    def test_every_algorithm_every_geometry(self, name, compress):
        test = library.get(name)
        for caps in self.GEOMETRIES:
            program = assemble(test, caps, compress=compress)
            result = interpret(program, caps)
            assert result.verdict is Verdict.TERMINATES
            assert result.cycles == traced_cycles(program, caps), (
                f"{name} on {caps} (compress={compress})"
            )


class TestDivergenceDetection:
    CAPS = ControllerCapabilities(n_words=4)

    def test_loop_without_addr_inc_diverges(self):
        stuck = MicroInstruction(read_en=True, cond=ConditionOp.LOOP)
        result = interpret(program_of(stuck), self.CAPS)
        assert result.verdict is Verdict.DIVERGES
        assert result.location == 0

    def test_double_repeat_diverges_by_state_recurrence(self):
        """A second REPEAT finds the repeat bit cleared and re-arms it:
        the controller state recurs, which the interpreter detects."""
        rows = program_of(
            MicroInstruction(write_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(read_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
            MicroInstruction(cond=ConditionOp.REPEAT),
            MicroInstruction(cond=ConditionOp.REPEAT),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        )
        result = interpret(rows, self.CAPS)
        assert result.verdict is Verdict.DIVERGES
        assert "recurs" in result.reason

    def test_single_word_memory_cannot_hang_on_loop(self):
        """Last Address is always asserted when N=1, so the stuck LOOP
        still falls through."""
        stuck = MicroInstruction(read_en=True, cond=ConditionOp.LOOP)
        result = interpret(
            program_of(stuck, MicroInstruction(cond=ConditionOp.TERMINATE)),
            ControllerCapabilities(n_words=1),
        )
        assert result.verdict is Verdict.TERMINATES


class TestUnanalyzableShapes:
    CAPS = ControllerCapabilities(n_words=4)

    def test_non_memory_loop_is_unknown(self):
        odd = MicroInstruction(addr_inc=True, cond=ConditionOp.LOOP)
        result = interpret(program_of(odd), self.CAPS)
        assert result.verdict is Verdict.UNKNOWN
        assert result.cycles is None

    def test_mid_sweep_addr_inc_is_unknown(self):
        rows = program_of(
            MicroInstruction(cond=ConditionOp.SAVE),
            MicroInstruction(write_en=True, addr_inc=True),
            MicroInstruction(read_en=True, addr_inc=True,
                             cond=ConditionOp.LOOP),
        )
        result = interpret(rows, self.CAPS)
        assert result.verdict is Verdict.UNKNOWN


class TestFallOffTermination:
    """Programs without TERMINATE end once the IC passes the last
    program row (the paper's 'exhaust the allowed instruction
    addresses'; storage padding rows never execute)."""

    CAPS = ControllerCapabilities(n_words=4)

    def test_fall_off_cycle_count_matches_simulator(self):
        sweep = MicroInstruction(write_en=True, addr_inc=True,
                                 cond=ConditionOp.LOOP)
        program = program_of(sweep)
        result = interpret(program, self.CAPS)
        assert result.verdict is Verdict.TERMINATES
        assert result.reason == "instruction addresses exhausted"
        assert result.cycles == traced_cycles(program, self.CAPS) == 4

    def test_explicit_trailing_nops_are_counted(self):
        sweep = MicroInstruction(write_en=True, addr_inc=True,
                                 cond=ConditionOp.LOOP)
        program = program_of(sweep, MicroInstruction(), MicroInstruction())
        result = interpret(program, self.CAPS)
        assert result.cycles == traced_cycles(program, self.CAPS) == 6


class TestCapabilityLoops:
    def test_background_loop_multiplies_the_program_body(self):
        caps = ControllerCapabilities(n_words=4, width=4)  # 3 backgrounds
        program = assemble(library.MARCH_Y, caps)
        result = interpret(program, caps)
        assert result.verdict is Verdict.TERMINATES
        assert result.cycles == traced_cycles(program, caps)

    def test_port_loop_multiplies_everything_again(self):
        caps = ControllerCapabilities(n_words=4, width=2, ports=3)
        program = assemble(library.MARCH_Y, caps)
        result = interpret(program, caps)
        assert result.verdict is Verdict.TERMINATES
        assert result.cycles == traced_cycles(program, caps)
