"""Tests for the evaluation harness — the paper's findings R1–R5 as
assertions (see DESIGN.md section 1)."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.eval.experiments import table1, table2, table3
from repro.eval.flexibility import (
    flexibility_matrix,
    microcode_realizable,
    progfsm_realizable,
    summarize,
)
from repro.eval.tables import render_table1, render_table2, render_table3
from repro.march import library

N_WORDS = 256  # smaller than the default for test speed


@pytest.fixture(scope="module")
def t1():
    return table1(n_words=N_WORDS)


@pytest.fixture(scope="module")
def t2():
    return table2(n_words=N_WORDS)


@pytest.fixture(scope="module")
def t3():
    return table3(n_words=N_WORDS)


def row(rows, name):
    return next(r for r in rows if r.method == name)


class TestTable1(object):
    def test_eight_rows_in_paper_order(self, t1):
        assert [r.method for r in t1] == [
            "Microcode-Based",
            "Prog. FSM-Based",
            "March C",
            "March C+",
            "March C++",
            "March A",
            "March A+",
            "March A++",
        ]

    def test_r1_flexibility_grades(self, t1):
        assert row(t1, "Microcode-Based").flexibility == "HIGH"
        assert row(t1, "Prog. FSM-Based").flexibility == "MEDIUM"
        assert all(
            r.flexibility == "LOW" for r in t1 if r.method.startswith("March")
        )

    def test_hardwired_smallest(self, t1):
        programmable = min(
            row(t1, "Microcode-Based").gate_equivalents,
            row(t1, "Prog. FSM-Based").gate_equivalents,
        )
        for r in t1:
            if r.method.startswith("March"):
                assert r.gate_equivalents < programmable

    def test_r2_enhancement_grows_hardwired_area(self, t1):
        assert (
            row(t1, "March C").gate_equivalents
            < row(t1, "March C+").gate_equivalents
            < row(t1, "March C++").gate_equivalents
        )
        assert (
            row(t1, "March A").gate_equivalents
            < row(t1, "March A+").gate_equivalents
            < row(t1, "March A++").gate_equivalents
        )

    def test_r3_gap_shrinks_with_enhanced_baselines(self, t1):
        microcode = row(t1, "Microcode-Based").gate_equivalents
        assert (
            microcode - row(t1, "March C++").gate_equivalents
            < microcode - row(t1, "March C").gate_equivalents
        )

    def test_um2_proportional_to_ge(self, t1):
        for r in t1:
            assert r.area_um2 == pytest.approx(r.gate_equivalents * 54.0)


class TestTable2:
    def test_same_methods_as_table1(self, t1, t2):
        assert [r.method for r in t2] == [r.method for r in t1]

    def test_word_oriented_grows_every_design(self, t1, t2):
        for r1_row, r2_row in zip(t1, t2):
            assert r2_row.word_ge > r1_row.gate_equivalents

    def test_multiport_grows_every_design(self, t1, t2):
        for r1_row, r2_row in zip(t1, t2):
            assert r2_row.multiport_ge > r1_row.gate_equivalents

    def test_hardwired_growth_larger_relative(self, t1, t2):
        """Extending hardwired designs costs relatively more than
        extending the programmable ones (their loops are already
        present) — the paper's extendibility argument."""
        def relative_growth(name):
            base = row(t1, name).gate_equivalents
            extended = next(r for r in t2 if r.method == name).word_ge
            return (extended - base) / base

        assert relative_growth("March C") > relative_growth("Microcode-Based")


class TestTable3:
    def test_three_configurations(self, t3):
        assert [r.configuration for r in t3] == [
            "Bit-Oriented",
            "Word-Oriented",
            "Multiport",
        ]

    def test_r4_substantial_reduction(self, t3):
        """Paper: the scan-only redesign cuts the controller by ~60 %;
        our structural model lands in the 40-60 % band."""
        for r in t3:
            assert 35.0 <= r.reduction_percent <= 65.0

    def test_adjusted_below_baseline(self, t3):
        for r in t3:
            assert r.gate_equivalents < r.baseline_ge

    def test_r5_adjusted_microcode_below_prog_fsm(self, t1, t3):
        adjusted_bit = row3 = t3[0].gate_equivalents
        assert adjusted_bit < row(t1, "Prog. FSM-Based").gate_equivalents


class TestFlexibility:
    def test_microcode_realises_everything(self):
        caps = ControllerCapabilities(n_words=64)
        for test in library.ALGORITHMS.values():
            ok, _ = microcode_realizable(test, caps)
            assert ok, test.name

    def test_progfsm_boundary(self):
        caps = ControllerCapabilities(n_words=64)
        expected_unrealizable = {"March B", "March C++", "March A++", "March G"}
        for test in library.ALGORITHMS.values():
            ok, _ = progfsm_realizable(test, caps)
            assert ok == (test.name not in expected_unrealizable), test.name

    def test_storage_constraint_limits_microcode(self):
        caps = ControllerCapabilities(n_words=64)
        ok, reason = microcode_realizable(
            library.MARCH_A_PLUS_PLUS, caps, storage_rows=20
        )
        assert not ok and "storage" in reason

    def test_matrix_summary(self):
        records = flexibility_matrix()
        summary = summarize(records)
        micro_done, micro_total = summary["Microcode-Based"]
        fsm_done, fsm_total = summary["Prog. FSM-Based"]
        assert micro_done == micro_total == 17
        assert fsm_done == 13 and fsm_total == 17


class TestRendering:
    def test_render_table1(self, t1):
        text = render_table1(t1)
        assert "Microcode-Based" in text and "Flex." in text

    def test_render_table2(self, t2):
        text = render_table2(t2)
        assert "Word" in text and "Multi" in text

    def test_render_table3(self, t3):
        text = render_table3(t3)
        assert "Adjusted" in text or "Adj." in text

    def test_cli_main(self, capsys):
        from repro.eval.__main__ import main

        assert main(["table3", "--words", "64"]) == 0
        out = capsys.readouterr().out
        assert "Adjusted" in out
