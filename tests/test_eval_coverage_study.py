"""Unit tests for the coverage-study eval module and CLI."""

import pytest

from repro.eval.coverage_study import (
    COVERAGE_COLUMNS,
    CoverageRow,
    coverage_table,
    render_coverage_table,
)


@pytest.fixture(scope="module")
def rows():
    return coverage_table(n_words=4, algorithms=(
        "MATS", "March C", "March C+", "March C++",
    ))


class TestCoverageTable:
    def test_row_per_algorithm(self, rows):
        assert [r.algorithm for r in rows] == [
            "MATS", "March C", "March C+", "March C++",
        ]

    def test_columns_complete(self, rows):
        for row in rows:
            assert tuple(c for c, _ in row.by_class) == COVERAGE_COLUMNS

    def test_percentages_in_range(self, rows):
        for row in rows:
            for _, percent in row.by_class:
                assert 0.0 <= percent <= 100.0
            assert 0.0 <= row.overall <= 100.0

    def test_af_column_aggregates_four_classes(self, rows):
        march_c = next(r for r in rows if r.algorithm == "March C")
        assert march_c.percent("AF") == 100.0

    def test_enhancement_monotone_overall(self, rows):
        by_name = {r.algorithm: r.overall for r in rows}
        assert (
            by_name["MATS"]
            < by_name["March C"]
            < by_name["March C+"]
            < by_name["March C++"]
        )

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            coverage_table(n_words=4, algorithms=("Nope",))

    def test_render(self, rows):
        text = render_coverage_table(rows)
        assert "March C++" in text
        assert "SAF" in text and "DRF" in text

    def test_cli_coverage(self, capsys):
        from repro.eval.__main__ import main

        assert main(["coverage"]) == 0
        out = capsys.readouterr().out
        assert "Measured fault coverage" in out
