"""Structural checks on the algorithm library (complexities from the
literature; '+'/'++' construction rules from the paper's Section 3)."""

import pytest

from repro.march import library
from repro.march.element import OpKind, Pause


class TestComplexities:
    """Operation counts match the published complexities."""

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("MATS", "4N"),
            ("MATS+", "5N"),
            ("MATS++", "6N"),
            ("March X", "6N"),
            ("March Y", "8N"),
            ("March C", "10N"),
            ("March C (original)", "11N"),
            ("March A", "15N"),
            ("March B", "17N"),
        ],
    )
    def test_complexity(self, name, expected):
        assert library.get(name).complexity == expected

    def test_march_c_plus_adds_four_ops(self):
        assert (
            library.MARCH_C_PLUS.operation_count
            == library.MARCH_C.operation_count + 4
        )

    def test_march_a_plus_adds_four_ops(self):
        assert (
            library.MARCH_A_PLUS.operation_count
            == library.MARCH_A.operation_count + 4
        )


class TestPlusVariants:
    def test_march_c_plus_has_two_pauses(self):
        assert len(library.MARCH_C_PLUS.pauses) == 2

    def test_march_a_plus_has_two_pauses(self):
        assert len(library.MARCH_A_PLUS.pauses) == 2

    def test_pause_duration_is_power_of_two(self):
        duration = library.RETENTION_PAUSE
        assert duration > 0 and duration & (duration - 1) == 0

    def test_pause_exceeds_default_decay(self):
        from repro.faults.retention import DEFAULT_DECAY_TIME

        assert library.RETENTION_PAUSE > DEFAULT_DECAY_TIME

    def test_base_algorithm_prefix_preserved(self):
        assert library.MARCH_C_PLUS.items[: len(library.MARCH_C.items)] == (
            library.MARCH_C.items
        )


class TestPlusPlusVariants:
    def test_all_reads_tripled_in_march_c_plus_plus(self):
        """Every maximal read run in C++ has length divisible by 3."""
        for element in library.MARCH_C_PLUS_PLUS.elements:
            run = 0
            for op in element.ops:
                if op.kind is OpKind.READ:
                    run += 1
                else:
                    assert run % 3 == 0
                    run = 0
            assert run % 3 == 0

    def test_write_count_unchanged(self):
        writes = lambda t: sum(
            1 for op in t.operations() if op.kind is OpKind.WRITE
        )
        assert writes(library.MARCH_C_PLUS_PLUS) == writes(library.MARCH_C_PLUS)

    def test_read_count_tripled(self):
        reads = lambda t: sum(1 for op in t.operations() if op.kind is OpKind.READ)
        assert reads(library.MARCH_C_PLUS_PLUS) == 3 * reads(library.MARCH_C_PLUS)

    def test_pauses_preserved(self):
        assert len(library.MARCH_C_PLUS_PLUS.pauses) == 2
        assert len(library.MARCH_A_PLUS_PLUS.pauses) == 2


class TestRegistry:
    def test_get_known(self):
        assert library.get("March C") is library.MARCH_C

    def test_get_unknown_lists_names(self):
        with pytest.raises(KeyError) as excinfo:
            library.get("March Z")
        assert "March C" in str(excinfo.value)

    def test_paper_baselines_order(self):
        names = [t.name for t in library.PAPER_BASELINES]
        assert names == [
            "March C",
            "March C+",
            "March C++",
            "March A",
            "March A+",
            "March A++",
        ]

    def test_march_c_minus_alias(self):
        assert library.MARCH_C_MINUS.items == library.MARCH_C.items

    def test_all_names_unique(self):
        assert len(library.ALGORITHMS) == 17

    def test_every_algorithm_starts_with_write(self):
        """All library tests initialise the array before reading."""
        for test in library.ALGORITHMS.values():
            first = test.elements[0]
            assert all(op.kind is OpKind.WRITE for op in first.ops), test.name
