"""Differential fault-response conformance: events, checker, shrinker.

The acceptance scenario mirrors PR 3's seeded-defect test one layer up
the stack: a deliberately planted *response-path* defect (an off-by-one
in the fail log's detecting op index) is invisible to every fault-free
check, caught by the fault-response differential, and shrunk to a
single-cell fault on a (1,1,1) memory.
"""

import dataclasses
import json

import pytest

from repro.conformance import (
    FaultSweepReport,
    GOLDEN_CACHE,
    check_conformance,
    check_fault_conformance,
    fault_response_predicate,
    run_fault_sweep,
    run_fault_sweeps,
    shrink_faulty_sample,
    sweep_faults,
)
from repro.conformance.check import GoldenTraceCache
from repro.conformance.faulty import check as faulty_check
from repro.conformance.faulty.events import (
    FailEvent,
    ResponseBudgetExceeded,
    ResponseCapture,
    capture_response,
)
from repro.conformance.faulty.sampling import random_fault, stratified_sample
from repro.conformance.faulty.shrink import _spec_size, simpler_fault_specs
from repro.conformance.trace import golden_trace
from repro.core.controller import ControllerCapabilities
from repro.faults.spec import format_fault, parse_fault
from repro.faults.universe import standard_universe
from repro.march import library
from repro.memory.sram import Sram

CAPS = ControllerCapabilities(n_words=4, width=2, ports=1)


def _faulty_memory(spec, caps=CAPS):
    memory = Sram(caps.n_words, width=caps.width, ports=caps.ports)
    memory.attach(parse_fault(spec))
    return memory


class TestFailEvents:
    def test_capture_records_attributed_mismatches(self):
        stream = golden_trace(library.get("March C"), CAPS)
        capture = capture_response(stream, _faulty_memory("saf:2:1:1"))
        assert capture.detected
        assert capture.ops_applied == len(stream)
        event = capture.events[0]
        assert event.address == 2
        assert event.owner  # provenance attached
        assert stream[event.op_index].op.is_read

    def test_fault_free_memory_yields_no_events(self):
        stream = golden_trace(library.get("March C"), CAPS)
        memory = Sram(CAPS.n_words, width=CAPS.width, ports=CAPS.ports)
        capture = capture_response(stream, memory)
        assert not capture.detected

    def test_key_excludes_owner(self):
        a = FailEvent(3, 0, 1, 0, 1, owner="item 2 ^(r0)")
        b = FailEvent(3, 0, 1, 0, 1, owner="fsm row 2")
        assert a.key == b.key
        assert a.to_dict()["owner"] == "item 2 ^(r0)"

    def test_budget_trips_as_classified_error(self):
        stream = golden_trace(library.get("MATS"), CAPS)
        with pytest.raises(ResponseBudgetExceeded):
            capture_response(
                stream, _faulty_memory("saf:0:0:1"), max_ops=2
            )

    def test_capture_converts_to_faillog(self):
        stream = golden_trace(library.get("March C"), CAPS)
        capture = capture_response(stream, _faulty_memory("saf:2:1:1"))
        log = capture.log("March C")
        assert log.failing_addresses() == [2]
        assert log.failing_cells() == [(2, 1)]


class TestCheckFaultConformance:
    @pytest.mark.parametrize(
        "spec",
        ["saf:2:1:1", "tf:1:0:up", "af2:0:2", "cfin:1:0:2:0:up",
         "irf:2:0:1", "cfst:0:0:1:0:1:0", "paf:0:2:1"],
    )
    def test_architectures_agree_on_library_algorithm(self, spec):
        result = check_fault_conformance(
            library.get("March C"), CAPS, parse_fault(spec)
        )
        assert result.ok, result.describe_failures()
        assert result.detected
        assert [r.status for r in result.responses] == ["ok"] * 3

    def test_whole_library_against_stratified_sample(self):
        caps = ControllerCapabilities(n_words=3, width=1, ports=1)
        faults = sweep_faults(caps, per_kind=1)
        tests = [library.get(name) for name in library.ALGORITHMS]
        report = run_fault_sweep(tests, caps, faults)
        assert report.ok, report.format()
        assert report.checked == len(tests) * len(faults)
        assert report.detected > 0

    def test_undetected_fault_is_ok_but_not_detected(self):
        # A retention fault never decays without a march pause: no
        # session ever observes it, so all responses are (vacuously)
        # equal.  March C is pause-free by construction.
        result = check_fault_conformance(
            library.get("March C"), CAPS, parse_fault("drf:1:0:1")
        )
        assert result.ok
        assert not result.detected
        assert result.golden_events == 0

    def test_progfsm_skipped_outside_boundary(self):
        result = check_fault_conformance(
            library.get("March B"), CAPS, parse_fault("saf:0:0:1")
        )
        assert result.ok  # skips do not fail the check
        progfsm = [
            r for r in result.responses if r.architecture == "progfsm"
        ][0]
        assert progfsm.status == "skipped"
        assert "SM0-SM7" in progfsm.detail

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            check_fault_conformance(
                library.get("MATS"),
                CAPS,
                parse_fault("saf:0:0:1"),
                architectures=["microcode", "risc-v"],
            )

    def test_wedged_session_is_error_not_mismatch(self, monkeypatch):
        def wedged(stream, memory, max_ops=None):
            raise ResponseBudgetExceeded("op budget of 1 exceeded")

        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "hardwired", wedged
        )
        result = check_fault_conformance(
            library.get("MATS"), CAPS, parse_fault("saf:0:0:1")
        )
        hardwired = result.failures[0]
        assert hardwired.architecture == "hardwired"
        assert hardwired.status == "error"
        assert "wedged" in hardwired.detail
        assert hardwired.divergence is None

    def test_crashed_session_is_error(self, monkeypatch):
        def crashed(stream, memory, max_ops=None):
            raise IndexError("comparator bank out of range")

        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "microcode", crashed
        )
        result = check_fault_conformance(
            library.get("MATS"), CAPS, parse_fault("saf:0:0:1")
        )
        microcode = result.failures[0]
        assert microcode.status == "error"
        assert "crashed" in microcode.detail
        assert "IndexError" in microcode.detail

    def test_nonterminating_controller_is_error(self, monkeypatch):
        def hangs(test, caps, compress):
            raise RuntimeError("cycle bound 100000 exceeded")

        monkeypatch.setitem(
            faulty_check.STREAM_BUILDERS, "hardwired", hangs
        )
        result = check_fault_conformance(
            library.get("MATS"), CAPS, parse_fault("saf:0:0:1")
        )
        hardwired = result.failures[0]
        assert hardwired.status == "error"
        assert "did not terminate" in hardwired.detail

    def test_to_dict_and_format(self):
        result = check_fault_conformance(
            library.get("MATS+"), CAPS, parse_fault("tf:1:0:up")
        )
        payload = result.to_dict()
        assert payload["ok"] and payload["detected"]
        assert payload["fault_spec"] == "tf:1:0:up"
        assert len(payload["architectures"]) == 3
        assert "identical fail log and diagnosis" in result.format()


class _ShiftedIndexCapture:
    """The seeded response-path defect: the fail log latches the
    detecting op index one too late (classic off-by-one in the address
    pipeline's fail register).  Stimulus is untouched, and a fault-free
    run logs nothing — the defect is invisible until a fault fires."""

    def __call__(self, stream, memory, max_ops=None):
        capture = capture_response(stream, memory, max_ops=max_ops)
        capture.events = [
            dataclasses.replace(event, op_index=event.op_index + 1)
            for event in capture.events
        ]
        return capture


class TestSeededResponseDefect:
    @pytest.fixture()
    def faillog_off_by_one(self, monkeypatch):
        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES,
            "progfsm",
            _ShiftedIndexCapture(),
        )

    def test_invisible_to_fault_free_checks(self, faillog_off_by_one):
        # Stimulus conformance never consults the response path ...
        assert check_conformance(library.get("March C"), CAPS).ok
        # ... and under an undetected fault nothing is ever logged, so
        # the fault-response differential passes too.
        result = check_fault_conformance(
            library.get("March C"), CAPS, parse_fault("drf:1:0:1")
        )
        assert result.ok and not result.detected

    def test_caught_by_fault_response_differential(self, faillog_off_by_one):
        result = check_fault_conformance(
            library.get("March C"), CAPS, parse_fault("saf:2:1:1")
        )
        assert not result.ok
        failing = result.failures
        assert [r.architecture for r in failing] == ["progfsm"]
        assert failing[0].layer == "events"
        divergence = failing[0].divergence
        assert divergence.kind == "mismatch"
        assert divergence.candidate.op_index == (
            divergence.reference.op_index + 1
        )
        assert divergence.reference.owner  # provenance survives

    def test_shrinks_to_single_cell_fault_on_minimal_memory(
        self, faillog_off_by_one
    ):
        # Start bit-oriented: at width > 1 the golden expansion walks
        # data backgrounds, and the resulting background-mismatch events
        # would let the defect fire without any fault at all.
        shrunk = shrink_faulty_sample(
            library.get("March C"),
            ControllerCapabilities(n_words=4, width=1, ports=1),
            "saf:2:0:1",
            fault_response_predicate(),
            max_checks=500,
        )
        assert shrunk.reduced
        assert shrunk.geometry == (1, 1, 1)
        assert shrunk.fault_spec == "saf:0:0:1"
        assert len(shrunk.test.items) == 1
        # The minimal triple still reproduces.
        final = check_fault_conformance(
            shrunk.test,
            shrunk.capabilities,
            parse_fault(shrunk.fault_spec),
        )
        assert not final.ok

    def test_healthy_response_path_conforms_again(self):
        result = check_fault_conformance(
            library.get("March C"), CAPS, parse_fault("saf:2:1:1")
        )
        assert result.ok


class _DefectiveAggregation(ResponseCapture):
    """Events intact, downstream aggregation broken — exercises the
    coarser comparison layers the event diff cannot reach."""

    def __init__(self, capture, drop_address=None, shift_log_index=0):
        super().__init__(
            ops_applied=capture.ops_applied, events=list(capture.events)
        )
        self._drop_address = drop_address
        self._shift = shift_log_index

    def failures(self):
        failures = super().failures()
        if self._drop_address is not None:
            failures = [
                f for f in failures if f.address != self._drop_address
            ]
        if self._shift:
            failures = [
                dataclasses.replace(f, op_index=f.op_index + self._shift)
                for f in failures
            ]
        return failures


class TestCoarserLayers:
    def _patched(self, monkeypatch, **kwargs):
        def defective(stream, memory, max_ops=None):
            return _DefectiveAggregation(
                capture_response(stream, memory, max_ops=max_ops),
                **kwargs,
            )

        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "hardwired", defective
        )

    def test_faillog_layer_divergence(self, monkeypatch):
        # af3 aliases two addresses, so the golden log fails at both;
        # the defective aggregation silently drops one of them.
        self._patched(monkeypatch, drop_address=0)
        result = check_fault_conformance(
            library.get("March C"), CAPS, parse_fault("af3:0:1")
        )
        failing = result.failures[0]
        assert failing.status == "diverged"
        assert failing.layer == "faillog"
        assert "failing cells" in failing.mismatch

    def test_diagnosis_layer_divergence(self, monkeypatch):
        # Same cells, shifted op indices: the fail log aggregations
        # agree but the classifier reads different march contexts.
        self._patched(monkeypatch, shift_log_index=1)
        result = check_fault_conformance(
            library.get("March C"), CAPS, parse_fault("saf:2:1:1")
        )
        failing = result.failures[0]
        assert failing.status == "diverged"
        assert failing.layer == "diagnosis"


class TestFaultAxisShrinking:
    def test_spec_size_strictly_decreases(self):
        for spec in ("cfid:3:1:2:0:down:1", "af3:2:1", "tf:4:0:down"):
            size = _spec_size(spec)
            for candidate in simpler_fault_specs(spec):
                assert _spec_size(candidate) < size

    def test_canonical_swap_tried_first(self):
        first = next(simpler_fault_specs("cfin:1:0:2:0:up"))
        assert first == "saf:0:0:0"

    def test_non_reproducing_triple_unchanged(self):
        result = shrink_faulty_sample(
            library.get("MATS"),
            CAPS,
            "saf:1:0:1",
            fault_response_predicate(),
        )
        assert not result.reduced
        assert result.fault_spec == "saf:1:0:1"
        assert result.checks == 1

    def test_structural_predicate_shrinks_all_three_axes(self):
        # Reproduces whenever the fault touches an odd-polarity SAF and
        # the march still reads — independent of the architecture, so
        # the shrinker's own mechanics are isolated from the checkers.
        def predicate(test, caps, spec):
            fault = parse_fault(spec)
            return (
                getattr(fault, "value", None) == 1
                and any(
                    op.is_read
                    for item in test.elements
                    for op in item.ops
                )
            )

        result = shrink_faulty_sample(
            library.get("March C"),
            ControllerCapabilities(n_words=6, width=4, ports=2),
            "saf:5:3:1",
            predicate,
        )
        assert result.reduced
        assert result.geometry == (1, 1, 1)
        assert result.fault_spec == "saf:0:0:1"
        assert result.to_dict()["fault"] == "saf:0:0:1"


class TestSampling:
    def test_stratified_sample_covers_every_kind(self):
        universe = standard_universe(4, width=1, include_npsf=False)
        sample = stratified_sample(universe, per_kind=2)
        assert {f.kind for f in sample} == set(universe.kinds())
        assert all(format_fault(f) is not None for f in sample)

    def test_stratified_sample_deterministic(self):
        universe = standard_universe(4, width=1, include_npsf=False)
        a = [format_fault(f) for f in stratified_sample(universe, seed=7)]
        b = [format_fault(f) for f in stratified_sample(universe, seed=7)]
        assert a == b

    def test_random_fault_is_seed_deterministic(self):
        import random

        caps = ControllerCapabilities(n_words=5, width=2, ports=1)
        a = format_fault(random_fault(random.Random("3:17"), caps))
        b = format_fault(random_fault(random.Random("3:17"), caps))
        assert a == b

    def test_random_fault_spreads_over_kinds(self):
        import random

        rng = random.Random(0)
        caps = ControllerCapabilities(n_words=4, width=1, ports=1)
        kinds = {random_fault(rng, caps).kind for _ in range(60)}
        assert len(kinds) >= 5  # uniform over kinds, not instances


class TestPortUniverse:
    """The sweep universe must see port faults on multi-port geometries
    (regression: ``sweep_faults`` never passed ``capabilities.ports``,
    so ``repro.faults.port`` faults were never swept)."""

    def test_default_universe_has_no_port_stratum(self):
        universe = standard_universe(4, width=2, include_npsf=False)
        assert "PAF" not in universe.kinds()
        explicit = standard_universe(4, width=2, include_npsf=False, ports=1)
        assert [format_fault(f) for f in explicit] == [
            format_fault(f) for f in universe
        ]

    def test_multiport_universe_gains_one_paf_per_cell_per_port(self):
        universe = standard_universe(4, width=2, include_npsf=False, ports=2)
        port_faults = universe.by_kind()["PAF"]
        assert len(port_faults) == 2 * 4 * 2  # ports x words x width
        specs = {format_fault(f) for f in port_faults}
        assert "paf:0:0:0" in specs and "paf:1:3:1" in specs
        # Only the port stratum is new; the rest of the population is
        # untouched.
        base = standard_universe(4, width=2, include_npsf=False)
        assert len(universe) == len(base) + len(port_faults)

    def test_stratified_sample_includes_the_port_stratum(self):
        universe = standard_universe(3, width=1, include_npsf=False, ports=2)
        sample = stratified_sample(universe, per_kind=2)
        assert sum(1 for f in sample if f.kind == "PAF") == 2

    def test_sweep_faults_threads_ports(self):
        multiport = ControllerCapabilities(n_words=3, width=1, ports=2)
        sample = sweep_faults(multiport, per_kind=1)
        assert any(
            format_fault(f).startswith("paf:") for f in sample
        ), "port faults missing from the multi-port sweep population"
        single = sweep_faults(
            ControllerCapabilities(n_words=3, width=1, ports=1), per_kind=1
        )
        assert not any(format_fault(f).startswith("paf:") for f in single)

    def test_full_universe_counts_pinned(self):
        caps = ControllerCapabilities(n_words=4, width=2, ports=2)
        full = sweep_faults(caps, full=True)
        counts = {}
        for fault in full:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        assert counts["PAF"] == 16
        assert len(full) == 328 + 16

    def test_multiport_sweep_conforms_under_port_faults(self):
        caps = ControllerCapabilities(n_words=2, width=1, ports=2)
        faults = [f for f in sweep_faults(caps, per_kind=2)
                  if f.kind == "PAF"]
        assert faults
        report = run_fault_sweep([library.get("March C")], caps, faults)
        assert report.ok, report.format()


def _payload(report, include_timing=False):
    return json.dumps(
        report.to_json(include_timing=include_timing), sort_keys=True
    )


class TestParallelSweep:
    def test_jobs_independent_payload(self):
        """Sharded and serial sweeps must agree byte-for-byte (timing
        aside), same as the fuzz determinism guarantee."""
        caps = ControllerCapabilities(n_words=3, width=1, ports=1)
        faults = sweep_faults(caps, per_kind=1)
        tests = [library.get(name) for name in library.ALGORITHMS]
        serial = run_fault_sweep(tests, caps, faults, jobs=1)
        parallel = run_fault_sweep(tests, caps, faults, jobs=4)
        assert _payload(serial) == _payload(parallel)
        assert parallel.jobs == 4
        assert len(parallel.shards) > 1
        assert sum(s["runs"] for s in parallel.shards) == serial.checked
        assert parallel.wall_time_s > 0

    def test_timing_lives_only_under_the_timing_key(self):
        caps = ControllerCapabilities(n_words=2, width=1, ports=1)
        report = run_fault_sweep(
            [library.get("MATS")], caps, sweep_faults(caps, per_kind=1)
        )
        payload = report.to_json()
        assert payload["timing"]["jobs"] == 1
        assert payload["timing"]["wall_time_s"] > 0
        assert payload["timing"]["runs_per_s"] > 0
        assert payload["timing"]["shards"][0]["runs"] == report.checked
        assert "timing" not in report.to_json(include_timing=False)

    def test_merge_matches_the_serial_report(self):
        caps = ControllerCapabilities(n_words=3, width=1, ports=1)
        tests = [library.get("MATS"), library.get("March C")]
        faults = [parse_fault(s)
                  for s in ("saf:0:0:1", "tf:1:0:up", "drf:1:0:1")]
        serial = run_fault_sweep(tests, caps, faults)
        shards = [run_fault_sweep([test], caps, faults) for test in tests]
        merged = FaultSweepReport.merge(shards)
        assert _payload(merged) == _payload(serial)

    def test_merge_rejects_mixed_geometries(self):
        a = FaultSweepReport(geometry=(2, 1, 1))
        b = FaultSweepReport(geometry=(3, 1, 1))
        with pytest.raises(ValueError, match="different geometries"):
            FaultSweepReport.merge([a, b])
        with pytest.raises(ValueError, match="empty"):
            FaultSweepReport.merge([])

    def test_non_positive_jobs_rejected(self):
        caps = ControllerCapabilities(n_words=2, width=1, ports=1)
        with pytest.raises(ValueError, match="at least one job"):
            run_fault_sweep(
                [library.get("MATS")], caps, [parse_fault("saf:0:0:1")],
                jobs=0,
            )

    def test_failure_lines_carry_geometry_and_layer(self, monkeypatch):
        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "progfsm",
            _ShiftedIndexCapture(),
        )
        report = run_fault_sweep(
            [library.get("March C")], CAPS, [parse_fault("saf:2:1:1")]
        )
        assert not report.ok
        line = report.format().splitlines()[-1]
        assert "(4, 2, 1)" in line
        assert "progfsm" in line and "events layer" in line

    def test_error_failure_lines_name_the_architecture(self, monkeypatch):
        def crashed(stream, memory, max_ops=None):
            raise IndexError("comparator bank out of range")

        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "microcode", crashed
        )
        report = run_fault_sweep(
            [library.get("MATS")], CAPS, [parse_fault("saf:0:0:1")]
        )
        assert "microcode: error" in report.format().splitlines()[-1]


class TestMultiGeometrySweeps:
    def test_sections_per_geometry(self):
        report = run_fault_sweeps(
            [(3, 1, 1), (2, 2, 1)], [library.get("MATS+")], per_kind=1
        )
        assert report.ok, report.format()
        assert [s.geometry for s in report.sweeps] == [(3, 1, 1), (2, 2, 1)]
        payload = report.to_json()
        assert [g["geometry"] for g in payload["geometries"]] == [
            [3, 1, 1], [2, 2, 1]
        ]
        assert payload["checked"] == report.checked
        assert payload["timing"]["wall_time_s"] > 0
        formatted = report.format()
        assert "(3, 1, 1)" in formatted and "(2, 2, 1)" in formatted

    def test_two_component_geometry_defaults_to_one_port(self):
        report = run_fault_sweeps([(2, 2)], [library.get("MATS")],
                                  per_kind=1)
        assert report.sweeps[0].geometry == (2, 2, 1)

    def test_multiport_geometry_draws_its_own_population(self):
        caps = ControllerCapabilities(n_words=2, width=1, ports=2)
        report = run_fault_sweeps(
            [(2, 1, 1), (2, 1, 2)], [library.get("March C")], per_kind=1
        )
        single, multi = report.sweeps
        assert multi.checked == len(sweep_faults(caps, per_kind=1))
        assert multi.checked > single.checked  # the PAF stratum

    def test_explicit_faults_reused_for_every_geometry(self):
        report = run_fault_sweeps(
            [(3, 1, 1), (2, 1, 1)],
            [library.get("MATS")],
            faults=[parse_fault("saf:0:0:1")],
        )
        assert [s.checked for s in report.sweeps] == [1, 1]

    def test_empty_geometry_list_rejected(self):
        with pytest.raises(ValueError, match="at least one geometry"):
            run_fault_sweeps([], [library.get("MATS")])


class TestGoldenTraceMemoisation:
    def test_cache_hit_during_a_shrink(self):
        """The perf regression: a shrink run must reuse memoised golden
        expansions instead of re-expanding the champion every check.
        The predicate rejects n_words < 2, so the geometry probe of
        (1, 1, 1) is retried in the second fixpoint round with identical
        champion state — that repeat must be served from the cache."""
        GOLDEN_CACHE.clear()

        def predicate(test, caps):
            check_conformance(test, caps)
            return caps.n_words >= 2

        from repro.conformance import shrink_sample

        shrink_sample(
            library.get("March C"),
            ControllerCapabilities(n_words=4, width=1, ports=1),
            predicate,
            max_checks=100,
        )
        assert GOLDEN_CACHE.hits > 0

    def test_cache_key_is_notation_and_geometry(self):
        cache = GoldenTraceCache()
        test = library.get("MATS")
        first = cache.get(test, CAPS)
        second = cache.get(test, CAPS)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        other = cache.get(
            test, ControllerCapabilities(n_words=2, width=1, ports=1)
        )
        assert other is not first
        assert cache.misses == 2

    def test_cache_is_bounded(self):
        cache = GoldenTraceCache(maxsize=2)
        for n_words in (1, 2, 3):
            cache.get(
                library.get("MATS"),
                ControllerCapabilities(n_words=n_words, width=1, ports=1),
            )
        assert len(cache) == 2

    def test_fault_check_uses_the_shared_cache(self):
        GOLDEN_CACHE.clear()
        check_fault_conformance(
            library.get("MATS"), CAPS, parse_fault("saf:0:0:1")
        )
        check_fault_conformance(
            library.get("MATS"), CAPS, parse_fault("saf:0:0:0")
        )
        assert GOLDEN_CACHE.hits >= 1
