"""Unit tests for the cycle-accurate microcode BIST controller."""

import pytest

from repro.core.controller import ControllerCapabilities, Flexibility
from repro.core.microcode.assembler import assemble
from repro.core.microcode.controller import (
    DECODER_OUTPUTS,
    MicrocodeBistController,
    decoder_outputs,
    decoder_truth_table,
)
from repro.core.microcode.isa import ConditionOp
from repro.march import library
from repro.march.notation import parse_test
from repro.march.simulator import expand

CAPS = ControllerCapabilities(n_words=8)


class TestDecoderOutputs:
    def test_nop_increments(self):
        out = decoder_outputs(ConditionOp.NOP, False, False, False, False)
        assert out["ic_inc"] and not out["test_end"]

    def test_loop_not_last_branches(self):
        out = decoder_outputs(ConditionOp.LOOP, False, False, False, False)
        assert out["ic_load_branch"]
        assert not out["ic_inc"]

    def test_loop_last_saves_and_advances(self):
        out = decoder_outputs(ConditionOp.LOOP, True, False, False, False)
        assert out["branch_save"] and out["ic_inc"] and out["addr_restart"]

    def test_repeat_first_execution(self):
        out = decoder_outputs(ConditionOp.REPEAT, False, False, False, False)
        assert out["ref_load"] and out["ic_reset1"]

    def test_repeat_second_execution(self):
        out = decoder_outputs(ConditionOp.REPEAT, False, False, False, True)
        assert out["ref_clear"] and out["ic_inc"] and out["branch_save"]

    def test_next_bg_not_last(self):
        out = decoder_outputs(ConditionOp.NEXT_BG, False, False, False, False)
        assert out["data_step"] and out["ic_reset0"]

    def test_next_bg_last(self):
        out = decoder_outputs(ConditionOp.NEXT_BG, False, True, False, False)
        assert out["data_reset"] and out["ic_inc"]

    def test_inc_port_not_last(self):
        out = decoder_outputs(ConditionOp.INC_PORT, False, False, False, False)
        assert out["port_step"] and out["ic_reset0"] and out["data_reset"]

    def test_inc_port_last_terminates(self):
        out = decoder_outputs(ConditionOp.INC_PORT, False, False, True, False)
        assert out["test_end"]

    def test_terminate(self):
        out = decoder_outputs(ConditionOp.TERMINATE, False, False, False, False)
        assert out["test_end"]

    def test_save(self):
        out = decoder_outputs(ConditionOp.SAVE, False, False, False, False)
        assert out["branch_save"] and out["ic_inc"]

    def test_hold_waits(self):
        out = decoder_outputs(
            ConditionOp.HOLD, False, False, False, False, hold_done=False
        )
        assert not out["ic_inc"]

    def test_exactly_one_sequencing_strobe(self):
        """Per cycle at most one of the IC control strobes fires."""
        for cond in ConditionOp:
            for flags in range(32):
                out = decoder_outputs(
                    cond,
                    bool(flags & 1),
                    bool(flags & 2),
                    bool(flags & 4),
                    bool(flags & 8),
                    bool(flags & 16),
                )
                sequencing = sum(
                    out[name]
                    for name in ("ic_inc", "ic_reset0", "ic_reset1",
                                 "ic_load_branch")
                )
                assert sequencing <= 1


class TestDecoderTruthTable:
    def test_covers_all_outputs(self):
        table = decoder_truth_table()
        assert set(table.outputs) == set(DECODER_OUTPUTS)

    def test_synthesis_matches_function(self):
        """The minimised SOP agrees with decoder_outputs everywhere."""
        table = decoder_truth_table()
        covers = table.synthesize()
        for minterm in range(256):
            cond = ConditionOp(minterm & 0b111)
            expected = decoder_outputs(
                cond,
                bool(minterm >> 3 & 1),
                bool(minterm >> 4 & 1),
                bool(minterm >> 5 & 1),
                bool(minterm >> 6 & 1),
                bool(minterm >> 7 & 1),
            )
            for name, cover in covers.items():
                got = any(
                    (minterm & care) == (value & care) for value, care in cover
                )
                assert got == expected[name], (name, minterm)

    def test_positive_cost(self):
        assert decoder_truth_table().gate_equivalents() > 0


class TestControllerExecution:
    @pytest.mark.parametrize(
        "test",
        list(library.ALGORITHMS.values()),
        ids=lambda t: t.name,
    )
    def test_stream_matches_golden(self, test):
        controller = MicrocodeBistController(test, CAPS)
        assert list(controller.operations()) == list(expand(test, 8))

    def test_uncompressed_stream_matches_golden(self):
        controller = MicrocodeBistController(
            library.MARCH_C, CAPS, compress=False
        )
        assert list(controller.operations()) == list(expand(library.MARCH_C, 8))

    def test_word_oriented_multiport_stream(self):
        caps = ControllerCapabilities(n_words=4, width=4, ports=2)
        controller = MicrocodeBistController(library.MARCH_A, caps)
        assert list(controller.operations()) == list(
            expand(library.MARCH_A, 4, width=4, ports=2)
        )

    def test_trace_exposes_repeat_bit(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        repeat_states = {entry.repeat_bit for entry in controller.trace()}
        assert repeat_states == {True, False}

    def test_trace_cycle_monotone(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        cycles = [entry.cycle for entry in controller.trace()]
        assert cycles == sorted(cycles)

    def test_runaway_program_raises(self):
        program = assemble(parse_test("~(w0)"), CAPS)
        # Corrupt: replace TERMINATE with an unconditional self-branch by
        # building a program whose only row loops forever.
        from repro.core.microcode.assembler import MicrocodeProgram
        from repro.core.microcode.instruction import MicroInstruction

        bad = MicrocodeProgram(
            name="runaway",
            instructions=[
                MicroInstruction(cond=ConditionOp.SAVE),
                MicroInstruction(cond=ConditionOp.LOOP, read_en=True),
            ],
            source=parse_test("~(r0)"),
        )
        # First defense layer: the static verifier rejects the program
        # at load time (LOOP with no ADDR_INC provably diverges).
        from repro.analysis import VerificationError

        with pytest.raises(VerificationError):
            MicrocodeBistController(bad, CAPS, max_cycles=200)
        # Second layer: with verification bypassed, the runtime
        # cycle-budget guard still catches the hang.
        controller = MicrocodeBistController(
            bad, CAPS, max_cycles=200, verify=False
        )
        with pytest.raises(RuntimeError):
            list(controller.operations())

    def test_load_swaps_algorithm_without_hardware_change(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        storage_before = controller.storage
        controller.load(library.MARCH_Y)
        assert controller.storage is storage_before
        assert list(controller.operations()) == list(expand(library.MARCH_Y, 8))

    def test_reload_longer_program_into_same_storage_rejected(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        with pytest.raises(ValueError):
            controller.load(library.MARCH_A_PLUS_PLUS)  # 26 rows > 20

    def test_loaded_test(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        assert controller.loaded_test() is library.MARCH_C


class TestControllerMetadata:
    def test_flexibility_high(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        assert controller.flexibility is Flexibility.HIGH

    def test_storage_auto_grows_for_long_programs(self):
        controller = MicrocodeBistController(library.MARCH_A_PLUS_PLUS, CAPS)
        assert controller.storage.rows >= len(controller.program)

    def test_hardware_lists_architecture_blocks(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        names = [c.name for c in controller.hardware().components]
        for expected in (
            "controller/storage unit",
            "controller/instruction counter",
            "controller/branch register",
            "controller/reference register",
            "controller/instruction decoder",
            "datapath/address counter",
        ):
            assert any(expected in n for n in names), expected

    def test_scan_only_cell_reduces_area(self):
        from repro.area.estimator import estimate

        full = MicrocodeBistController(library.MARCH_C, CAPS)
        adjusted = MicrocodeBistController(
            library.MARCH_C, CAPS, storage_cell="scan_only"
        )
        assert (
            estimate(adjusted.hardware()).gate_equivalents
            < estimate(full.hardware()).gate_equivalents
        )

    def test_repr(self):
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        assert "Microcode-Based" in repr(controller)
