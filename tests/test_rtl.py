"""Unit tests for the Verilog export."""

import re

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import assemble
from repro.march import library
from repro.rtl import (
    check_verilog_structure,
    hardwired_controller_verilog,
    microcode_rom_verilog,
    program_memh,
)

CAPS = ControllerCapabilities(n_words=64)
FULL_CAPS = ControllerCapabilities(n_words=64, width=8, ports=2)


def hardwired(test=library.MARCH_C, caps=CAPS):
    return HardwiredBistController(test, caps)


class TestHardwiredEmitter:
    def test_module_name_derived_from_algorithm(self):
        text = hardwired_controller_verilog(hardwired())
        assert "module bist_march_c_ctrl" in text

    def test_structure_clean(self):
        for test in (library.MARCH_C, library.MARCH_C_PLUS,
                      library.MARCH_A_PLUS_PLUS):
            text = hardwired_controller_verilog(hardwired(test))
            assert check_verilog_structure(text) == [], test.name

    def test_one_case_arm_per_state(self):
        controller = hardwired()
        text = hardwired_controller_verilog(controller)
        arms = re.findall(r"^\s+S\d+: begin", text, flags=re.M)
        assert len(arms) == controller.graph.state_count

    def test_all_ports_present(self):
        text = hardwired_controller_verilog(hardwired())
        for port in ("last_address", "last_data", "last_port", "pause_done",
                     "read_en", "write_en", "test_end", "addr_down"):
            assert re.search(rf"\b{port}\b", text), port

    def test_pause_states_only_in_plus_variants(self):
        plain = hardwired_controller_verilog(hardwired(library.MARCH_C))
        plus = hardwired_controller_verilog(hardwired(library.MARCH_C_PLUS))
        assert "pause_done" in plain  # port always exists
        assert "// pause" not in plain
        assert "// pause" in plus

    def test_loop_states_follow_capabilities(self):
        bit = hardwired_controller_verilog(hardwired())
        full = hardwired_controller_verilog(
            hardwired(library.MARCH_C, FULL_CAPS)
        )
        assert "// bg_loop" not in bit
        assert "// bg_loop" in full and "// port_loop" in full

    def test_reset_goes_to_idle(self):
        text = hardwired_controller_verilog(hardwired())
        assert "state <= S0;" in text

    def test_case_arms_match_simulator_semantics(self):
        """The emitted arm for an element-final state mirrors
        step_signals on both branch conditions."""
        controller = hardwired()
        text = hardwired_controller_verilog(controller)
        # Element-final op states branch on last_address.
        finals = [
            s for s in controller.graph.states
            if s.kind == "op" and s.is_element_last
        ]
        assert finals
        for state in finals:
            arm = re.search(
                rf"S{state.index}: begin.*?\n        end",
                text, flags=re.S,
            ).group(0)
            assert "if (last_address)" in arm
            assert f"next_state = {controller.graph.state_bits}'d" in arm


class TestMicrocodeRomEmitter:
    def test_memh_row_count(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        memh = program_memh(program, rows=16)
        words = [l for l in memh.splitlines() if not l.startswith("//")]
        assert len(words) == 16

    def test_memh_values_roundtrip(self):
        from repro.core.microcode.instruction import MicroInstruction

        program = assemble(library.MARCH_C, FULL_CAPS)
        memh = program_memh(program)
        words = [
            int(l, 16) for l in memh.splitlines() if not l.startswith("//")
        ]
        decoded = [MicroInstruction.decode(w) for w in words[: len(program)]]
        assert decoded == program.instructions

    def test_rom_module_structure(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        text = microcode_rom_verilog(program, rows=16, memh_file="marchc.memh")
        assert check_verilog_structure(text) == []
        assert '$readmemh("marchc.memh", storage);' in text
        assert "reg [9:0] storage [0:15];" in text

    def test_rom_address_width(self):
        program = assemble(library.MARCH_C, FULL_CAPS)
        text = microcode_rom_verilog(program, rows=32)
        assert "input  wire [4:0] row," in text


class TestStructuralLinter:
    def test_clean_module_passes(self):
        text = "module m (input wire a);\nendmodule\n"
        assert check_verilog_structure(text) == []

    def test_unbalanced_module_caught(self):
        assert check_verilog_structure("module m ();\n") == [
            "unbalanced module/endmodule",
            "unbalanced parentheses",
        ] or "unbalanced module/endmodule" in check_verilog_structure(
            "module m ();\n"
        )

    def test_unbalanced_begin_caught(self):
        text = "module m ();\nalways @(*) begin\nendmodule\n"
        assert "unbalanced begin/end" in check_verilog_structure(text)

    def test_undeclared_state_caught(self):
        text = (
            "module m ();\nlocalparam [1:0] S0 = 2'd0;\n"
            "always @(*) begin\n  if (S3) ;\nend\nendmodule\n"
        )
        problems = check_verilog_structure(text)
        assert any("S3" in p for p in problems)

    def test_comments_do_not_confuse_counts(self):
        text = "module m ();\n// begin begin begin\nendmodule\n"
        assert check_verilog_structure(text) == []


class TestDecoderEmitter:
    def test_structure_clean(self):
        from repro.rtl.verilog import microcode_decoder_verilog

        text = microcode_decoder_verilog()
        assert check_verilog_structure(text) == []

    def test_all_strobes_emitted(self):
        from repro.core.microcode.controller import DECODER_OUTPUTS
        from repro.rtl.verilog import microcode_decoder_verilog

        text = microcode_decoder_verilog()
        for strobe in DECODER_OUTPUTS:
            assert re.search(rf"assign {strobe} =", text) or re.search(
                rf"output wire {strobe}", text
            ), strobe

    def test_assign_network_matches_truth_table(self):
        """Evaluate the emitted SOP text against the Python decoder."""
        from repro.core.microcode.controller import decoder_outputs
        from repro.core.microcode.isa import ConditionOp
        from repro.rtl.verilog import DECODER_INPUTS, microcode_decoder_verilog

        text = microcode_decoder_verilog()
        assigns = dict(
            re.findall(r"assign (\w+) = (.*?);", text, flags=re.S)
        )

        def evaluate(expression, env):
            python_expr = " ".join(expression.split())
            python_expr = python_expr.replace("~", " not ")
            python_expr = python_expr.replace("&", " and ")
            python_expr = python_expr.replace("|", " or ")
            python_expr = python_expr.replace("1'b1", "True")
            python_expr = python_expr.replace("1'b0", "False")
            return bool(eval(python_expr, {"__builtins__": {}}, env))

        for minterm in range(256):
            env = {
                name: bool((minterm >> bit) & 1)
                for bit, name in enumerate(DECODER_INPUTS)
            }
            expected = decoder_outputs(
                ConditionOp(minterm & 0b111),
                env["last_address"], env["last_data"], env["last_port"],
                env["repeat_bit"], env["hold_done"],
            )
            for strobe, expression in assigns.items():
                assert evaluate(expression, env) == expected[strobe], (
                    strobe, minterm,
                )


class TestLowerFsmEmitter:
    def test_structure_clean(self):
        from repro.rtl.verilog import lower_fsm_verilog

        assert check_verilog_structure(lower_fsm_verilog()) == []

    def test_assign_network_matches_truth_table(self):
        from repro.core.progfsm.lower_fsm import (
            LowerFsmState,
            lower_fsm_step,
        )
        from repro.rtl.verilog import LOWER_FSM_INPUTS, lower_fsm_verilog

        text = lower_fsm_verilog()
        assigns = dict(re.findall(r"assign (\w+) = (.*?);", text, flags=re.S))

        def evaluate(expression, env):
            python_expr = " ".join(expression.split())
            python_expr = python_expr.replace("~", " not ")
            python_expr = python_expr.replace("&", " and ")
            python_expr = python_expr.replace("|", " or ")
            python_expr = python_expr.replace("1'b1", "True")
            python_expr = python_expr.replace("1'b0", "False")
            return bool(eval(python_expr, {"__builtins__": {}}, env))

        for minterm in range(512):
            state_code = minterm & 0b111
            if state_code > int(LowerFsmState.DONE):
                continue  # don't-care codes: any output acceptable
            env = {
                name: bool((minterm >> bit) & 1)
                for bit, name in enumerate(LOWER_FSM_INPUTS)
            }
            out = lower_fsm_step(
                LowerFsmState(state_code),
                (minterm >> 3) & 0b111,
                env["last_address"], env["start"], env["hold"],
            )
            expected = {
                "ns0": bool(int(out.next_state) & 1),
                "ns1": bool(int(out.next_state) & 2),
                "ns2": bool(int(out.next_state) & 4),
                "read": out.read,
                "write": out.write,
                "rel_polarity": bool(out.rel_polarity),
                "addr_start": out.addr_start,
                "addr_inc": out.addr_inc,
                "done": out.done,
            }
            for strobe, expression in assigns.items():
                assert evaluate(expression, env) == expected[strobe], (
                    strobe, minterm,
                )
