"""The numpy batch sweep engine against the scalar oracle.

Three layers of evidence that ``engine="vector"`` is a pure
performance change:

* **event level** — :func:`repro.vector.sweep.vector_capture` must
  reproduce :func:`capture_response`'s fail events field-for-field for
  every spec-expressible fault kind, on geometries from the degenerate
  (1,1,1) up to multi-bit multi-port;
* **report level** — ``run_fault_sweep`` payloads (timing aside) must
  be identical across engines and across ``jobs``;
* **fallback level** — everything without lane semantics (subclassed
  faults, restricted-port faults, patched capture tables, >64-bit
  words) must take the scalar path, be *counted*, and still match the
  scalar report byte for byte.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.conformance import (
    GOLDEN_CACHE,
    check_fault_conformance,
    run_fault_sweep,
    sweep_faults,
)
from repro.conformance.faulty import check as faulty_check
from repro.conformance.faulty.check import (
    CrossEngineResult,
    FaultSweepReport,
    check_cross_engine,
)
from repro.conformance.faulty.events import capture_response
from repro.conformance.trace import golden_trace
from repro.core.controller import ControllerCapabilities
from repro.faults.port import PortRestrictedFault, PortStuckOpenAccess
from repro.faults.spec import parse_fault
from repro.faults.stuck_at import StuckAtFault
from repro.march import library
from repro.memory.sram import Sram
from repro.vector.errors import UnsupportedFault
from repro.vector.sweep import vector_capture

MARCH_C = library.get("March C")
MARCH_CPP = library.get("March C++")


def _caps(words, width=1, ports=1):
    return ControllerCapabilities(n_words=words, width=width, ports=ports)


def _scalar_capture(stream, caps, fault):
    memory = Sram(caps.n_words, width=caps.width, ports=caps.ports)
    memory.attach(fault)
    fault.reset()
    return capture_response(stream, memory)


def _events(capture):
    return [event.to_dict() for event in capture.events]


class TestEventLevelEquivalence:
    @pytest.mark.parametrize(
        "geometry", [(1, 1, 1), (4, 2, 1), (8, 1, 1), (4, 2, 2)]
    )
    def test_full_universe_captures_match(self, geometry):
        """Every spec-expressible fault kind, event-for-event.

        ``sweep_faults(full=True)`` enumerates every stratum the
        engine claims lane semantics for (including the PAF stratum on
        the multi-port geometry and nothing but SAF/TF/retention on
        the degenerate single-cell one), so agreement here covers each
        lane-entry class in ``repro.vector.semantics``.
        """
        caps = _caps(*geometry)
        stream = golden_trace(MARCH_CPP, caps)
        for fault in sweep_faults(caps, full=True):
            try:
                vector = vector_capture(stream, caps, fault)
            except UnsupportedFault:
                continue
            scalar = _scalar_capture(stream, caps, fault)
            assert vector.ops_applied == scalar.ops_applied
            assert _events(vector) == _events(scalar), fault.describe()

    def test_multiport_paf_detected_only_via_faulty_port(self):
        caps = _caps(4, 2, 2)
        stream = golden_trace(MARCH_C, caps)
        fault = PortStuckOpenAccess(port=1, word=2, bit=1)
        vector = vector_capture(stream, caps, fault)
        scalar = _scalar_capture(stream, caps, fault)
        assert _events(vector) == _events(scalar)
        assert vector.detected
        assert {event.port for event in vector.events} == {1}

    def test_budget_trip_matches_scalar_classification(self):
        caps = _caps(4, 2, 1)
        stream = golden_trace(MARCH_C, caps)
        fault = StuckAtFault(0, 0, 1)
        from repro.conformance.faulty.events import ResponseBudgetExceeded

        with pytest.raises(ResponseBudgetExceeded) as vector_error:
            vector_capture(stream, caps, fault, max_ops=3)
        with pytest.raises(ResponseBudgetExceeded) as scalar_error:
            _scalar_capture_budget(stream, caps, fault, max_ops=3)
        assert str(vector_error.value) == str(scalar_error.value)


def _scalar_capture_budget(stream, caps, fault, max_ops):
    memory = Sram(caps.n_words, width=caps.width, ports=caps.ports)
    memory.attach(fault)
    fault.reset()
    return capture_response(stream, memory, max_ops=max_ops)


class _SubclassedStuckAt(StuckAtFault):
    """Same behaviour, unknown type: must take the scalar fallback
    (the ``type(self) is not StuckAtFault`` guard in ``vector_lane``
    protects against subclasses that override hooks)."""


class _RemoveRaisesStuckAt(StuckAtFault):
    def remove(self, memory) -> None:
        raise RuntimeError("deliberately broken remove()")


class TestReportLevelEquivalence:
    TESTS = [library.get(name) for name in ("MATS", "March C", "March Y")]

    def _payloads_equal(self, a, b):
        return a.to_json(include_timing=False) == b.to_json(
            include_timing=False
        )

    def test_cross_engine_identity_stratified(self):
        caps = _caps(4, 2, 1)
        faults = sweep_faults(caps, per_kind=1, seed=3)
        result = check_cross_engine(self.TESTS, caps, faults)
        assert result.ok
        assert result.divergence() is None
        assert "IDENTICAL" in result.format()
        assert result.vector.engine == "vector"
        assert result.vector.checked == result.scalar.checked > 0

    def test_single_cell_geometry_sweep(self):
        caps = _caps(1, 1, 1)
        faults = sweep_faults(caps, full=True)
        result = check_cross_engine(self.TESTS, caps, faults)
        assert result.ok
        assert result.scalar.checked == len(self.TESTS) * len(faults)

    def test_vector_jobs_independence(self):
        caps = _caps(4, 2, 1)
        faults = sweep_faults(caps, per_kind=1, seed=5)
        serial = run_fault_sweep(
            self.TESTS, caps, faults, engine="vector", jobs=1
        )
        sharded = run_fault_sweep(
            self.TESTS, caps, faults, engine="vector", jobs=3
        )
        assert self._payloads_equal(serial, sharded)
        assert sharded.jobs == 3

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_fault_sweep(
                self.TESTS, _caps(4), [StuckAtFault(0, 0, 1)],
                engine="warp",
            )

    def test_cross_engine_divergence_formatting(self):
        """A synthetic disagreement names the first differing field."""
        scalar = FaultSweepReport(geometry=(4, 2, 1), checked=3, detected=2)
        vector = FaultSweepReport(
            geometry=(4, 2, 1), checked=3, detected=1, engine="vector"
        )
        result = CrossEngineResult(scalar=scalar, vector=vector)
        assert not result.ok
        assert "detected" in result.divergence()
        assert "DIVERGED" in result.format()
        assert result.to_json()["ok"] is False


class TestFallbacks:
    def test_subclassed_fault_falls_back_and_matches(self):
        caps = _caps(4, 2, 1)
        faults = [_SubclassedStuckAt(1, 0, 1), StuckAtFault(2, 1, 0)]
        tests = [MARCH_C]
        vector = run_fault_sweep(tests, caps, faults, engine="vector")
        scalar = run_fault_sweep(tests, caps, faults, engine="scalar")
        assert vector.fallback_runs == 1
        assert vector.to_json(include_timing=False) == scalar.to_json(
            include_timing=False
        )

    def test_fallback_only_batch_counts_every_run(self):
        """PortRestrictedFault has no lane semantics at all."""
        caps = _caps(4, 1, 2)
        faults = [
            PortRestrictedFault(port=1, fault=StuckAtFault(0, 0, 1)),
            PortRestrictedFault(port=0, fault=StuckAtFault(2, 0, 0)),
        ]
        vector = run_fault_sweep([MARCH_C], caps, faults, engine="vector")
        scalar = run_fault_sweep([MARCH_C], caps, faults, engine="scalar")
        assert vector.fallback_runs == vector.checked == len(faults)
        assert vector.to_json(include_timing=False) == scalar.to_json(
            include_timing=False
        )
        assert "2 scalar fallback(s)" in vector.format()

    def test_remove_raising_mid_batch_propagates_like_scalar(self):
        """A fallback fault whose ``remove()`` raises surfaces the same
        error from both engines, after the batch's earlier faults ran."""
        caps = _caps(4, 2, 1)
        faults = [StuckAtFault(0, 0, 1), _RemoveRaisesStuckAt(1, 1, 0)]
        with pytest.raises(RuntimeError, match="deliberately broken"):
            run_fault_sweep([MARCH_C], caps, faults, engine="scalar")
        with pytest.raises(RuntimeError, match="deliberately broken"):
            run_fault_sweep([MARCH_C], caps, faults, engine="vector")

    def test_patched_capture_table_disables_fast_path(self, monkeypatch):
        """The seeded-defect harness swaps RESPONSE_CAPTURES entries;
        the vector fast path's capture-identity precondition is gone,
        so the whole sweep must take the scalar road (and therefore
        still *see* the patched capture)."""
        calls = []

        def counting_capture(stream, memory, max_ops=None):
            calls.append(1)
            return capture_response(stream, memory, max_ops=max_ops)

        monkeypatch.setitem(
            faulty_check.RESPONSE_CAPTURES, "microcode", counting_capture
        )
        caps = _caps(4, 1, 1)
        faults = [StuckAtFault(0, 0, 1), StuckAtFault(3, 0, 0)]
        report = run_fault_sweep([MARCH_C], caps, faults, engine="vector")
        assert report.fallback_runs == report.checked == 2
        assert calls  # the patched capture actually ran

    def test_wide_word_geometry_falls_back(self):
        """Word widths beyond the kernel's 64-bit lanes go scalar."""
        caps = _caps(2, 128, 1)
        faults = [StuckAtFault(0, 100, 1)]
        vector = run_fault_sweep([library.get("MATS")], caps, faults,
                                 engine="vector")
        scalar = run_fault_sweep([library.get("MATS")], caps, faults,
                                 engine="scalar")
        assert vector.fallback_runs == 1
        assert vector.to_json(include_timing=False) == scalar.to_json(
            include_timing=False
        )


class TestSramBitImage:
    def test_bit_image_matches_snapshot(self):
        memory = Sram(3, width=4)
        memory.poke(0, 0b1010)
        memory.poke(2, 0b0110)
        image = memory.bit_image()
        assert image[0] == (0, 1, 0, 1)  # LSB first
        assert image[1] == (0, 0, 0, 0)
        assert image[2] == (0, 1, 1, 0)
        assert len(image) == 3 and all(len(row) == 4 for row in image)


class TestFuzzVectorIdentity:
    def test_sample_reports_vector_checked(self):
        from repro.analysis.fuzz import check_sample

        result = check_sample(11, 0, conformance=False,
                              coverage_conformance=False)
        assert result.vector_checked
        assert result.ok, result.mismatches

    def test_vector_identity_can_be_disabled(self):
        from repro.analysis.fuzz import check_sample

        result = check_sample(11, 0, conformance=False,
                              coverage_conformance=False,
                              vector_conformance=False)
        assert not result.vector_checked
