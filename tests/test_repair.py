"""Unit tests for the built-in self-repair (BISR) package."""

import pytest

from repro.diagnostics.bitmap import FailBitmap
from repro.faults import StuckAtFault, TransitionFault
from repro.repair import RepairPlan, allocate_repair, apply_repair, repair_flow
from repro.repair.apply import RepairError, make_repairable_memory

N = 16  # folds into a 4x4 grid


def bitmap_with(*cells):
    bitmap = FailBitmap(N)
    for word in cells:
        bitmap.mark(word, 0)
    return bitmap


class TestAllocation:
    def test_clean_bitmap_needs_nothing(self):
        plan = allocate_repair(bitmap_with(), 2, 2)
        assert plan is not None
        assert plan.lines_used == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            allocate_repair(bitmap_with(), -1, 0)

    def test_single_fail_single_spare_row(self):
        plan = allocate_repair(bitmap_with(5), 1, 0)
        assert plan is not None
        assert plan.rows == (1,)  # word 5 sits at grid row 1

    def test_single_fail_single_spare_column(self):
        plan = allocate_repair(bitmap_with(5), 0, 1)
        assert plan is not None
        assert plan.columns == (1,)

    def test_row_cluster_repaired_by_one_row(self):
        plan = allocate_repair(bitmap_with(4, 5, 6, 7), 1, 1)
        assert plan is not None
        assert plan.rows == (1,) and plan.columns == ()

    def test_must_repair_forces_the_row(self):
        """Three fails in one row with only 2 spare columns: the row is
        forced even though columns could cover two of them."""
        plan = allocate_repair(bitmap_with(4, 5, 6), 1, 2)
        assert plan is not None
        assert plan.rows == (1,)
        assert plan.columns == ()

    def test_unrepairable_returns_none(self):
        # Diagonal fails need one line each; budget of 2 cannot cover 3.
        assert allocate_repair(bitmap_with(0, 5, 10), 1, 1) is None

    def test_diagonal_with_enough_budget(self):
        plan = allocate_repair(bitmap_with(0, 5, 10), 2, 1)
        assert plan is not None
        covered = all(
            plan.covers(*bitmap_with().grid.position((word, 0)))
            for word in (0, 5, 10)
        )
        assert covered

    def test_mixed_row_and_column_solution(self):
        # Row 0 fully failing + one isolated fail elsewhere.
        plan = allocate_repair(bitmap_with(0, 1, 2, 3, 9), 1, 1)
        assert plan is not None
        assert 0 in plan.rows
        assert plan.lines_used <= 2

    def test_every_plan_covers_every_fail(self):
        cells = (0, 3, 5, 6, 12)
        plan = allocate_repair(bitmap_with(*cells), 2, 2)
        assert plan is not None
        grid = bitmap_with().grid
        for word in cells:
            assert plan.covers(*grid.position((word, 0))), word


class TestApply:
    def test_remap_moves_words_to_spares(self):
        memory = make_repairable_memory(N, spare_words=4)
        memory.attach(StuckAtFault(5, 0, 1))
        bitmap = bitmap_with(5)
        plan = allocate_repair(bitmap, 1, 0)
        remapped = apply_repair(memory, plan, bitmap)
        assert set(remapped) == {4, 5, 6, 7}  # the whole grid row
        # The stuck cell is now behind a remap: logical 5 reads clean.
        memory.write(0, 5, 0)
        assert memory.read(0, 5) == 0

    def test_insufficient_spares_raise(self):
        memory = make_repairable_memory(N, spare_words=2)
        bitmap = bitmap_with(5)
        plan = allocate_repair(bitmap, 1, 0)
        with pytest.raises(RepairError):
            apply_repair(memory, plan, bitmap)


class TestRepairFlow:
    def test_clean_part(self):
        memory = make_repairable_memory(N, spare_words=8)
        outcome = repair_flow(memory, 2, 0)
        assert outcome.repaired
        assert outcome.plan is None
        assert "clean part" in str(outcome)

    def test_repairable_part_passes_after_repair(self):
        memory = make_repairable_memory(N, spare_words=8)
        memory.attach(StuckAtFault(5, 0, 0))
        memory.attach(TransitionFault(10, 0, rising=True))
        outcome = repair_flow(memory, 2, 0)
        assert outcome.repaired
        assert outcome.final_failures == 0
        assert outcome.initial_failures > 0
        assert "repaired" in str(outcome)

    def test_unrepairable_part_reported(self):
        memory = make_repairable_memory(N, spare_words=8)
        for word in (0, 5, 10):
            memory.attach(StuckAtFault(word, 0, 1))
        outcome = repair_flow(memory, spare_rows=2, spare_columns=0)
        assert not outcome.repaired
        assert outcome.plan is None
        assert "UNREPAIRABLE" in str(outcome)

    def test_column_budget_repairs_column_cluster(self):
        memory = make_repairable_memory(N, spare_words=8)
        # Words 1, 5, 13 share grid column 1.
        for word in (1, 5, 13):
            memory.attach(StuckAtFault(word, 0, 1))
        outcome = repair_flow(memory, spare_rows=0, spare_columns=1)
        assert outcome.repaired
        assert outcome.plan.columns == (1,)

    def test_repair_survives_full_diagnostic_algorithm(self):
        """The re-test uses March C++ (pauses + triple reads): repairs
        must hold under the most demanding library algorithm."""
        from repro.faults import DataRetentionFault, StuckOpenFault

        memory = make_repairable_memory(N, spare_words=8)
        memory.attach(DataRetentionFault(4, 0, from_value=1))
        memory.attach(StuckOpenFault(6, 0, weak_value=1))
        outcome = repair_flow(memory, spare_rows=1, spare_columns=1)
        assert outcome.repaired, str(outcome)


# ---------------------------------------------------------------------------
# Property tests: the allocator over random fail maps.
# ---------------------------------------------------------------------------

import hypothesis.strategies as st
from hypothesis import given, settings


@settings(deadline=None, max_examples=120)
@given(
    st.lists(st.integers(0, N - 1), unique=True, max_size=8),
    st.integers(0, 3),
    st.integers(0, 3),
)
def test_allocator_plans_are_sound(cells, spare_rows, spare_columns):
    """Any plan returned covers every fail within the budget."""
    bitmap = bitmap_with(*cells)
    plan = allocate_repair(bitmap, spare_rows, spare_columns)
    if plan is None:
        return
    assert len(plan.rows) <= spare_rows
    assert len(plan.columns) <= spare_columns
    for word in cells:
        assert plan.covers(*bitmap.grid.position((word, 0))), word


@settings(deadline=None, max_examples=60)
@given(st.lists(st.integers(0, N - 1), unique=True, min_size=1, max_size=4))
def test_full_budget_always_repairs_few_defects(cells):
    """With as many spare lines as defects, repair always succeeds —
    and the repaired memory passes the full diagnostic algorithm."""
    memory = make_repairable_memory(N, spare_words=len(cells) * 4)
    for word in cells:
        memory.attach(StuckAtFault(word, 0, 1))
    outcome = repair_flow(
        memory, spare_rows=len(cells), spare_columns=len(cells)
    )
    assert outcome.repaired, str(outcome)
    assert outcome.final_failures == 0
