"""Unit tests for the SoC shared-BIST study."""

import pytest

from repro.march import library
from repro.march.simulator import expand, operation_count
from repro.soc import (
    HardwiredPerTest,
    HardwiredSuperset,
    MemoryRequirement,
    PerMemoryProgrammable,
    SharedProgrammable,
    SocBistStudy,
)


def portfolio():
    return [
        MemoryRequirement(
            "l1_data", 1024, width=8,
            tests=(library.MARCH_C, library.MARCH_C_PLUS,
                   library.MARCH_C_PLUS_PLUS),
        ),
        MemoryRequirement(
            "regfile", 64, width=4, ports=2,
            tests=(library.MARCH_A, library.MARCH_A_PLUS),
        ),
        MemoryRequirement(
            "fifo", 128, tests=(library.MARCH_C, library.MARCH_C_PLUS),
        ),
    ]


class TestOperationCount:
    @pytest.mark.parametrize("n,w,p", [(4, 1, 1), (3, 4, 2), (8, 8, 1)])
    def test_matches_expanded_stream(self, n, w, p):
        for test in (library.MARCH_C, library.MARCH_C_PLUS):
            assert operation_count(test, n, w, p) == len(
                list(expand(test, n, width=w, ports=p))
            )


class TestMemoryRequirement:
    def test_needs_tests(self):
        with pytest.raises(ValueError):
            MemoryRequirement("m", 64, tests=())

    def test_superset_is_longest(self):
        memory = portfolio()[0]
        assert memory.superset_test is library.MARCH_C_PLUS_PLUS

    def test_stage_operations(self):
        memory = MemoryRequirement("m", 8, tests=(library.MARCH_C,))
        assert memory.stage_operations(library.MARCH_C) == 80


class TestStudy:
    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            SocBistStudy([])

    def test_duplicate_names_rejected(self):
        memory = MemoryRequirement("m", 8, tests=(library.MARCH_C,))
        with pytest.raises(ValueError):
            SocBistStudy([memory, memory])

    def test_runs_all_four_strategies(self):
        results = SocBistStudy(portfolio()).run()
        assert [r.strategy for r in results] == [
            "hardwired per test",
            "hardwired superset",
            "programmable per memory",
            "shared programmable",
        ]

    def test_breakdown_sums_to_total(self):
        for result in SocBistStudy(portfolio()).run():
            assert result.total_ge == pytest.approx(
                sum(ge for _, ge in result.breakdown)
            )

    def test_render(self):
        study = SocBistStudy(portfolio())
        text = study.render()
        assert "shared programmable" in text and "makespan" in text


class TestPaperClaims:
    """The introduction's 'lower overall test logic overhead' claim."""

    @pytest.fixture(scope="class")
    def results(self):
        return {r.strategy: r for r in SocBistStudy(portfolio()).run()}

    def test_shared_programmable_beats_per_test_hardwired_area(self, results):
        assert (
            results["shared programmable"].total_ge
            < results["hardwired per test"].total_ge
        )

    def test_shared_programmable_beats_superset_test_time(self, results):
        assert (
            results["shared programmable"].total_operations
            < results["hardwired superset"].total_operations
        )

    def test_superset_pays_in_test_time(self, results):
        """Running the burn-in algorithm at every stage inflates work."""
        assert (
            results["hardwired superset"].total_operations
            > results["hardwired per test"].total_operations
        )

    def test_equal_test_work_for_stage_exact_strategies(self, results):
        assert (
            results["hardwired per test"].total_operations
            == results["programmable per memory"].total_operations
            == results["shared programmable"].total_operations
        )

    def test_shared_serialises_testing(self, results):
        shared = results["shared programmable"]
        parallel = results["programmable per memory"]
        # Serial testing plus per-stage reload latency.
        assert shared.makespan_operations >= shared.total_operations
        assert parallel.makespan_operations < parallel.total_operations

    def test_reload_latency_small(self, results):
        """The paper's slow scan-only cells cost little test time: all
        program reloads together stay under 10% of the test itself even
        for this small portfolio (the share shrinks with memory size,
        since reload cost is fixed while test work scales with N)."""
        shared = results["shared programmable"]
        overhead = shared.makespan_operations - shared.total_operations
        assert 0 < overhead < 0.10 * shared.total_operations

    def test_single_controller_in_shared_breakdown(self, results):
        labels = [label for label, _ in results["shared programmable"].breakdown]
        controllers = [l for l in labels if "microcode controller" in l]
        assert len(controllers) == 1

    def test_per_test_has_one_controller_per_stage(self, results):
        labels = [label for label, _ in results["hardwired per test"].breakdown]
        hardwired = [l for l in labels if "hardwired" in l]
        assert len(hardwired) == sum(len(m.tests) for m in portfolio())

    def test_advantage_grows_with_stage_diversity(self):
        """More stage algorithms widen the programmable advantage."""
        def gap(stage_count):
            tests = (library.MARCH_C, library.MARCH_C_PLUS,
                     library.MARCH_C_PLUS_PLUS, library.MARCH_A,
                     library.MARCH_A_PLUS)[:stage_count]
            memories = [
                MemoryRequirement("m0", 512, width=8, tests=tests),
                MemoryRequirement("m1", 256, width=8, tests=tests),
            ]
            results = {r.strategy: r for r in SocBistStudy(memories).run()}
            return (
                results["hardwired per test"].total_ge
                - results["shared programmable"].total_ge
            )

        assert gap(1) < gap(3) < gap(5)
