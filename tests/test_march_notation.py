"""Unit tests for the march-test notation parser/printer."""

import pytest

from repro.march import library
from repro.march.element import AddressOrder, Pause
from repro.march.notation import NotationError, format_test, parse_test


class TestParse:
    def test_single_element(self):
        test = parse_test("^(r0,w1)")
        assert test.element_count == 1
        assert test.elements[0].order is AddressOrder.UP

    def test_down_element(self):
        test = parse_test("v(r1,w0)")
        assert test.elements[0].order is AddressOrder.DOWN

    def test_any_element(self):
        test = parse_test("~(w0)")
        assert test.elements[0].order is AddressOrder.ANY

    def test_unicode_arrows_accepted(self):
        test = parse_test("⇑(r0,w1); ⇓(r1,w0); ⇕(r0)")
        orders = [e.order for e in test.elements]
        assert orders == [AddressOrder.UP, AddressOrder.DOWN, AddressOrder.ANY]

    def test_multi_element(self):
        test = parse_test("~(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); ~(r0)")
        assert test.operation_count == 10

    def test_pause_default(self):
        test = parse_test("~(w0); Del; ~(r0)")
        assert test.pauses[0].duration == Pause().duration

    def test_pause_with_duration(self):
        test = parse_test("~(w0); Del(2048); ~(r0)")
        assert test.pauses[0].duration == 2048

    def test_whitespace_insensitive(self):
        a = parse_test("^( r0 , w1 )")
        b = parse_test("^(r0,w1)")
        assert a.items == b.items

    def test_name_parameter(self):
        assert parse_test("~(w0)", name="mine").name == "mine"

    def test_empty_string_rejected(self):
        with pytest.raises(NotationError):
            parse_test("")

    def test_bad_operation_rejected(self):
        with pytest.raises(NotationError):
            parse_test("^(x0)")

    def test_bad_polarity_rejected(self):
        with pytest.raises(NotationError):
            parse_test("^(r2)")

    def test_missing_parens_rejected(self):
        with pytest.raises(NotationError):
            parse_test("^r0,w1")

    def test_empty_element_rejected(self):
        with pytest.raises(NotationError):
            parse_test("^()")

    def test_unknown_order_symbol_rejected(self):
        with pytest.raises(NotationError):
            parse_test(">(r0)")

    def test_trailing_semicolons_tolerated(self):
        test = parse_test("~(w0); ~(r0);")
        assert test.element_count == 2


class TestFormat:
    def test_march_c_format(self):
        text = format_test(library.MARCH_C)
        assert text == "~(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); ~(r0)"

    def test_pause_formatting(self):
        text = format_test(library.MARCH_C_PLUS)
        assert "Del(1024)" in text

    def test_round_trip_all_library_algorithms(self):
        for test in library.ALGORITHMS.values():
            text = format_test(test)
            reparsed = parse_test(text, name=test.name)
            assert reparsed.items == test.items, test.name

    def test_round_trip_preserves_operation_count(self):
        for test in library.ALGORITHMS.values():
            assert parse_test(format_test(test)).operation_count == (
                test.operation_count
            )
