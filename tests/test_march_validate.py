"""Unit and property tests for the march-test consistency checker."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.march import library
from repro.march.notation import parse_test
from repro.march.simulator import expand, run_on_memory
from repro.march.validate import (
    Inconsistency,
    assert_consistent,
    check_consistency,
    is_consistent,
)
from repro.memory import Sram


class TestChecker:
    @pytest.mark.parametrize(
        "test", list(library.ALGORITHMS.values()), ids=lambda t: t.name
    )
    def test_all_library_algorithms_consistent(self, test):
        assert is_consistent(test), [
            str(p) for p in check_consistency(test)
        ]

    def test_wrong_polarity_read_flagged(self):
        test = parse_test("~(w0); ^(r1)")
        problems = check_consistency(test)
        assert len(problems) == 1
        assert problems[0].item_index == 1
        assert "polarity 0" in problems[0].message

    def test_read_before_init_flagged(self):
        test = parse_test("^(r0,w1)")
        problems = check_consistency(test)
        assert problems and "unknown" in problems[0].message

    def test_mid_element_read_after_write_ok(self):
        assert is_consistent(parse_test("~(w0); ^(r0,w1,r1)"))

    def test_mid_element_read_after_write_wrong(self):
        test = parse_test("~(w0); ^(r0,w1,r0)")
        problems = check_consistency(test)
        assert len(problems) == 1
        assert problems[0].op_index == 2

    def test_pause_preserves_state(self):
        assert is_consistent(parse_test("~(w1); Del(512); ~(r1)"))

    def test_multiple_problems_all_reported(self):
        test = parse_test("^(r0); ~(w1); ^(r0); ^(r0)")
        assert len(check_consistency(test)) == 3

    def test_assert_consistent_raises_with_details(self):
        with pytest.raises(ValueError) as excinfo:
            assert_consistent(parse_test("~(w0); ^(r1)", name="bad"))
        assert "bad" in str(excinfo.value)
        assert "item 1" in str(excinfo.value)

    def test_assert_consistent_silent_for_good(self):
        assert_consistent(library.MARCH_C)

    def test_inconsistency_str(self):
        problem = Inconsistency(2, 1, "boom")
        assert str(problem) == "item 2, op 1: boom"


# The static checker must agree with fault-free simulation everywhere.

from repro.march.element import AddressOrder, MarchElement, OpKind, Operation, Pause
from repro.march.test import MarchTest

_ops = st.builds(
    Operation,
    st.sampled_from([OpKind.READ, OpKind.WRITE]),
    st.integers(0, 1),
)
_elements = st.builds(
    MarchElement,
    st.sampled_from(list(AddressOrder)),
    st.lists(_ops, min_size=1, max_size=4),
)
_tests = st.builds(
    MarchTest,
    st.just("generated"),
    st.lists(st.one_of(_elements, st.builds(Pause, st.just(64))),
             min_size=1, max_size=6),
)


@settings(deadline=None, max_examples=150)
@given(_tests)
def test_checker_agrees_with_simulation(test):
    """With the model's zero power-on assumption, static consistency is
    exactly 'passes on a fault-free memory'."""
    memory = Sram(4)
    result = run_on_memory(expand(test, 4), memory)
    assert is_consistent(test, power_on=0) == result.passed


@settings(deadline=None, max_examples=150)
@given(_tests)
def test_strict_checker_is_sound(test):
    """The unknown-power-on checker is conservative: anything it passes
    also passes in simulation (never the other way around)."""
    if is_consistent(test):
        memory = Sram(4)
        assert run_on_memory(expand(test, 4), memory).passed
