"""Unit tests for the Quine–McCluskey minimiser and SOP costing."""

import pytest

from repro.area.logic_min import (
    TruthTable,
    literal_count,
    minimize_sop,
    prime_implicants,
    sop_gate_equivalents,
)


def evaluate_cover(cover, minterm):
    """Whether the SOP cover asserts for a minterm."""
    return any((minterm & care) == (value & care) for value, care in cover)


def assert_equivalent(n_vars, ones, cover, dont_cares=()):
    ones = set(ones)
    dont_cares = set(dont_cares)
    for minterm in range(1 << n_vars):
        got = evaluate_cover(cover, minterm)
        if minterm in ones:
            assert got, f"minterm {minterm} not covered"
        elif minterm not in dont_cares:
            assert not got, f"minterm {minterm} wrongly covered"


class TestMinimize:
    def test_constant_zero(self):
        assert minimize_sop(3, []) == []

    def test_constant_one(self):
        assert minimize_sop(2, [0, 1, 2, 3]) == [(0, 0)]

    def test_constant_one_via_dont_cares(self):
        assert minimize_sop(2, [0, 3], dont_cares=[1, 2]) == [(0, 0)]

    def test_single_minterm(self):
        cover = minimize_sop(3, [5])
        assert cover == [(5, 7)]

    def test_pair_merge(self):
        # f = m0 + m1 over 2 vars -> x1'
        cover = minimize_sop(2, [0, 1])
        assert cover == [(0, 2)]

    def test_xor_needs_two_terms(self):
        cover = minimize_sop(2, [1, 2])
        assert len(cover) == 2
        assert_equivalent(2, [1, 2], cover)

    def test_classic_example(self):
        # Standard QM textbook function.
        ones = [4, 8, 10, 11, 12, 15]
        dc = [9, 14]
        cover = minimize_sop(4, ones, dc)
        assert_equivalent(4, ones, cover, dc)
        assert len(cover) <= 3

    def test_dont_cares_not_required(self):
        cover = minimize_sop(3, [0], dont_cares=[7])
        assert_equivalent(3, [0], cover, [7])

    @pytest.mark.parametrize("seed", range(6))
    def test_random_functions_equivalent(self, seed):
        import random

        rng = random.Random(seed)
        n_vars = 5
        ones = [m for m in range(32) if rng.random() < 0.4]
        dc = [m for m in range(32) if m not in ones and rng.random() < 0.15]
        cover = minimize_sop(n_vars, ones, dc)
        assert_equivalent(n_vars, ones, cover, dc)

    def test_minimization_reduces_literals(self):
        # An 8-minterm cube should shrink to a single literal.
        ones = [m for m in range(16) if m & 1]
        cover = minimize_sop(4, ones)
        assert literal_count(cover) == 1


class TestPrimeImplicants:
    def test_full_cube(self):
        primes = prime_implicants(2, [0, 1, 2, 3])
        assert primes == [(0, 0)]

    def test_isolated_minterms_are_primes(self):
        primes = prime_implicants(2, [0, 3])
        assert (0, 3) in primes and (3, 3) in primes


class TestCosting:
    def test_empty_cover_costs_nothing(self):
        assert sop_gate_equivalents({"f": []}) == 0.0

    def test_single_literal_costs_nothing_positive_polarity(self):
        # f = x0 : no gates, no inverter.
        assert sop_gate_equivalents({"f": [(1, 1)]}) == 0.0

    def test_single_complemented_literal_costs_inverter(self):
        assert sop_gate_equivalents({"f": [(0, 1)]}) == 0.5

    def test_two_literal_term(self):
        # f = x0 & x1 : one AND gate.
        assert sop_gate_equivalents({"f": [(3, 3)]}) == 1.0

    def test_or_of_two_terms(self):
        # f = x0 + x1 : one OR gate, no ANDs.
        assert sop_gate_equivalents({"f": [(1, 1), (2, 2)]}) == 1.0

    def test_shared_terms_counted_once(self):
        term = (3, 3)
        cost = sop_gate_equivalents({"f": [term], "g": [term]})
        assert cost == 1.0  # the AND is shared

    def test_shared_inverters_counted_once(self):
        covers = {"f": [(0, 1)], "g": [(0, 1), (2, 3)]}
        # inverter on x0 shared; term (2,3)=x1 & !x0 has 1 AND; g has 1 OR.
        assert sop_gate_equivalents(covers) == 0.5 + 1.0 + 1.0


class TestTruthTable:
    def test_synthesize_per_output(self):
        table = TruthTable(2, {"a": [0, 1], "b": [3]})
        covers = table.synthesize()
        assert set(covers) == {"a", "b"}
        assert_equivalent(2, [0, 1], covers["a"])
        assert_equivalent(2, [3], covers["b"])

    def test_gate_equivalents_positive(self):
        table = TruthTable(3, {"f": [1, 2, 4, 7]})  # 3-input XOR, worst case
        assert table.gate_equivalents() > 0

    def test_unreasonable_vars_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(25, {"f": []})

    def test_dont_cares_shrink_cost(self):
        dense = TruthTable(4, {"f": [5]})
        relaxed = TruthTable(4, {"f": [5]},
                             dont_cares=set(range(16)) - {5, 0})
        assert relaxed.gate_equivalents() <= dense.gate_equivalents()
