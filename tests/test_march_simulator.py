"""Unit tests for the golden march-expansion engine."""

import pytest

from repro.march import library
from repro.march.notation import parse_test
from repro.march.simulator import MemoryOperation, expand, run_on_memory
from repro.memory.sram import Sram


class TestExpand:
    def test_operation_count_bit_oriented(self):
        ops = list(expand(library.MARCH_C, 8))
        assert len(ops) == 10 * 8  # 10N

    def test_up_order(self):
        ops = list(expand(parse_test("^(w0)"), 4))
        assert [op.address for op in ops] == [0, 1, 2, 3]

    def test_down_order(self):
        ops = list(expand(parse_test("v(w0)"), 4))
        assert [op.address for op in ops] == [3, 2, 1, 0]

    def test_any_order_resolves_up(self):
        ops = list(expand(parse_test("~(w0)"), 3))
        assert [op.address for op in ops] == [0, 1, 2]

    def test_ops_per_address_grouped(self):
        """All element ops apply to one address before moving on."""
        ops = list(expand(parse_test("^(r0,w1)"), 3))
        assert [(op.address, op.is_write) for op in ops] == [
            (0, False), (0, True), (1, False), (1, True), (2, False), (2, True),
        ]

    def test_write_values_bit_oriented(self):
        ops = list(expand(parse_test("^(w1)"), 2))
        assert all(op.value == 1 for op in ops)

    def test_read_expectations(self):
        ops = list(expand(parse_test("^(r1)"), 2))
        assert all(op.expected == 1 for op in ops)

    def test_pause_emits_delay(self):
        ops = list(expand(parse_test("~(w0); Del(512); ~(r0)"), 2))
        delays = [op for op in ops if op.is_delay]
        assert len(delays) == 1
        assert delays[0].delay == 512

    def test_word_oriented_repeats_per_background(self):
        ops = list(expand(library.MARCH_C, 4, width=8))
        assert len(ops) == 10 * 4 * 4  # log2(8)+1 backgrounds

    def test_word_oriented_background_values(self):
        ops = list(expand(parse_test("^(w0)"), 1, width=8))
        assert [op.value for op in ops] == [0b0, 0b10101010, 0b11001100, 0b11110000]

    def test_word_oriented_complement_values(self):
        ops = list(expand(parse_test("^(w1)"), 1, width=8))
        assert [op.value for op in ops] == [0xFF, 0b01010101, 0b00110011, 0b00001111]

    def test_multiport_repeats_per_port(self):
        ops = list(expand(library.MARCH_C, 4, ports=3))
        assert len(ops) == 10 * 4 * 3
        assert {op.port for op in ops} == {0, 1, 2}

    def test_port_outermost_loop(self):
        ops = list(expand(parse_test("^(w0)"), 2, width=2, ports=2))
        ports = [op.port for op in ops]
        assert ports == sorted(ports)

    def test_custom_backgrounds(self):
        ops = list(expand(parse_test("^(w0)"), 1, width=4, backgrounds=[0b0101]))
        assert [op.value for op in ops] == [0b0101]

    def test_zero_words_rejected(self):
        with pytest.raises(ValueError):
            list(expand(library.MARCH_C, 0))

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            list(expand(library.MARCH_C, 4, ports=0))

    def test_single_cell_memory(self):
        ops = list(expand(library.MARCH_C, 1))
        assert len(ops) == 10


class TestMemoryOperation:
    def test_is_read(self):
        op = MemoryOperation(0, 3, False, expected=1)
        assert op.is_read and not op.is_write and not op.is_delay

    def test_is_delay(self):
        op = MemoryOperation(0, 0, False, delay=100)
        assert op.is_delay and not op.is_read

    def test_str_forms(self):
        assert "w@3" in str(MemoryOperation(0, 3, True, value=1))
        assert "r@2" in str(MemoryOperation(0, 2, False, expected=0))
        assert "delay" in str(MemoryOperation(0, 0, False, delay=7))


class TestRunOnMemory:
    def test_fault_free_memory_passes(self):
        memory = Sram(8)
        result = run_on_memory(expand(library.MARCH_C, 8), memory)
        assert result.passed
        assert result.operations == 80

    def test_detects_poked_corruption(self):
        memory = Sram(8)
        ops = list(expand(parse_test("~(w1); ~(r1)"), 8))
        memory.poke(3, 0)  # pre-state; gets overwritten, so still passes
        result = run_on_memory(ops, memory)
        assert result.passed

    def test_failure_records_details(self):
        memory = Sram(4)
        # Expect 1 everywhere but memory holds 0.
        result = run_on_memory(expand(parse_test("~(r1)"), 4), memory)
        assert not result.passed
        assert result.failure_count == 4
        first = result.failures[0]
        assert first.address == 0
        assert first.expected == 1
        assert first.observed == 0
        assert first.failing_bits == 1

    def test_stop_at_first_failure(self):
        memory = Sram(4)
        result = run_on_memory(
            expand(parse_test("~(r1)"), 4), memory, stop_at_first_failure=True
        )
        assert result.failure_count == 1
        assert result.operations == 1

    def test_delay_advances_memory_clock(self):
        memory = Sram(2)
        run_on_memory(expand(parse_test("~(w0); Del(512); ~(r0)"), 2), memory)
        assert memory.clock.now >= 512
