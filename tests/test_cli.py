"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import FaultSpecError, main, parse_fault
from repro.faults import (
    AddressMapsNowhere,
    DataRetentionFault,
    InversionCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
)
from repro.faults.port import PortStuckOpenAccess


class TestParseFault:
    def test_saf(self):
        fault = parse_fault("saf:3:0:1")
        assert isinstance(fault, StuckAtFault)
        assert (fault.word, fault.bit, fault.value) == (3, 0, 1)

    def test_tf_up_and_down(self):
        assert parse_fault("tf:4:0:up").rising
        assert not parse_fault("tf:4:0:down").rising

    def test_drf(self):
        fault = parse_fault("drf:5:0:1")
        assert isinstance(fault, DataRetentionFault)
        assert fault.from_value == 1

    def test_sof(self):
        assert isinstance(parse_fault("sof:6:0:1"), StuckOpenFault)

    def test_cfin(self):
        fault = parse_fault("cfin:0:0:1:0:up")
        assert isinstance(fault, InversionCouplingFault)
        assert fault.victim_word == 1

    def test_af_classes(self):
        assert isinstance(parse_fault("af1:3"), AddressMapsNowhere)
        assert parse_fault("af3:2:6").other_address == 6

    def test_paf(self):
        fault = parse_fault("paf:1:3:0")
        assert isinstance(fault, PortStuckOpenAccess)
        assert fault.port == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault("xyz:1:2:3")

    def test_wrong_arity_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault("saf:3")

    def test_bad_direction_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault("tf:1:0:sideways")


class TestRunCommand:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["run", "--words", "16"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_failing_run_exits_one(self, capsys):
        code = main(["run", "--words", "16", "--fault", "saf:3:0:1"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    @pytest.mark.parametrize("arch", ["microcode", "progfsm", "hardwired"])
    def test_all_architectures(self, arch, capsys):
        assert main(["run", "--words", "8", "--architecture", arch]) == 0
        capsys.readouterr()

    def test_diagnose_prints_classification(self, capsys):
        code = main([
            "run", "--words", "16", "--algorithm", "March C++",
            "--fault", "drf:5:0:1", "--diagnose",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "fail bitmap" in out
        assert "DRF" in out

    def test_area_flag(self, capsys):
        assert main(["run", "--words", "16", "--area"]) == 0
        assert "GE" in capsys.readouterr().out

    def test_unknown_algorithm_errors(self, capsys):
        assert main(["run", "--algorithm", "March Z"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_fault_spec_errors(self, capsys):
        assert main(["run", "--fault", "nope"]) == 2
        capsys.readouterr()

    def test_word_oriented_multiport_run(self, capsys):
        code = main([
            "run", "--words", "8", "--width", "4", "--ports", "2",
            "--fault", "paf:1:3:2",
        ])
        assert code == 1
        capsys.readouterr()


class TestAssembleCommand:
    def test_microcode_listing(self, capsys):
        assert main(["assemble", "--algorithm", "March C"]) == 0
        out = capsys.readouterr().out
        assert "REPEAT" in out

    def test_fsm_listing(self, capsys):
        assert main(["assemble", "--algorithm", "March C",
                     "--format", "fsm"]) == 0
        assert "SM1" in capsys.readouterr().out

    def test_interchange_output_loads_back(self, capsys):
        assert main(["assemble", "--algorithm", "March A",
                     "--format", "interchange"]) == 0
        out = capsys.readouterr().out
        from repro.core.programming import load_program

        loaded = load_program(out)
        assert loaded.name == "March A"

    def test_fsm_format_rejects_unrealizable(self, capsys):
        assert main(["assemble", "--algorithm", "March B",
                     "--format", "fsm"]) == 2
        capsys.readouterr()


class TestAlgorithmsCommand:
    def test_lists_all(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("March C", "March A++", "PMOVI", "March LR"):
            assert name in out
        assert "10N" in out


class TestRecommendCommand:
    def test_recommend_retention(self, capsys):
        assert main(["recommend", "--classes", "saf,tf,drf"]) == 0
        out = capsys.readouterr().out
        assert "March C+" in out
        assert "Del(1024)" in out

    def test_recommend_case_insensitive(self, capsys):
        assert main(["recommend", "--classes", "cfin,cfid,cfst"]) == 0
        capsys.readouterr()

    def test_recommend_unknown_class_errors(self, capsys):
        assert main(["recommend", "--classes", "saf,xyz"]) == 2
        assert "unknown fault classes" in capsys.readouterr().err


class TestLintCommand:
    def test_default_algorithm_lints_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "March C" in out
        assert "0 error(s)" in out

    def test_all_library_algorithms_exit_zero(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        for name in ("March C", "March A++", "PMOVI"):
            assert name in out

    def test_json_output_is_machine_readable(self, capsys):
        import json

        assert main(["lint", "--all", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert {report["name"] for report in reports} >= {"March C", "PMOVI"}
        assert all(report["errors"] == 0 for report in reports)

    def test_progfsm_target_flags_unrealizable_algorithm(self, capsys):
        assert main(["lint", "--algorithm", "March B",
                     "--target", "progfsm"]) == 1
        out = capsys.readouterr().out
        assert "MA004" in out
        assert "SM0-SM7" in out

    def test_uncompressed_lint_advises_compression(self, capsys):
        assert main(["lint", "--algorithm", "March C", "--no-compress"]) == 0
        assert "MC012" in capsys.readouterr().out

    def test_rules_prints_the_catalogue(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("MC001", "MC010", "MA004"):
            assert rule_id in out

    def test_program_file_lints(self, capsys, tmp_path):
        assert main(["assemble", "--algorithm", "March C",
                     "--format", "interchange"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "marchc.prog"
        path.write_text(text)
        assert main(["lint", "--program", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_march_target_is_architecture_neutral(self, capsys):
        assert main(["lint", "--algorithm", "March B",
                     "--target", "march"]) == 0
        capsys.readouterr()

    def test_progfsm_target_lints_the_whole_library_clean(self, capsys):
        """Acceptance: the whole-library progfsm lint exits 0 —
        realizable algorithms verify error-free, the rest are skipped
        as the architecture's designed flexibility boundary."""
        assert main(["lint", "--all", "--target", "progfsm"]) == 0
        out = capsys.readouterr().out
        assert "March C" in out
        assert "skipped" in out  # March B et al.

    def test_progfsm_target_runs_the_pf_rules(self, capsys):
        assert main(["lint", "--all", "--target", "progfsm",
                     "--json"]) == 0
        import json as json_module

        reports = json_module.loads(capsys.readouterr().out)
        assert all(report["errors"] == 0 for report in reports)

    def test_rules_catalogue_includes_pf_series(self, capsys):
        assert main(["lint", "--rules"]) == 0
        assert "PF002" in capsys.readouterr().out

    def test_rules_catalogue_includes_cv_series(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "CV001" in out
        assert "CV013" in out

    def test_coverage_target_reports_proved_escapes(self, capsys):
        assert main(["lint", "--algorithm", "March C",
                     "--target", "coverage"]) == 0
        out = capsys.readouterr().out
        assert "CV005" in out  # March C has no pause: DRF escapes
        assert "proved escape" in out

    def test_all_prints_family_summary_line(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "summary: 17 algorithm(s) linted" in out
        assert "MA:" in out

    def test_single_algorithm_has_no_summary_line(self, capsys):
        assert main(["lint"]) == 0
        assert "summary:" not in capsys.readouterr().out


class TestCertifyCommand:
    def test_certificate_prints_per_kind_counts(self, capsys):
        assert main(["certify", "--algorithm", "March C", "--words", "4"]) == 0
        out = capsys.readouterr().out
        assert "certificate: March C" in out
        assert "SAF" in out

    def test_cross_check_agrees_and_exits_zero(self, capsys):
        assert main(["certify", "--algorithm", "MATS+", "--words", "4",
                     "--width", "2", "--cross-check"]) == 0
        out = capsys.readouterr().out
        assert "0 disagreement(s)" in out

    def test_geometry_flags_and_report(self, capsys, tmp_path):
        import json as json_module

        path = tmp_path / "certify.json"
        assert main(["certify", "--algorithm", "MATS", "--geometry", "2x1x1",
                     "--geometry", "2x2x1", "--cross-check",
                     "--report", str(path), "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert [entry["geometry"] for entry in payload] == \
            [[2, 1, 1], [2, 2, 1]]
        assert json_module.loads(path.read_text())["results"] == payload

    def test_bad_geometry_errors(self, capsys):
        assert main(["certify", "--geometry", "nope"]) == 2
        assert "bad geometry" in capsys.readouterr().err


class TestLintFixCommand:
    def _write_broken_program(self, capsys, tmp_path):
        from repro.core.microcode.assembler import MicrocodeProgram
        from repro.core.microcode.isa import ConditionOp
        from repro.core.programming import dump_program, load_program

        assert main(["assemble", "--algorithm", "March C", "--words", "8",
                     "--format", "interchange"]) == 0
        program = load_program(capsys.readouterr().out)
        rows = [row for row in program.instructions
                if row.cond is not ConditionOp.TERMINATE]
        path = tmp_path / "broken.prog"
        path.write_text(dump_program(MicrocodeProgram(
            name=program.name, instructions=rows, source=program.source,
        )))
        return path

    def test_fix_rewrites_the_file_and_exits_zero(self, capsys, tmp_path):
        path = self._write_broken_program(capsys, tmp_path)
        assert main(["lint", "--fix", "--program", str(path),
                     "--words", "8"]) == 0
        out = capsys.readouterr().out
        assert "fixed:" in out
        assert f"rewrote {path}" in out
        # The rewritten file now lints clean.
        assert main(["lint", "--program", str(path), "--words", "8"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_fix_on_a_clean_file_is_a_noop(self, capsys, tmp_path):
        assert main(["assemble", "--algorithm", "March C", "--words", "8",
                     "--format", "interchange"]) == 0
        path = tmp_path / "clean.prog"
        path.write_text(capsys.readouterr().out)
        before = path.read_text()
        assert main(["lint", "--fix", "--program", str(path),
                     "--words", "8"]) == 0
        assert "nothing to fix" in capsys.readouterr().out
        assert path.read_text() == before

    def test_fix_requires_a_program_file(self, capsys):
        assert main(["lint", "--fix"]) == 2
        assert "--fix requires --program" in capsys.readouterr().err


class TestConformanceRunFaultyCommand:
    def test_single_fault_exits_zero(self, capsys):
        assert main(["conformance", "run-faulty", "--algorithm", "March C",
                     "--words", "4", "--width", "2",
                     "--fault", "saf:2:1:1"]) == 0
        out = capsys.readouterr().out
        assert "saf:2:1:1" in out

    def test_stratified_sweep_reports_and_exits_zero(self, capsys, tmp_path):
        import json as json_module

        report_file = tmp_path / "sweep.json"
        assert main(["conformance", "run-faulty", "--algorithm", "MATS+",
                     "--words", "3", "--per-kind", "1",
                     "--report", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "fault-response sweep" in out
        payload = json_module.loads(report_file.read_text())
        assert payload["ok"]
        assert payload["checked"] > 0

    def test_json_result_shape(self, capsys):
        import json as json_module

        assert main(["conformance", "run-faulty", "--algorithm", "MATS",
                     "--words", "4", "--fault", "tf:1:0:up",
                     "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["fault_spec"] == "tf:1:0:up"
        assert [r["architecture"] for r in payload["architectures"]] == [
            "microcode", "progfsm", "hardwired"
        ]

    def test_bad_fault_spec_exits_two(self, capsys):
        assert main(["conformance", "run-faulty", "--fault", "zzz:1"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_single_run_writes_the_report_too(self, capsys, tmp_path):
        """Regression: with exactly one algorithm and one --fault the
        single-run branch returned before the --report write, silently
        dropping the file."""
        import json as json_module

        report_file = tmp_path / "single.json"
        assert main(["conformance", "run-faulty", "--algorithm", "March C",
                     "--words", "4", "--width", "2",
                     "--fault", "saf:2:1:1",
                     "--report", str(report_file)]) == 0
        assert "fault-response conformance" in capsys.readouterr().out
        payload = json_module.loads(report_file.read_text())
        assert payload["ok"] and payload["checked"] == 1
        assert payload["geometry"] == [4, 2, 1]
        assert payload["detected"] == 1

    def test_jobs_flag_keeps_the_report_identical(self, capsys, tmp_path):
        import json as json_module

        serial_file = tmp_path / "serial.json"
        parallel_file = tmp_path / "parallel.json"
        base = ["conformance", "run-faulty", "--algorithm", "MATS+",
                "--words", "3", "--per-kind", "1"]
        assert main(base + ["--jobs", "1",
                            "--report", str(serial_file)]) == 0
        assert main(base + ["--jobs", "2",
                            "--report", str(parallel_file)]) == 0
        capsys.readouterr()
        serial = json_module.loads(serial_file.read_text())
        parallel = json_module.loads(parallel_file.read_text())
        assert serial.pop("timing")["jobs"] == 1
        assert parallel.pop("timing")["jobs"] == 2
        assert serial == parallel

    def test_multi_geometry_sweep_sections(self, capsys, tmp_path):
        import json as json_module

        report_file = tmp_path / "multi.json"
        assert main(["conformance", "run-faulty", "--algorithm", "MATS+",
                     "--geometry", "3x1x1", "--geometry", "2x2",
                     "--per-kind", "1",
                     "--report", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "multi-geometry fault-response sweep" in out
        assert "(3, 1, 1)" in out and "(2, 2, 1)" in out
        payload = json_module.loads(report_file.read_text())
        assert payload["ok"]
        assert [g["geometry"] for g in payload["geometries"]] == [
            [3, 1, 1], [2, 2, 1]
        ]

    def test_bad_geometry_exits_two(self, capsys):
        assert main(["conformance", "run-faulty",
                     "--geometry", "4xZ"]) == 2
        assert "bad geometry" in capsys.readouterr().err
        assert main(["conformance", "run-faulty",
                     "--geometry", "4"]) == 2


class TestConformanceShrinkFaultCommand:
    def test_conforming_sample_has_nothing_to_shrink(self, capsys):
        code = main(["conformance", "shrink", "--notation", "^(r0)",
                     "--words", "2", "--fault", "saf:0:0:1"])
        assert code == 1
        assert "nothing to shrink" in capsys.readouterr().out


class TestConformanceRecordStreamsCommand:
    def test_record_streams_writes_the_registry(self, capsys, tmp_path):
        assert main(["conformance", "record", "--streams",
                     "--corpus-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        from repro.conformance.corpus import (
            STREAM_GENERATORS,
            STREAM_GEOMETRIES,
        )

        expected = len(STREAM_GENERATORS) * len(STREAM_GEOMETRIES)
        assert len(list(tmp_path.glob("streams/*.json"))) == expected
        assert out.count("wrote ") == expected


class TestFuzzCommand:
    def test_small_corpus_exits_zero(self, capsys):
        assert main(["fuzz", "--samples", "12", "--seed", "0",
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "12/12 samples checked" in out
        assert "0 mismatch(es)" in out

    def test_json_report(self, capsys):
        import json as json_module

        assert main(["fuzz", "--samples", "8", "--seed", "1",
                     "--jobs", "1", "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["checked"] == 8
        assert payload["mismatch_count"] == 0

    def test_bad_arguments_exit_two(self, capsys):
        assert main(["fuzz", "--samples", "0", "--jobs", "1"]) == 2
        assert "at least one sample" in capsys.readouterr().err

    def test_no_faults_skips_identity_e(self, capsys):
        import json as json_module

        assert main(["fuzz", "--samples", "6", "--seed", "0",
                     "--jobs", "1", "--no-faults", "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["checked"] == 6
        assert payload["fault_detected"] == 0
