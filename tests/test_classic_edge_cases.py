"""Geometry edge cases of the classical generators.

Two contracts the generators must honour regardless of pattern:

* **non-power-of-two word counts** — every emitted address stays below
  ``n_words`` and every word is still visited (an LFSR or grid-derived
  address scheme must fold, mask or skip out-of-range values, never
  emit them);
* **eager validation** — a bad geometry raises ``ValueError`` at call
  time, not on the first ``next()`` of a lazily-built generator, so CLI
  and sweep callers get the error where they passed the argument.
"""

import pytest

from repro.classic import (
    MAX_LFSR_WIDTH,
    check_geometry,
    checkerboard,
    checkerboard_op_count,
    galpat,
    galpat_op_count,
    pseudorandom_test,
    walking_ones,
    walking_op_count,
    walking_zeros,
)

NON_POW2 = (3, 5, 6, 7)

GENERATORS = (
    ("walking_ones", lambda n: walking_ones(n)),
    ("walking_zeros", lambda n: walking_zeros(n)),
    ("galpat", lambda n: galpat(n)),
    ("checkerboard", lambda n: checkerboard(n)),
    ("pseudorandom", lambda n: pseudorandom_test(n, length=40 * n)),
)


class TestNonPowerOfTwoWordCounts:
    @pytest.mark.parametrize("name,build", GENERATORS)
    @pytest.mark.parametrize("n_words", NON_POW2)
    def test_addresses_stay_in_range(self, name, build, n_words):
        ops = list(build(n_words))
        assert ops, f"{name} emitted nothing for n={n_words}"
        bad = [op.address for op in ops if not 0 <= op.address < n_words]
        assert not bad, f"{name} emitted out-of-range addresses {bad}"

    @pytest.mark.parametrize("name,build", GENERATORS)
    @pytest.mark.parametrize("n_words", NON_POW2)
    def test_every_word_is_visited(self, name, build, n_words):
        visited = {op.address for op in build(n_words) if not op.is_delay}
        assert visited == set(range(n_words))

    @pytest.mark.parametrize("n_words", NON_POW2)
    def test_op_count_formulas_hold_off_power_of_two(self, n_words):
        assert len(list(walking_ones(n_words))) == walking_op_count(n_words)
        assert len(list(galpat(n_words))) == galpat_op_count(n_words)
        assert len(list(checkerboard(n_words))) == checkerboard_op_count(
            n_words
        )


class TestEagerValidation:
    @pytest.mark.parametrize("name,build", GENERATORS)
    def test_zero_words_raises_at_call_time(self, name, build):
        # No next() — the ValueError must escape the call itself.
        with pytest.raises(ValueError, match="n_words"):
            build(0)

    def test_bad_width_and_ports_raise(self):
        with pytest.raises(ValueError, match="width"):
            walking_ones(4, width=0)
        with pytest.raises(ValueError, match="ports"):
            galpat(4, ports=0)
        with pytest.raises(ValueError):
            check_geometry(4, width=1, ports=-1)

    def test_check_geometry_accepts_valid(self):
        check_geometry(1)
        check_geometry(7, width=4, ports=3)


class TestPseudorandomWideGeometries:
    def test_large_word_counts_now_resolve_taps(self):
        """8 K and 32 K words need 15- and 17-bit address registers —
        both sat in the tap-table gaps before the fix."""
        for n_words in (8192, 32768):
            ops = list(pseudorandom_test(n_words, length=50))
            assert len(ops) == 50
            assert all(0 <= op.address < n_words for op in ops)

    def test_beyond_table_raises_clear_error(self):
        with pytest.raises(ValueError, match="address register"):
            pseudorandom_test(1 << (MAX_LFSR_WIDTH - 1))
