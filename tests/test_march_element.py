"""Unit tests for the march-test primitives."""

import pytest

from repro.march.element import (
    AddressOrder,
    MarchElement,
    OpKind,
    Operation,
    Pause,
    R0,
    R1,
    W0,
    W1,
    read,
    write,
)


class TestAddressOrder:
    def test_up_symbol(self):
        assert AddressOrder.UP.symbol == "^"

    def test_down_symbol(self):
        assert AddressOrder.DOWN.symbol == "v"

    def test_any_symbol(self):
        assert AddressOrder.ANY.symbol == "~"

    def test_up_reverses_to_down(self):
        assert AddressOrder.UP.reversed() is AddressOrder.DOWN

    def test_down_reverses_to_up(self):
        assert AddressOrder.DOWN.reversed() is AddressOrder.UP

    def test_any_reverses_to_any(self):
        assert AddressOrder.ANY.reversed() is AddressOrder.ANY

    def test_any_resolves_to_up(self):
        assert AddressOrder.ANY.resolve() is AddressOrder.UP

    def test_up_resolves_to_itself(self):
        assert AddressOrder.UP.resolve() is AddressOrder.UP

    def test_down_resolves_to_itself(self):
        assert AddressOrder.DOWN.resolve() is AddressOrder.DOWN

    def test_double_reverse_is_identity(self):
        for order in AddressOrder:
            assert order.reversed().reversed() is order


class TestOperation:
    def test_read_constructor(self):
        op = read(0)
        assert op.kind is OpKind.READ
        assert op.polarity == 0

    def test_write_constructor(self):
        op = write(1)
        assert op.kind is OpKind.WRITE
        assert op.polarity == 1

    def test_is_read(self):
        assert R0.is_read and R1.is_read
        assert not W0.is_read

    def test_is_write(self):
        assert W0.is_write and W1.is_write
        assert not R1.is_write

    def test_invalid_polarity_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, 2)

    def test_negative_polarity_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.WRITE, -1)

    def test_inverted_flips_polarity(self):
        assert R0.inverted() == R1
        assert W1.inverted() == W0

    def test_inverted_preserves_kind(self):
        assert R0.inverted().kind is OpKind.READ

    def test_double_inversion_identity(self):
        for op in (R0, R1, W0, W1):
            assert op.inverted().inverted() == op

    def test_str(self):
        assert str(R0) == "r0"
        assert str(W1) == "w1"

    def test_equality_and_hash(self):
        assert read(0) == R0
        assert hash(read(1)) == hash(R1)


class TestMarchElement:
    def test_basic_construction(self):
        element = MarchElement(AddressOrder.UP, [R0, W1])
        assert element.op_count == 2
        assert element.ops == (R0, W1)

    def test_empty_ops_rejected(self):
        with pytest.raises(ValueError):
            MarchElement(AddressOrder.UP, [])

    def test_reads_and_writes_partition(self):
        element = MarchElement(AddressOrder.UP, [R0, W1, R1, W0])
        assert element.reads == (R0, R1)
        assert element.writes == (W1, W0)

    def test_inverted_reverses_order(self):
        element = MarchElement(AddressOrder.UP, [R0, W1])
        assert element.inverted().order is AddressOrder.DOWN

    def test_inverted_complements_ops(self):
        element = MarchElement(AddressOrder.UP, [R0, W1])
        assert element.inverted().ops == (R1, W0)

    def test_inverted_involution(self):
        element = MarchElement(AddressOrder.DOWN, [R1, W0, W1])
        assert element.inverted().inverted() == element

    def test_with_order(self):
        element = MarchElement(AddressOrder.UP, [R0])
        down = element.with_order(AddressOrder.DOWN)
        assert down.order is AddressOrder.DOWN
        assert down.ops == element.ops

    def test_str(self):
        element = MarchElement(AddressOrder.DOWN, [R1, W0])
        assert str(element) == "v(r1,w0)"

    def test_frozen(self):
        element = MarchElement(AddressOrder.UP, [R0])
        with pytest.raises(Exception):
            element.order = AddressOrder.DOWN

    def test_accepts_generator(self):
        element = MarchElement(AddressOrder.UP, (op for op in (R0, W1)))
        assert element.op_count == 2


class TestPause:
    def test_default_duration(self):
        assert Pause().duration == 100

    def test_custom_duration(self):
        assert Pause(512).duration == 512

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            Pause(0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Pause(-5)

    def test_str(self):
        assert str(Pause(256)) == "Del(256)"
