"""Unit tests for the datasheet generator and its CLI command."""

import pytest

from repro.cli import main
from repro.core.controller import ControllerCapabilities
from repro.march import library
from repro.reporting import build_controller, datasheet

CAPS = ControllerCapabilities(n_words=16)


class TestBuildController:
    @pytest.mark.parametrize("arch", ["microcode", "progfsm", "hardwired"])
    def test_known_architectures(self, arch):
        controller = build_controller(arch, library.MARCH_C, CAPS)
        assert controller.capabilities is CAPS

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            build_controller("quantum", library.MARCH_C, CAPS)


class TestDatasheet:
    def test_microcode_sheet_sections(self):
        controller = build_controller("microcode", library.MARCH_C, CAPS)
        text = datasheet(controller)
        for heading in (
            "# Microcode-Based MBIST — March C",
            "## Configuration",
            "## Microcode program",
            "## Measured fault coverage",
            "## Silicon area",
        ):
            assert heading in text

    def test_progfsm_sheet_lists_sm_rows(self):
        controller = build_controller("progfsm", library.MARCH_C, CAPS)
        text = datasheet(controller)
        assert "## SM instruction program" in text
        assert "SM1" in text

    def test_hardwired_sheet_notes_redesign(self):
        controller = build_controller("hardwired", library.MARCH_C, CAPS)
        text = datasheet(controller)
        assert "## Hardwired FSM" in text
        assert "re-synthesis" in text

    def test_coverage_values_match_algorithm(self):
        controller = build_controller("microcode", library.MARCH_C_PLUS, CAPS)
        text = datasheet(controller)
        assert "| DRF | 100 % |" in text
        assert "| SOF | 0 % |" in text

    def test_area_breakdown_present(self):
        controller = build_controller("microcode", library.MARCH_C, CAPS)
        text = datasheet(controller)
        assert "controller/storage unit" in text
        assert "datapath/address counter" in text

    def test_custom_title(self):
        controller = build_controller("microcode", library.MARCH_C, CAPS)
        assert datasheet(controller, title="My Sheet").startswith("# My Sheet")


class TestReportCommand:
    def test_stdout(self, capsys):
        assert main(["report", "--words", "16"]) == 0
        out = capsys.readouterr().out
        assert "## Silicon area" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "sheet.md"
        assert main(["report", "--words", "16", "--output", str(target)]) == 0
        assert "## Measured fault coverage" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_hardwired_report(self, capsys):
        assert main(["report", "--words", "16",
                     "--architecture", "hardwired"]) == 0
        assert "Hardwired FSM" in capsys.readouterr().out
