"""Unit tests for the VCD trace exporter."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController
from repro.march import library
from repro.rtl.vcd import (
    microcode_trace_vcd,
    parse_vcd_changes,
    samples_to_vcd,
)


class TestSamplesToVcd:
    def test_header_structure(self):
        text = samples_to_vcd(
            [{"a": 0, "b": 1}], {"a": 1, "b": 4}, module="m"
        )
        assert "$timescale 1ns $end" in text
        assert "$scope module m $end" in text
        assert "$var wire 1" in text and "$var wire 4" in text
        assert "$enddefinitions $end" in text

    def test_only_changes_emitted(self):
        samples = [
            {"a": 0},
            {"a": 0},  # no change: no event
            {"a": 1},
        ]
        changes = parse_vcd_changes(samples_to_vcd(samples, {"a": 1}))
        assert changes == [(0, "a", 0), (2, "a", 1)]

    def test_vector_values_binary(self):
        samples = [{"bus": 5}]
        text = samples_to_vcd(samples, {"bus": 4})
        assert "b101 " in text

    def test_roundtrip_reconstructs_samples(self):
        samples = [
            {"x": 3, "flag": 0},
            {"x": 3, "flag": 1},
            {"x": 0, "flag": 1},
        ]
        widths = {"x": 3, "flag": 1}
        changes = parse_vcd_changes(samples_to_vcd(samples, widths))
        state = {}
        reconstructed = []
        change_index = 0
        for time in range(len(samples)):
            while change_index < len(changes) and changes[change_index][0] == time:
                _, name, value = changes[change_index]
                state[name] = value
                change_index += 1
            reconstructed.append(dict(state))
        assert reconstructed == samples

    def test_many_signals_get_unique_ids(self):
        widths = {f"s{i}": 1 for i in range(120)}
        samples = [{name: 0 for name in widths}]
        text = samples_to_vcd(samples, widths)
        var_lines = [l for l in text.splitlines() if l.startswith("$var")]
        ids = [line.split()[3] for line in var_lines]
        assert len(set(ids)) == 120


class TestMicrocodeTraceVcd:
    @pytest.fixture(scope="class")
    def vcd_text(self):
        controller = MicrocodeBistController(
            library.MARCH_C, ControllerCapabilities(n_words=4)
        )
        return microcode_trace_vcd(controller)

    def test_declares_datapath_signals(self, vcd_text):
        for signal in ("ic", "address", "repeat_bit", "read_en", "write_en"):
            assert f" {signal} $end" in vcd_text, signal

    def test_strobes_alternate(self, vcd_text):
        changes = parse_vcd_changes(vcd_text)
        read_changes = [c for c in changes if c[1] == "read_en"]
        write_changes = [c for c in changes if c[1] == "write_en"]
        assert read_changes and write_changes

    def test_repeat_bit_toggles(self, vcd_text):
        """March C's REPEAT sets and later clears the repeat bit."""
        values = [v for _, name, v in parse_vcd_changes(vcd_text)
                  if name == "repeat_bit"]
        assert 1 in values and values[-1] in (0, 1)
        assert values[0] == 0

    def test_ends_with_test_end(self, vcd_text):
        changes = parse_vcd_changes(vcd_text)
        end_events = [c for c in changes if c[1] == "test_end" and c[2] == 1]
        assert len(end_events) == 1

    def test_operation_count_matches_strobe_pulses(self):
        controller = MicrocodeBistController(
            library.MARCH_C, ControllerCapabilities(n_words=4)
        )
        ops = list(controller.operations())
        text = microcode_trace_vcd(controller)
        changes = parse_vcd_changes(text)
        # Reconstruct per-cycle strobe levels and count asserted cycles.
        reads = writes = 0
        level = {"read_en": 0, "write_en": 0}
        last_time = max(time for time, _, _ in changes)
        timeline = {t: [] for t in range(last_time + 1)}
        for time, name, value in changes:
            timeline.setdefault(time, []).append((name, value))
        for time in range(last_time):
            for name, value in timeline.get(time, []):
                if name in level:
                    level[name] = value
            reads += level["read_en"]
            writes += level["write_en"]
        assert reads == sum(1 for op in ops if op.is_read)
        assert writes == sum(1 for op in ops if op.is_write)
