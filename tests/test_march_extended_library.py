"""Tests for the extended algorithm set (March G, PMOVI, March LR) and
for the word-oriented background rationale."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.faults.coupling import StateCouplingFault
from repro.faults.universe import (
    FaultUniverse,
    retention_universe,
    standard_universe,
)
from repro.march import library
from repro.march.coverage import evaluate_coverage, evaluate_stream_coverage
from repro.march.properties import is_symmetric
from repro.march.simulator import expand
from repro.memory import Sram

N = 8


class TestNewAlgorithms:
    @pytest.mark.parametrize(
        "name,complexity",
        [("PMOVI", "13N"), ("March LR", "14N"), ("March G", "23N")],
    )
    def test_published_complexities(self, name, complexity):
        assert library.get(name).complexity == complexity

    def test_march_g_extends_march_b(self):
        assert library.MARCH_G.items[: len(library.MARCH_B.items)] == (
            library.MARCH_B.items
        )
        assert len(library.MARCH_G.pauses) == 2

    def test_march_g_detects_retention(self):
        report = evaluate_coverage(library.MARCH_G, _universe(
            "drf", retention_universe(N)), N)
        assert report.overall == 1.0

    def test_march_g_not_repeat_compressible(self):
        """March B's element structure has no mirrored half."""
        assert not is_symmetric(library.MARCH_G)

    def test_march_g_not_sm_realizable(self):
        from repro.core.progfsm.compiler import is_realizable

        assert not is_realizable(library.MARCH_G)

    def test_pmovi_basic_coverage(self):
        universe = standard_universe(N, include_npsf=False)
        report = evaluate_coverage(library.PMOVI, universe, N)
        # Full coverage of the simple fault classes (no pauses/triple
        # reads, so DRF/SOF are out of scope)...
        for kind in ("SAF", "TF", "CFin", "CFst", "AF1", "AF2", "AF3",
                     "AF4"):
            assert report.coverage_of(kind) == 1.0, kind
        # ...but PMOVI lacks March C's final verify sweep, so the CFid
        # class excited by the very last element's aggressor writes
        # escapes: a measured (and mechanically forced) coverage gap.
        assert 0.85 <= report.coverage_of("CFid") < 1.0

    def test_march_lr_full_basic_coverage(self):
        universe = standard_universe(N, include_npsf=False)
        report = evaluate_coverage(library.MARCH_LR, universe, N)
        for kind in ("SAF", "TF", "CFin", "CFid", "CFst"):
            assert report.coverage_of(kind) == 1.0, kind

    @pytest.mark.parametrize(
        "test",
        [library.PMOVI, library.MARCH_LR],
        ids=lambda t: t.name,
    )
    def test_sm_realizable(self, test):
        """PMOVI and March LR compose from SM0-SM7 (March G does not)."""
        caps = ControllerCapabilities(n_words=N)
        controller = ProgrammableFsmBistController(test, caps, buffer_rows=16)
        assert list(controller.operations()) == list(expand(test, N))

    @pytest.mark.parametrize(
        "test",
        [library.MARCH_G, library.PMOVI, library.MARCH_LR],
        ids=lambda t: t.name,
    )
    def test_microcode_equivalence(self, test):
        caps = ControllerCapabilities(n_words=N)
        controller = MicrocodeBistController(test, caps)
        assert list(controller.operations()) == list(expand(test, N))


def _universe(name, faults):
    universe = FaultUniverse(name)
    universe.extend(faults)
    return universe


class TestBackgroundRationale:
    """Why word-oriented testing repeats per background: intra-word
    bridge (state-coupling) faults are invisible under solid patterns —
    both bits always agree — and fully exposed by the checkerboards."""

    def _bridge_universe(self, n_words):
        faults = []
        for word in range(n_words):
            for state in (0, 1):
                faults.append(StateCouplingFault(word, 0, word, 1, state, state))
                faults.append(StateCouplingFault(word, 1, word, 0, state, state))
        return _universe("intra-word bridges", faults)

    def test_solid_background_misses_all_bridges(self):
        universe = self._bridge_universe(4)
        memory = Sram(4, width=2)
        report = evaluate_stream_coverage(
            lambda: expand(library.MARCH_C, 4, width=2, backgrounds=[0]),
            memory, universe,
        )
        assert report.overall == 0.0

    def test_standard_backgrounds_catch_all_bridges(self):
        universe = self._bridge_universe(4)
        report = evaluate_coverage(library.MARCH_C, universe, 4, width=2)
        assert report.overall == 1.0

    def test_checkerboard_alone_suffices(self):
        universe = self._bridge_universe(4)
        memory = Sram(4, width=2)
        report = evaluate_stream_coverage(
            lambda: expand(library.MARCH_C, 4, width=2, backgrounds=[0b10]),
            memory, universe,
        )
        assert report.overall == 1.0

    def test_controller_background_loop_achieves_same(self):
        """The microcode NEXT_BG loop delivers the background coverage."""
        caps = ControllerCapabilities(n_words=4, width=2)
        controller = MicrocodeBistController(library.MARCH_C, caps)
        universe = self._bridge_universe(4)
        memory = Sram(4, width=2)
        report = evaluate_stream_coverage(
            controller.operations, memory, universe
        )
        assert report.overall == 1.0
