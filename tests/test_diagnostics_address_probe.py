"""Unit tests for the walking-address decoder probe."""

import pytest

from repro.diagnostics.address_probe import decoder_probe
from repro.faults import (
    AddressMapsNowhere,
    AddressMapsToMultiple,
    AddressMapsToWrongCell,
    StuckAtFault,
    TwoAddressesOneCell,
)
from repro.memory import Sram

N = 8


def probed(*faults, n=N, width=1, ports=1):
    memory = Sram(n, width=width, ports=ports)
    for fault in faults:
        memory.attach(fault)
    return decoder_probe(memory)


class TestCleanMemory:
    def test_clean_probe(self):
        diagnosis = probed()
        assert diagnosis.is_clean
        assert "clean" in str(diagnosis)

    def test_contents_left_at_base(self):
        memory = Sram(4)
        memory.poke(2, 1)
        decoder_probe(memory)
        assert all(memory.peek(w) == 0 for w in range(3))


class TestAfClasses:
    def test_af1_reported_open(self):
        diagnosis = probed(AddressMapsNowhere(3))
        findings = diagnosis.by_address()
        assert findings[3].kind == "open"
        assert "AF1" in findings[3].describe()

    def test_af2_reported_aliased_both_ways(self):
        diagnosis = probed(AddressMapsToWrongCell(3, 5))
        findings = diagnosis.by_address()
        assert findings[3].kind == "aliased"
        assert 5 in findings[3].partners
        assert findings[5].kind == "aliased"
        assert 3 in findings[5].partners

    def test_af3_reported_aliased(self):
        diagnosis = probed(TwoAddressesOneCell(2, 6))
        findings = diagnosis.by_address()
        assert findings[2].kind == "aliased"
        assert findings[6].kind == "aliased"

    def test_af4_reported_multi_one_way(self):
        diagnosis = probed(AddressMapsToMultiple(2, 6))
        findings = diagnosis.by_address()
        assert findings[2].kind == "multi"
        assert findings[2].partners == (6,)
        assert 6 not in findings or findings.get(6) is None or (
            findings[6].kind != "multi"
        )
        assert "AF4" in findings[2].describe()

    def test_multiple_decoder_faults(self):
        diagnosis = probed(
            AddressMapsNowhere(1), TwoAddressesOneCell(2, 6)
        )
        findings = diagnosis.by_address()
        assert findings[1].kind == "open"
        assert findings[2].kind == "aliased"


class TestRobustness:
    def test_cell_faults_do_not_fake_decoder_findings(self):
        """A stuck cell is not a decoder fault; the probe must stay
        quiet about it (stuck-at-0 just loses the mark quietly only at
        its own address when probed — which is 'open'-like; stuck-at-1
        lights its own address in every probe).  The probe therefore
        flags SA1 cells as suspicious aliases of everything — document
        the boundary: run the probe only on parts whose march signature
        points at the address decoder."""
        diagnosis = probed(StuckAtFault(4, 0, 0))
        findings = diagnosis.by_address()
        # SA0: writing the mark at address 4 is lost -> 'open'-like.
        assert findings[4].kind == "open"

    def test_word_oriented_probe(self):
        diagnosis = probed(AddressMapsToWrongCell(1, 2), n=4, width=8)
        findings = diagnosis.by_address()
        assert findings[1].kind == "aliased"

    def test_multiport_probe_uses_requested_port(self):
        memory = Sram(4, ports=2)
        memory.attach(AddressMapsNowhere(2))
        diagnosis = decoder_probe(memory, port=1)
        assert diagnosis.by_address()[2].kind == "open"

    def test_single_word_memory(self):
        assert probed(n=1).is_clean
