"""Execute every python code block of docs/TUTORIAL.md.

Keeps the tutorial honest: a snippet that stops working fails the test
suite, not a reader.
"""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def python_blocks():
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
    assert blocks, "tutorial has no python blocks?"
    return blocks


@pytest.mark.parametrize(
    "index,block",
    list(enumerate(python_blocks())),
    ids=lambda value: f"block{value}" if isinstance(value, int) else None,
)
def test_tutorial_block_runs(index, block):
    namespace = {}
    exec(compile(block, f"TUTORIAL.md block {index}", "exec"), namespace)


def test_tutorial_covers_the_main_packages():
    text = TUTORIAL.read_text()
    for package in ("repro.memory", "repro.march", "repro.faults",
                    "repro.diagnostics", "repro.rtl", "repro.area"):
        assert package in text, package
