"""Unit tests for the programmable FSM BIST controller execution."""

import pytest

from repro.core.controller import ControllerCapabilities, Flexibility
from repro.core.progfsm.compiler import CompileError
from repro.core.progfsm.controller import ProgrammableFsmBistController
from repro.core.progfsm.instruction import DataControl
from repro.core.progfsm.lower_fsm import LowerFsmState
from repro.march import library
from repro.march.simulator import expand

CAPS = ControllerCapabilities(n_words=8)

SM_REALIZABLE = [
    t
    for t in library.ALGORITHMS.values()
    if t.name not in ("March B", "March C++", "March A++", "March G")
]


class TestExecution:
    @pytest.mark.parametrize("test", SM_REALIZABLE, ids=lambda t: t.name)
    def test_stream_matches_golden(self, test):
        controller = ProgrammableFsmBistController(test, CAPS, buffer_rows=16)
        assert list(controller.operations()) == list(expand(test, 8))

    def test_word_oriented_multiport(self):
        caps = ControllerCapabilities(n_words=4, width=4, ports=2)
        controller = ProgrammableFsmBistController(library.MARCH_C, caps)
        assert list(controller.operations()) == list(
            expand(library.MARCH_C, 4, width=4, ports=2)
        )

    def test_unrealizable_algorithm_raises_at_construction(self):
        with pytest.raises(CompileError):
            ProgrammableFsmBistController(library.MARCH_B, CAPS)

    def test_load_swaps_algorithm(self):
        controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
        controller.load(library.MATS_PLUS)
        assert list(controller.operations()) == list(expand(library.MATS_PLUS, 8))

    def test_loaded_test(self):
        controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
        assert controller.loaded_test() is library.MARCH_C

    def test_flexibility_medium(self):
        controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
        assert controller.flexibility is Flexibility.MEDIUM


class TestTrace:
    def test_lower_fsm_state_walk(self):
        """Elements walk IDLE -> RESET -> RW states -> DONE (Fig. 4a)."""
        controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
        states = [entry.state for entry in controller.trace()]
        assert states[0] is LowerFsmState.IDLE
        assert LowerFsmState.RESET in states
        assert LowerFsmState.DONE in states

    def test_path_a_taken_per_background(self):
        """Word-oriented runs loop back through path A per background."""
        caps = ControllerCapabilities(n_words=2, width=4, ports=1)
        controller = ProgrammableFsmBistController(library.MARCH_C, caps)
        paths = [entry.path for entry in controller.trace() if entry.path]
        # 3 backgrounds: 2 path-A loop-backs.
        assert paths.count("A") == 2

    def test_path_b_taken_per_port(self):
        caps = ControllerCapabilities(n_words=2, width=1, ports=3)
        controller = ProgrammableFsmBistController(library.MARCH_C, caps)
        paths = [entry.path for entry in controller.trace() if entry.path]
        assert paths.count("B") == 2

    def test_loop_rows_have_no_operation(self):
        caps = ControllerCapabilities(n_words=2, width=4, ports=2)
        controller = ProgrammableFsmBistController(library.MARCH_C, caps)
        for entry in controller.trace():
            if not entry.instruction.is_element:
                assert entry.operation is None

    def test_hold_rows_emit_pause_before_element(self):
        controller = ProgrammableFsmBistController(library.MARCH_C_PLUS, CAPS)
        ops = list(controller.operations())
        delays = [op for op in ops if op.is_delay]
        assert len(delays) == 2
        assert all(op.delay == library.RETENTION_PAUSE for op in delays)


class TestHardware:
    def test_hardware_blocks(self):
        controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
        names = [c.name for c in controller.hardware().components]
        for expected in (
            "controller/circular buffer",
            "controller/lower FSM state register",
            "controller/lower FSM logic",
            "datapath/address counter",
        ):
            assert any(expected in n for n in names), expected

    def test_hardware_independent_of_loaded_algorithm(self):
        from repro.area.estimator import estimate

        a = ProgrammableFsmBistController(library.MARCH_C, CAPS)
        b = ProgrammableFsmBistController(library.MATS_PLUS, CAPS)
        assert (
            estimate(a.hardware()).gate_equivalents
            == estimate(b.hardware()).gate_equivalents
        )
