"""Unit tests for the diagnostics package (fail log, bitmap, classifier)."""

import pytest

from repro.core.bist_unit import MemoryBistUnit
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController
from repro.diagnostics import FailBitmap, FailLog, classify, diagnose
from repro.faults import (
    AddressMapsNowhere,
    DataRetentionFault,
    InversionCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
)
from repro.march import library
from repro.memory import Sram

N = 16
CAPS = ControllerCapabilities(n_words=N)


def run_diagnostic(*faults, test=library.MARCH_C_PLUS_PLUS):
    memory = Sram(N)
    for fault in faults:
        memory.attach(fault)
    unit = MemoryBistUnit(MicrocodeBistController(test, CAPS), memory)
    result = unit.run()
    return FailLog.from_result(result)


class TestFailLog:
    def test_clean_log(self):
        log = run_diagnostic()
        assert log.is_clean
        assert len(log) == 0

    def test_failing_addresses_deduplicated(self):
        log = run_diagnostic(StuckAtFault(5, 0, 0))
        assert log.failing_addresses() == [5]

    def test_failing_cells(self):
        log = run_diagnostic(StuckAtFault(5, 0, 0), StuckAtFault(9, 0, 1))
        assert set(log.failing_cells()) == {(5, 0), (9, 0)}

    def test_by_address_groups(self):
        log = run_diagnostic(StuckAtFault(5, 0, 0))
        groups = log.by_address()
        assert set(groups) == {5}
        assert len(groups[5]) == len(log)

    def test_str_truncates(self):
        log = run_diagnostic(StuckAtFault(5, 0, 0))
        assert "fail log" in str(log)


class TestFailBitmap:
    def test_from_log(self):
        log = run_diagnostic(StuckAtFault(5, 0, 0))
        bitmap = FailBitmap.from_log(log, N)
        assert bitmap.fail_count == 1
        assert bitmap.is_failing(5, 0)

    def test_mark_out_of_range_rejected(self):
        bitmap = FailBitmap(N)
        with pytest.raises(IndexError):
            bitmap.mark(N, 0)

    def test_clusters_single_cells(self):
        bitmap = FailBitmap(16)
        bitmap.mark(0, 0)
        bitmap.mark(15, 0)
        assert len(bitmap.clusters()) == 2

    def test_clusters_adjacent_merge(self):
        bitmap = FailBitmap(16)
        # 16 cells fold into a 4x4 grid; 0 and 1 are row neighbours.
        bitmap.mark(0, 0)
        bitmap.mark(1, 0)
        assert len(bitmap.clusters()) == 1

    def test_render(self):
        bitmap = FailBitmap(16)
        bitmap.mark(0, 0)
        art = bitmap.render()
        assert art.splitlines()[0][0] == "X"
        assert "." in art


class TestClassifier:
    def test_clean_memory_no_diagnoses(self):
        assert diagnose(Sram(N)) == []

    def test_stuck_at_zero(self):
        memory = Sram(N)
        memory.attach(StuckAtFault(3, 0, 0))
        (diag,) = diagnose(memory)
        assert diag.label == "SA0/TF-up"
        assert diag.address == 3

    def test_stuck_at_one(self):
        memory = Sram(N)
        memory.attach(StuckAtFault(3, 0, 1))
        (diag,) = diagnose(memory)
        assert diag.label == "SA1/TF-down"

    def test_transition_fault_in_stuck_class(self):
        """TF and SAF are behaviourally indistinguishable under march
        tests — the classifier reports the equivalence class."""
        memory = Sram(N)
        memory.attach(TransitionFault(4, 0, rising=True))
        (diag,) = diagnose(memory)
        assert diag.label == "SA0/TF-up"

    def test_retention_fault(self):
        memory = Sram(N)
        memory.attach(DataRetentionFault(5, 0, from_value=1))
        (diag,) = diagnose(memory)
        assert diag.label == "DRF"

    def test_stuck_open(self):
        memory = Sram(N)
        memory.attach(StuckOpenFault(6, 0, weak_value=1))
        (diag,) = diagnose(memory)
        assert diag.label == "SOF"

    def test_coupling_fault(self):
        memory = Sram(N)
        memory.attach(InversionCouplingFault(0, 0, 1, 0, rising=True))
        diags = diagnose(memory)
        assert any(d.label == "CF" and d.address == 1 for d in diags)

    def test_gross_address_failure(self):
        memory = Sram(4)
        for address in range(4):
            memory.attach(AddressMapsNowhere(address))
        diags = diagnose(memory)
        assert diags and all(d.label == "AF/gross" for d in diags)

    def test_multiple_faults_classified_independently(self):
        memory = Sram(N)
        memory.attach(StuckAtFault(3, 0, 0))
        memory.attach(DataRetentionFault(8, 0, from_value=1))
        labels = {d.address: d.label for d in diagnose(memory)}
        assert labels[3] == "SA0/TF-up"
        assert labels[8] == "DRF"

    def test_classify_empty_log(self):
        log = FailLog(test_name="x")
        assert classify(log, library.MARCH_C, N) == []

    def test_word_oriented_diagnosis(self):
        memory = Sram(8, width=8)
        memory.attach(StuckAtFault(2, 5, 0))
        diags = diagnose(memory)
        assert any(
            d.address == 2 and d.bit == 5 and d.label == "SA0/TF-up"
            for d in diags
        )
