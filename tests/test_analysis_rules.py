"""One seeded defect per lint rule, proving each fires with the right
rule id and location (the catalogue contract of ``docs/ANALYSIS.md``)."""

import pytest

from repro.analysis import (
    Severity,
    VerificationError,
    rule_catalogue,
    verify_march,
    verify_program,
)
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import assemble
from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.march import library
from repro.march.element import MarchElement, Pause
from repro.march.notation import parse_test
from repro.march.test import MarchTest


def program_of(*instructions, name="seeded"):
    return MicrocodeProgram(
        name=name, instructions=list(instructions), source=None
    )


def only(report, rule):
    """The findings a report holds for one rule (must be non-empty)."""
    found = report.by_rule(rule)
    assert found, f"expected {rule} to fire; got {report.format()}"
    return found


W_LOOP = MicroInstruction(write_en=True, addr_inc=True, cond=ConditionOp.LOOP)
R_LOOP = MicroInstruction(read_en=True, addr_inc=True, cond=ConditionOp.LOOP)
TERM = MicroInstruction(cond=ConditionOp.TERMINATE)


class TestProgramRules:
    def test_mc001_no_explicit_terminator(self):
        report = verify_program(program_of(W_LOOP))
        finding = only(report, "MC001")[0]
        assert finding.severity is Severity.WARNING
        assert finding.location.instruction == 0  # the last row

    def test_mc002_unreachable_instruction(self):
        report = verify_program(program_of(W_LOOP, TERM, MicroInstruction()))
        finding = only(report, "MC002")[0]
        assert finding.severity is Severity.WARNING
        assert finding.location.instruction == 2

    def test_mc003_loop_never_advances_address(self):
        stuck = MicroInstruction(read_en=True, cond=ConditionOp.LOOP)
        report = verify_program(
            program_of(stuck, TERM), ControllerCapabilities(n_words=4)
        )
        finding = only(report, "MC003")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.instruction == 0

    def test_mc003_silent_on_single_word_memory(self):
        stuck = MicroInstruction(read_en=True, cond=ConditionOp.LOOP)
        report = verify_program(
            program_of(stuck, TERM), ControllerCapabilities(n_words=1)
        )
        assert not report.by_rule("MC003")

    def test_mc004_multiple_repeat(self):
        repeat = MicroInstruction(cond=ConditionOp.REPEAT)
        report = verify_program(program_of(W_LOOP, R_LOOP, repeat, repeat, TERM))
        finding = only(report, "MC004")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.instruction == 3  # the second REPEAT

    def test_mc005_repeat_without_body(self):
        report = verify_program(
            program_of(MicroInstruction(cond=ConditionOp.REPEAT), TERM)
        )
        finding = only(report, "MC005")[0]
        assert finding.location.instruction == 0

    def test_mc005_repeat_after_multi_row_prefix(self):
        # Instruction 0 is a NOP body row, not a one-row element: the
        # decoder's Reset-to-1 would re-enter mid-element.
        rows = program_of(
            MicroInstruction(write_en=True),
            W_LOOP,
            MicroInstruction(cond=ConditionOp.REPEAT),
            TERM,
        )
        finding = only(verify_program(rows), "MC005")[0]
        assert finding.location.instruction == 2

    def test_mc006_hold_exponent_beyond_timer(self):
        hold = MicroInstruction(cond=ConditionOp.HOLD, hold_exponent=20)
        report = verify_program(program_of(W_LOOP, hold, TERM))
        finding = only(report, "MC006")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.instruction == 1

    def test_mc007_storage_overflow(self):
        rows = [W_LOOP] + [MicroInstruction() for _ in range(4)] + [TERM]
        report = verify_program(program_of(*rows), storage_rows=4)
        finding = only(report, "MC007")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.instruction == 4  # first row past Z

    def test_mc008_next_bg_without_word_oriented_hardware(self):
        next_bg = MicroInstruction(data_inc=True, cond=ConditionOp.NEXT_BG)
        report = verify_program(
            program_of(W_LOOP, next_bg, TERM),
            ControllerCapabilities(n_words=2, width=1),
        )
        finding = only(report, "MC008")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.instruction == 1

    def test_mc008_inc_port_without_multiport_hardware(self):
        inc_port = MicroInstruction(cond=ConditionOp.INC_PORT)
        report = verify_program(
            program_of(W_LOOP, inc_port),
            ControllerCapabilities(n_words=2, ports=1),
        )
        assert only(report, "MC008")[0].location.instruction == 1

    def test_mc009_word_oriented_memory_without_next_bg(self):
        report = verify_program(
            program_of(W_LOOP, TERM),
            ControllerCapabilities(n_words=2, width=4),
        )
        finding = only(report, "MC009")[0]
        assert finding.severity is Severity.WARNING
        assert finding.location.instruction == 1

    def test_mc010_provable_divergence(self):
        stuck = MicroInstruction(read_en=True, cond=ConditionOp.LOOP)
        report = verify_program(
            program_of(stuck, TERM), ControllerCapabilities(n_words=4)
        )
        finding = only(report, "MC010")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.instruction == 0

    def test_mc011_unanalyzable_control_flow(self):
        # A LOOP that is not a memory operation never restarts the
        # address generator; the interpreter refuses to guess.
        odd = MicroInstruction(addr_inc=True, cond=ConditionOp.LOOP)
        report = verify_program(
            program_of(odd, TERM), ControllerCapabilities(n_words=4)
        )
        finding = only(report, "MC011")[0]
        assert finding.severity is Severity.WARNING
        assert finding.location.instruction == 0

    def test_mc012_missed_compression(self):
        program = assemble(
            library.MARCH_C, ControllerCapabilities(n_words=8),
            compress=False, verify=False,
        )
        report = verify_program(program, ControllerCapabilities(n_words=8))
        finding = only(report, "MC012")[0]
        assert finding.severity is Severity.INFO
        assert finding.location.instruction is None  # program-scope

    def test_mc012_not_raised_for_compressed_rows(self):
        program = assemble(
            library.MARCH_C, ControllerCapabilities(n_words=8), verify=False
        )
        report = verify_program(program, ControllerCapabilities(n_words=8))
        assert not report.by_rule("MC012")


class TestMarchRules:
    def test_ma001_empty_element(self):
        element = parse_test("^(w0)").items[0]
        object.__setattr__(element, "ops", ())  # bypass the constructor
        report = verify_march(MarchTest("broken", [element]))
        finding = only(report, "MA001")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.item == 0

    def test_ma002_redundant_consecutive_write(self):
        report = verify_march(parse_test("~(w0);^(w1,w1,r1)"))
        finding = only(report, "MA002")[0]
        assert finding.severity is Severity.WARNING
        assert (finding.location.item, finding.location.op) == (1, 1)

    def test_ma003_read_expects_wrong_value(self):
        report = verify_march(parse_test("~(w0);^(r1)"))
        finding = only(report, "MA003")[0]
        assert finding.severity is Severity.WARNING
        assert finding.location.item == 1

    def test_ma004_advisory_for_microcode_target(self):
        report = verify_march(library.MARCH_B, target="microcode")
        finding = only(report, "MA004")[0]
        assert finding.severity is Severity.INFO
        assert finding.location.item == 1  # the 6-op element

    def test_ma004_fatal_for_progfsm_target(self):
        report = verify_march(library.MARCH_B, target="progfsm")
        finding = only(report, "MA004")[0]
        assert finding.severity is Severity.ERROR

    def test_ma005_pause_not_power_of_two(self):
        element = parse_test("~(w0)").items[0]
        check = parse_test("^(r0)").items[0]
        test = MarchTest("oddpause", [element, Pause(100), check])
        finding = only(verify_march(test), "MA005")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.item == 1

    def test_ma006_pause_beyond_timer_range(self):
        element = parse_test("~(w0)").items[0]
        check = parse_test("^(r0)").items[0]
        test = MarchTest("longpause", [element, Pause(1 << 17), check])
        finding = only(verify_march(test), "MA006")[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.item == 1

    def test_ma007_consecutive_pauses_progfsm(self):
        element = parse_test("~(w0)").items[0]
        check = parse_test("^(r0)").items[0]
        test = MarchTest(
            "doublepause", [element, Pause(256), Pause(256), check]
        )
        report = verify_march(test, target="progfsm")
        finding = only(report, "MA007")[0]
        assert finding.location.item == 2

    def test_ma007_mismatched_durations_progfsm(self):
        element = parse_test("~(w0)").items[0]
        check = parse_test("^(r0)").items[0]
        test = MarchTest(
            "twotimers", [element, Pause(256), check, Pause(512), check]
        )
        report = verify_march(test, target="progfsm")
        assert only(report, "MA007")[0].location.item == 3

    def test_ma007_trailing_pause_progfsm(self):
        element = parse_test("~(w0)").items[0]
        test = MarchTest("trailing", [element, Pause(256)])
        report = verify_march(test, target="progfsm")
        assert only(report, "MA007")[0].location.item == 1

    def test_ma007_silent_for_microcode_target(self):
        element = parse_test("~(w0)").items[0]
        test = MarchTest("trailing", [element, Pause(256)])
        assert not verify_march(test, target="microcode").by_rule("MA007")


class TestWiring:
    """The three enforcement layers reject error-severity findings."""

    def test_assembler_raises_on_bad_pause_with_item_index(self):
        element = parse_test("~(w0)").items[0]
        check = parse_test("^(r0)").items[0]
        test = MarchTest("oddpause", [element, Pause(100), check])
        with pytest.raises(Exception, match=r"item 1 \(Del\(100\)\)"):
            assemble(test, ControllerCapabilities(n_words=4), verify=False)

    def test_assembler_verify_raises_verification_error(self):
        element = parse_test("~(w0)").items[0]
        check = parse_test("^(r0)").items[0]
        test = MarchTest("longpause", [element, Pause(1 << 17), check])
        # 2^17 is a power of two, so row building succeeds; the verifier
        # then rejects the out-of-range HOLD exponent (MC006).
        with pytest.raises(VerificationError) as excinfo:
            assemble(test, ControllerCapabilities(n_words=4))
        assert excinfo.value.report.by_rule("MC006")

    def test_verification_error_is_an_assembly_error(self):
        from repro.core.microcode.assembler import AssemblyError

        assert issubclass(VerificationError, AssemblyError)

    def test_catalogue_is_complete_and_documented(self):
        catalogue = rule_catalogue()
        ids = [spec.rule_id for spec in catalogue]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert {"MC001", "MC003", "MC010", "MA004", "MA007",
                "PF002", "PF003", "RT003", "CV001", "CV013"} <= set(ids)
        assert len(ids) >= 8
        for spec in catalogue:
            assert spec.title
            assert spec.scope in ("program", "march", "fsm", "rtl",
                                  "coverage")
