"""Unit tests for the behavioural SRAM model."""

import pytest

from repro.faults.stuck_at import StuckAtFault
from repro.memory.sram import Sram


class TestConstruction:
    def test_defaults(self):
        memory = Sram(16)
        assert memory.n_words == 16
        assert memory.width == 1
        assert memory.ports == 1

    def test_word_oriented(self):
        memory = Sram(8, width=8)
        assert memory.word_mask == 0xFF
        assert memory.size_bits == 64

    def test_zero_words_rejected(self):
        with pytest.raises(ValueError):
            Sram(0)

    def test_non_power_of_two_width_rejected(self):
        with pytest.raises(ValueError):
            Sram(8, width=3)

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            Sram(8, ports=0)

    def test_initial_contents_zero(self):
        memory = Sram(4, width=4)
        assert all(memory.peek(w) == 0 for w in range(4))

    def test_repr_mentions_geometry(self):
        assert "bit-oriented" in repr(Sram(8))
        assert "8-bit word" in repr(Sram(8, width=8))


class TestReadWrite:
    def test_write_then_read(self):
        memory = Sram(8)
        memory.write(0, 3, 1)
        assert memory.read(0, 3) == 1

    def test_write_masks_to_width(self):
        memory = Sram(8, width=4)
        memory.write(0, 1, 0x1F)
        assert memory.read(0, 1) == 0xF

    def test_reads_are_independent_per_address(self):
        memory = Sram(4)
        memory.write(0, 2, 1)
        assert memory.read(0, 1) == 0
        assert memory.read(0, 2) == 1

    def test_invalid_port_rejected(self):
        memory = Sram(4, ports=2)
        with pytest.raises(IndexError):
            memory.read(2, 0)
        with pytest.raises(IndexError):
            memory.write(-1, 0, 1)

    def test_invalid_address_rejected(self):
        memory = Sram(4)
        with pytest.raises(IndexError):
            memory.read(0, 4)

    def test_ports_share_cell_array(self):
        memory = Sram(4, ports=2)
        memory.write(0, 1, 1)
        assert memory.read(1, 1) == 1

    def test_accesses_advance_clock(self):
        memory = Sram(4)
        memory.write(0, 0, 1)
        memory.read(0, 0)
        assert memory.clock.now == 2

    def test_elapse_advances_clock(self):
        memory = Sram(4)
        memory.elapse(500)
        assert memory.clock.now == 500


class TestRawAccess:
    def test_poke_bypasses_width_checking_by_masking(self):
        memory = Sram(4, width=2)
        memory.poke(0, 0b111)
        assert memory.peek(0) == 0b11

    def test_force_bit_set_and_clear(self):
        memory = Sram(4, width=4)
        memory.force_bit(2, 3, 1)
        assert memory.peek(2) == 0b1000
        memory.force_bit(2, 3, 0)
        assert memory.peek(2) == 0

    def test_snapshot_immutable_copy(self):
        memory = Sram(4)
        snap = memory.snapshot()
        memory.write(0, 0, 1)
        assert snap[0] == 0
        assert memory.snapshot()[0] == 1


class TestDecoderIntegration:
    def test_open_address_reads_open_value(self):
        memory = Sram(4, open_read_value=0)
        memory.decoder.remap(2, ())
        memory.write(0, 2, 1)  # lost
        assert memory.read(0, 2) == 0

    def test_multi_target_write_lands_in_both(self):
        memory = Sram(4)
        memory.decoder.remap(1, (1, 3))
        memory.write(0, 1, 1)
        assert memory.peek(1) == 1 and memory.peek(3) == 1

    def test_multi_target_read_is_wired_and(self):
        memory = Sram(4)
        memory.decoder.remap(1, (1, 3))
        memory.poke(1, 1)
        memory.poke(3, 0)
        assert memory.read(0, 1) == 0

    def test_nonzero_open_read_value_masked(self):
        memory = Sram(4, width=2, open_read_value=0xFF)
        memory.decoder.remap(0, ())
        assert memory.read(0, 0) == 0b11


class TestFaultManagement:
    def test_attach_installs(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(1, 0, 1))
        assert memory.peek(1) == 1  # install forces the stuck level

    def test_detach_all_removes_behaviour(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(1, 0, 1))
        memory.detach_all()
        memory.write(0, 1, 0)
        assert memory.read(0, 1) == 0
        assert not memory.faults

    def test_reset_state_keeps_faults(self):
        memory = Sram(4)
        memory.attach(StuckAtFault(1, 0, 1))
        memory.reset_state()
        assert len(memory.faults) == 1
        memory.write(0, 1, 0)
        assert memory.read(0, 1) == 1

    def test_reset_state_fill(self):
        memory = Sram(4, width=4)
        memory.reset_state(fill=0xA)
        assert memory.peek(3) == 0xA
