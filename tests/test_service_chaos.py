"""Chaos suite: the service layer under injected faults (PR 9, satellite).

Every test here asserts the same contract from a different angle: no
matter what the service survives — a SIGKILLed worker, a hung shard, a
poison job, a corrupted cache entry, an interrupt at ~50% — the final
merged report is byte-identical (timing aside) to the uninterrupted
serial baseline, or visibly marked as partial/lost.  Determinism under
failure is what makes the harness trustworthy as a conformance oracle.
"""

import copy

import pytest

from repro.conformance.faulty.check import (
    FaultSweepReport,
    SweepInterrupted,
    run_fault_sweep,
    run_fault_sweeps,
)
from repro.core.controller import ControllerCapabilities
from repro.faults.spec import parse_fault
from repro.march import library
from repro.service import (
    ChaosPlan,
    ResultStore,
    collect_session,
    corrupt_store_entry,
    list_sessions,
    run_session,
    session_status,
    submit_session,
)

CAPS = ControllerCapabilities(n_words=8, width=2, ports=1)
TESTS = [library.get(name) for name in ("MATS+", "March C", "March Y")]
FAULTS = [
    parse_fault(spec)
    for spec in ("saf:2:1:1", "tf:1:0:up", "cfin:1:0:2:0:up", "irf:2:0:1")
]


def sans_timing(payload):
    """Strip every volatile key so payloads compare structurally."""
    payload = copy.deepcopy(payload)

    def strip(node):
        if isinstance(node, dict):
            node.pop("timing", None)
            for value in node.values():
                strip(value)
        elif isinstance(node, list):
            for value in node:
                strip(value)

    strip(payload)
    return payload


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted serial oracle every chaos run must reproduce."""
    return run_fault_sweep(TESTS, CAPS, FAULTS, jobs=1)


class TestChaosPlanValidation:
    def test_unknown_behaviour_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(behaviors={0: "explode"})

    def test_once_behaviours_need_sentinel_dir(self):
        with pytest.raises(ValueError):
            ChaosPlan(behaviors={0: "kill-once"})


class TestWorkerKill:
    def test_sigkilled_worker_mid_sweep_keeps_report_identical(
        self, baseline, tmp_path
    ):
        # Satellite regression: shard 0's worker takes a real SIGKILL
        # on first dispatch; the engine respawns the pool, requeues the
        # shard, and the merged report must not show a scar.
        chaos = ChaosPlan(
            behaviors={0: "kill-once"}, sentinel_dir=tmp_path
        )
        report = run_fault_sweep(
            TESTS, CAPS, FAULTS, jobs=2, chaos=chaos
        )
        assert report.ok, report.format()
        assert sans_timing(report.to_json()) == sans_timing(
            baseline.to_json()
        )
        stats = report.service_stats
        assert stats is not None
        assert stats["crashes"] >= 1

    def test_raised_shard_retries_to_identical_report(
        self, baseline, tmp_path
    ):
        chaos = ChaosPlan(
            behaviors={1: "raise-once"}, sentinel_dir=tmp_path
        )
        report = run_fault_sweep(
            TESTS, CAPS, FAULTS, jobs=2, chaos=chaos
        )
        assert report.ok
        assert sans_timing(report.to_json()) == sans_timing(
            baseline.to_json()
        )
        assert report.service_stats["retries"] >= 1

    def test_hung_shard_times_out_then_completes(self, baseline, tmp_path):
        chaos = ChaosPlan(
            behaviors={0: "hang-once"}, sentinel_dir=tmp_path, hang_s=30.0
        )
        report = run_fault_sweep(
            TESTS, CAPS, FAULTS, jobs=2, chaos=chaos, shard_timeout=1.5
        )
        assert report.ok
        assert sans_timing(report.to_json()) == sans_timing(
            baseline.to_json()
        )
        assert report.service_stats["timeouts"] >= 1


class TestPoisonJobs:
    def test_persistent_killer_is_quarantined_not_fatal(self, baseline):
        # Shard 0 SIGKILLs its worker on *every* attempt: the engine
        # must quarantine it (never retry a crasher inline) and report
        # the loss instead of crashing or hanging the whole sweep.
        chaos = ChaosPlan(behaviors={0: "kill"})
        report = run_fault_sweep(TESTS, CAPS, FAULTS, jobs=2, chaos=chaos)
        assert not report.ok
        lost = [
            f for f in report.failures if f.get("kind") == "shard-lost"
        ]
        assert len(lost) == 1
        assert report.service_stats["quarantined"] == 1
        # Every other shard still completed.
        assert 0 < report.checked < baseline.checked
        assert "service:" in report.format()

    def test_persistent_raiser_falls_back_to_serial_retry(
        self, baseline
    ):
        # A shard that raises on every pooled attempt never crashed a
        # worker, so it is safe to re-run inline without chaos wrapping
        # — and the report comes out whole.
        chaos = ChaosPlan(behaviors={2: "raise"})
        report = run_fault_sweep(TESTS, CAPS, FAULTS, jobs=2, chaos=chaos)
        assert report.ok
        assert sans_timing(report.to_json()) == sans_timing(
            baseline.to_json()
        )
        assert report.service_stats["serial_retries"] == 1


class TestInterruptAndResume:
    def test_interrupt_yields_partial_mergeable_report(
        self, baseline, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        chaos = ChaosPlan(interrupt_after=3)
        with pytest.raises(SweepInterrupted) as exc_info:
            run_fault_sweep(
                TESTS, CAPS, FAULTS, jobs=1, store=store, chaos=chaos
            )
        partial = exc_info.value.report
        assert partial.interrupted
        assert 0 < partial.checked < baseline.checked
        payload = partial.to_json()
        assert payload["interrupted"] is True
        # The partial artifact round-trips: it is valid --resume input.
        reloaded = FaultSweepReport.from_json(payload)
        assert sans_timing(reloaded.to_json()) == sans_timing(payload)

    def test_resumed_sweep_equals_uninterrupted_serial(
        self, baseline, tmp_path
    ):
        # The headline acceptance criterion: interrupt at ~50%, resume
        # from the store, and the merged report is byte-identical
        # (timing aside) to the uninterrupted serial baseline.
        store = ResultStore(tmp_path / "store")
        with pytest.raises(SweepInterrupted):
            run_fault_sweep(
                TESTS,
                CAPS,
                FAULTS,
                jobs=1,
                store=store,
                chaos=ChaosPlan(interrupt_after=3),
            )
        resumed = run_fault_sweep(
            TESTS, CAPS, FAULTS, jobs=1, store=store, resume=True
        )
        assert resumed.ok
        assert sans_timing(resumed.to_json()) == sans_timing(
            baseline.to_json()
        )
        # The shards finished before the interrupt came back as hits.
        assert resumed.service_stats["store"]["hits"] >= 3

    def test_resume_across_worker_counts(self, baseline, tmp_path):
        # Interrupt a serial run, resume with a pool: shard keys only
        # depend on the workload, so the cache still applies.
        store = ResultStore(tmp_path / "store")
        with pytest.raises(SweepInterrupted):
            run_fault_sweep(
                TESTS,
                CAPS,
                FAULTS,
                jobs=1,
                store=store,
                chaos=ChaosPlan(interrupt_after=2),
            )
        resumed = run_fault_sweep(
            TESTS, CAPS, FAULTS, jobs=2, store=store, resume=True
        )
        assert resumed.ok
        assert sans_timing(resumed.to_json()) == sans_timing(
            baseline.to_json()
        )

    def test_multi_geometry_interrupt_marks_report(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(SweepInterrupted) as exc_info:
            run_fault_sweeps(
                [(8, 2, 1), (8, 1, 1)],
                TESTS,
                faults=FAULTS,
                store=store,
                chaos=ChaosPlan(interrupt_after=2),
            )
        partial = exc_info.value.report
        assert partial.interrupted
        assert partial.to_json()["interrupted"] is True


class TestStoreCorruption:
    def test_corrupted_entry_is_detected_and_recomputed(
        self, baseline, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        first = run_fault_sweep(TESTS, CAPS, FAULTS, jobs=1, store=store)
        assert first.ok
        assert len(store) > 0  # sanity: the sweep populated the store

        # Flip a bit in the first cached shard without fixing its hash.
        corrupt_store_entry(store, _first_key(store))
        rerun = run_fault_sweep(
            TESTS, CAPS, FAULTS, jobs=1, store=store, resume=True
        )
        assert rerun.ok
        assert sans_timing(rerun.to_json()) == sans_timing(
            baseline.to_json()
        )
        stats = rerun.service_stats["store"]
        assert stats["corruptions"] == 1
        assert stats["misses"] >= 1  # the evicted shard was recomputed


def _first_key(store):
    """Reconstruct a StoreKey shim for the first on-disk entry."""
    import json
    from repro.service.store import StoreKey

    path = sorted(store.entry_paths())[0]
    entry = json.loads(path.read_text())
    return StoreKey(fields=entry["key"], digest=path.stem)


class TestFuzzServiceIdentity:
    def test_check_sample_exercises_resumed_sweep_identity(self):
        from repro.analysis.fuzz import check_sample

        result = check_sample(11, 0)
        assert result.ok, result.mismatches
        assert result.service_checked

    def test_run_fuzz_counts_service_identities(self):
        from repro.analysis.fuzz import run_fuzz

        report = run_fuzz(3, seed=5, jobs=1)
        assert report.ok
        assert report.service_checked == 3

    def test_service_identity_can_be_disabled(self):
        from repro.analysis.fuzz import run_fuzz

        report = run_fuzz(2, seed=5, jobs=1, service_conformance=False)
        assert report.ok
        assert report.service_checked == 0


class TestVectorEngineService:
    def test_vector_sweep_store_roundtrip(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.vector.sweep import run_vector_fault_sweep

        store = ResultStore(tmp_path / "store")
        first = run_vector_fault_sweep(
            TESTS, CAPS, FAULTS, store=store
        )
        rerun = run_vector_fault_sweep(
            TESTS, CAPS, FAULTS, store=store, resume=True
        )
        assert rerun.ok
        assert sans_timing(rerun.to_json()) == sans_timing(
            first.to_json()
        )
        assert rerun.service_stats["store"]["hits"] >= 1

    def test_vector_kill_once_identical(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.vector.sweep import run_vector_fault_sweep

        serial = run_vector_fault_sweep(TESTS, CAPS, FAULTS)
        chaos = ChaosPlan(
            behaviors={0: "kill-once"}, sentinel_dir=tmp_path
        )
        chaotic = run_vector_fault_sweep(
            TESTS, CAPS, FAULTS, jobs=2, chaos=chaos
        )
        assert chaotic.ok
        assert sans_timing(chaotic.to_json()) == sans_timing(
            serial.to_json()
        )


class TestSessions:
    def test_submit_run_collect_lifecycle(self, tmp_path):
        root = tmp_path / "svc"
        sid = submit_session(
            root,
            {
                "algorithms": ["MATS+", "March C"],
                "geometries": [[8, 2, 1]],
                "per_kind": 1,
                "seed": 3,
            },
        )
        assert session_status(root, sid)["state"] == "submitted"

        payload = run_session(root, sid)
        assert payload["ok"] is True
        assert session_status(root, sid)["state"] == "complete"

        collected = collect_session(root, sid)
        assert collected["ok"] is True
        assert [s["session"] for s in list_sessions(root)] == [sid]

    def test_session_id_is_content_addressed(self, tmp_path):
        spec = {"algorithms": ["March C"], "per_kind": 1}
        first = submit_session(tmp_path / "a", spec)
        second = submit_session(tmp_path / "b", dict(spec))
        assert first == second

    def test_rerun_hits_session_store(self, tmp_path):
        root = tmp_path / "svc"
        sid = submit_session(
            root,
            {"algorithms": ["MATS+"], "per_kind": 1, "seed": 1},
        )
        run_session(root, sid)
        again = run_session(root, sid)
        assert again["ok"] is True
        # Sessions always run store-backed + resume: the second run is
        # answered from cache.
        stats = again["geometries"][0]["timing"]["service"]["store"]
        assert stats["hits"] >= 1
