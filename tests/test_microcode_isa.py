"""Unit tests for the microcode ISA: instruction encode/decode and the
storage unit."""

import pytest

from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import (
    ConditionOp,
    INSTRUCTION_BITS,
    MAX_HOLD_EXPONENT,
)
from repro.core.microcode.storage import StorageUnit


class TestConditionOp:
    def test_eight_ops(self):
        assert len(ConditionOp) == 8

    def test_memory_op_allowed_only_for_nop_and_loop(self):
        allowed = {op for op in ConditionOp if op.is_memory_op_allowed}
        assert allowed == {ConditionOp.NOP, ConditionOp.LOOP}


class TestMicroInstruction:
    def test_default_is_nop(self):
        instr = MicroInstruction()
        assert instr.cond is ConditionOp.NOP
        assert not instr.is_memory_op

    def test_read_write_exclusive(self):
        with pytest.raises(ValueError):
            MicroInstruction(read_en=True, write_en=True)

    def test_memory_op_on_control_instruction_rejected(self):
        with pytest.raises(ValueError):
            MicroInstruction(read_en=True, cond=ConditionOp.TERMINATE)

    def test_hold_exponent_range(self):
        with pytest.raises(ValueError):
            MicroInstruction(cond=ConditionOp.HOLD,
                             hold_exponent=MAX_HOLD_EXPONENT + 1)

    def test_hold_exponent_only_for_hold(self):
        with pytest.raises(ValueError):
            MicroInstruction(cond=ConditionOp.NOP, hold_exponent=3)

    def test_hold_duration(self):
        instr = MicroInstruction(cond=ConditionOp.HOLD, hold_exponent=10)
        assert instr.hold_duration == 1024

    def test_encode_fits_instruction_width(self):
        instr = MicroInstruction(
            addr_inc=True, addr_down=True, data_inv=True, compare=True,
            write_en=True, cond=ConditionOp.LOOP,
        )
        assert 0 <= instr.encode() < (1 << INSTRUCTION_BITS)

    def test_encode_decode_roundtrip_memory_op(self):
        instr = MicroInstruction(
            addr_inc=True, addr_down=False, data_inv=True, read_en=False,
            write_en=True, cond=ConditionOp.LOOP,
        )
        assert MicroInstruction.decode(instr.encode()) == instr

    def test_encode_decode_roundtrip_hold(self):
        instr = MicroInstruction(cond=ConditionOp.HOLD, hold_exponent=99)
        assert MicroInstruction.decode(instr.encode()) == instr

    def test_decode_oversized_word_rejected(self):
        with pytest.raises(ValueError):
            MicroInstruction.decode(1 << INSTRUCTION_BITS)

    def test_with_cond(self):
        instr = MicroInstruction(read_en=True)
        assert instr.with_cond(ConditionOp.LOOP).cond is ConditionOp.LOOP

    def test_all_valid_words_roundtrip(self):
        """Every decodable 10-bit word re-encodes to itself."""
        count = 0
        for word in range(1 << INSTRUCTION_BITS):
            try:
                instr = MicroInstruction.decode(word)
            except ValueError:
                continue
            count += 1
            # HOLD ignores the r/w fields, so re-encode may normalise;
            # re-decoding must be a fixed point either way.
            again = MicroInstruction.decode(instr.encode())
            assert again == instr
        assert count >= 480  # a large share of the space is valid


class TestStorageUnit:
    def _program(self):
        return [
            MicroInstruction(write_en=True, addr_inc=True, cond=ConditionOp.LOOP),
            MicroInstruction(read_en=True),
            MicroInstruction(cond=ConditionOp.TERMINATE),
        ]

    def test_load_and_fetch(self):
        storage = StorageUnit(rows=8)
        storage.load(self._program())
        assert storage.fetch(0).write_en
        assert storage.fetch(2).cond is ConditionOp.TERMINATE

    def test_unused_rows_zeroed(self):
        storage = StorageUnit(rows=8)
        storage.load(self._program())
        assert storage.word(5) == 0

    def test_program_too_long_rejected(self):
        storage = StorageUnit(rows=2)
        with pytest.raises(ValueError):
            storage.load(self._program())

    def test_default_program_initialize(self):
        storage = StorageUnit(rows=8, default_program=self._program())
        storage.load([MicroInstruction()])
        storage.initialize_default()
        assert storage.fetch(0).write_en

    def test_default_program_too_long_rejected(self):
        with pytest.raises(ValueError):
            StorageUnit(rows=2, default_program=self._program())

    def test_fetch_out_of_range(self):
        storage = StorageUnit(rows=4)
        with pytest.raises(IndexError):
            storage.fetch(4)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            StorageUnit(rows=1)

    def test_scan_roundtrip(self):
        storage = StorageUnit(rows=4)
        storage.load(self._program())
        bits = storage.scan_dump()
        other = StorageUnit(rows=4)
        other.scan_load(bits)
        assert [other.word(r) for r in range(4)] == [
            storage.word(r) for r in range(4)
        ]

    def test_scan_load_wrong_length_rejected(self):
        storage = StorageUnit(rows=4)
        with pytest.raises(ValueError):
            storage.scan_load([0] * 10)

    def test_scan_load_validates_words(self):
        storage = StorageUnit(rows=2)
        # cond=LOOP(001) with both read and write enables set: invalid.
        bad_word = (1 << 5) | (1 << 6) | (1 << 7)
        bits = []
        for word in (bad_word, 0):
            bits.extend((word >> b) & 1 for b in range(10))
        with pytest.raises(ValueError):
            storage.scan_load(bits)

    def test_hardware_inventory(self):
        names = [c.name for c in StorageUnit(rows=8).hardware()]
        assert any("storage unit" in n for n in names)
        assert any("instruction selector" in n for n in names)
