"""Unit tests for the MarchTest container."""

import pytest

from repro.march.element import (
    AddressOrder,
    MarchElement,
    Pause,
    R0,
    R1,
    W0,
    W1,
)
from repro.march.test import MarchTest

UP = AddressOrder.UP
DOWN = AddressOrder.DOWN
ANY = AddressOrder.ANY


def make_test():
    return MarchTest(
        "demo",
        [
            MarchElement(ANY, [W0]),
            MarchElement(UP, [R0, W1]),
            Pause(512),
            MarchElement(DOWN, [R1]),
        ],
    )


class TestMarchTest:
    def test_name(self):
        assert make_test().name == "demo"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MarchTest("empty", [])

    def test_non_march_item_rejected(self):
        with pytest.raises(TypeError):
            MarchTest("bad", ["not an element"])

    def test_elements_excludes_pauses(self):
        test = make_test()
        assert len(test.elements) == 3
        assert all(isinstance(e, MarchElement) for e in test.elements)

    def test_pauses(self):
        test = make_test()
        assert len(test.pauses) == 1
        assert test.pauses[0].duration == 512

    def test_element_count(self):
        assert make_test().element_count == 3

    def test_operation_count(self):
        assert make_test().operation_count == 4

    def test_complexity_string(self):
        assert make_test().complexity == "4N"

    def test_has_pauses(self):
        assert make_test().has_pauses
        plain = MarchTest("p", [MarchElement(UP, [R0])])
        assert not plain.has_pauses

    def test_operations_flattened(self):
        assert make_test().operations() == [W0, R0, W1, R1]

    def test_renamed(self):
        renamed = make_test().renamed("other")
        assert renamed.name == "other"
        assert renamed.items == make_test().items

    def test_concatenated(self):
        a = MarchTest("a", [MarchElement(UP, [W0])])
        b = MarchTest("b", [MarchElement(UP, [R0])])
        joined = a.concatenated(b)
        assert joined.element_count == 2
        assert joined.name == "a+b"

    def test_concatenated_custom_name(self):
        a = MarchTest("a", [MarchElement(UP, [W0])])
        joined = a.concatenated(a, name="double")
        assert joined.name == "double"

    def test_len_counts_items(self):
        assert len(make_test()) == 4

    def test_str_joins_items(self):
        text = str(make_test())
        assert "~(w0)" in text
        assert "Del(512)" in text

    def test_items_are_tuple(self):
        assert isinstance(make_test().items, tuple)
