"""Tests for the static fault-coverage prover, its certificates, the
certificate-vs-sweep differential cross-check and the ``CV`` lint rules."""

import json
import pathlib

import pytest

from repro.analysis.coverage import (
    COVERED,
    NOT_COVERED,
    UNKNOWN,
    CoverageCertificate,
    ShadowMemory,
    certify,
    support_of,
)
from repro.analysis.coverage_rules import LINT_GEOMETRY, run_coverage_rules
from repro.conformance import (
    check_coverage_conformance,
    coverage_disagreement_predicate,
    sweep_faults,
)
from repro.core.controller import ControllerCapabilities
from repro.faults.base import CellFault
from repro.faults.conditions import condition_for, condition_table
from repro.faults.injector import FaultInjector
from repro.faults.spec import parse_fault
from repro.faults.universe import standard_universe
from repro.march import library
from repro.march.notation import parse_test
from repro.march.simulator import expand
from repro.march.test import MarchTest
from repro.memory.sram import Sram

REGRESSIONS = pathlib.Path(__file__).parent / "corpus" / "regressions"

#: Kinds whose behaviour involves only the faulty cell itself, so a
#: covered verdict must survive growing the memory around the cell.
CELL_LOCAL_KINDS = ("SAF", "TF", "SOF", "DRF", "IRF", "RDF", "DRDF")


def _simulated_detection(test, caps, fault):
    """The sweep's ground truth: does any read fail under the fault?"""
    injector = FaultInjector(
        Sram(caps.n_words, width=caps.width, ports=caps.ports)
    )
    with injector.injected(fault) as memory:
        for op in expand(
            test, caps.n_words, width=caps.width, ports=caps.ports
        ):
            if op.is_delay:
                memory.elapse(op.delay)
            elif op.is_write:
                memory.write(op.port, op.address, op.value)
            elif memory.read(op.port, op.address) != op.expected:
                return True
    return False


class TestCertificate:
    def test_full_universe_verdicts(self):
        universe = standard_universe(4, 2, ports=1)
        certificate = certify(library.get("March C"), 4, width=2)
        assert len(certificate.verdicts) == len(universe.faults)
        assert certificate.unknown_count == 0
        assert certificate.fault_free_consistent
        assert certificate.covered_count + certificate.not_covered_count == \
            len(certificate.verdicts)

    def test_covered_verdicts_carry_witnesses(self):
        certificate = certify(library.get("MATS+"), 4, width=1)
        for verdict in certificate.verdicts:
            if verdict.verdict == COVERED:
                assert verdict.witness is not None
            else:
                assert verdict.witness is None

    def test_strata_account_for_every_fault(self):
        certificate = certify(library.get("March Y"), 4, width=2)
        assert sum(s["members"] for s in certificate.strata.values()) == \
            len(certificate.verdicts)

    def test_to_json_is_serialisable(self):
        certificate = certify(library.get("MATS"), 4, width=1)
        payload = json.loads(json.dumps(certificate.to_json()))
        assert payload["test"] == "MATS"
        assert payload["geometry"] == [4, 1, 1]
        assert payload["fault_free_consistent"] is True
        assert len(payload["verdicts"]) == len(certificate.verdicts)

    def test_format_mentions_counts(self):
        certificate = certify(library.get("March C"), 4, width=1)
        text = certificate.format()
        assert "March C" in text
        assert f"{certificate.covered_count}/" in text

    def test_kind_fully_covered_tristate(self):
        certificate = certify(library.get("March C"), 4, width=1)
        assert certificate.kind_fully_covered("SAF") is True
        assert certificate.kind_fully_covered("DRF") is False
        assert certificate.kind_fully_covered("NOPE") is None

    def test_empty_certificate_rates(self):
        certificate = CoverageCertificate(
            test_name="t", universe_name="u", n_words=4, width=1, ports=1
        )
        assert certificate.unknown_rate == 0.0
        assert certificate.escapes() == []


class TestDeterminism:
    def test_certify_twice_identical(self):
        args = (library.get("March B"), 4)
        first = certify(*args, width=2, ports=2)
        second = certify(*args, width=2, ports=2)
        assert first.to_json() == second.to_json()

    def test_universe_order_preserved(self):
        universe = standard_universe(4, 1)
        certificate = certify(library.get("MATS++"), 4, universe=universe)
        assert [v.index for v in certificate.verdicts] == \
            list(range(len(universe.faults)))


class TestSoundness:
    def test_witnesses_replay_as_failing_reads(self):
        caps = ControllerCapabilities(n_words=4, width=2, ports=1)
        faults = sweep_faults(caps, per_kind=2, seed=7)
        for name in ("MATS+", "March C", "March LR"):
            test = library.get(name)
            certificate = certify(test, 4, width=2, faults=faults)
            for verdict, fault in zip(certificate.verdicts, faults):
                if verdict.verdict != COVERED:
                    continue
                injector = FaultInjector(Sram(4, width=2))
                with injector.injected(fault) as memory:
                    failed = None
                    for index, op in enumerate(expand(test, 4, width=2)):
                        if op.is_delay:
                            memory.elapse(op.delay)
                        elif op.is_write:
                            memory.write(op.port, op.address, op.value)
                        elif index == verdict.witness:
                            failed = (
                                memory.read(op.port, op.address)
                                != op.expected
                            )
                            break
                        else:
                            memory.read(op.port, op.address)
                assert failed is True, (name, verdict)

    def test_unregistered_fault_type_is_unknown(self):
        class MysteryFault(CellFault):
            kind = "???"

            def describe(self):
                return "mystery"

        fault = MysteryFault()
        assert support_of(fault) is None
        certificate = certify(library.get("MATS"), 4, faults=[fault])
        assert certificate.verdicts[0].verdict == UNKNOWN
        assert certificate.unknown_rate == 1.0

    def test_inconsistent_test_flagged_and_still_agrees(self):
        # ⇕(r1) expects 1 from a power-on-zero array: the fault-free run
        # fails, so every fault is detected by the sweep's criterion.
        test = parse_test("⇕(r1)", name="expects-one")
        certificate = certify(test, 4, width=1)
        assert not certificate.fault_free_consistent
        assert certificate.not_covered_count == 0
        result = check_coverage_conformance(tests=[test], geometry=(4, 1, 1))
        assert result.ok, result.format()


class TestGeometryMonotonicity:
    @pytest.mark.parametrize("name", sorted(library.ALGORITHMS))
    def test_cell_local_coverage_survives_growth(self, name):
        small = certify(library.get(name), 2, width=1, ports=1)
        large = certify(library.get(name), 8, width=2, ports=1)
        for kind in CELL_LOCAL_KINDS:
            if small.kind_fully_covered(kind) is True:
                assert large.kind_fully_covered(kind) is True, (name, kind)


class TestCoverageConformance:
    def test_whole_library_agrees_on_word_oriented(self):
        result = check_coverage_conformance(geometry=(4, 2, 1))
        assert result.ok, result.format()
        assert result.checked == 17 * len(standard_universe(4, 2).faults)
        assert result.unknown_rate < 0.10

    def test_sample_agrees_on_bit_and_multiport(self):
        tests = [library.get(n) for n in ("MATS++", "March C+", "PMOVI")]
        for geometry in ((8, 1, 1), (4, 2, 2)):
            result = check_coverage_conformance(tests=tests, geometry=geometry)
            assert result.ok, result.format()
            assert result.unknown == 0

    def test_to_json_shape(self):
        result = check_coverage_conformance(
            tests=[library.get("MATS")], geometry=(2, 1, 1)
        )
        payload = json.loads(json.dumps(result.to_json()))
        assert payload["ok"] is True
        assert payload["geometry"] == [2, 1, 1]
        assert "timing" in payload
        assert "timing" not in result.to_json(include_timing=False)

    def test_predicate_false_on_agreement(self):
        predicate = coverage_disagreement_predicate()
        caps = ControllerCapabilities(n_words=4, width=1, ports=1)
        assert predicate(library.get("March C"), caps, "saf:0:0:1") is False
        assert predicate(library.get("March C"), caps, "not-a-spec") is False

    def test_regression_corpus_fault_verdicts_match_sweep(self):
        # Satellite: every recorded regression that carries a fault must
        # get, from the certificate, the exact verdict the sweep records.
        checked = 0
        for path in sorted(REGRESSIONS.glob("*.json")):
            record = json.loads(path.read_text())
            if "fault" not in record:
                continue
            test = parse_test(record["notation"], name=record["name"])
            n_words, width, ports = record["geometry"]
            caps = ControllerCapabilities(
                n_words=n_words, width=width, ports=ports
            )
            fault = parse_fault(record["fault"])
            detected = _simulated_detection(test, caps, fault)
            certificate = certify(
                test, n_words, width=width, ports=ports, faults=[fault]
            )
            verdict = certificate.verdicts[0].verdict
            assert verdict == (COVERED if detected else NOT_COVERED), path
            checked += 1
        assert checked >= 1  # the corpus ships at least one faulty record


class TestShadowMemory:
    def test_matches_sram_under_fault(self):
        fault = parse_fault("cfid:0:0:2:0:up:1")
        for memory in (Sram(4, width=2), ShadowMemory(4, width=2)):
            fault.reset()
            memory.attach(fault)
            memory.write(0, 0, 1)  # aggressor up-transition on bit 0
            values = [memory.read(0, word) for word in range(4)]
            memory.detach_all()
            assert values == [1, 0, 1, 0], type(memory).__name__

    def test_open_read_and_wired_and(self):
        shadow = ShadowMemory(4, width=1)
        shadow.attach(parse_fault("af1:2"))  # address 2 selects no cell
        shadow.write(0, 2, 1)
        assert shadow.read(0, 2) == 0  # open read returns the pulled value

    def test_elapse_reaches_retention_faults(self):
        shadow = ShadowMemory(4, width=1)
        shadow.attach(parse_fault("drf:1:0:1"))
        shadow.write(0, 1, 1)
        shadow.elapse(10_000_000)
        assert shadow.read(0, 1) == 0


class TestCoverageRules:
    def test_write_only_fires_cv001(self):
        test = parse_test("⇕(w0);⇕(w1)", name="write-only")
        rules = {d.rule for d in run_coverage_rules(test)}
        assert "CV001" in rules
        assert "CV002" in rules  # and the SAF gap is proved, not implied

    def test_library_march_c_reports_only_known_gaps(self):
        diagnostics = run_coverage_rules(library.get("March C"))
        rules = {d.rule for d in diagnostics}
        # March C has no pause and no double read: SOF/DRF/DRDF escape.
        assert rules == {"CV004", "CV005", "CV006"}
        assert all(d.severity.value == "info" for d in diagnostics)

    def test_vacuous_test_fires_cv013(self):
        fake = MarchTest("March C", parse_test("⇕(r0)", name="x").items)
        rules = {d.rule for d in run_coverage_rules(fake)}
        assert "CV013" in rules

    def test_renamed_weaker_body_fires_cv011(self):
        impostor = MarchTest("March C", library.get("MATS").items)
        diagnostics = run_coverage_rules(impostor)
        cv011 = [d for d in diagnostics if d.rule == "CV011"]
        assert cv011 and cv011[0].severity.value == "error"
        assert "March C" in cv011[0].message

    def test_genuine_library_names_never_fire_cv011(self):
        for name in ("March C", "MATS", "March G"):
            rules = {d.rule for d in run_coverage_rules(library.get(name))}
            assert "CV011" not in rules, name

    def test_hints_cite_detection_conditions(self):
        test = parse_test("⇕(w0);⇕(w1)", name="write-only")
        hints = [d.hint for d in run_coverage_rules(test) if d.hint]
        assert any("detection condition" in hint for hint in hints)


class TestDetectionConditions:
    def test_table_covers_every_universe_kind(self):
        universe = standard_universe(4, 2, ports=2)
        for fault in universe.faults:
            assert condition_for(fault.kind) is not None, fault.kind

    def test_conditions_carry_citations(self):
        for condition in condition_table():
            assert condition.citation
            assert condition.primitives

    def test_lint_geometry_exercises_all_kinds(self):
        n_words, width, ports = LINT_GEOMETRY
        kinds = {f.kind for f in standard_universe(
            n_words, width, ports=ports).faults}
        assert {"SAF", "TF", "CFid", "AF1", "PNPSF", "PAF"} <= kinds
