"""Unit tests for the shared BIST datapath blocks."""

import pytest

from repro.core.datapath import (
    AddressGenerator,
    DataGenerator,
    PortSequencer,
    shared_datapath_hardware,
)
from repro.march.element import AddressOrder


class TestAddressGenerator:
    def test_up_sweep(self):
        gen = AddressGenerator(4)
        gen.start(AddressOrder.UP)
        seen = []
        for _ in range(4):
            seen.append(gen.address)
            if not gen.last_address:
                gen.increment()
        assert seen == [0, 1, 2, 3]

    def test_down_sweep(self):
        gen = AddressGenerator(4)
        gen.start(AddressOrder.DOWN)
        assert gen.address == 3
        gen.increment()
        assert gen.address == 2

    def test_any_starts_up(self):
        gen = AddressGenerator(4)
        gen.start(AddressOrder.ANY)
        assert gen.direction is AddressOrder.UP
        assert gen.address == 0

    def test_last_address_up(self):
        gen = AddressGenerator(3)
        gen.start(AddressOrder.UP)
        assert not gen.last_address
        gen.increment()
        gen.increment()
        assert gen.last_address

    def test_last_address_down(self):
        gen = AddressGenerator(3)
        gen.start(AddressOrder.DOWN)
        gen.increment()
        gen.increment()
        assert gen.address == 0
        assert gen.last_address

    def test_wraps_at_sweep_end(self):
        gen = AddressGenerator(2)
        gen.start(AddressOrder.UP)
        gen.increment()
        gen.increment()  # wrap
        assert gen.address == 0

    def test_single_word_always_last(self):
        gen = AddressGenerator(1)
        gen.start(AddressOrder.UP)
        assert gen.last_address

    def test_address_bits(self):
        assert AddressGenerator(1024).address_bits == 10
        assert AddressGenerator(1).address_bits == 1
        assert AddressGenerator(1000).address_bits == 10

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            AddressGenerator(0)

    def test_hardware_components(self):
        names = [c.name for c in AddressGenerator(64).hardware()]
        assert any("address counter" in n for n in names)


class TestDataGenerator:
    def test_bit_oriented_single_background(self):
        gen = DataGenerator(1)
        assert gen.background == 0
        assert gen.last_background

    def test_word_for_polarity(self):
        gen = DataGenerator(8)
        assert gen.word(0) == 0
        assert gen.word(1) == 0xFF

    def test_increment_steps_backgrounds(self):
        gen = DataGenerator(8)
        gen.increment()
        assert gen.background == 0b10101010

    def test_increment_wraps(self):
        gen = DataGenerator(4)
        for _ in range(len(gen.backgrounds)):
            gen.increment()
        assert gen.index == 0

    def test_last_background_flag(self):
        gen = DataGenerator(4)
        assert not gen.last_background
        gen.increment()
        gen.increment()
        assert gen.last_background

    def test_reset(self):
        gen = DataGenerator(4)
        gen.increment()
        gen.reset()
        assert gen.index == 0

    def test_hardware_no_counter_for_bit_oriented(self):
        names = [c.name for c in DataGenerator(1).hardware()]
        assert not any("background counter" in n for n in names)

    def test_hardware_counter_for_word_oriented(self):
        names = [c.name for c in DataGenerator(8).hardware()]
        assert any("background counter" in n for n in names)


class TestPortSequencer:
    def test_single_port(self):
        ports = PortSequencer(1)
        assert ports.last_port
        assert ports.hardware() == []

    def test_multi_port_sequence(self):
        ports = PortSequencer(3)
        assert ports.port == 0 and not ports.last_port
        ports.increment()
        ports.increment()
        assert ports.last_port
        ports.increment()  # wraps
        assert ports.port == 0

    def test_reset(self):
        ports = PortSequencer(2)
        ports.increment()
        ports.reset()
        assert ports.port == 0

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            PortSequencer(0)

    def test_multiport_hardware_present(self):
        assert PortSequencer(2).hardware()


class TestSharedDatapath:
    def test_word_oriented_larger_than_bit(self):
        from repro.area.technology import IBM_CMOS5S

        bit = sum(
            c.gate_equivalents(IBM_CMOS5S)
            for c in shared_datapath_hardware(64, 1, 1)
        )
        word = sum(
            c.gate_equivalents(IBM_CMOS5S)
            for c in shared_datapath_hardware(64, 8, 1)
        )
        assert word > bit

    def test_multiport_larger_than_single(self):
        from repro.area.technology import IBM_CMOS5S

        single = sum(
            c.gate_equivalents(IBM_CMOS5S)
            for c in shared_datapath_hardware(64, 1, 1)
        )
        multi = sum(
            c.gate_equivalents(IBM_CMOS5S)
            for c in shared_datapath_hardware(64, 1, 4)
        )
        assert multi > single
