"""Unit tests for the storage-unit scan self-test."""

import pytest

from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController, assemble
from repro.core.microcode.selftest import (
    readback_verify,
    scan_test,
    standard_scan_patterns,
)
from repro.core.microcode.storage import StorageUnit
from repro.march import library

CAPS = ControllerCapabilities(n_words=8)


class TestPatterns:
    def test_five_patterns(self):
        assert len(standard_scan_patterns(8, 10)) == 5

    def test_pattern_lengths(self):
        for pattern in standard_scan_patterns(8, 10):
            assert len(pattern) == 80

    def test_solid_and_checker_content(self):
        zero, one, checker, inverse, _ = standard_scan_patterns(4, 10)
        assert set(zero) == {0}
        assert set(one) == {1}
        assert checker[:4] == [0, 1, 0, 1]
        assert inverse[:4] == [1, 0, 1, 0]

    def test_checker_pair_covers_both_values_everywhere(self):
        """Every cell sees both a 0 and a 1 across the pattern set."""
        patterns = standard_scan_patterns(6, 10)
        for index in range(60):
            values = {pattern[index] for pattern in patterns}
            assert values == {0, 1}


class TestScanTest:
    def test_clean_storage_passes(self):
        storage = StorageUnit(rows=8)
        result = scan_test(storage)
        assert result.passed
        assert result.patterns_run == 5
        assert "PASS" in str(result)

    def test_contents_restored_after_test(self):
        program = assemble(library.MARCH_C, CAPS)
        storage = StorageUnit(rows=16)
        storage.load(program.instructions)
        before = [storage.word(r) for r in range(16)]
        scan_test(storage)
        assert [storage.word(r) for r in range(16)] == before

    @pytest.mark.parametrize("value", [0, 1])
    def test_stuck_cell_detected(self, value):
        storage = StorageUnit(rows=8)
        storage.inject_storage_defect(3, 7, value)
        result = scan_test(storage)
        assert not result.passed
        assert (3, 7) in result.failing_cells
        assert "FAIL" in str(result)

    def test_multiple_defects_all_located(self):
        storage = StorageUnit(rows=8)
        storage.inject_storage_defect(0, 0, 1)
        storage.inject_storage_defect(5, 9, 0)
        result = scan_test(storage)
        assert set(result.failing_cells) == {(0, 0), (5, 9)}

    def test_defect_injection_validation(self):
        storage = StorageUnit(rows=4)
        with pytest.raises(IndexError):
            storage.inject_storage_defect(4, 0, 1)
        with pytest.raises(ValueError):
            storage.inject_storage_defect(0, 0, 2)

    def test_clear_defects(self):
        storage = StorageUnit(rows=4)
        storage.inject_storage_defect(1, 1, 1)
        storage.clear_storage_defects()
        assert scan_test(storage).passed


class TestReadbackVerify:
    def test_clean_readback_passes(self):
        program = assemble(library.MARCH_C, CAPS)
        storage = StorageUnit(rows=16)
        result = readback_verify(storage, program)
        assert result.passed

    def test_defective_row_caught(self):
        program = assemble(library.MARCH_C, CAPS)
        storage = StorageUnit(rows=16)
        # Stuck bit that actually flips a program bit: row 0 encodes
        # w0/LOOP (bit 6 = write_en = 1); stick it at 0.
        storage.inject_storage_defect(0, 6, 0)
        result = readback_verify(storage, program)
        assert not result.passed
        assert result.mismatching_rows == (0,)

    def test_benign_defect_in_unused_row_passes_readback(self):
        """A defect beyond the program image escapes readback (and is
        why the scan test runs first — it covers every cell)."""
        program = assemble(library.MARCH_C, CAPS)
        storage = StorageUnit(rows=16)
        storage.inject_storage_defect(15, 3, 1)
        assert readback_verify(storage, program).passed
        assert not scan_test(storage).passed

    def test_controller_integration(self):
        """A controller with a corrupted program bit misbehaves; the
        self-test flow catches the part before any BIST verdict."""
        controller = MicrocodeBistController(library.MARCH_C, CAPS)
        controller.storage.inject_storage_defect(0, 6, 0)  # drops the w0
        controller.storage.load(controller.program.instructions)
        result = readback_verify(controller.storage, controller.program)
        assert not result.passed
