"""Unit tests for the static read faults (IRF / RDF / DRDF)."""

import pytest

from repro.faults.read_faults import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
    read_fault_universe,
)
from repro.faults.universe import FaultUniverse
from repro.march import library
from repro.march.coverage import evaluate_coverage
from repro.memory import Sram

N = 8


def _universe(kinds=None):
    universe = FaultUniverse("read faults")
    faults = read_fault_universe(N)
    if kinds:
        faults = [fault for fault in faults if fault.kind in kinds]
    universe.extend(faults)
    return universe


class TestIncorrectRead:
    def test_invalid_state_rejected(self):
        with pytest.raises(ValueError):
            IncorrectReadFault(0, 0, 2)

    def test_read_lies_but_cell_intact(self):
        memory = Sram(4)
        memory.attach(IncorrectReadFault(1, 0, state=0))
        assert memory.read(0, 1) == 1  # lies
        assert memory.peek(1) == 0     # cell untouched

    def test_other_state_reads_fine(self):
        memory = Sram(4)
        memory.attach(IncorrectReadFault(1, 0, state=0))
        memory.write(0, 1, 1)
        assert memory.read(0, 1) == 1


class TestReadDestructive:
    def test_read_flips_and_returns_flipped(self):
        memory = Sram(4)
        memory.attach(ReadDestructiveFault(1, 0, state=0))
        assert memory.read(0, 1) == 1  # returns the flipped value
        assert memory.peek(1) == 1     # and the cell flipped

    def test_write_restores(self):
        memory = Sram(4)
        memory.attach(ReadDestructiveFault(1, 0, state=0))
        memory.read(0, 1)
        memory.write(0, 1, 0)
        assert memory.peek(1) == 0


class TestDeceptiveReadDestructive:
    def test_first_read_correct_second_wrong(self):
        memory = Sram(4)
        memory.attach(DeceptiveReadDestructiveFault(1, 0, state=0))
        assert memory.read(0, 1) == 0  # the lie: correct value returned
        assert memory.peek(1) == 1     # but the cell flipped
        assert memory.read(0, 1) == 1  # the second read sees the damage

    def test_other_state_untouched(self):
        memory = Sram(4)
        memory.attach(DeceptiveReadDestructiveFault(1, 0, state=0))
        memory.write(0, 1, 1)
        assert memory.read(0, 1) == 1
        assert memory.peek(1) == 1


class TestUniverse:
    def test_size(self):
        assert len(read_fault_universe(N)) == 6 * N

    def test_kinds(self):
        kinds = {fault.kind for fault in read_fault_universe(2)}
        assert kinds == {"IRF", "RDF", "DRDF"}


class TestCoverage:
    """Measured literature results for read faults."""

    def test_every_algorithm_detects_irf_and_rdf(self):
        universe = _universe(kinds={"IRF", "RDF"})
        for test in library.ALGORITHMS.values():
            report = evaluate_coverage(test, universe, N)
            assert report.overall == 1.0, test.name

    def test_march_c_misses_all_drdf(self):
        """The read that lies needs a second read; March C never reads
        the same state twice without an intervening write."""
        universe = _universe(kinds={"DRDF"})
        report = evaluate_coverage(library.MARCH_C, universe, N)
        assert report.overall == 0.0

    def test_pmovi_detects_all_drdf(self):
        """PMOVI's claim to fame: its read-after-write element structure
        re-reads each state across elements."""
        universe = _universe(kinds={"DRDF"})
        report = evaluate_coverage(library.PMOVI, universe, N)
        assert report.overall == 1.0

    def test_triple_reads_detect_all_drdf(self):
        universe = _universe(kinds={"DRDF"})
        for test in (library.MARCH_C_PLUS_PLUS, library.MARCH_A_PLUS_PLUS):
            report = evaluate_coverage(test, universe, N)
            assert report.overall == 1.0, test.name

    def test_march_y_detects_all_drdf(self):
        universe = _universe(kinds={"DRDF"})
        report = evaluate_coverage(library.MARCH_Y, universe, N)
        assert report.overall == 1.0
