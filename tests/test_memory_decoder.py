"""Unit tests for the address decoder model."""

import pytest

from repro.memory.decoder import AddressDecoder
from repro.memory.retention import RetentionClock


class TestAddressDecoder:
    def test_identity_by_default(self):
        decoder = AddressDecoder(8)
        assert decoder.targets(5) == (5,)
        assert not decoder.is_faulty

    def test_remap_single(self):
        decoder = AddressDecoder(8)
        decoder.remap(2, (6,))
        assert decoder.targets(2) == (6,)
        assert decoder.is_faulty

    def test_remap_empty(self):
        decoder = AddressDecoder(8)
        decoder.remap(2, ())
        assert decoder.targets(2) == ()

    def test_remap_multiple(self):
        decoder = AddressDecoder(8)
        decoder.remap(2, (2, 5))
        assert decoder.targets(2) == (2, 5)

    def test_restore(self):
        decoder = AddressDecoder(8)
        decoder.remap(2, (6,))
        decoder.restore(2)
        assert decoder.targets(2) == (2,)

    def test_reset(self):
        decoder = AddressDecoder(8)
        decoder.remap(1, ())
        decoder.remap(2, (0,))
        decoder.reset()
        assert not decoder.is_faulty

    def test_out_of_range_address_rejected(self):
        decoder = AddressDecoder(8)
        with pytest.raises(IndexError):
            decoder.targets(8)
        with pytest.raises(IndexError):
            decoder.remap(9, ())

    def test_out_of_range_target_rejected(self):
        decoder = AddressDecoder(8)
        with pytest.raises(IndexError):
            decoder.remap(0, (8,))

    def test_zero_words_rejected(self):
        with pytest.raises(ValueError):
            AddressDecoder(0)

    def test_unreachable_cells_identity(self):
        assert AddressDecoder(4).unreachable_cells() == []

    def test_unreachable_cells_after_remap(self):
        decoder = AddressDecoder(4)
        decoder.remap(2, (0,))  # cell 2 orphaned
        assert decoder.unreachable_cells() == [2]


class TestRetentionClock:
    def test_starts_at_zero(self):
        assert RetentionClock().now == 0

    def test_advance(self):
        clock = RetentionClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            RetentionClock().advance(-1)

    def test_reset(self):
        clock = RetentionClock()
        clock.advance(100)
        clock.reset()
        assert clock.now == 0
