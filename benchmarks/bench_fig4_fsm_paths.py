"""Experiment F4 — regenerate Fig. 4: the lower-level 7-state FSM walk
(a) and the upper-level circular buffer's path A / path B loops (b).

The benchmark traces a word-oriented multiport March C run and checks:

* the lower FSM walks Idle → Reset → RW states → Done per element, with
  Done entered exactly on *Last Address* (Fig. 4a);
* the whole algorithm loops back once per extra data background via
  path A and once per extra port via path B, ending on the last port
  (Fig. 4b).
"""

from repro.core.controller import ControllerCapabilities
from repro.core.progfsm import ProgrammableFsmBistController
from repro.core.progfsm.lower_fsm import LowerFsmState
from repro.march import library
from repro.march.backgrounds import background_count

N_WORDS = 4
WIDTH = 4
PORTS = 2
CAPS = ControllerCapabilities(n_words=N_WORDS, width=WIDTH, ports=PORTS)


def test_fig4_state_walk_and_paths(benchmark):
    controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
    trace = benchmark(lambda: list(controller.trace()))

    # (a) Render the first element's state walk.
    print("\nFig. 4(a) — lower FSM walk for the first element:")
    for entry in trace[:12]:
        op = f"  -> {entry.operation}" if entry.operation else ""
        print(f"  cycle {entry.cycle:3d}  row {entry.row}  "
              f"{entry.state.name:5s}{op}")

    states = [entry.state for entry in trace]
    assert states[0] is LowerFsmState.IDLE
    assert states[1] is LowerFsmState.RESET
    assert LowerFsmState.RW0 in states and LowerFsmState.DONE in states

    # Done follows the final operation at the last address of each sweep.
    for previous, current in zip(trace, trace[1:]):
        if current.state is LowerFsmState.DONE and previous.state in (
            LowerFsmState.RW0, LowerFsmState.RW1,
            LowerFsmState.RW2, LowerFsmState.RW3,
        ):
            assert previous.operation is not None

    # (b) Path A fires once per extra background, per port; path B once
    # per extra port.
    paths = [entry.path for entry in trace if entry.path]
    backgrounds = background_count(WIDTH)
    expected_a = (backgrounds - 1) * PORTS
    expected_b = PORTS - 1
    print(f"\nFig. 4(b) — path A taken {paths.count('A')}x "
          f"(expected {expected_a}), path B {paths.count('B')}x "
          f"(expected {expected_b})")
    assert paths.count("A") == expected_a
    assert paths.count("B") == expected_b

    # The run terminates on the port-loop row with Last Port asserted.
    final = trace[-1]
    assert not final.instruction.is_element
    assert final.port == PORTS - 1
