"""Experiment X5 — SoC-level overhead: the introduction's claim.

"The proposed programmable memory BIST architectures could be used to
test memories in different stages of their fabrication and therefore
result in lower overall memory test logic overhead" — and: comparing
architectures on a single test "might not truly reveal the overhead of
one architecture over another".

The benchmark costs four provisioning strategies over a realistic SoC
memory portfolio (cache data/tag, dual-port register file, FIFO), each
memory requiring stage-specific algorithms (production / retention /
burn-in), and sweeps the number of stages to locate the crossover where
programmability wins outright.
"""

from repro.march import library
from repro.soc import MemoryRequirement, SocBistStudy


def portfolio():
    c_stages = (library.MARCH_C, library.MARCH_C_PLUS, library.MARCH_C_PLUS_PLUS)
    return [
        MemoryRequirement("l1_tag", 256, width=8, tests=c_stages),
        MemoryRequirement("l1_data", 1024, width=8, tests=c_stages),
        MemoryRequirement(
            "regfile", 64, width=4, ports=2,
            tests=(library.MARCH_A, library.MARCH_A_PLUS),
        ),
        MemoryRequirement(
            "fifo", 128, tests=(library.MARCH_C, library.MARCH_C_PLUS)
        ),
    ]


def test_soc_strategy_comparison(benchmark):
    study = SocBistStudy(portfolio())
    results = benchmark.pedantic(study.run, rounds=3, iterations=1)
    by_name = {r.strategy: r for r in results}

    print("\nX5 — SoC BIST provisioning over a 4-memory portfolio:")
    print(study.render(results))

    # The introduction's claim, quantified: at equal test work, one
    # shared programmable controller undercuts per-test hardwired logic.
    assert (
        by_name["shared programmable"].total_ge
        < by_name["hardwired per test"].total_ge
    )
    assert (
        by_name["shared programmable"].total_operations
        == by_name["hardwired per test"].total_operations
    )
    # The cheap-looking hardwired alternative pays at the tester instead.
    assert (
        by_name["hardwired superset"].total_operations
        > 1.5 * by_name["shared programmable"].total_operations
    )


def test_soc_stage_count_crossover(benchmark):
    """Where programmability starts winning: sweep test-plan diversity."""
    stages = (
        library.MARCH_C,
        library.MARCH_C_PLUS,
        library.MARCH_C_PLUS_PLUS,
        library.MARCH_A,
        library.MARCH_A_PLUS,
    )

    def sweep():
        rows = []
        for count in range(1, len(stages) + 1):
            memories = [
                MemoryRequirement("m0", 512, width=8, tests=stages[:count]),
                MemoryRequirement("m1", 256, width=8, tests=stages[:count]),
                MemoryRequirement("m2", 128, width=4, tests=stages[:count]),
            ]
            results = {r.strategy: r for r in SocBistStudy(memories).run()}
            rows.append(
                (
                    count,
                    results["hardwired per test"].total_ge,
                    results["shared programmable"].total_ge,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nX5 — area vs number of stage algorithms per memory:")
    print(f"  {'stages':>6} {'hardwired/test':>15} {'shared prog.':>13}")
    for count, hardwired, shared in rows:
        winner = "<-- programmable wins" if shared < hardwired else ""
        print(f"  {count:>6} {hardwired:>15.0f} {shared:>13.0f}  {winner}")

    # Hardwired-per-test grows with every added stage; the shared
    # controller grows only when a longer program forces deeper storage
    # (and saturates once the largest program is covered).
    hardwired_areas = [h for _, h, _ in rows]
    shared_areas = [s for _, _, s in rows]
    assert hardwired_areas == sorted(hardwired_areas)
    assert shared_areas == sorted(shared_areas)
    hardwired_growth = hardwired_areas[-1] / hardwired_areas[0]
    shared_growth = shared_areas[-1] / shared_areas[0]
    assert shared_growth < 0.5 * hardwired_growth
    # The crossover: hardwired wins for a single-algorithm plan, the
    # shared programmable controller wins from two stages onward.
    assert shared_areas[0] > hardwired_areas[0]
    for hardwired, shared in zip(hardwired_areas[1:], shared_areas[1:]):
        assert shared < hardwired
