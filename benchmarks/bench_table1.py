"""Experiment T1 — regenerate Table 1: controller sizes for bit-oriented
single-port memories.

Paper artifact: "Table 1. Size of the Memory BIST Methodology For
Bit-Oriented and Single port memories" — eight designs (microcode-based,
programmable FSM-based, hardwired March C/C+/C++/A/A+/A++) with a
flexibility grade, internal area in 2-input-NAND gate equivalents and
size in µm² (IBM CMOS5S 0.35 µm).

The absolute numbers in the scanned paper are corrupted; the benchmark
asserts the calibration-independent *relations* instead (R1/R2/R3, see
DESIGN.md) and prints the regenerated rows.
"""

from repro.eval.experiments import table1
from repro.eval.tables import render_table1


def _row(rows, name):
    return next(r for r in rows if r.method == name)


def test_table1(benchmark):
    rows = benchmark(table1)
    print()
    print(render_table1(rows))

    # R1 — flexibility grading.
    assert _row(rows, "Microcode-Based").flexibility == "HIGH"
    assert _row(rows, "Prog. FSM-Based").flexibility == "MEDIUM"

    # Hardwired designs are the smallest (their one-algorithm advantage).
    hardwired = [r for r in rows if r.flexibility == "LOW"]
    programmable = [r for r in rows if r.flexibility != "LOW"]
    assert max(r.gate_equivalents for r in hardwired) < min(
        r.gate_equivalents for r in programmable
    )

    # R2 — enhancing the algorithm grows the hardwired controller.
    assert (
        _row(rows, "March C").gate_equivalents
        < _row(rows, "March C+").gate_equivalents
        < _row(rows, "March C++").gate_equivalents
    )
    assert (
        _row(rows, "March A").gate_equivalents
        < _row(rows, "March A+").gate_equivalents
        < _row(rows, "March A++").gate_equivalents
    )

    # R3 — the programmable/hardwired gap narrows with enhancement.
    microcode = _row(rows, "Microcode-Based").gate_equivalents
    assert (microcode - _row(rows, "March A++").gate_equivalents) < (
        microcode - _row(rows, "March C").gate_equivalents
    )
