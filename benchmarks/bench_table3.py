"""Experiment T3 — regenerate Table 3: the microcode controller rebuilt
with scan-only storage cells.

Paper artifact: "Table 3. Adjusted Size of Microcode-Based Controller"
for the bit-oriented, word-oriented and multiport configurations, plus
the observation that the redesign yields "approximately 60 % reduction
in the size of the controller" and makes the microcode architecture
smaller than the programmable FSM one (R4/R5).

Our structural model lands the reduction in the 40–60 % band (measured
≈47 %): the storage unit dominates but the instruction selector and
decoder, which the scan-only swap cannot shrink, keep slightly more of
the total than in IBM's physical implementation.  EXPERIMENTS.md records
the delta.
"""

from repro.eval.experiments import table1, table3
from repro.eval.tables import render_table3


def test_table3(benchmark):
    rows = benchmark(table3)
    print()
    print(render_table3(rows))

    assert [r.configuration for r in rows] == [
        "Bit-Oriented",
        "Word-Oriented",
        "Multiport",
    ]

    # R4 — substantial reduction in every configuration.
    for row in rows:
        assert row.gate_equivalents < row.baseline_ge
        assert 35.0 <= row.reduction_percent <= 65.0

    # R5 — the adjusted microcode controller undercuts the programmable
    # FSM controller while offering more flexibility.
    prog_fsm = next(
        r for r in table1() if r.method == "Prog. FSM-Based"
    ).gate_equivalents
    assert rows[0].gate_equivalents < prog_fsm
