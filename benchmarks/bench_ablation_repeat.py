"""Experiment X3 — ablation: REPEAT + reference-register compression.

Section 2.1 argues that the reference-register mechanism "enables
optimal coding of symmetric memory test algorithms".  This ablation
quantifies it: for every symmetric library algorithm, program length
with and without REPEAT, and the knock-on controller-area effect once
the storage must be sized for the uncompressed programs.
"""

from repro.area.estimator import estimate
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController, assemble
from repro.march import library
from repro.march.properties import is_symmetric

CAPS = ControllerCapabilities(n_words=1024, width=8, ports=2)


def test_repeat_compression_row_savings(benchmark):
    algorithms = [
        t for t in library.ALGORITHMS.values() if is_symmetric(t)
    ]

    def sweep():
        rows = []
        for test in algorithms:
            compressed = len(assemble(test, CAPS, compress=True))
            flat = len(assemble(test, CAPS, compress=False))
            rows.append((test.name, compressed, flat))
        return rows

    rows = benchmark(sweep)
    print("\nX3 — REPEAT compression (rows with / without):")
    for name, compressed, flat in sorted(rows, key=lambda r: r[2]):
        saved = 100.0 * (flat - compressed) / flat
        print(f"  {name:22s} {compressed:3d} / {flat:3d}  ({saved:4.1f}% saved)")

    for name, compressed, flat in rows:
        # Compression never loses, and strictly wins whenever the body
        # is longer than the single REPEAT row it costs.
        assert compressed <= flat, name
    # The paper's flagship cases.
    by_name = {name: (compressed, flat) for name, compressed, flat in rows}
    assert by_name["March C"] == (9, 12)
    assert by_name["March A"][0] < by_name["March A"][1]


def test_repeat_compression_area_effect(benchmark):
    """Sizing storage for the uncompressed '+'-class programs costs real
    area; REPEAT pays for its decode logic many times over."""
    workload = [
        library.MARCH_C, library.MARCH_C_PLUS, library.MARCH_A,
        library.MARCH_A_PLUS,
    ]

    def build(compress):
        depth = max(
            len(assemble(test, CAPS, compress=compress)) for test in workload
        )
        controller = MicrocodeBistController(
            library.MARCH_C, CAPS, storage_rows=depth,
            storage_cell="scan_only", compress=compress,
        )
        return depth, estimate(controller.hardware()).gate_equivalents

    (depth_on, area_on) = benchmark.pedantic(
        lambda: build(True), rounds=3, iterations=1
    )
    depth_off, area_off = build(False)
    print(f"\nX3 — storage sized for the March C/A '+' workload:")
    print(f"  with REPEAT:    Z={depth_on:3d}, {area_on:7.0f} GE")
    print(f"  without REPEAT: Z={depth_off:3d}, {area_off:7.0f} GE")
    assert depth_on < depth_off
    assert area_on < area_off
