"""Pseudo-ring stimulus benchmark: expansion/engine throughput.

Measures the PRT family's two generation paths — the golden session
expansion (:meth:`repro.prt.session.PrtSession.attributed_stream`) and
the cycle-stepped controller FSM
(:meth:`repro.prt.controller.PrtController.trace`) — in operations per
second across a geometry ladder, plus one small-geometry
coverage-vs-March-C snapshot so the nightly record tracks the family's
quality headline alongside its speed.  Writes ``BENCH_prt.json`` for
the consolidated ``bench-report`` artifact.

Run directly::

    PYTHONPATH=src python benchmarks/bench_prt.py
    PYTHONPATH=src python benchmarks/bench_prt.py --geometry 512x1x1
"""

from __future__ import annotations

import argparse
import sys

from _harness import Sections, parse_geometry, timed, write_record

from repro.core.controller import ControllerCapabilities
from repro.prt import PRT_RING_UP, PrtController

#: Word-count scaling plus one multi-bit multi-port point, matching the
#: other stimulus benchmarks' ladders.
DEFAULT_GEOMETRIES = ("64x1x1", "256x1x1", "64x4x2")

#: Geometry of the coverage snapshot (kept tiny: the sweep is
#: O(faults x ops)).
COVERAGE_WORDS = 8


def throughput_record(geometry) -> dict:
    """Session-vs-controller generation throughput for one geometry."""
    caps = ControllerCapabilities(
        n_words=geometry[0], width=geometry[1], ports=geometry[2]
    )
    with timed() as session_t:
        golden = PRT_RING_UP.attributed_stream(caps)
    controller = PrtController(PRT_RING_UP.config, caps)
    with timed() as engine_t:
        engine_ops = sum(1 for _ in controller.trace())
    assert engine_ops == len(golden)  # the identity the fuzz layer pins
    return {
        "geometry": list(geometry),
        "session": PRT_RING_UP.notation,
        "ops": len(golden),
        "session_s": round(session_t.seconds, 6),
        "engine_s": round(engine_t.seconds, 6),
        "session_ops_per_s": (
            round(len(golden) / session_t.seconds)
            if session_t.seconds > 0 else None
        ),
        "engine_ops_per_s": (
            round(engine_ops / engine_t.seconds)
            if engine_t.seconds > 0 else None
        ),
    }


def coverage_record() -> dict:
    """The coverage-vs-march headline on the snapshot geometry."""
    from repro.eval.prt_study import prt_vs_march

    report = prt_vs_march(COVERAGE_WORDS)
    return {
        "geometry": list(report.geometry),
        "baseline": report.baseline_name,
        "prt_ops": report.prt_ops,
        "march_ops": report.march_ops,
        "prt_overall_percent": round(100.0 * report.prt.overall, 2),
        "march_overall_percent": round(100.0 * report.march.overall, 2),
        "wins": report.wins,
        "losses": report.losses,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="geometry to measure (repeatable; default: "
        + ", ".join(DEFAULT_GEOMETRIES) + ")",
    )
    parser.add_argument(
        "--out", default="BENCH_prt.json",
        help="output record path (default: BENCH_prt.json)",
    )
    args = parser.parse_args(argv)

    geometries = [
        parse_geometry(token)
        for token in (args.geometry or list(DEFAULT_GEOMETRIES))
    ]
    sections = Sections()
    measurements = []
    for geometry in geometries:
        with sections.section("x".join(str(part) for part in geometry)):
            measurements.append(throughput_record(geometry))
    with sections.section("coverage"):
        coverage = coverage_record()

    record = write_record(
        args.out,
        "prt",
        {
            "session": PRT_RING_UP.notation,
            "measurements": measurements,
            "coverage": coverage,
        },
        sections=sections,
    )

    print(f"pseudo-ring throughput ({record['session']}):")
    for m in record["measurements"]:
        print(
            f"  {tuple(m['geometry'])}: {m['ops']} ops — session "
            f"{m['session_ops_per_s']} ops/s, engine "
            f"{m['engine_ops_per_s']} ops/s"
        )
    print(
        f"  coverage {tuple(coverage['geometry'])}: PRT "
        f"{coverage['prt_overall_percent']}% vs {coverage['baseline']} "
        f"{coverage['march_overall_percent']}% "
        f"(wins {', '.join(coverage['wins']) or 'none'})"
    )
    print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
