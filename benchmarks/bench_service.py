"""Service-layer overhead: engine dispatch and store cache economics.

Measures the cost of routing a fault sweep through the PR-9 service
layer instead of running it inline:

* **direct** — ``run_fault_sweep`` serial inline, the pre-service
  baseline;
* **engine** — the same workload dispatched through a shared
  :class:`~repro.service.engine.JobEngine` (worker pool, retry
  bookkeeping, chaos hooks armed but idle), measuring pure orchestration
  overhead;
* **cold store** — store-backed run on an empty cache (every shard a
  miss + put);
* **warm store** — the immediate rerun with ``resume=True``: every
  shard answered from the content-hashed cache, reporting the hit rate
  and the resulting speedup;
* **session** — the full ``submit → run → collect`` file-backed
  lifecycle of ``repro serve``.

All five produce the same report payload (timing aside) — asserted
here, because a benchmark of a nondeterministic service would be
measuring noise — and the record lands in ``BENCH_service.json`` for
the nightly ``bench-report`` bundle.  Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile

from _harness import Sections, parse_geometry, timed, write_record

from repro.conformance import run_fault_sweep, sweep_faults
from repro.core.controller import ControllerCapabilities
from repro.march import library
from repro.service import (
    JobEngine,
    ResultStore,
    collect_session,
    run_session,
    submit_session,
)

#: Small enough that service overhead is the signal, not the sweep.
ALGORITHMS = ("MATS+", "March C", "March Y")
GEOMETRY = (8, 2, 1)


def _sans_timing(payload: dict) -> str:
    return json.dumps(
        {k: v for k, v in payload.items() if k != "timing"},
        sort_keys=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--geometry", metavar="WxBxP", default=None,
        help="memory geometry (default: 8x2x1)",
    )
    parser.add_argument(
        "--per-kind", type=int, default=2,
        help="stratified-sample size per fault kind (default: 2)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="engine worker count for the dispatch measurement",
    )
    parser.add_argument(
        "--out", default="BENCH_service.json",
        help="output record path (default: BENCH_service.json)",
    )
    args = parser.parse_args(argv)

    geometry = parse_geometry(args.geometry or "8x2x1")
    caps = ControllerCapabilities(
        n_words=geometry[0], width=geometry[1], ports=geometry[2]
    )
    tests = [library.get(name) for name in ALGORITHMS]
    faults = sweep_faults(caps, per_kind=args.per_kind)

    sections = Sections()
    payloads = {}

    with sections.section("direct"):
        with timed() as t_direct:
            direct = run_fault_sweep(tests, caps, faults, jobs=1)
    payloads["direct"] = direct.to_json()

    with sections.section("engine"):
        with JobEngine(workers=args.workers) as engine:
            with timed() as t_engine:
                engined = run_fault_sweep(
                    tests, caps, faults, jobs=args.workers, service=engine
                )
    payloads["engine"] = engined.to_json()

    workdir = tempfile.mkdtemp(prefix="bench-service-")
    try:
        store = ResultStore(f"{workdir}/store")
        with sections.section("store_cold"):
            with timed() as t_cold:
                cold = run_fault_sweep(
                    tests, caps, faults, jobs=1, store=store
                )
        payloads["store_cold"] = cold.to_json()

        with sections.section("store_warm"):
            with timed() as t_warm:
                warm = run_fault_sweep(
                    tests, caps, faults, jobs=1, store=store, resume=True
                )
        payloads["store_warm"] = warm.to_json()
        warm_stats = warm.service_stats["store"]
        hits = warm_stats["hits"]
        hit_rate = hits / max(1, hits + warm_stats["misses"])

        spec = {
            "algorithms": list(ALGORITHMS),
            "geometries": [list(geometry)],
            "per_kind": args.per_kind,
            "seed": 0,
        }
        with sections.section("session"):
            with timed() as t_session:
                sid = submit_session(f"{workdir}/svc", spec)
                run_session(f"{workdir}/svc", sid)
                collected = collect_session(f"{workdir}/svc", sid)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    # The session wraps its sweep in a multi-geometry report; compare
    # the inner sweep so all five paths face the same identity bar.
    payloads["session"] = collected["geometries"][0]
    reference = _sans_timing(payloads["direct"])
    identical = all(
        _sans_timing(p) == reference for p in payloads.values()
    )

    def ratio(numerator: float, denominator: float) -> float:
        return round(numerator / max(denominator, 1e-9), 3)

    record = write_record(
        args.out,
        "service",
        {
            "geometry": list(geometry),
            "algorithms": len(tests),
            "faults": len(faults),
            "runs": direct.checked,
            "workers": args.workers,
            "reports_identical_sans_timing": identical,
            "measurements": {
                "direct_s": round(t_direct.seconds, 6),
                "engine_s": round(t_engine.seconds, 6),
                "engine_overhead_x": ratio(
                    t_engine.seconds, t_direct.seconds
                ),
                "store_cold_s": round(t_cold.seconds, 6),
                "store_warm_s": round(t_warm.seconds, 6),
                "warm_hit_rate": round(hit_rate, 4),
                "warm_speedup_x": ratio(t_cold.seconds, t_warm.seconds),
                "session_s": round(t_session.seconds, 6),
                "session_runs": collected["checked"],
            },
        },
        sections=sections,
    )

    m = record["measurements"]
    print(
        f"service bench {geometry}: {record['runs']} runs, "
        f"identical={identical}"
    )
    print(
        f"  direct {m['direct_s']}s | engine {m['engine_s']}s "
        f"({m['engine_overhead_x']}x)"
    )
    print(
        f"  store cold {m['store_cold_s']}s -> warm {m['store_warm_s']}s "
        f"(hit rate {m['warm_hit_rate']}, {m['warm_speedup_x']}x)"
    )
    print(f"  session submit->collect {m['session_s']}s")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
