"""Experiment X6 — the measured algorithm × fault-class coverage matrix.

The classic march-test coverage table (van de Goor's Chapter 4 summary),
reproduced by single-fault simulation instead of citation.  This is the
premise of the paper's flexibility argument: no single fixed algorithm
serves every test requirement — SOF needs triple reads ('++'), DRF needs
pauses ('+'), couplings need the March C element structure — so a
controller that cannot change algorithms must either over-provision or
under-cover.
"""

from repro.eval.coverage_study import (
    COVERAGE_COLUMNS,
    coverage_table,
    render_coverage_table,
)


def test_coverage_matrix(benchmark):
    rows = benchmark.pedantic(
        lambda: coverage_table(n_words=6), rounds=1, iterations=1
    )
    print()
    print(render_coverage_table(rows))
    by_name = {row.algorithm: row for row in rows}

    # The classical results, measured:
    # every algorithm nails SAFs...
    for row in rows:
        assert row.percent("SAF") == 100.0, row.algorithm
    # ...Zero-One misses transition and most coupling faults...
    assert by_name["Zero-One"].percent("TF") < 100.0
    assert by_name["Zero-One"].percent("CFin") < 100.0
    # ...MATS++ adds full TF coverage over MATS+...
    assert by_name["MATS+"].percent("TF") < 100.0
    assert by_name["MATS++"].percent("TF") == 100.0
    # ...March C is the cheapest full-coupling algorithm...
    for column in ("CFin", "CFid", "CFst"):
        assert by_name["March C"].percent(column) == 100.0, column
    cheaper = [r for r in rows if r.algorithm in
               ("Zero-One", "MATS", "MATS+", "MATS++", "March X", "March Y")]
    for row in cheaper:
        assert any(row.percent(c) < 100.0 for c in ("CFin", "CFid", "CFst")), (
            row.algorithm
        )
    # ...only the '+' variants see retention faults...
    for name in ("March C", "March A", "March B", "PMOVI", "March LR"):
        assert by_name[name].percent("DRF") == 0.0, name
    for name in ("March C+", "March A+", "March G"):
        assert by_name[name].percent("DRF") == 100.0, name
    # ...and only the triple-read variants see stuck-open cells...
    for row in rows:
        expected = 100.0 if row.algorithm in ("March C++", "March A++") else 0.0
        assert row.percent("SOF") == expected, row.algorithm
    # ...while the deceptive read fault (DRDF) needs a re-read of the
    # same state: the triple-read variants and PMOVI/March Y qualify,
    # March C and March A do not.
    for name in ("March C++", "March A++", "PMOVI", "March Y"):
        assert by_name[name].percent("DRDF") == 100.0, name
    for name in ("March C", "March A", "March B", "March LR"):
        assert by_name[name].percent("DRDF") == 0.0, name
    # Every algorithm sees the trivially observable read faults.
    for row in rows:
        assert row.percent("IRF") == 100.0
        assert row.percent("RDF") == 100.0

    # March C++ is the only row with a clean sweep.
    full_rows = [
        row.algorithm
        for row in rows
        if all(row.percent(c) == 100.0 for c in COVERAGE_COLUMNS)
    ]
    assert full_rows == ["March C++"]
