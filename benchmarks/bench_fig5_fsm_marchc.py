"""Experiment F5 — regenerate Fig. 5: the FSM-based instruction
definition and the March C example program.

The paper's Fig. 5 lists March C as eight upper-buffer instructions:
six march-element rows (SM0, SM1 ×4, SM5 with the appropriate address
order / data / compare base values) plus the background loop-back and
port-increment rows.  The benchmark recompiles March C, checks the exact
row sequence, and verifies execution against the golden stream.
"""

from repro.core.controller import ControllerCapabilities
from repro.core.progfsm import (
    DataControl,
    ProgrammableFsmBistController,
    compile_to_sm,
)
from repro.march import library
from repro.march.simulator import expand

CAPS = ControllerCapabilities(n_words=64, width=8, ports=2)


def test_fig5_march_c_program(benchmark):
    program = benchmark(lambda: compile_to_sm(library.MARCH_C, CAPS))
    print("\nFig. 5 — March C FSM program:")
    for index, instruction in enumerate(program.instructions):
        print(f"  {index}: {instruction}  [{instruction.encode():#04x}]")

    assert len(program) == 8

    rows = program.instructions
    # Six element rows: SM0(w0) up, SM1 up D=0, SM1 up D=1, SM1 down D=0,
    # SM1 down D=1, SM5(r0) up.
    expected = [
        (0, False, 0, 0),
        (1, False, 0, 0),
        (1, False, 1, 1),
        (1, True, 0, 0),
        (1, True, 1, 1),
        (5, False, 0, 0),
    ]
    for row, (mode, down, data, compare) in zip(rows, expected):
        assert row.is_element
        assert row.mode == mode
        assert row.addr_down == down
        assert row.base_data == data
        assert int(row.compare) == compare

    # The two loop rows of the paper's figure ("xxx" mode column).
    assert rows[6].data_ctrl is DataControl.LOOP_BG
    assert rows[7].data_ctrl is DataControl.LOOP_PORT


def test_fig5_program_executes_golden_stream(benchmark):
    controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
    stream = benchmark(lambda: list(controller.operations()))
    assert stream == list(expand(library.MARCH_C, 64, width=8, ports=2))
