"""Experiment F2 — regenerate Fig. 2: the microcode instruction
definition and the March C example program.

The paper's Fig. 2 shows the field layout of the 10-bit microcode word
and a 9-instruction March C program: one initialising write element, the
stored symmetric body, the REPEAT row that re-executes it with
complemented polarities, the final read element, and the background/port
loop rows.  The benchmark reassembles March C, checks the program is
*exactly* those 9 instructions, and verifies execution against the
golden stream.
"""

from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController, assemble, disassemble
from repro.core.microcode.isa import ConditionOp
from repro.march import library
from repro.march.simulator import expand

CAPS = ControllerCapabilities(n_words=64, width=8, ports=2)


def test_fig2_march_c_program(benchmark):
    program = benchmark(lambda: assemble(library.MARCH_C, CAPS))
    print("\nFig. 2 — March C microcode program:")
    print(disassemble(program))

    # The paper's program: 9 instructions with REPEAT compression.
    assert len(program) == 9
    assert program.compressed
    assert [i.cond for i in program.instructions] == [
        ConditionOp.LOOP,
        ConditionOp.NOP,
        ConditionOp.LOOP,
        ConditionOp.NOP,
        ConditionOp.LOOP,
        ConditionOp.REPEAT,
        ConditionOp.LOOP,
        ConditionOp.NEXT_BG,
        ConditionOp.INC_PORT,
    ]
    # "the second through fifth instructions are repeated with
    # complemented address order" — March C's symmetry is order-only.
    repeat = program.instructions[5]
    assert repeat.addr_down and not repeat.data_inv and not repeat.compare


def test_fig2_program_executes_golden_stream(benchmark):
    controller = MicrocodeBistController(library.MARCH_C, CAPS)
    stream = benchmark(lambda: list(controller.operations()))
    golden = list(expand(library.MARCH_C, 64, width=8, ports=2))
    assert stream == golden
    # 10N per background per port: 10 * 64 * 4 backgrounds * 2 ports.
    assert len(stream) == 10 * 64 * 4 * 2


def test_fig2_symmetric_storage_saving(benchmark):
    """March A's 15 operations fit in 11 rows thanks to REPEAT."""
    program = benchmark(lambda: assemble(library.MARCH_A, CAPS))
    flat = assemble(library.MARCH_A, CAPS, compress=False)
    print(f"\nMarch A: {len(flat)} rows uncompressed, "
          f"{len(program)} with REPEAT")
    assert len(program) < len(flat)
