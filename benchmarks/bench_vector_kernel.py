"""Lane-kernel microbenchmark: raw batch-evaluation throughput.

``bench_fault_sweep.py`` measures the end-to-end sweep (planning,
stream verification, report assembly, fallbacks); this benchmark
isolates the numpy kernel itself — compile one golden stream, build
one lane spec per spec-expressible fault, evaluate every lane in one
batched pass — and records **lane-ops per second** (stream ops x
lanes / kernel seconds), the number the 10-100x end-to-end speedup
bottoms out on.  Writes ``BENCH_vector_kernel.json`` for the nightly
``bench-report`` artifact.

Run directly::

    PYTHONPATH=src python benchmarks/bench_vector_kernel.py
    PYTHONPATH=src python benchmarks/bench_vector_kernel.py \
        --geometry 256x1x1 --algorithm "March C+"
"""

from __future__ import annotations

import argparse
import sys

from _harness import Sections, parse_geometry, timed, write_record

from repro.conformance import GOLDEN_CACHE, sweep_faults
from repro.core.controller import ControllerCapabilities
from repro.march import library

#: Default geometry ladder: word-count scaling (64 → 256) plus one
#: multi-bit multi-port point, all >=64 words (the kernel's target
#: regime; tiny geometries are dominated by per-op Python dispatch).
DEFAULT_GEOMETRIES = ("64x1x1", "256x1x1", "64x4x2")


def kernel_record(geometry, algorithm: str) -> dict:
    """One (geometry, algorithm) batched evaluation, each stage timed."""
    from repro.vector.kernel import evaluate_lanes, state_dtype
    from repro.vector.ops import compile_stream
    from repro.vector.semantics import lane_spec
    from repro.vector.sweep import LANE_BUDGET_BYTES

    caps = ControllerCapabilities(
        n_words=geometry[0], width=geometry[1], ports=geometry[2]
    )
    test = library.get(algorithm)
    faults = sweep_faults(caps, full=True)

    with timed() as compile_t:
        stream = GOLDEN_CACHE.get(test, caps)
        compiled = compile_stream(stream, (1 << caps.width) - 1)
    with timed() as spec_t:
        specs = [
            spec
            for spec in (
                lane_spec(fault, caps.n_words, caps.width, caps.ports)
                for fault in faults
            )
            if spec is not None
        ]
    # Chunk exactly like the sweep does, so the measured throughput is
    # the one the end-to-end path sees (state stays cache-friendly).
    row_bytes = caps.n_words * state_dtype(caps.width)().itemsize
    chunk = max(1, LANE_BUDGET_BYTES // max(row_bytes, 1) - 1)
    detecting = 0
    with timed() as eval_t:
        for start in range(0, len(specs), chunk):
            events, _ = evaluate_lanes(
                compiled, caps.n_words, caps.width,
                specs[start:start + chunk],
            )
            detecting += sum(1 for lane in events if lane)
    lane_ops = compiled.length * len(specs)
    return {
        "geometry": list(geometry),
        "algorithm": algorithm,
        "stream_ops": compiled.length,
        "universe": len(faults),
        "lanes": len(specs),
        "unsupported": len(faults) - len(specs),
        "detecting_lanes": detecting,
        "compile_s": round(compile_t.seconds, 6),
        "spec_s": round(spec_t.seconds, 6),
        "eval_s": round(eval_t.seconds, 6),
        "lane_ops_per_s": (
            round(lane_ops / eval_t.seconds) if eval_t.seconds > 0 else None
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="geometry to measure (repeatable; default: "
        + ", ".join(DEFAULT_GEOMETRIES) + ")",
    )
    parser.add_argument(
        "--algorithm", default="March C",
        help="library algorithm whose golden stream is evaluated",
    )
    parser.add_argument(
        "--out", default="BENCH_vector_kernel.json",
        help="output record path (default: BENCH_vector_kernel.json)",
    )
    args = parser.parse_args(argv)

    from repro.vector import HAVE_NUMPY

    if not HAVE_NUMPY:
        print("error: numpy unavailable; kernel benchmark needs it",
              file=sys.stderr)
        return 1

    geometries = [
        parse_geometry(token)
        for token in (args.geometry or list(DEFAULT_GEOMETRIES))
    ]
    sections = Sections()
    measurements = []
    for geometry in geometries:
        with sections.section("x".join(str(part) for part in geometry)):
            measurements.append(kernel_record(geometry, args.algorithm))

    record = write_record(
        args.out,
        "vector_kernel",
        {"algorithm": args.algorithm, "measurements": measurements},
        sections=sections,
    )

    print(f"lane-kernel throughput ({args.algorithm} golden stream):")
    for m in record["measurements"]:
        print(
            f"  {tuple(m['geometry'])}: {m['stream_ops']} ops x "
            f"{m['lanes']} lanes ({m['unsupported']} unsupported) "
            f"in {m['eval_s']:.3f} s = {m['lane_ops_per_s']} lane-ops/s, "
            f"{m['detecting_lanes']} detecting"
        )
    print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
