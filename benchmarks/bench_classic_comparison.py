"""Experiment X7 — why march BIST won: the three test classes compared.

The paper's introduction: "Memories are more likely to fail than random
logic and therefore three classes of memory tests have been proposed to
detect the memory faults."  This benchmark measures the classes against
each other — O(N²) classical tests (Walking, GALPAT), O(N) march tests,
and pseudorandom BIST (ref [1]) — on both axes that decided the contest:
operation count versus fault coverage.
"""

from repro.classic import (
    galpat,
    galpat_op_count,
    pseudorandom_test,
    walking_op_count,
)
from repro.faults.universe import standard_universe
from repro.march import library
from repro.march.coverage import evaluate_coverage, evaluate_stream_coverage
from repro.march.simulator import operation_count
from repro.memory import Sram

N_COVERAGE = 6  # coverage sweeps are O(faults x ops): keep the array small


def test_test_time_scaling(benchmark):
    """Operation counts across memory sizes: O(N) vs O(N²)."""

    def table():
        rows = []
        for n_words in (64, 256, 1024, 4096, 16384):
            rows.append(
                (
                    n_words,
                    operation_count(library.MARCH_C, n_words),
                    operation_count(library.MARCH_C_PLUS_PLUS, n_words),
                    walking_op_count(n_words),
                    galpat_op_count(n_words),
                )
            )
        return rows

    rows = benchmark(table)
    print("\nX7 — operations vs memory size:")
    print(f"  {'words':>6} {'March C':>10} {'March C++':>10} "
          f"{'Walking':>12} {'GALPAT':>14}")
    for n_words, march_c, march_cpp, walking, galpat_ops in rows:
        print(f"  {n_words:>6} {march_c:>10} {march_cpp:>10} "
              f"{walking:>12} {galpat_ops:>14}")

    # March scales linearly; the classical tests quadratically.
    for (n1, c1, _, w1, g1), (n2, c2, _, w2, g2) in zip(rows, rows[1:]):
        ratio = n2 / n1
        assert c2 / c1 == ratio            # exactly linear
        assert w2 / w1 > 0.8 * ratio ** 2 / ratio * ratio  # ~quadratic
        assert g2 / g1 > 3.0               # >> linear for 4x size
    # At 16K words GALPAT costs ~3000x March C.
    final = rows[-1]
    assert final[4] > 2000 * final[1]


def test_coverage_per_class(benchmark):
    """Equal-rigour coverage: GALPAT ≥ March C ≥ pseudorandom@10N."""
    universe = standard_universe(N_COVERAGE, include_npsf=False)

    def sweep():
        march = evaluate_coverage(
            library.MARCH_C, universe, N_COVERAGE
        ).overall
        classical = evaluate_stream_coverage(
            lambda: galpat(N_COVERAGE), Sram(N_COVERAGE), universe,
            test_name="GALPAT",
        ).overall
        random_10n = evaluate_stream_coverage(
            lambda: pseudorandom_test(N_COVERAGE), Sram(N_COVERAGE),
            universe, test_name="pseudorandom@10N",
        ).overall
        random_100n = evaluate_stream_coverage(
            lambda: pseudorandom_test(N_COVERAGE, length=100 * N_COVERAGE),
            Sram(N_COVERAGE), universe, test_name="pseudorandom@100N",
        ).overall
        return march, classical, random_10n, random_100n

    march, classical, random_10n, random_100n = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print("\nX7 — coverage over the standard universe (no NPSF):")
    print(f"  GALPAT (O(N^2))          {100 * classical:5.1f}%")
    print(f"  March C (10N)            {100 * march:5.1f}%")
    print(f"  pseudorandom @ 10N ops   {100 * random_10n:5.1f}%")
    print(f"  pseudorandom @ 100N ops  {100 * random_100n:5.1f}%")

    # The historical verdict: March C matches the classical coverage of
    # the basic fault classes at a fraction of the operations, and beats
    # pseudorandom stimulus at every equal budget.
    assert classical >= march
    assert march > random_10n
    assert random_100n > random_10n
    # The operation premium explodes with size (asymptotics, not the
    # toy coverage array): ~400x at 1K words.
    assert galpat_op_count(1024) > 400 * operation_count(
        library.MARCH_C, 1024
    )
