"""Shared plumbing for the ``BENCH_*.json``-writing benchmarks.

Every benchmark that feeds the nightly ``bench-report`` artifact (or
the per-PR ``bench-gate``) goes through this module so the records are
mutually comparable:

* one **schema version** stamped into every record, checked again on
  load — the gate refuses to diff records written by a different
  harness generation instead of mis-reading renamed keys;
* one **machine-info stamp** (CPU count, Python, platform, numpy when
  present) so a regression can be told apart from a runner change;
* **timed sections**: ``with timed() as t:`` wall-clocks a block, and a
  :class:`Sections` accumulator turns named blocks into the record's
  ``sections`` map;
* one JSON writer/loader pair with the key layout fixed in one place.

The module is import-path-agnostic: benchmarks run as scripts
(``python benchmarks/bench_x.py``), so siblings import it with a plain
``from _harness import ...``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

#: Bumped whenever a record's key layout changes incompatibly; the
#: gate and the report reader hard-fail on a mismatch.
SCHEMA_VERSION = 1


def machine_info() -> Dict[str, Any]:
    """The environment stamp embedded in every benchmark record."""
    info: Dict[str, Any] = {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.system().lower(),
        "machine": platform.machine(),
    }
    try:
        import numpy
    except ImportError:
        info["numpy"] = None
    else:
        info["numpy"] = numpy.__version__
    return info


class Section:
    """Wall-time of one ``timed()`` block (valid after the block exits)."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


@contextmanager
def timed() -> Iterator[Section]:
    """Wall-clock a block: ``with timed() as t: ...; t.seconds``."""
    section = Section()
    started = time.perf_counter()
    try:
        yield section
    finally:
        section.seconds = time.perf_counter() - started


class Sections:
    """Named timed blocks, serialised as the record's ``sections`` map."""

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        with timed() as t:
            yield
        # Repeated names accumulate, so per-iteration loops sum up.
        self._seconds[name] = self._seconds.get(name, 0.0) + t.seconds

    def to_json(self) -> Dict[str, float]:
        return {
            name: round(seconds, 6)
            for name, seconds in self._seconds.items()
        }


def write_record(
    path: str,
    benchmark: str,
    payload: Dict[str, Any],
    sections: Optional[Sections] = None,
) -> Dict[str, Any]:
    """Stamp ``payload`` with schema/benchmark/machine and write it.

    Returns the full record as written, so callers can print from it.
    """
    record: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
    }
    record.update(payload)
    if sections is not None:
        record["sections"] = sections.to_json()
    record["machine"] = machine_info()
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return record


def load_record(
    path: str, expect_benchmark: Optional[str] = None
) -> Dict[str, Any]:
    """Read a record back, checking schema (and optionally benchmark)."""
    with open(path) as handle:
        record = json.load(handle)
    schema = record.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {schema!r} != harness schema {SCHEMA_VERSION} "
            "(regenerate the record with the current benchmarks)"
        )
    if expect_benchmark is not None:
        found = record.get("benchmark")
        if found != expect_benchmark:
            raise ValueError(
                f"{path}: benchmark {found!r}, expected {expect_benchmark!r}"
            )
    return record


def parse_geometry(token: str) -> Tuple[int, int, int]:
    """``WxBxP`` (or ``WxB``) → ``(n_words, width, ports)``."""
    parts = [int(part) for part in token.lower().split("x")]
    if len(parts) == 2:
        parts.append(1)
    if len(parts) != 3 or any(part <= 0 for part in parts):
        raise ValueError(f"bad geometry {token!r} (expected WxB[xP])")
    return (parts[0], parts[1], parts[2])
