"""Experiment X4 — the on-line (transparent) testing extension.

The conclusion argues the area-optimised microcode controller "expands
its application from diagnostics to on-line testing" (Nicolaidis'
transparent BIST).  This benchmark exercises that extension: the
transparent transform of March C preserves live memory contents on a
good part, detects injected faults on a bad one, and its overhead
relative to the plain test is the signature-prediction pass.
"""

from repro.core.transparent import TransparentBistRun, transparent_version
from repro.faults import StuckAtFault, TransitionFault
from repro.march import library
from repro.march.simulator import expand
from repro.memory import Sram

N_WORDS = 64
WIDTH = 8


def _loaded_memory():
    memory = Sram(N_WORDS, width=WIDTH)
    for word in range(N_WORDS):
        memory.poke(word, (word * 73 + 11) & 0xFF)
    return memory


def test_transparent_good_part(benchmark):
    transparent = transparent_version(library.MARCH_C)

    def run():
        memory = _loaded_memory()
        before = memory.snapshot()
        result = TransparentBistRun(transparent, memory).run()
        return result, before == memory.snapshot()

    result, preserved = benchmark(run)
    print(f"\nX4 — transparent March C on a good part: "
          f"{'PASS' if result.passed else 'FAIL'}, contents "
          f"{'preserved' if preserved else 'MODIFIED'}")
    assert result.passed
    assert preserved
    assert result.contents_preserved


def test_transparent_detects_field_faults(benchmark):
    transparent = transparent_version(library.MARCH_C)
    faults = [
        StuckAtFault(13, 2, 0),
        StuckAtFault(40, 7, 1),
        TransitionFault(25, 4, rising=True),
    ]

    def sweep():
        detected = 0
        for fault in faults:
            memory = _loaded_memory()
            memory.attach(fault)
            result = TransparentBistRun(transparent, memory).run()
            detected += 0 if result.passed else 1
        return detected

    detected = benchmark(sweep)
    print(f"\nX4 — transparent test detected {detected}/{len(faults)} "
          "injected field faults")
    assert detected == len(faults)


def test_transparent_overhead(benchmark):
    """Operation-count overhead vs the plain (initialising) test."""
    transparent = transparent_version(library.MARCH_C)

    def count():
        memory = _loaded_memory()
        run = TransparentBistRun(transparent, memory)
        stream = run._operation_stream(memory.snapshot())
        return len(stream)

    transparent_ops = benchmark(count)
    plain_ops = len(list(expand(library.MARCH_C, N_WORDS, width=WIDTH,
                                backgrounds=[0])))
    ratio = transparent_ops / plain_ops
    print(f"\nX4 — operations: plain {plain_ops}, transparent "
          f"{transparent_ops} ({ratio:.2f}x)")
    # The transform drops the w0 init element and adds a restore element:
    # op count stays within ~20 % of the plain single-background run.
    assert 0.8 <= ratio <= 1.2
