"""Experiment F3 — regenerate Fig. 3: the programmable FSM-based memory
BIST architecture.

Fig. 3 is the block diagram of the two-level architecture: the
2-dimensional circular buffer (upper controller) feeding the parametric
lower FSM, plus the instruction decode and the datapath.  Regenerated as
the structural inventory, with the paper's key asymmetry asserted: the
buffer must be built from functional-rate scan flip-flops (no scan-only
discount), unlike the microcode storage unit.
"""

from repro.area.estimator import estimate
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.march import library

CAPS = ControllerCapabilities(n_words=1024, width=8, ports=2)


def test_fig3_block_inventory(benchmark):
    controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
    report = benchmark(lambda: estimate(controller.hardware()))

    print("\nFig. 3 — programmable FSM-based BIST unit block inventory:")
    for name, ge in report.breakdown:
        print(f"  {name:44s} {ge:8.1f} GE")
    print(f"  {'TOTAL':44s} {report.gate_equivalents:8.1f} GE")

    names = [name for name, _ in report.breakdown]
    for block in (
        "controller/circular buffer",
        "controller/buffer rotate path",
        "controller/lower FSM state register",
        "controller/lower FSM logic",
        "datapath/address counter",
        "datapath/response comparator",
    ):
        assert any(n.startswith(block) for n in names), block


def test_fig3_buffer_cells_are_functional_rate(benchmark):
    """The storage-cell asymmetry behind Table 3: the circular buffer
    shifts at functional speed, so swapping in scan-only cells is not an
    option for this architecture — its area is what it is."""
    controller = ProgrammableFsmBistController(library.MARCH_C, CAPS)
    spec = benchmark(controller.hardware)
    buffer_register = next(
        c for c in spec.components if c.name == "controller/circular buffer"
    )
    assert buffer_register.cell == "scan_dff"

    # While the microcode architecture *can* make the swap and win.
    adjusted = MicrocodeBistController(
        library.MARCH_C, CAPS, storage_cell="scan_only"
    )
    assert (
        estimate(adjusted.hardware()).gate_equivalents
        < estimate(controller.hardware()).gate_equivalents
    )
