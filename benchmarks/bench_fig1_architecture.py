"""Experiment F1 — regenerate Fig. 1: the microcode-based BIST
controller datapath.

Fig. 1 is a block diagram: storage unit, instruction counter,
instruction selector, branch register, instruction decode module and
reference registers, with the decoder's control strobes (Inc. Address,
Save Current Address, Reset to 0/1/branch-register, ...).  The benchmark
regenerates it as (a) the structural block inventory with per-block area
and (b) the decoder's synthesised control-strobe logic, verified
cycle-by-cycle against the paper's signal semantics.
"""

from repro.area.estimator import estimate
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController
from repro.core.microcode.controller import (
    DECODER_OUTPUTS,
    decoder_outputs,
    decoder_truth_table,
)
from repro.core.microcode.isa import ConditionOp
from repro.march import library


def test_fig1_block_inventory(benchmark):
    caps = ControllerCapabilities(n_words=1024, width=8, ports=2)
    controller = MicrocodeBistController(library.MARCH_C, caps)
    report = benchmark(lambda: estimate(controller.hardware()))

    print("\nFig. 1 — microcode-based BIST controller block inventory:")
    for name, ge in report.breakdown:
        print(f"  {name:44s} {ge:8.1f} GE")
    print(f"  {'TOTAL':44s} {report.gate_equivalents:8.1f} GE")

    # Every block of the paper's figure is present.
    names = [name for name, _ in report.breakdown]
    for block in (
        "controller/storage unit",
        "controller/instruction selector",
        "controller/instruction counter",
        "controller/branch register",
        "controller/reference register",
        "controller/instruction decoder",
    ):
        assert any(n.startswith(block) for n in names), block

    # The storage unit dominates the controller (the basis of Table 3).
    storage = report.component_ge("controller/storage unit")
    controller_total = report.component_ge("controller/")
    assert storage > 0.5 * controller_total


def test_fig1_decoder_synthesis(benchmark):
    table = benchmark(decoder_truth_table)
    covers = table.synthesize()
    assert set(covers) == set(DECODER_OUTPUTS)

    # Spot-check the paper's described strobes against the synthesised
    # logic for the March C walk-through conditions.
    checks = [
        # (cond, last_addr, last_data, last_port, repeat, strobe, value)
        (ConditionOp.LOOP, False, False, False, False, "ic_load_branch", True),
        (ConditionOp.LOOP, True, False, False, False, "branch_save", True),
        (ConditionOp.REPEAT, False, False, False, False, "ic_reset1", True),
        (ConditionOp.REPEAT, False, False, False, True, "ref_clear", True),
        (ConditionOp.NEXT_BG, False, False, False, False, "ic_reset0", True),
        (ConditionOp.NEXT_BG, False, True, False, False, "data_reset", True),
        (ConditionOp.INC_PORT, False, False, True, False, "test_end", True),
        (ConditionOp.TERMINATE, False, False, False, False, "test_end", True),
    ]
    for cond, la, ld, lp, rep, strobe, value in checks:
        out = decoder_outputs(cond, la, ld, lp, rep)
        assert out[strobe] == value, (cond, strobe)
