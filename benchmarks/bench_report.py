"""Consolidated nightly benchmark report.

Gathers the three JSON records the nightly job produces —
``BENCH_fault_sweep.json``, ``BENCH_coverage_static.json`` and
``BENCH_vector_kernel.json`` — into one ``BENCH_report.json`` and
prints a summary table, so the uploaded ``bench-report`` artifact is a
single self-describing bundle instead of three loose files.

Records are optional: a missing file is reported as absent rather than
failing the job (the coverage record, e.g., only exists after the
coverage bench ran).  A record with a stale schema *is* an error — it
means a benchmark was not regenerated after a harness change.

Run directly::

    PYTHONPATH=src python benchmarks/bench_report.py --dir .
"""

from __future__ import annotations

import argparse
import os
import sys

from _harness import load_record, write_record

#: The nightly record set: (file name, benchmark id).
RECORDS = (
    ("BENCH_fault_sweep.json", "fault_sweep"),
    ("BENCH_coverage_static.json", "coverage_static"),
    ("BENCH_vector_kernel.json", "vector_kernel"),
    ("BENCH_service.json", "service"),
    ("BENCH_prt.json", "prt"),
)


def _summarise(benchmark: str, record: dict) -> list:
    """Human-readable summary lines for one record."""
    if benchmark == "fault_sweep":
        engines = record.get("engines", {})
        lines = [
            f"fault sweep {tuple(record['geometry'])} "
            f"{record['universe']}: {record['runs']} runs, "
            f"vector speedup {record.get('vector_speedup')}x, "
            f"identical={record['reports_identical_sans_timing']}"
        ]
        for key, entry in engines.items():
            lines.append(
                f"    {key}: {entry['runs_per_s']} runs/s "
                f"({entry['fallback_runs']} fallback(s))"
            )
        return lines
    if benchmark == "coverage_static":
        lines = [
            f"coverage prover vs sweep ({record['algorithms']} "
            f"algorithms): ok={record['ok']}"
        ]
        for m in record.get("measurements", []):
            lines.append(
                f"    {tuple(m['geometry'])}: {m['pairs']} pairs, "
                f"static {m['static_time_s']}s vs simulate "
                f"{m['simulate_time_s']}s "
                f"(speedup {m['static_speedup']}x)"
            )
        return lines
    if benchmark == "service":
        m = record.get("measurements", {})
        return [
            f"service layer ({record['runs']} runs, "
            f"identical={record['reports_identical_sans_timing']}):",
            f"    engine dispatch {m.get('engine_overhead_x')}x direct; "
            f"warm store hit rate {m.get('warm_hit_rate')} "
            f"({m.get('warm_speedup_x')}x)",
            f"    session submit->collect {m.get('session_s')}s "
            f"for {m.get('session_runs')} runs",
        ]
    if benchmark == "prt":
        coverage = record.get("coverage", {})
        lines = [f"pseudo-ring stimulus ({record['session']}):"]
        for m in record.get("measurements", []):
            lines.append(
                f"    {tuple(m['geometry'])}: session "
                f"{m['session_ops_per_s']} ops/s, engine "
                f"{m['engine_ops_per_s']} ops/s"
            )
        if coverage:
            lines.append(
                f"    coverage {tuple(coverage['geometry'])}: PRT "
                f"{coverage['prt_overall_percent']}% vs "
                f"{coverage['baseline']} "
                f"{coverage['march_overall_percent']}%"
            )
        return lines
    if benchmark == "vector_kernel":
        lines = [f"lane kernel ({record['algorithm']} golden stream):"]
        for m in record.get("measurements", []):
            lines.append(
                f"    {tuple(m['geometry'])}: {m['lane_ops_per_s']} "
                f"lane-ops/s over {m['lanes']} lanes"
            )
        return lines
    return [f"{benchmark}: (no summariser)"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir", default=".",
        help="directory holding the BENCH_*.json records (default: .)",
    )
    parser.add_argument(
        "--out", default="BENCH_report.json",
        help="consolidated output path (default: BENCH_report.json)",
    )
    args = parser.parse_args(argv)

    bundle = {}
    lines = []
    errors = 0
    for name, benchmark in RECORDS:
        path = os.path.join(args.dir, name)
        if not os.path.exists(path):
            bundle[benchmark] = None
            lines.append(f"  -- {benchmark}: absent ({name})")
            continue
        try:
            record = load_record(path, expect_benchmark=benchmark)
        except ValueError as error:
            print(f"bench-report error: {error}", file=sys.stderr)
            errors += 1
            continue
        bundle[benchmark] = record
        for line in _summarise(benchmark, record):
            lines.append("  " + line)

    write_record(
        os.path.join(args.dir, args.out), "report", {"records": bundle}
    )
    print("benchmark report:")
    for line in lines:
        print(line)
    print(f"  wrote {os.path.join(args.dir, args.out)}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
