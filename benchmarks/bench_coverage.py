"""Experiment X1 — fault-coverage equivalence and the coverage ladder.

Section 3 of the paper compares architectures purely on area because all
of them realise the same algorithms; this benchmark makes the implicit
claim explicit: all three controller architectures achieve *identical*
fault coverage (their operation streams are identical), and the coverage
ladder March C < March C+ < March C++ justifies the enhanced (and
larger) baselines of Tables 1–2.

Run directly, the module benchmarks the *static coverage prover*
against single-fault simulation over the whole library and writes a
``BENCH_coverage_static.json`` record (the nightly CI artifact)::

    PYTHONPATH=src python benchmarks/bench_coverage.py
    PYTHONPATH=src python benchmarks/bench_coverage.py \
        --geometry 4x2x1 --geometry 8x1x1 --out BENCH_coverage_static.json
"""

from __future__ import annotations

import argparse
import sys

from _harness import Sections, parse_geometry, write_record

from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.faults import standard_universe
from repro.march import library
from repro.march.coverage import evaluate_coverage, evaluate_stream_coverage
from repro.memory import Sram

N_WORDS = 6


def test_coverage_equivalence_across_architectures(benchmark):
    caps = ControllerCapabilities(n_words=N_WORDS)
    universe = standard_universe(N_WORDS, include_npsf=False)

    def sweep():
        results = {}
        for controller_cls in (
            MicrocodeBistController,
            ProgrammableFsmBistController,
            HardwiredBistController,
        ):
            controller = controller_cls(library.MARCH_C_PLUS, caps)
            memory = Sram(N_WORDS)
            report = evaluate_stream_coverage(
                controller.operations, memory, universe,
                test_name=controller.architecture,
            )
            results[controller.architecture] = report
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nX1 — per-architecture coverage of March C+ "
          f"({len(universe)} faults):")
    references = None
    for architecture, report in results.items():
        print(f"  {architecture:18s} {100.0 * report.overall:5.1f}%")
        if references is None:
            references = report.detected
        assert report.detected == references, architecture


def test_coverage_ladder(benchmark):
    universe = standard_universe(N_WORDS, include_npsf=False)

    def ladder():
        return {
            test.name: evaluate_coverage(test, universe, N_WORDS).overall
            for test in (
                library.MATS,
                library.MARCH_C,
                library.MARCH_C_PLUS,
                library.MARCH_C_PLUS_PLUS,
            )
        }

    coverages = benchmark.pedantic(ladder, rounds=1, iterations=1)
    print("\nX1 — coverage ladder:")
    for name, overall in coverages.items():
        print(f"  {name:12s} {100.0 * overall:5.1f}%")
    assert (
        coverages["MATS"]
        < coverages["March C"]
        < coverages["March C+"]
        < coverages["March C++"]
    )
    assert coverages["March C++"] > 0.95


def static_vs_simulate_record(geometry: tuple) -> dict:
    """Cross-check the whole library on one geometry, timing both sides.

    ``check_coverage_conformance`` already runs the prover and the
    simulated sweep over the same (algorithm, fault) product and times
    each independently, so its result *is* the benchmark measurement —
    with the agreement verdict riding along for free.
    """
    from repro.conformance import check_coverage_conformance

    result = check_coverage_conformance(geometry=geometry)
    return {
        "geometry": list(geometry),
        "pairs": result.checked,
        "ok": result.ok,
        "disagreements": len(result.disagreements),
        "unknown_rate": round(result.unknown_rate, 4),
        "static_time_s": round(result.static_time_s, 3),
        "simulate_time_s": round(result.simulate_time_s, 3),
        "static_speedup": (
            round(result.simulate_time_s / result.static_time_s, 2)
            if result.static_time_s > 0
            else None
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="static coverage prover vs simulated sweep throughput"
    )
    parser.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="geometry to measure (repeatable; default: 4x2x1, 8x1x1, "
        "4x2x2 — the acceptance matrix)",
    )
    parser.add_argument(
        "--out", default="BENCH_coverage_static.json",
        help="output record path (default: BENCH_coverage_static.json)",
    )
    args = parser.parse_args(argv)

    geometries = [
        parse_geometry(token)
        for token in (args.geometry or ["4x2x1", "8x1x1", "4x2x2"])
    ]
    sections = Sections()
    measurements = []
    for geometry in geometries:
        with sections.section("x".join(str(part) for part in geometry)):
            measurements.append(static_vs_simulate_record(geometry))
    record = write_record(
        args.out,
        "coverage_static",
        {
            "algorithms": len(library.ALGORITHMS),
            "universe": "full standard (NPSF included)",
            "measurements": measurements,
            "ok": all(m["ok"] for m in measurements),
        },
        sections=sections,
    )

    print(f"static prover vs simulated sweep ({record['algorithms']} "
          "algorithms x full universe):")
    for m in measurements:
        print(
            f"  {tuple(m['geometry'])}: {m['pairs']} pairs, "
            f"static {m['static_time_s']:.2f}s vs simulate "
            f"{m['simulate_time_s']:.2f}s "
            f"(speedup {m['static_speedup']}x), "
            f"{m['disagreements']} disagreement(s)"
        )
    print(f"  wrote {args.out}")
    if not record["ok"]:
        print("error: certificate-vs-sweep disagreement", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
