"""Experiment X1 — fault-coverage equivalence and the coverage ladder.

Section 3 of the paper compares architectures purely on area because all
of them realise the same algorithms; this benchmark makes the implicit
claim explicit: all three controller architectures achieve *identical*
fault coverage (their operation streams are identical), and the coverage
ladder March C < March C+ < March C++ justifies the enhanced (and
larger) baselines of Tables 1–2.
"""

from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.faults import standard_universe
from repro.march import library
from repro.march.coverage import evaluate_coverage, evaluate_stream_coverage
from repro.memory import Sram

N_WORDS = 6


def test_coverage_equivalence_across_architectures(benchmark):
    caps = ControllerCapabilities(n_words=N_WORDS)
    universe = standard_universe(N_WORDS, include_npsf=False)

    def sweep():
        results = {}
        for controller_cls in (
            MicrocodeBistController,
            ProgrammableFsmBistController,
            HardwiredBistController,
        ):
            controller = controller_cls(library.MARCH_C_PLUS, caps)
            memory = Sram(N_WORDS)
            report = evaluate_stream_coverage(
                controller.operations, memory, universe,
                test_name=controller.architecture,
            )
            results[controller.architecture] = report
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nX1 — per-architecture coverage of March C+ "
          f"({len(universe)} faults):")
    references = None
    for architecture, report in results.items():
        print(f"  {architecture:18s} {100.0 * report.overall:5.1f}%")
        if references is None:
            references = report.detected
        assert report.detected == references, architecture


def test_coverage_ladder(benchmark):
    universe = standard_universe(N_WORDS, include_npsf=False)

    def ladder():
        return {
            test.name: evaluate_coverage(test, universe, N_WORDS).overall
            for test in (
                library.MATS,
                library.MARCH_C,
                library.MARCH_C_PLUS,
                library.MARCH_C_PLUS_PLUS,
            )
        }

    coverages = benchmark.pedantic(ladder, rounds=1, iterations=1)
    print("\nX1 — coverage ladder:")
    for name, overall in coverages.items():
        print(f"  {name:12s} {100.0 * overall:5.1f}%")
    assert (
        coverages["MATS"]
        < coverages["March C"]
        < coverages["March C+"]
        < coverages["March C++"]
    )
    assert coverages["March C++"] > 0.95
