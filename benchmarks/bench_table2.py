"""Experiment T2 — regenerate Table 2: word-oriented and multiport
extensions of every design.

Paper artifact: "Table 2. Size of the Memory BIST Methodology For
Word-Oriented and Multiport Memories" — the Table 1 designs extended
with the background loop (8-bit words) and the port loop (dual-port).

Shape assertions: every design grows when extended, and the hardwired
designs grow *relatively* more than the programmable ones, whose loop
hardware is already present — the paper's extendibility argument.
"""

from repro.eval.experiments import table1, table2
from repro.eval.tables import render_table2


def test_table2(benchmark):
    rows = benchmark(table2)
    base = {r.method: r.gate_equivalents for r in table1()}
    print()
    print(render_table2(rows))

    for row in rows:
        assert row.word_ge > base[row.method]
        assert row.multiport_ge > base[row.method]

    def relative_word_growth(name):
        row = next(r for r in rows if r.method == name)
        return (row.word_ge - base[name]) / base[name]

    for hardwired in ("March C", "March C+", "March A"):
        assert relative_word_growth(hardwired) > relative_word_growth(
            "Microcode-Based"
        )
        assert relative_word_growth(hardwired) > relative_word_growth(
            "Prog. FSM-Based"
        )
