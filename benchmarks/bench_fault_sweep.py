"""Fault-sweep throughput: serial vs sharded differential sweeps.

The nightly conformance job sweeps the whole algorithm library against
the full spec-expressible fault universe; this benchmark measures that
sweep's throughput with ``jobs=1`` and with a worker pool, asserts the
two reports are identical (timing aside — the determinism contract of
``run_fault_sweep``), and writes a ``BENCH_fault_sweep.json`` record so
sweep throughput can be tracked over time.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_fault_sweep.py
    PYTHONPATH=src python benchmarks/bench_fault_sweep.py --full-universe --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.conformance import run_fault_sweep, sweep_faults
from repro.core.controller import ControllerCapabilities
from repro.march import library


def sweep_record(
    caps: ControllerCapabilities,
    jobs: int,
    per_kind: int,
    full: bool,
) -> dict:
    """One (geometry, jobs) sweep measurement of the whole library."""
    tests = [library.get(name) for name in library.ALGORITHMS]
    faults = sweep_faults(caps, per_kind=per_kind, full=full)
    report = run_fault_sweep(tests, caps, faults, jobs=jobs)
    payload = report.to_json()
    return {
        "payload": payload,
        "record": {
            "jobs": report.jobs,
            "wall_time_s": payload["timing"]["wall_time_s"],
            "runs_per_s": payload["timing"]["runs_per_s"],
            "shards": payload["timing"]["shards"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--words", type=int, default=4)
    parser.add_argument("--width", type=int, default=2)
    parser.add_argument("--ports", type=int, default=1)
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="parallel worker count (0 = one per CPU, capped at 4)",
    )
    parser.add_argument(
        "--per-kind", type=int, default=3,
        help="stratified-sample size per fault kind (quick mode)",
    )
    parser.add_argument(
        "--full-universe", action="store_true",
        help="sweep the whole spec-expressible universe (the nightly "
        "workload) instead of a stratified sample",
    )
    parser.add_argument(
        "--out", default="BENCH_fault_sweep.json",
        help="output record path (default: BENCH_fault_sweep.json)",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs > 0 else min(4, os.cpu_count() or 1)
    caps = ControllerCapabilities(
        n_words=args.words, width=args.width, ports=args.ports
    )
    serial = sweep_record(caps, 1, args.per_kind, args.full_universe)
    parallel = sweep_record(caps, jobs, args.per_kind, args.full_universe)

    def sans_timing(payload: dict) -> str:
        return json.dumps(
            {k: v for k, v in payload.items() if k != "timing"},
            sort_keys=True,
        )

    identical = sans_timing(serial["payload"]) == sans_timing(
        parallel["payload"]
    )
    serial_s = serial["record"]["wall_time_s"]
    parallel_s = parallel["record"]["wall_time_s"]
    record = {
        "benchmark": "fault_sweep",
        "geometry": [caps.n_words, caps.width, caps.ports],
        "algorithms": len(library.ALGORITHMS),
        "universe": "full" if args.full_universe else "stratified",
        "runs": serial["payload"]["checked"],
        "ok": serial["payload"]["ok"],
        "reports_identical_sans_timing": identical,
        "serial": serial["record"],
        "parallel": parallel["record"],
        "speedup": (
            round(serial_s / parallel_s, 3) if parallel_s > 0 else None
        ),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    print(
        f"fault-sweep throughput {tuple(record['geometry'])} "
        f"({record['universe']} universe, {record['runs']} runs):"
    )
    print(
        f"  jobs=1: {serial_s:.2f} s "
        f"({serial['record']['runs_per_s']} runs/s)"
    )
    print(
        f"  jobs={jobs}: {parallel_s:.2f} s "
        f"({parallel['record']['runs_per_s']} runs/s)  "
        f"speedup {record['speedup']}x"
    )
    print(f"  reports identical (timing aside): {identical}")
    print(f"  wrote {args.out}")
    if not identical:
        print("error: jobs-independence contract violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
