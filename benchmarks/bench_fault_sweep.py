"""Fault-sweep throughput: scalar oracle vs numpy batch kernel.

Measures ``run_fault_sweep`` on one workload with both engines (and,
in full mode, with a worker pool), asserts every report is identical
payload-for-payload (timing aside — the determinism contract of the
sweep), and writes a ``BENCH_fault_sweep.json`` record.

Two profiles:

* **quick** (default) — the per-PR ``bench-gate`` workload: the short
  half of the algorithm library against a stratified fault sample on a
  64-word memory, scalar ``jobs=1`` vs vector ``jobs=1``.  Small
  enough to run on every pull request, big enough that the vector
  kernel's >=10x advantage is measurable above timer noise.
* **full** (``--profile full``) — the nightly workload: the whole
  library against the full spec-expressible universe, all four
  (engine, jobs) combinations.

The committed ``benchmarks/BENCH_fault_sweep.json`` baseline is a
quick-profile record; ``bench_gate.py`` compares a fresh quick run
against it.  Run directly::

    PYTHONPATH=src python benchmarks/bench_fault_sweep.py
    PYTHONPATH=src python benchmarks/bench_fault_sweep.py \
        --profile full --geometry 4x2x1 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from _harness import Sections, parse_geometry, write_record

from repro.conformance import run_fault_sweep, sweep_faults
from repro.core.controller import ControllerCapabilities
from repro.march import library

#: The quick-profile algorithm subset: the shortest library members, so
#: the scalar side of the gate workload stays in CI-friendly territory
#: while still spanning both address orders and read/write mixes.
SHORT_ALGORITHMS = ("MATS", "MATS+", "MATS++", "March X", "March Y")

#: The quick-profile geometry: >=64 words, where the batch kernel's
#: advantage is architectural rather than incidental (ISSUE acceptance
#: floor: >=10x on >=64-word geometries).
QUICK_GEOMETRY = (64, 1, 1)


def measure(tests, caps, faults, engine: str, jobs: int) -> dict:
    """One (engine, jobs) sweep of the workload → payload + metrics.

    Sub-second measurements (the vector engine on gate-sized
    workloads) are repeated up to five times and the best wall time
    kept, so the committed baseline — and the gate's fresh number —
    are not one scheduler hiccup wide.  The payload is taken from the
    first run; repeats only refine timing.
    """
    payload = None
    best = None
    repeats = 0
    elapsed = 0.0
    while repeats < 5 and (repeats == 0 or elapsed < 1.0):
        report = run_fault_sweep(
            tests, caps, faults, jobs=jobs, engine=engine
        )
        if payload is None:
            payload = report.to_json()
        if best is None or report.wall_time_s < best.wall_time_s:
            best = report
        repeats += 1
        elapsed += report.wall_time_s
    timing = best.to_json()["timing"]
    return {
        "payload": payload,
        "record": {
            "engine": engine,
            "jobs": best.jobs,
            "wall_time_s": timing["wall_time_s"],
            "runs_per_s": timing["runs_per_s"],
            "fallback_runs": timing["fallback_runs"],
            "repeats": repeats,
        },
    }


def _sans_timing(payload: dict) -> str:
    return json.dumps(
        {k: v for k, v in payload.items() if k != "timing"}, sort_keys=True
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=("quick", "full"), default="quick",
        help="quick: short algorithms, stratified faults, jobs=1 "
        "engines only (the bench-gate workload); full: whole library, "
        "full universe, all (engine, jobs) combinations (nightly)",
    )
    parser.add_argument(
        "--geometry", metavar="WxBxP", default=None,
        help="memory geometry (default: 64x1x1 quick, 4x2x1 full)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="parallel worker count for the jobs>1 measurements "
        "(0 = one per CPU, capped at 4; quick profile ignores this)",
    )
    parser.add_argument(
        "--per-kind", type=int, default=2,
        help="stratified-sample size per fault kind (quick profile)",
    )
    parser.add_argument(
        "--out", default="BENCH_fault_sweep.json",
        help="output record path (default: BENCH_fault_sweep.json)",
    )
    args = parser.parse_args(argv)

    full = args.profile == "full"
    jobs = args.jobs if args.jobs > 0 else min(4, os.cpu_count() or 1)
    geometry = parse_geometry(
        args.geometry or ("4x2x1" if full else "64x1x1")
    )
    caps = ControllerCapabilities(
        n_words=geometry[0], width=geometry[1], ports=geometry[2]
    )
    names = list(library.ALGORITHMS) if full else list(SHORT_ALGORITHMS)
    tests = [library.get(name) for name in names]
    faults = sweep_faults(caps, per_kind=args.per_kind, full=full)
    combos = [("scalar", 1), ("vector", 1)]
    if full:
        combos += [("scalar", jobs), ("vector", jobs)]

    sections = Sections()
    measurements = []
    for engine, n in combos:
        with sections.section(f"{engine}@{n}"):
            measurements.append(measure(tests, caps, faults, engine, n))

    reference = _sans_timing(measurements[0]["payload"])
    identical = all(
        _sans_timing(m["payload"]) == reference for m in measurements[1:]
    )
    engines = {
        f"{m['record']['engine']}@{m['record']['jobs']}": m["record"]
        for m in measurements
    }
    scalar_rps = engines["scalar@1"]["runs_per_s"]
    vector_rps = engines["vector@1"]["runs_per_s"]
    speedup = (
        round(vector_rps / scalar_rps, 2)
        if scalar_rps and vector_rps
        else None
    )
    record = write_record(
        args.out,
        "fault_sweep",
        {
            "profile": args.profile,
            "geometry": list(geometry),
            "algorithms": names,
            "universe": (
                "full" if full else f"stratified(per_kind={args.per_kind})"
            ),
            "runs": measurements[0]["payload"]["checked"],
            "ok": measurements[0]["payload"]["ok"],
            "reports_identical_sans_timing": identical,
            "engines": engines,
            "vector_speedup": speedup,
        },
        sections=sections,
    )

    print(
        f"fault-sweep throughput {tuple(record['geometry'])} "
        f"({record['universe']} universe, {len(names)} algorithms, "
        f"{record['runs']} runs):"
    )
    for key, entry in engines.items():
        print(
            f"  {key}: {entry['wall_time_s']:.2f} s "
            f"({entry['runs_per_s']} runs/s, "
            f"{entry['fallback_runs']} fallback(s))"
        )
    print(f"  vector speedup (jobs=1): {speedup}x")
    print(f"  reports identical (timing aside): {identical}")
    print(f"  wrote {args.out}")
    if not identical:
        print(
            "error: engine/jobs determinism contract violated",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
