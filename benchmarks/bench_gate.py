"""Benchmark-regression gate: fresh throughput vs committed baseline.

Compares a just-measured ``BENCH_fault_sweep.json`` record against the
baseline committed at ``benchmarks/BENCH_fault_sweep.json`` and exits 1
when any shared (engine, jobs) entry's ``runs_per_s`` fell more than
``--tolerance`` (default 30%) below the baseline.  Faster-than-baseline
is never an error — the baseline is refreshed by the nightly job, not
by the gate.

The two records must describe the same workload (profile, geometry,
algorithms, universe, run count) — a mismatch is a hard error rather
than a meaningless ratio.  Both must also carry the current harness
schema (see ``_harness.SCHEMA_VERSION``).

CI usage (the ``bench-gate`` job)::

    PYTHONPATH=src python benchmarks/bench_fault_sweep.py --out current.json
    PYTHONPATH=src python benchmarks/bench_gate.py --current current.json

Dry-run proof that the gate trips — divide the fresh throughput by a
synthetic factor before comparing::

    PYTHONPATH=src python benchmarks/bench_gate.py --current current.json \
        --simulate-slowdown 2
"""

from __future__ import annotations

import argparse
import os
import sys

from _harness import load_record

#: Comparable-workload keys: a gate run only means something when both
#: records measured the same thing.
WORKLOAD_KEYS = ("profile", "geometry", "algorithms", "universe", "runs")


def compare(
    baseline: dict,
    current: dict,
    tolerance: float,
    slowdown: float = 1.0,
) -> list:
    """Per-engine verdicts; raises ``ValueError`` on workload mismatch."""
    for key in WORKLOAD_KEYS:
        if baseline.get(key) != current.get(key):
            raise ValueError(
                f"workload mismatch on {key!r}: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r} "
                "(refresh the baseline or match its profile flags)"
            )
    verdicts = []
    for key, base_entry in baseline.get("engines", {}).items():
        cur_entry = current.get("engines", {}).get(key)
        if cur_entry is None:
            continue  # jobs>1 entries exist only in full-profile records
        base_rps = base_entry.get("runs_per_s")
        cur_rps = cur_entry.get("runs_per_s")
        if not base_rps or not cur_rps:
            continue
        cur_rps = cur_rps / slowdown
        ratio = cur_rps / base_rps
        verdicts.append({
            "engine": key,
            "baseline_runs_per_s": base_rps,
            "current_runs_per_s": round(cur_rps, 2),
            "ratio": round(ratio, 3),
            "ok": ratio >= 1.0 - tolerance,
        })
    if not verdicts:
        raise ValueError(
            "no comparable engine entries between baseline and current"
        )
    return verdicts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "BENCH_fault_sweep.json",
        ),
        help="committed baseline record "
        "(default: benchmarks/BENCH_fault_sweep.json)",
    )
    parser.add_argument(
        "--current", required=True,
        help="freshly measured record (bench_fault_sweep.py --out ...)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional throughput drop (default: 0.30)",
    )
    parser.add_argument(
        "--simulate-slowdown", type=float, default=1.0, metavar="FACTOR",
        help="divide current throughput by FACTOR before comparing — a "
        "dry run proving the gate trips (2 must fail at the default "
        "tolerance)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_record(args.baseline, expect_benchmark="fault_sweep")
        current = load_record(args.current, expect_benchmark="fault_sweep")
        verdicts = compare(
            baseline, current, args.tolerance, args.simulate_slowdown
        )
    except (OSError, ValueError) as error:
        print(f"bench-gate error: {error}", file=sys.stderr)
        return 2

    slowdown = (
        f" [simulated {args.simulate_slowdown}x slowdown]"
        if args.simulate_slowdown != 1.0
        else ""
    )
    print(
        f"bench-gate: tolerance {args.tolerance:.0%}, workload "
        f"{tuple(baseline['geometry'])} {baseline['universe']} "
        f"({baseline['runs']} runs){slowdown}"
    )
    failed = False
    for verdict in verdicts:
        mark = "ok  " if verdict["ok"] else "FAIL"
        print(
            f"  {mark} {verdict['engine']}: "
            f"{verdict['current_runs_per_s']} runs/s vs baseline "
            f"{verdict['baseline_runs_per_s']} "
            f"(x{verdict['ratio']})"
        )
        failed = failed or not verdict["ok"]
    if failed:
        print(
            "bench-gate: throughput regression beyond tolerance; if "
            "intended, apply the skip-bench-gate label or refresh the "
            "baseline",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
