"""Experiment X8 — linked faults: why the library carries March LR.

The linked-fault result of van de Goor & Gaydadjiev (1996), measured:
two idempotent coupling faults sharing a victim can mask each other when
both aggressors sit on the *same side* of the victim — every March C
element toggles both aggressors before reading the victim, so the
second force undoes the first.  March LR's re-ordered element structure
breaks the masking.  For a programmable BIST controller this is one
more algorithm load; for a hardwired March C controller it is a
re-design — the paper's flexibility argument at the fault-model level.
"""

from repro.faults.linked import linked_cfid_universe
from repro.faults.universe import FaultUniverse
from repro.march import library
from repro.march.coverage import evaluate_coverage

N = 8


def test_linked_fault_coverage(benchmark):
    universe = FaultUniverse("linked CFid pairs")
    universe.extend(linked_cfid_universe(N))

    def sweep():
        return {
            test.name: evaluate_coverage(test, universe, N)
            for test in (
                library.MARCH_C,
                library.PMOVI,
                library.MARCH_A,
                library.MARCH_B,
                library.MARCH_LR,
            )
        }

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nX8 — linked CFid coverage ({len(universe)} linked pairs):")
    for name, report in reports.items():
        print(f"  {name:10s} {100 * report.overall:6.1f}%")

    # The published ordering, reproduced.
    assert reports["March C"].overall < 1.0
    assert reports["March LR"].overall == 1.0
    assert reports["March A"].overall == 1.0

    # Every March C escape is a same-side pair (the masking mechanism).
    for fault in reports["March C"].escapes:
        member1, member2 = fault.faults
        victim = member1.victim_word
        assert (member1.aggressor_word < victim) == (
            member2.aggressor_word < victim
        )

    # And the programmable-controller punchline: March LR is one
    # microcode reload away, not a hardware re-design.
    from repro.core.controller import ControllerCapabilities
    from repro.core.microcode import MicrocodeBistController

    controller = MicrocodeBistController(
        library.MARCH_C, ControllerCapabilities(n_words=N)
    )
    controller.load(library.MARCH_LR)
    assert controller.loaded_test() is library.MARCH_LR
