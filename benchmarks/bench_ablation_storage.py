"""Experiment X2 — ablation: storage-cell area ratio and storage depth.

The paper's §3 observation: "any reduction in the area of the storage
units of the proposed programmable memory BIST architectures has the
largest effect on the area of programmable memory BIST units", and IBM's
scan-only cells are "approximately 4 to 5 times smaller" than full scan
registers.  This ablation sweeps both knobs:

* the scan-only size ratio over 1×..6× (paper quotes 4–5×), showing the
  controller-area reduction saturating as the non-storage blocks start
  to dominate;
* the storage depth Z, quantifying the flexibility-vs-area trade
  (Z = 20 covers the March C/A '+' class; Z = 28 adds the '++' class).
"""

from repro.area.estimator import estimate
from repro.area.technology import IBM_CMOS5S
from repro.core.controller import ControllerCapabilities
from repro.core.microcode import MicrocodeBistController
from repro.march import library

CAPS = ControllerCapabilities(n_words=1024)


def test_scan_only_ratio_sweep(benchmark):
    baseline = estimate(
        MicrocodeBistController(library.MARCH_C, CAPS).hardware(), IBM_CMOS5S
    ).gate_equivalents

    def sweep():
        rows = []
        for ratio in (1.0, 2.0, 3.0, 4.0, 4.5, 5.0, 6.0):
            tech = IBM_CMOS5S.with_scan_only_ratio(ratio)
            adjusted = estimate(
                MicrocodeBistController(
                    library.MARCH_C, CAPS, storage_cell="scan_only"
                ).hardware(),
                tech,
            ).gate_equivalents
            rows.append((ratio, adjusted, 100.0 * (1 - adjusted / baseline)))
        return rows

    rows = benchmark(sweep)
    print(f"\nX2 — scan-only cell ratio sweep (baseline {baseline:.0f} GE):")
    for ratio, adjusted, reduction in rows:
        print(f"  {ratio:3.1f}x  {adjusted:7.0f} GE  {reduction:5.1f}% reduction")

    reductions = [reduction for _, _, reduction in rows]
    # Monotone: smaller cells, smaller controller.
    assert reductions == sorted(reductions)
    # Diminishing returns: the last 1x of ratio buys less than the first.
    assert (reductions[1] - reductions[0]) > (reductions[-1] - reductions[-2])
    # In the paper's 4-5x band the reduction is substantial.
    in_band = [r for ratio, _, r in rows if 4.0 <= ratio <= 5.0]
    assert all(35.0 <= r <= 65.0 for r in in_band)


def test_storage_depth_sweep(benchmark):
    def sweep():
        rows = []
        for depth in (10, 16, 20, 28, 32, 48, 64):
            controller = MicrocodeBistController(
                library.MARCH_C, CAPS, storage_rows=depth,
                storage_cell="scan_only",
            )
            ge = estimate(controller.hardware()).gate_equivalents
            rows.append((depth, ge))
        return rows

    rows = benchmark(sweep)
    print("\nX2 — storage depth sweep (scan-only cells):")
    capability = {
        10: "March C only",
        16: "+ March C+",
        20: "+ March A+ (paper's Table 1/2 class)",
        28: "+ March C++/A++ (full library)",
    }
    for depth, ge in rows:
        note = capability.get(depth, "")
        print(f"  Z={depth:3d}  {ge:7.0f} GE  {note}")

    areas = [ge for _, ge in rows]
    assert areas == sorted(areas)
    # Doubling the depth from the default costs well under 2x total area
    # (storage is large but not everything).
    default = dict(rows)[20]
    doubled = dict(rows)[48]
    assert doubled < 2 * default
