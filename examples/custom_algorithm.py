"""Programmability in action: load a custom march algorithm into both
proposed controllers — no hardware change — and hit the programmable
FSM architecture's flexibility boundary.

This is the paper's core argument: a hardwired controller must be
re-designed for any algorithm change, while the programmable
architectures just reload their storage.  The microcode ISA accepts any
march algorithm; the FSM architecture accepts only SM0–SM7 compositions.

Run with::

    python examples/custom_algorithm.py
"""

from repro import (
    ControllerCapabilities,
    MemoryBistUnit,
    MicrocodeBistController,
    ProgrammableFsmBistController,
    Sram,
    library,
    parse_test,
)
from repro.core.microcode import disassemble
from repro.core.progfsm import CompileError, compile_to_sm
from repro.faults import InversionCouplingFault


def main() -> None:
    caps = ControllerCapabilities(n_words=32)

    # A user-defined algorithm in standard notation: March Y plus an
    # extra verification sweep.
    custom = parse_test(
        "~(w0); ^(r0,w1,r1); v(r1,w0,r0); ~(r0)", name="March Y (custom)"
    )

    # --- Microcode controller: build once with a default algorithm...
    controller = MicrocodeBistController(library.MARCH_C, caps)
    print("controller built with default program:")
    print(disassemble(controller.program))

    # ...then reprogram it in the field.  Same silicon.
    controller.load(custom)
    print("\nreloaded with the custom algorithm (same hardware):")
    print(disassemble(controller.program))

    memory = Sram(32)
    memory.attach(InversionCouplingFault(4, 0, 5, 0, rising=True))
    result = MemoryBistUnit(controller, memory).run()
    print(f"\n{result}")

    # --- Programmable FSM controller: the same custom algorithm is
    # SM-composable (SM0, SM7, SM7, SM5), so it loads too.
    fsm_program = compile_to_sm(custom, caps)
    print(f"\nFSM program for {custom.name!r}:")
    for index, instruction in enumerate(fsm_program.instructions):
        print(f"  {index}: {instruction}")
    fsm_controller = ProgrammableFsmBistController(custom, caps)
    memory.reset_state()
    print(MemoryBistUnit(fsm_controller, memory).run())

    # --- The flexibility boundary: March B's 6-operation element
    # matches no SM pattern, so the FSM architecture rejects it while
    # the microcode architecture takes it in stride.
    try:
        compile_to_sm(library.MARCH_B, caps)
    except CompileError as error:
        print(f"\nprogrammable FSM limit: {error}")
    march_b = MicrocodeBistController(library.MARCH_B, caps)
    print(
        f"microcode-based controller assembles March B into "
        f"{len(march_b.program)} instructions without complaint"
    )


if __name__ == "__main__":
    main()
