"""Design-space exploration with the silicon-area model.

Regenerates the paper's three tables, then goes beyond them: sweeps the
memory depth and the scan-only-cell size ratio to show where each
architecture wins — the kind of exploration the structural area model
makes cheap.

Run with::

    python examples/area_exploration.py
"""

from repro.area.estimator import estimate
from repro.area.technology import IBM_CMOS5S
from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.eval.experiments import table1, table2, table3
from repro.eval.tables import render_table1, render_table2, render_table3
from repro.march import library


def sweep_memory_depth() -> None:
    print("\n=== sweep: memory depth (bit-oriented, single-port) ===")
    print(f"{'words':>8} {'microcode':>10} {'prog FSM':>10} {'hardwired C':>12}")
    for n_words in (256, 1024, 4096, 16384, 65536):
        caps = ControllerCapabilities(n_words=n_words)
        microcode = estimate(
            MicrocodeBistController(library.MARCH_C, caps,
                                    storage_cell="scan_only").hardware()
        ).gate_equivalents
        fsm = estimate(
            ProgrammableFsmBistController(library.MARCH_C, caps).hardware()
        ).gate_equivalents
        hardwired = estimate(
            HardwiredBistController(library.MARCH_C, caps).hardware()
        ).gate_equivalents
        print(f"{n_words:>8} {microcode:>10.0f} {fsm:>10.0f} {hardwired:>12.0f}")
    print("(controller area is depth-insensitive: only the shared "
          "address counter grows — why the paper fixes one geometry)")


def sweep_scan_only_ratio() -> None:
    print("\n=== sweep: scan-only cell size ratio (paper quotes 4-5x) ===")
    caps = ControllerCapabilities(n_words=1024)
    baseline = estimate(
        MicrocodeBistController(library.MARCH_C, caps).hardware(), IBM_CMOS5S
    ).gate_equivalents
    print(f"full-scan storage baseline: {baseline:.0f} GE")
    for ratio in (1.0, 2.0, 3.0, 4.0, 4.5, 5.0, 6.0):
        tech = IBM_CMOS5S.with_scan_only_ratio(ratio)
        adjusted = estimate(
            MicrocodeBistController(
                library.MARCH_C, caps, storage_cell="scan_only"
            ).hardware(),
            tech,
        ).gate_equivalents
        reduction = 100.0 * (1 - adjusted / baseline)
        print(f"  ratio {ratio:>3.1f}x -> {adjusted:7.0f} GE "
              f"({reduction:4.1f}% reduction)")


def main() -> None:
    print(render_table1(table1()))
    print()
    print(render_table2(table2()))
    print()
    print(render_table3(table3()))
    sweep_memory_depth()
    sweep_scan_only_ratio()


if __name__ == "__main__":
    main()
