"""The field-programming flow: serialise, self-test, load, verify, run.

A tester (or a field firmware update) programs the BIST controller in
four steps, all reproduced here:

1. **scan self-test** of the storage unit — five raw patterns through the
   scan chain prove every storage cell shifts and holds (the paper's §3
   argument that scan-only storage is easy to test);
2. **program load** from the interchange file a previous session dumped;
3. **readback verification** — the image must read back bit-exact before
   any verdict from it is trusted;
4. **run** — and, because programs decompile, the tester can display the
   march algorithm a loaded image actually implements.

Run with::

    python examples/field_programming.py
"""

from repro import ControllerCapabilities, MemoryBistUnit, MicrocodeBistController, Sram
from repro.core.microcode import assemble
from repro.core.microcode.decompiler import decompile
from repro.core.microcode.selftest import readback_verify, scan_test
from repro.core.programming import dump_program, load_program
from repro.march import format_test, library


def main() -> None:
    caps = ControllerCapabilities(n_words=64)

    # --- A previous engineering session dumps the program file. -------
    program_file = dump_program(assemble(library.MARCH_LR, caps))
    print("tester file (first lines):")
    for line in program_file.splitlines()[:7]:
        print(f"  {line}")

    # --- On the tester: bring up a controller with its default load. --
    controller = MicrocodeBistController(library.MARCH_C, caps)

    # Step 1: storage scan self-test.
    result = scan_test(controller.storage)
    print(f"\nstep 1 — {result}")
    assert result.passed

    # Step 2: load the shipped program.
    loaded = load_program(program_file)
    controller.load(loaded)
    print(f"step 2 — loaded {loaded.name!r} "
          f"({len(loaded.instructions)} rows)")

    # Step 3: readback verification.
    readback = readback_verify(controller.storage, controller.program)
    print(f"step 3 — {readback}")
    assert readback.passed

    # What algorithm is actually in the storage?  Decompile and show.
    recovered = decompile(controller.program.instructions, name=loaded.name)
    print(f"         image implements: {format_test(recovered)}")

    # Step 4: run against the embedded memory.
    memory = Sram(64)
    unit = MemoryBistUnit(controller, memory)
    print(f"step 4 — {unit.run()}")

    # --- Negative path: a storage defect is caught before any verdict.
    print("\ndefective-part path:")
    controller.storage.inject_storage_defect(2, 6, 0)
    defective = scan_test(controller.storage)
    print(f"step 1 — {defective}")
    assert not defective.passed
    print("         part rejected before any BIST verdict is trusted")


if __name__ == "__main__":
    main()
