"""Quickstart: self-test an embedded SRAM with the microcode MBIST unit.

Builds a 64-word bit-oriented SRAM, injects a stuck-at fault, assembles
March C into the proposed microcode-based BIST controller, runs the
self-test and prints the verdict, the microcode listing and the
controller's silicon-area report.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ControllerCapabilities,
    MemoryBistUnit,
    MicrocodeBistController,
    Sram,
    library,
)
from repro.area.report import format_breakdown
from repro.core.microcode import disassemble
from repro.faults import StuckAtFault


def main() -> None:
    # 1. The memory under test: 64 x 1 bit, single port — with a defect.
    memory = Sram(n_words=64)
    memory.attach(StuckAtFault(word=23, bit=0, value=0))
    print(f"memory under test: {memory!r}")

    # 2. The BIST controller: March C assembled into microcode.
    caps = ControllerCapabilities(n_words=64)
    controller = MicrocodeBistController(library.MARCH_C, caps)
    print(f"\nmicrocode program ({len(controller.program)} instructions):")
    print(disassemble(controller.program))

    # 3. Run the self-test.
    unit = MemoryBistUnit(controller, memory)
    result = unit.run()
    print(f"\n{result}")
    for failure in result.failures[:5]:
        print(
            f"  mismatch at address {failure.address}: expected "
            f"{failure.expected}, observed {failure.observed}"
        )

    # 4. A good part passes.
    memory.detach_all()
    memory.reset_state()
    print(f"\nafter repair: {unit.run()}")

    # 5. What does this controller cost in silicon?
    print("\narea report (IBM CMOS5S 0.35um calibration):")
    print(format_breakdown(unit.area()))


if __name__ == "__main__":
    main()
