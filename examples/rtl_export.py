"""Export the BIST designs as synthesisable Verilog.

Writes to ``build/rtl/``:

* one hardwired controller module per paper baseline algorithm;
* the microcode storage unit as a ROM plus its ``$readmemh`` image for
  March C (the field-programming deliverable a tester would consume);
* the microcode instruction decoder as two-level logic synthesised from
  the same truth table the Python simulator executes.

Run with::

    python examples/rtl_export.py
"""

import pathlib

from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import assemble
from repro.core.programming import dump_program
from repro.march import library
from repro.rtl import (
    check_verilog_structure,
    hardwired_controller_verilog,
    microcode_rom_verilog,
    program_memh,
    rom_readback,
    verify_rom_image,
)
from repro.rtl.verilog import lower_fsm_verilog, microcode_decoder_verilog


def main() -> None:
    out = pathlib.Path("build/rtl")
    out.mkdir(parents=True, exist_ok=True)
    caps = ControllerCapabilities(n_words=1024, width=8, ports=2)

    written = []

    for test in library.PAPER_BASELINES:
        controller = HardwiredBistController(test, caps)
        text = hardwired_controller_verilog(controller)
        problems = check_verilog_structure(text)
        assert not problems, problems
        path = out / f"bist_{test.name.lower().replace(' ', '_').replace('+', 'p')}_ctrl.v"
        path.write_text(text)
        written.append((path, f"{controller.graph.state_count} states"))

    program = assemble(library.MARCH_C, caps)
    memh_path = out / "march_c.memh"
    memh_path.write_text(program_memh(program, rows=20))
    # Close the export loop: the written image must decode back to the
    # exact program (bit-exact rows + decompilable to the same march).
    readback_report = verify_rom_image(
        program, memh_path.read_text(), rows=20
    )
    assert not readback_report.has_errors, readback_report.format()
    recovered = rom_readback(memh_path.read_text(), name=program.name)
    assert recovered.instructions == program.instructions
    rom = microcode_rom_verilog(program, rows=20, memh_file=memh_path.name)
    assert not check_verilog_structure(rom)
    rom_path = out / "bist_storage_march_c.v"
    rom_path.write_text(rom)
    written.append(
        (memh_path,
         f"{len(program)} instruction words, readback-verified")
    )
    written.append((rom_path, "ROM wrapper"))

    decoder = microcode_decoder_verilog()
    assert not check_verilog_structure(decoder)
    decoder_path = out / "bist_microcode_decoder.v"
    decoder_path.write_text(decoder)
    written.append((decoder_path, "synthesised two-level decoder"))

    fsm_logic = lower_fsm_verilog()
    assert not check_verilog_structure(fsm_logic)
    fsm_path = out / "bist_lower_fsm_logic.v"
    fsm_path.write_text(fsm_logic)
    written.append((fsm_path, "synthesised lower-FSM logic"))

    program_path = out / "march_c.bistprog"
    program_path.write_text(dump_program(program))
    written.append((program_path, "tester interchange format"))

    from repro.core.microcode import MicrocodeBistController
    from repro.rtl import microcode_trace_vcd

    small_caps = ControllerCapabilities(n_words=8)
    waveform = microcode_trace_vcd(
        MicrocodeBistController(library.MARCH_C, small_caps)
    )
    vcd_path = out / "march_c_trace.vcd"
    vcd_path.write_text(waveform)
    written.append((vcd_path, "GTKWave-viewable execution trace"))

    print("exported:")
    for path, note in written:
        print(f"  {path}  ({note})")


if __name__ == "__main__":
    main()
