"""SoC test-logic planning: amortising one programmable MBIST controller.

The paper's introduction claims that a programmable memory BIST unit,
re-used across fabrication stages and memory instances, lowers the
*overall* test logic overhead of a chip even though it is bigger than
any single hardwired controller.  This example plans the BIST logic of a
small SoC with four embedded memories and compares the four provisioning
strategies in area and test time.

Run with::

    python examples/soc_planning.py
"""

from repro.march import library
from repro.soc import MemoryRequirement, SocBistStudy


def main() -> None:
    # Each memory's test plan: production screen (March C), package-test
    # retention screen (March C+), burn-in full fault model (March C++).
    cache_plan = (
        library.MARCH_C, library.MARCH_C_PLUS, library.MARCH_C_PLUS_PLUS,
    )
    memories = [
        MemoryRequirement("l1_tag", 256, width=8, tests=cache_plan),
        MemoryRequirement("l1_data", 1024, width=8, tests=cache_plan),
        MemoryRequirement(
            "regfile", 64, width=4, ports=2,
            tests=(library.MARCH_A, library.MARCH_A_PLUS),
        ),
        MemoryRequirement(
            "fifo", 128, tests=(library.MARCH_C, library.MARCH_C_PLUS)
        ),
    ]

    study = SocBistStudy(memories)
    results = study.run()
    print("SoC BIST provisioning study (4 memories, stage-specific plans):\n")
    print(study.render(results))

    shared = next(r for r in results if r.strategy == "shared programmable")
    print("\nshared-programmable breakdown:")
    for label, ge in shared.breakdown:
        print(f"  {label:32s} {ge:8.1f} GE")

    per_test = next(r for r in results if r.strategy == "hardwired per test")
    saving = 100.0 * (1 - shared.total_ge / per_test.total_ge)
    superset = next(r for r in results if r.strategy == "hardwired superset")
    time_saving = 100.0 * (
        1 - shared.total_operations / superset.total_operations
    )
    print(
        f"\nconclusion: one shared programmable controller saves "
        f"{saving:.0f}% area vs per-test hardwired logic at identical test "
        f"work, and {time_saving:.0f}% test operations vs the hardwired-"
        "superset compromise — the paper's 'lower overall memory test "
        "logic overhead'."
    )


if __name__ == "__main__":
    main()
