"""Diagnostics and process monitoring with a programmable MBIST unit.

The paper motivates programmability partly by diagnostics: in production
the controller runs a fast go/no-go screen, but on failing parts the
*same hardware* reruns an enhanced diagnostic algorithm with full fail
capture, producing the fail bitmap and fault classification a fab uses
for process monitoring.

Run with::

    python examples/diagnostics_flow.py
"""

from repro import (
    ControllerCapabilities,
    MemoryBistUnit,
    MicrocodeBistController,
    Sram,
    library,
)
from repro.diagnostics import FailBitmap, FailLog, classify
from repro.faults import (
    DataRetentionFault,
    InversionCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
)


def main() -> None:
    n_words = 64
    caps = ControllerCapabilities(n_words=n_words)

    # A defective part fresh off the line, with a realistic defect mix.
    memory = Sram(n_words)
    memory.attach(StuckAtFault(word=9, bit=0, value=0))
    memory.attach(StuckAtFault(word=10, bit=0, value=0))  # neighbouring defect
    memory.attach(TransitionFault(word=33, bit=0, rising=False))
    memory.attach(DataRetentionFault(word=48, bit=0, from_value=1))
    memory.attach(StuckOpenFault(word=55, bit=0, weak_value=1))
    memory.attach(InversionCouplingFault(20, 0, 21, 0, rising=True))

    # Stage 1 — production screen: fast March C, stop at first fail.
    controller = MicrocodeBistController(library.MARCH_A_PLUS_PLUS, caps)
    unit = MemoryBistUnit(controller, memory)
    controller.load(library.MARCH_C)
    screen = unit.run(stop_at_first_failure=True)
    print(f"production screen: {screen}")

    # Stage 2 — the part failed: reload the diagnostic algorithm (full
    # fault model: retention pauses + triple reads) and capture all fails.
    controller.load(library.MARCH_C_PLUS_PLUS)
    memory.reset_state()
    diagnostic = unit.run(stop_at_first_failure=False)
    log = FailLog.from_result(diagnostic)
    print(f"\ndiagnostic run: {diagnostic}")
    print(log)

    # Stage 3 — fail bitmap for the process engineers.
    bitmap = FailBitmap.from_log(log, n_words)
    print(f"\nfail bitmap ({bitmap.fail_count} failing cells, "
          f"{len(bitmap.clusters())} clusters):")
    print(bitmap.render())

    # Stage 4 — per-cell fault classification.
    print("\nfault classification:")
    for diagnosis in sorted(
        classify(log, library.MARCH_C_PLUS_PLUS, n_words),
        key=lambda d: d.address,
    ):
        print(
            f"  cell ({diagnosis.address},{diagnosis.bit}): "
            f"{diagnosis.label:12s} — {diagnosis.rationale}"
        )

    # Stage 5 — if the signature pointed at the address decoder, the
    # walking-address probe pins down the AF class exactly.
    from repro.diagnostics import decoder_probe
    from repro.faults import TwoAddressesOneCell

    suspect = Sram(16)
    suspect.attach(TwoAddressesOneCell(2, 11))
    print("\ndecoder probe on an AF3-suspect part:")
    print(decoder_probe(suspect))

    # Stage 6 — repair: allocate spare lines from the bitmap, remap,
    # and re-test.  The same diagnostics data turns scrap into yield.
    from repro.faults import StuckAtFault as _SAF
    from repro.repair import repair_flow
    from repro.repair.apply import make_repairable_memory

    die = make_repairable_memory(64, spare_words=16)
    die.attach(_SAF(9, 0, 0))
    die.attach(_SAF(10, 0, 0))
    die.attach(_SAF(33, 0, 1))
    outcome = repair_flow(die, spare_rows=2, spare_columns=0)
    print(f"\nself-repair: {outcome}")
    if outcome.plan:
        print(f"  {outcome.plan}")


if __name__ == "__main__":
    main()
