"""On-line (transparent) testing — the extension the paper's conclusion
unlocks with the optimised microcode controller.

A transparent march test preserves memory contents, so a live system can
self-test during idle windows.  This example simulates an application
working against an SRAM, interleaves transparent BIST passes between
workload phases, and shows a field failure being caught without
disturbing the application state.

Run with::

    python examples/transparent_online.py
"""

from repro import Sram, library
from repro.core.transparent import TransparentBistRun, transparent_version
from repro.faults import TransitionFault
from repro.march.notation import format_test


def workload_phase(memory: Sram, phase: int) -> None:
    """A toy application mutating its working set."""
    for word in range(memory.n_words):
        value = (word * 31 + phase * 7) & memory.word_mask
        memory.write(0, word, value)


def online_check(memory: Sram, label: str) -> bool:
    run = TransparentBistRun(transparent_version(library.MARCH_C), memory)
    before = memory.snapshot()
    result = run.run()
    preserved = memory.snapshot() == before
    print(
        f"{label}: {'PASS' if result.passed else 'FAIL'} "
        f"(signature {result.observed_signature:#06x} vs predicted "
        f"{result.predicted_signature:#06x}; contents "
        f"{'preserved' if preserved else 'modified'})"
    )
    return result.passed


def main() -> None:
    base = library.MARCH_C
    transparent = transparent_version(base)
    print(f"base algorithm:        {format_test(base)}")
    print(f"transparent transform: {format_test(transparent)}")
    print("(w0 initialisation dropped; polarities relative to live data;"
          " final write restores contents)\n")

    memory = Sram(64, width=8)

    workload_phase(memory, phase=0)
    online_check(memory, "idle window 1")

    workload_phase(memory, phase=1)
    online_check(memory, "idle window 2")

    # A wear-out defect appears in the field...
    memory.attach(TransitionFault(word=17, bit=4, rising=True))
    workload_phase(memory, phase=2)
    caught = not online_check(memory, "idle window 3 (defect present)")
    print(
        "\nfield failure "
        + ("caught by the on-line transparent test." if caught else "MISSED!")
    )


if __name__ == "__main__":
    main()
