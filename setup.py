"""Legacy setup shim: enables editable installs in offline environments
that lack the ``wheel`` package required by PEP 660 builds."""

from setuptools import setup

setup()
