"""First-divergence location between two attributed operation streams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.conformance.trace import AttributedOp, format_normalized


@dataclass(frozen=True)
class Divergence:
    """The first point where a candidate stream departs from the golden.

    Attributes:
        architecture: name of the diverging candidate.
        index: operation index of the first disagreement (the op-stream
            "cycle" — delays count as one op, like everywhere else).
        reference_op / reference_owner: the golden op and its owning
            march item at that index (None/"" past the golden end).
        candidate_op / candidate_owner: the candidate op and its owning
            program row/state (None/"" when the candidate ended early).
    """

    architecture: str
    index: int
    reference_op: Optional[tuple]
    reference_owner: str
    candidate_op: Optional[tuple]
    candidate_owner: str

    @property
    def kind(self) -> str:
        """``mismatch`` | ``missing`` (short stream) | ``extra`` ops."""
        if self.candidate_op is None:
            return "missing"
        if self.reference_op is None:
            return "extra"
        return "mismatch"

    def describe(self) -> str:
        lines = [
            f"{self.architecture} diverges from the golden stream at "
            f"op {self.index} ({self.kind}):"
        ]
        lines.append(
            f"  expected {format_normalized(self.reference_op)}"
            + (f"  <- {self.reference_owner}" if self.reference_owner else "")
        )
        lines.append(
            f"  got      {format_normalized(self.candidate_op)}"
            + (f"  <- {self.candidate_owner}" if self.candidate_owner else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "architecture": self.architecture,
            "index": self.index,
            "kind": self.kind,
            "expected": format_normalized(self.reference_op),
            "expected_owner": self.reference_owner,
            "got": format_normalized(self.candidate_op),
            "got_owner": self.candidate_owner,
        }


def first_divergence(
    reference: List[AttributedOp],
    candidate: List[AttributedOp],
    architecture: str,
) -> Optional[Divergence]:
    """Compare two attributed streams op-for-op.

    Returns ``None`` when the candidate reproduces the reference
    exactly (under the normalisation rules of
    :mod:`repro.conformance.trace`), else the first disagreement.
    """
    for index in range(max(len(reference), len(candidate))):
        ref = reference[index] if index < len(reference) else None
        cand = candidate[index] if index < len(candidate) else None
        ref_key = ref.key if ref is not None else None
        cand_key = cand.key if cand is not None else None
        if ref_key != cand_key:
            return Divergence(
                architecture=architecture,
                index=index,
                reference_op=ref_key,
                reference_owner=ref.owner if ref is not None else "",
                candidate_op=cand_key,
                candidate_owner=cand.owner if cand is not None else "",
            )
    return None
