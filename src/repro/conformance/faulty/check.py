"""Differential fault-response conformance of the three architectures.

PR 3's :func:`repro.conformance.check_conformance` proves the
architectures emit identical *stimulus* on fault-free memories; this
module proves they give identical *verdicts* on broken ones — the
property the paper actually sells (detection, fail logging, diagnosis
across fabrication stages).  :func:`check_fault_conformance` runs every
architecture's full BIST session against *the same* injected fault
(fresh :meth:`~repro.faults.injector.FaultInjector.injected` context
per run, so dynamic fault state and cell contents never leak between
architectures) and differentially compares the responses on three
layers, most precise first:

1. **fail events** — the normalised event streams of
   :mod:`repro.conformance.faulty.events`, key-for-key, with a
   provenance-attributed first divergence;
2. **fail-log aggregations** — the
   :class:`~repro.diagnostics.faillog.FailLog` views downstream repair
   consumes (failing addresses / failing cells, in first-failure
   order);
3. **diagnosis** — the :func:`repro.diagnostics.classifier.classify`
   verdict per failing cell.

The golden reference response is the golden expansion applied to the
same fault.  Statuses mirror the stimulus checker and add robustness
classification: ``skipped`` (progfsm outside SM0–SM7), ``error`` (a
controller that hangs, crashes, or overruns the per-run op budget on a
decoder-fault memory is a harness *error*, not a response mismatch)
and ``diverged`` with the offending layer named.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.conformance.check import (
    ARCHITECTURES,
    CONCURRENT_CACHE,
    GOLDEN_CACHE,
    STREAM_BUILDERS,
)
from repro.conformance.trace import stimulus_notation
from repro.conformance.faulty.events import (
    FailEvent,
    ResponseBudgetExceeded,
    ResponseCapture,
    capture_cycle_response,
    capture_response,
    format_fail,
)
from repro.core.controller import ControllerCapabilities
from repro.faults.base import CellFault
from repro.faults.injector import FaultInjector
from repro.faults.spec import format_fault
from repro.march.notation import format_test
from repro.march.test import MarchTest
from repro.memory.sram import Sram

#: Default per-run op budget, as a multiple of the golden stream length
#: (every conformant run applies exactly the golden length; the slack
#: only exists so a defective response path is *observed* diverging
#: instead of tripping the budget on the first extra op).
DEFAULT_BUDGET_FACTOR = 4

#: Response-capture path per architecture.  All three default to the
#: shared :func:`capture_response`, but the indirection is the honest
#: model: in silicon each architecture owns its comparator and fail
#: registers, and a defect there (wrong expected polarity, an off-by-one
#: in the latched op index) is architecture-local.  The seeded-defect
#: tests plant exactly such defects here.
RESPONSE_CAPTURES = {architecture: capture_response
                     for architecture in ARCHITECTURES}

#: The comparison layers, most precise first.
LAYERS: Tuple[str, ...] = ("events", "faillog", "diagnosis")

#: Stimulus regimes the fault-response harness can drive.
#:
#: * ``sequential`` — the classic one-port-at-a-time golden expansion,
#:   differentially compared across the three controller architectures.
#: * ``concurrent`` — the same-cycle dual-port cycle stream of
#:   :func:`repro.march.concurrent.expand_concurrent`.  None of the
#:   paper's controllers realises it (their port loops are sequential by
#:   construction), so the differential partner is a *replay*: a second
#:   independent capture on a freshly injected memory, proving the
#:   response is a deterministic function of (stimulus, fault).
#: * ``infield`` — the deterministic in-field transparent session of
#:   :mod:`repro.conformance.infield`, with the given algorithm's
#:   transparent variant as the test slot; compared replay-style too.
MODES: Tuple[str, ...] = ("sequential", "concurrent", "infield")


@dataclass(frozen=True)
class ResponseDivergence:
    """First fail-event disagreement between golden and a candidate.

    ``kind`` is ``mismatch`` (both logged an event, different keys),
    ``missing`` (the candidate logged fewer events) or ``extra`` (the
    candidate logged events the golden response does not have).
    """

    architecture: str
    index: int
    reference: Optional[FailEvent]
    candidate: Optional[FailEvent]

    @property
    def kind(self) -> str:
        if self.candidate is None:
            return "missing"
        if self.reference is None:
            return "extra"
        return "mismatch"

    def describe(self) -> str:
        return "\n".join([
            f"{self.architecture} fail log diverges from the golden "
            f"response at event {self.index} ({self.kind}):",
            f"  expected {format_fail(self.reference)}",
            f"  got      {format_fail(self.candidate)}",
        ])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "architecture": self.architecture,
            "index": self.index,
            "kind": self.kind,
            "expected": (
                self.reference.to_dict() if self.reference else None
            ),
            "got": self.candidate.to_dict() if self.candidate else None,
        }


def first_fail_divergence(
    reference: Sequence[FailEvent],
    candidate: Sequence[FailEvent],
    architecture: str,
) -> Optional[ResponseDivergence]:
    """Compare two fail-event streams key-for-key."""
    for index in range(max(len(reference), len(candidate))):
        ref = reference[index] if index < len(reference) else None
        cand = candidate[index] if index < len(candidate) else None
        ref_key = ref.key if ref is not None else None
        cand_key = cand.key if cand is not None else None
        if ref_key != cand_key:
            return ResponseDivergence(
                architecture=architecture,
                index=index,
                reference=ref,
                candidate=cand,
            )
    return None


@dataclass
class ArchitectureResponse:
    """One architecture's fault-response verdict.

    Attributes:
        architecture: architecture name.
        status: ``ok`` | ``diverged`` | ``skipped`` | ``error``.
        ops_applied: operations the BIST session executed.
        event_count: fail events the session logged.
        failing_cells: distinct failing (address, bit) cells, in
            first-failure order (the fail-log aggregation layer).
        diagnosis: classifier verdict per failing cell, as
            ``"(addr,bit): label"`` strings (the diagnosis layer).
        layer: the first comparison layer that disagreed (diverged
            status only).
        divergence: the attributed first event disagreement, when the
            events layer is the one that diverged.
        mismatch: human-readable disagreement of a coarser layer, when
            the events agreed but an aggregation did not (defensive —
            reachable only through an architecture-local response-path
            defect downstream of event capture).
        detail: skip reason or error classification.
    """

    architecture: str
    status: str = "ok"
    ops_applied: int = 0
    event_count: int = 0
    failing_cells: List[Tuple[int, int]] = field(default_factory=list)
    diagnosis: List[str] = field(default_factory=list)
    layer: Optional[str] = None
    divergence: Optional[ResponseDivergence] = None
    mismatch: Optional[str] = None
    detail: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Skips do not fail the check (flexibility boundary)."""
        return self.status in ("ok", "skipped")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "architecture": self.architecture,
            "status": self.status,
            "ops_applied": self.ops_applied,
            "event_count": self.event_count,
            "failing_cells": [list(cell) for cell in self.failing_cells],
            "diagnosis": self.diagnosis,
            "layer": self.layer,
            "divergence": (
                self.divergence.to_dict() if self.divergence else None
            ),
            "mismatch": self.mismatch,
            "detail": self.detail,
        }


@dataclass
class FaultResponseResult:
    """Outcome of one differential fault-response check."""

    notation: str
    geometry: Tuple[int, int, int]
    fault: str
    fault_spec: Optional[str]
    compress: bool
    golden_events: int = 0
    responses: List[ArchitectureResponse] = field(default_factory=list)
    mode: str = "sequential"

    @property
    def ok(self) -> bool:
        return all(response.ok for response in self.responses)

    @property
    def detected(self) -> bool:
        """Whether the golden reference response saw the fault at all."""
        return self.golden_events > 0

    @property
    def failures(self) -> List[ArchitectureResponse]:
        return [response for response in self.responses if not response.ok]

    def describe_failures(self) -> str:
        parts = []
        for response in self.failures:
            if response.status == "error":
                parts.append(f"{response.architecture}: {response.detail}")
            elif response.divergence is not None:
                parts.append(response.divergence.describe())
            else:
                parts.append(
                    f"{response.architecture}: {response.layer} layer "
                    f"disagrees ({response.mismatch})"
                )
        return "; ".join(parts)

    def format(self) -> str:
        regime = "" if self.mode == "sequential" else f" [{self.mode} mode]"
        lines = [
            f"fault-response conformance {self.geometry}{regime}: "
            f"{self.notation}",
            f"  fault: {self.fault}"
            + (f"  [{self.fault_spec}]" if self.fault_spec else ""),
            f"  golden response: {self.golden_events} fail event(s)"
            + ("" if self.detected else "  (fault not detected)"),
        ]
        for response in self.responses:
            name = f"  {response.architecture:<10}"
            if response.status == "skipped":
                lines.append(f"{name} skipped ({response.detail})")
            elif response.status == "error":
                lines.append(f"{name} ERROR: {response.detail}")
            elif response.status == "diverged":
                lines.append(f"{name} DIVERGES ({response.layer} layer)")
                body = (
                    response.divergence.describe()
                    if response.divergence
                    else response.mismatch or ""
                )
                lines.extend("    " + line for line in body.splitlines())
            else:
                lines.append(
                    f"{name} ok ({response.event_count} event(s), "
                    f"identical fail log and diagnosis)"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "notation": self.notation,
            "geometry": list(self.geometry),
            "fault": self.fault,
            "fault_spec": self.fault_spec,
            "compress": self.compress,
            "mode": self.mode,
            "golden_events": self.golden_events,
            "detected": self.detected,
            "ok": self.ok,
            "architectures": [r.to_dict() for r in self.responses],
        }


def _diagnose(
    capture: ResponseCapture,
    test: MarchTest,
    caps: ControllerCapabilities,
) -> List[str]:
    """Classifier verdicts of one capture, as comparable strings.

    A defective architecture can log op indices outside the golden
    stream; the classifier is downstream tooling and must not take the
    harness down, so its crash is folded into the comparable verdict.
    """
    from repro.diagnostics.classifier import classify

    try:
        diagnoses = classify(
            capture.log(test.name),
            test,
            caps.n_words,
            width=caps.width,
            ports=caps.ports,
        )
    except Exception as error:
        return [f"<classifier failed: {error}>"]
    return [
        f"({d.address},{d.bit}): {d.label}" for d in diagnoses
    ]


def _check_replay_conformance(
    test: MarchTest,
    caps: ControllerCapabilities,
    fault: CellFault,
    compress: bool,
    max_ops: Optional[int],
    mode: str,
    infield_seed: int,
) -> FaultResponseResult:
    """Replay-style conformance for the non-sequential regimes.

    The concurrent and in-field stimuli have no controller realisation
    to compare against (the paper's architectures are sequential by
    construction), so the differential partner is a second independent
    capture on a freshly injected memory: any dynamic fault state or
    cell contents leaking across the injector boundary — or any
    non-determinism in the stimulus itself — surfaces as a replay
    divergence on the events or fail-log layer.  The diagnosis layer is
    not compared: the classifier's op-index model is the sequential
    golden stream.
    """
    from repro.conformance.infield import cached_infield_plan

    result = FaultResponseResult(
        notation=format_test(test),
        geometry=(caps.n_words, caps.width, caps.ports),
        fault=fault.describe(),
        fault_spec=format_fault(fault),
        compress=compress,
        mode=mode,
    )
    response = ArchitectureResponse(architecture="replay")
    result.responses.append(response)
    if mode == "concurrent":
        stream = CONCURRENT_CACHE.get(test, caps)
        capture_fn = capture_cycle_response
    else:
        try:
            plan = cached_infield_plan(
                caps, seed=infield_seed, tests=(test,)
            )
        except ValueError as error:
            response.status = "skipped"
            response.detail = f"no transparent variant: {error}"
            return result
        stream = plan.stream
        capture_fn = capture_response
    budget = (
        max_ops
        if max_ops is not None
        else DEFAULT_BUDGET_FACTOR * max(len(stream), 1)
    )
    injector = FaultInjector(
        Sram(caps.n_words, width=caps.width, ports=caps.ports)
    )
    with injector.injected(fault) as memory:
        golden = capture_fn(stream, memory, max_ops=budget)
    result.golden_events = len(golden.events)
    golden_cells = golden.log(test.name).failing_cells()

    try:
        with injector.injected(fault) as memory:
            capture = capture_fn(stream, memory, max_ops=budget)
    except ResponseBudgetExceeded as error:
        response.status = "error"
        response.detail = f"wedged replay session: {error}"
        return result
    except Exception as error:
        response.status = "error"
        response.detail = (
            f"replay session crashed: {type(error).__name__}: {error}"
        )
        return result
    response.ops_applied = capture.ops_applied
    response.event_count = len(capture.events)
    response.failing_cells = capture.log(test.name).failing_cells()

    divergence = first_fail_divergence(
        golden.events, capture.events, "replay"
    )
    if divergence is not None:
        response.status = "diverged"
        response.layer = "events"
        response.divergence = divergence
    elif response.failing_cells != golden_cells:
        response.status = "diverged"
        response.layer = "faillog"
        response.mismatch = (
            f"failing cells {response.failing_cells} != golden "
            f"{golden_cells}"
        )
    return result


def _check_prt_conformance(
    session,
    caps: ControllerCapabilities,
    fault: CellFault,
    compress: bool,
    max_ops: Optional[int],
) -> FaultResponseResult:
    """Differential fault-response conformance of a PRT session.

    The golden reference is the session's nested-loop shadow expansion
    (:meth:`repro.prt.session.PrtSession.attributed_stream`); the
    differential partners are the cycle-stepped FSM realisation of
    :class:`repro.prt.controller.PrtController` (``prt-controller``)
    and an independent replay of the golden stream on a freshly
    injected memory (``replay``).  Events and fail-log layers are
    compared; the diagnosis layer is march-specific (the classifier's
    op-index model is the march golden stream) and is skipped, exactly
    as in the concurrent/in-field replay regimes.
    """
    from repro.prt.controller import PrtController

    golden_stream = session.attributed_stream(caps)
    budget = (
        max_ops
        if max_ops is not None
        else DEFAULT_BUDGET_FACTOR * max(len(golden_stream), 1)
    )
    injector = FaultInjector(
        Sram(caps.n_words, width=caps.width, ports=caps.ports)
    )
    with injector.injected(fault) as memory:
        golden = capture_response(golden_stream, memory, max_ops=budget)
    golden_cells = golden.log(session.name).failing_cells()

    result = FaultResponseResult(
        notation=session.notation,
        geometry=(caps.n_words, caps.width, caps.ports),
        fault=fault.describe(),
        fault_spec=format_fault(fault),
        compress=compress,
        golden_events=len(golden.events),
    )

    def build_controller_stream():
        return PrtController(session.config, caps).attributed_stream()

    def build_replay_stream():
        return session.attributed_stream(caps)

    for name, build in (
        ("prt-controller", build_controller_stream),
        ("replay", build_replay_stream),
    ):
        response = ArchitectureResponse(architecture=name)
        result.responses.append(response)
        try:
            stream = build()
        except Exception as error:
            response.status = "error"
            response.detail = (
                f"controller crashed: {type(error).__name__}: {error}"
            )
            continue
        try:
            with injector.injected(fault) as memory:
                capture = capture_response(stream, memory, max_ops=budget)
        except ResponseBudgetExceeded as error:
            response.status = "error"
            response.detail = f"wedged BIST session: {error}"
            continue
        except Exception as error:
            response.status = "error"
            response.detail = (
                f"BIST session crashed: {type(error).__name__}: {error}"
            )
            continue
        response.ops_applied = capture.ops_applied
        response.event_count = len(capture.events)
        response.failing_cells = capture.log(session.name).failing_cells()

        divergence = first_fail_divergence(
            golden.events, capture.events, name
        )
        if divergence is not None:
            response.status = "diverged"
            response.layer = "events"
            response.divergence = divergence
        elif response.failing_cells != golden_cells:
            response.status = "diverged"
            response.layer = "faillog"
            response.mismatch = (
                f"failing cells {response.failing_cells} != golden "
                f"{golden_cells}"
            )
    return result


def check_fault_conformance(
    test: MarchTest,
    capabilities: ControllerCapabilities,
    fault: CellFault,
    architectures: Sequence[str] = ARCHITECTURES,
    compress: bool = True,
    max_ops: Optional[int] = None,
    mode: str = "sequential",
    infield_seed: int = 0,
) -> FaultResponseResult:
    """Differentially test the architectures' responses to ``fault``.

    Args:
        test: the march algorithm, or a
            :class:`repro.prt.session.PrtSession` — pseudo-ring
            sessions dispatch to their own differential path
            (golden expansion vs FSM controller vs replay; sequential
            mode only).
        capabilities: memory geometry all controllers target.
        fault: the single fault injected for every run (state is reset
            between runs by the injector).
        architectures: subset of :data:`ARCHITECTURES` to compare
            (sequential mode only).
        compress: microcode REPEAT compression.
        max_ops: per-run op budget; defaults to
            :data:`DEFAULT_BUDGET_FACTOR` × the golden stream length.
        mode: stimulus regime (see :data:`MODES`).  The non-sequential
            regimes compare golden against an independent replay
            instead of the controller architectures.
        infield_seed: session seed for ``mode="infield"``.

    Returns:
        A :class:`FaultResponseResult`; ``.ok`` means every compared
        architecture produced the golden fail events, fail-log
        aggregations and diagnosis.
    """
    from repro.core.progfsm.compiler import CompileError
    from repro.prt.session import PrtSession

    caps = capabilities
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {list(MODES)}")
    if isinstance(test, PrtSession):
        if mode != "sequential":
            raise ValueError(
                f"PRT sessions are sequential stimuli; mode {mode!r} is "
                "not realisable"
            )
        return _check_prt_conformance(test, caps, fault, compress, max_ops)
    if mode != "sequential":
        return _check_replay_conformance(
            test, caps, fault, compress, max_ops, mode, infield_seed
        )
    unknown = set(architectures) - set(ARCHITECTURES)
    if unknown:
        raise ValueError(
            f"unknown architecture(s) {sorted(unknown)}; "
            f"known: {list(ARCHITECTURES)}"
        )
    golden_stream = GOLDEN_CACHE.get(test, caps)
    budget = (
        max_ops
        if max_ops is not None
        else DEFAULT_BUDGET_FACTOR * max(len(golden_stream), 1)
    )
    injector = FaultInjector(
        Sram(caps.n_words, width=caps.width, ports=caps.ports)
    )
    with injector.injected(fault) as memory:
        golden = capture_response(golden_stream, memory, max_ops=budget)
    golden_cells = golden.log(test.name).failing_cells()
    golden_diagnosis = _diagnose(golden, test, caps)

    result = FaultResponseResult(
        notation=format_test(test),
        geometry=(caps.n_words, caps.width, caps.ports),
        fault=fault.describe(),
        fault_spec=format_fault(fault),
        compress=compress,
        golden_events=len(golden.events),
    )
    for architecture in ARCHITECTURES:
        if architecture not in architectures:
            continue
        response = ArchitectureResponse(architecture=architecture)
        result.responses.append(response)
        try:
            stream = STREAM_BUILDERS[architecture](test, caps, compress)
        except CompileError as error:
            response.status = "skipped"
            response.detail = f"outside the SM0-SM7 boundary: {error}"
            continue
        except RuntimeError as error:
            response.status = "error"
            response.detail = f"simulation did not terminate: {error}"
            continue
        except Exception as error:
            response.status = "error"
            response.detail = (
                f"controller crashed: {type(error).__name__}: {error}"
            )
            continue
        try:
            with injector.injected(fault) as memory:
                capture = RESPONSE_CAPTURES[architecture](
                    stream, memory, max_ops=budget
                )
        except ResponseBudgetExceeded as error:
            response.status = "error"
            response.detail = f"wedged BIST session: {error}"
            continue
        except Exception as error:
            response.status = "error"
            response.detail = (
                f"BIST session crashed: {type(error).__name__}: {error}"
            )
            continue
        response.ops_applied = capture.ops_applied
        response.event_count = len(capture.events)
        response.failing_cells = capture.log(test.name).failing_cells()
        response.diagnosis = _diagnose(capture, test, caps)

        divergence = first_fail_divergence(
            golden.events, capture.events, architecture
        )
        if divergence is not None:
            response.status = "diverged"
            response.layer = "events"
            response.divergence = divergence
        elif response.failing_cells != golden_cells:
            response.status = "diverged"
            response.layer = "faillog"
            response.mismatch = (
                f"failing cells {response.failing_cells} != golden "
                f"{golden_cells}"
            )
        elif response.diagnosis != golden_diagnosis:
            response.status = "diverged"
            response.layer = "diagnosis"
            response.mismatch = (
                f"diagnosis {response.diagnosis} != golden "
                f"{golden_diagnosis}"
            )
    return result


def _first_failure_summary(failure: Dict[str, Any]) -> str:
    """The first non-ok architecture of a failure dict, with its layer.

    Multi-geometry sweeps print many failure lines; naming the diverged
    architecture and comparison layer (or the error class) makes each
    line actionable without opening the JSON report.
    """
    if failure.get("kind") == "shard-lost":
        return f"service: {failure.get('error', 'shard lost')}"
    for response in failure.get("architectures", []):
        status = response.get("status")
        if status in ("ok", "skipped"):
            continue
        if status == "error":
            return f"{response['architecture']}: error"
        return f"{response['architecture']}: {response.get('layer')} layer"
    return "no failing architecture recorded"


@dataclass
class FaultSweepReport:
    """Aggregated outcome of a (algorithms × faults) sweep.

    Reports are *mergeable*: a sharded sweep produces one report per
    shard and reduces them with :meth:`merge`, and because shards are
    contiguous chunks of the (algorithm, fault) product in serial
    order, the merged report is byte-identical to a serial sweep's —
    timing aside.  All timing lives under the ``timing`` key of
    :meth:`to_json` (pass ``include_timing=False`` to drop it), so the
    jobs-independence contract is simply "payloads without ``timing``
    compare equal".

    ``interrupted`` marks a *partial* report: a sweep stopped by SIGINT
    after some shards completed.  Its payload carries
    ``"interrupted": true`` so downstream tooling never mistakes it for
    a verdict; re-running with the same :class:`ResultStore` and
    ``resume=True`` completes the missing shards and yields the full
    report.  ``service_stats`` (retries, crashes, quarantines, store
    hit rates) lives under ``timing`` — execution metadata, not
    verdict.
    """

    geometry: Tuple[int, int, int]
    checked: int = 0
    detected: int = 0
    skipped_runs: int = 0
    failures: List[Dict[str, Any]] = field(default_factory=list)
    wall_time_s: float = 0.0
    jobs: int = 1
    shards: List[Dict[str, Any]] = field(default_factory=list)
    engine: str = "scalar"
    fallback_runs: int = 0
    mode: str = "sequential"
    interrupted: bool = False
    service_stats: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def add(self, result: FaultResponseResult) -> None:
        self.checked += 1
        if result.detected:
            self.detected += 1
        self.skipped_runs += sum(
            1 for r in result.responses if r.status == "skipped"
        )
        if not result.ok:
            self.failures.append(result.to_dict())

    @classmethod
    def merge(
        cls, reports: Sequence["FaultSweepReport"]
    ) -> "FaultSweepReport":
        """Reduce shard reports (in shard order) into one report.

        Counters sum and failures concatenate, so as long as ``reports``
        arrives in shard order the merged failure list preserves the
        serial sweep's ordering exactly.
        """
        if not reports:
            raise ValueError("cannot merge an empty report sequence")
        geometries = {report.geometry for report in reports}
        if len(geometries) > 1:
            raise ValueError(
                f"cannot merge sweeps of different geometries: "
                f"{sorted(geometries)}"
            )
        engines = {report.engine for report in reports}
        if len(engines) > 1:
            raise ValueError(
                f"cannot merge sweeps of different engines: {sorted(engines)}"
            )
        modes = {report.mode for report in reports}
        if len(modes) > 1:
            raise ValueError(
                f"cannot merge sweeps of different modes: {sorted(modes)}"
            )
        merged = cls(
            geometry=reports[0].geometry,
            engine=reports[0].engine,
            mode=reports[0].mode,
        )
        for report in reports:
            merged.checked += report.checked
            merged.detected += report.detected
            merged.skipped_runs += report.skipped_runs
            merged.failures.extend(report.failures)
            merged.shards.extend(report.shards)
            merged.fallback_runs += report.fallback_runs
        return merged

    def format(self) -> str:
        engine = ""
        if self.engine != "scalar":
            engine = (
                f"  [{self.engine} engine, "
                f"{self.fallback_runs} scalar fallback(s)]"
            )
        regime = "" if self.mode == "sequential" else f" [{self.mode} mode]"
        lines = [
            f"fault-response sweep {self.geometry}{regime}: {self.checked} "
            f"(algorithm, fault) runs, {self.detected} detected the "
            f"fault, {self.skipped_runs} skip(s), "
            f"{len(self.failures)} failure(s)" + engine
        ]
        for failure in self.failures:
            lines.append(
                f"  FAIL {tuple(failure['geometry'])} "
                f"{failure['notation']} under {failure['fault']}  "
                f"[{_first_failure_summary(failure)}]"
            )
        return "\n".join(lines)

    def to_json(self, include_timing: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "geometry": list(self.geometry),
            "mode": self.mode,
            "checked": self.checked,
            "detected": self.detected,
            "skipped_runs": self.skipped_runs,
            "ok": self.ok,
            "failures": self.failures,
        }
        if self.interrupted:
            payload["interrupted"] = True
        if include_timing:
            # Engine identity and fallback accounting live with the
            # timing block on purpose: the cross-engine contract is
            # "payloads without ``timing`` compare equal", and which
            # engine produced the numbers (and how often it had to ask
            # the scalar oracle) is execution metadata, not verdict.
            payload["timing"] = {
                "wall_time_s": round(self.wall_time_s, 6),
                "jobs": self.jobs,
                "runs_per_s": (
                    round(self.checked / self.wall_time_s, 2)
                    if self.wall_time_s > 0
                    else None
                ),
                "shards": self.shards,
                "engine": self.engine,
                "fallback_runs": self.fallback_runs,
            }
            if self.service_stats is not None:
                payload["timing"]["service"] = self.service_stats
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "FaultSweepReport":
        """Rebuild a report from its :meth:`to_json` payload.

        The resume path round-trips shard reports through the
        :class:`~repro.service.store.ResultStore`; this inverse keeps
        them mergeable with freshly computed shards.
        """
        timing = payload.get("timing") or {}
        return cls(
            geometry=tuple(payload["geometry"]),
            checked=payload.get("checked", 0),
            detected=payload.get("detected", 0),
            skipped_runs=payload.get("skipped_runs", 0),
            failures=list(payload.get("failures", [])),
            wall_time_s=timing.get("wall_time_s", 0.0),
            jobs=timing.get("jobs", 1),
            shards=list(timing.get("shards", [])),
            engine=timing.get("engine", "scalar"),
            fallback_runs=timing.get("fallback_runs", 0),
            mode=payload.get("mode", "sequential"),
            interrupted=bool(payload.get("interrupted", False)),
        )


class SweepInterrupted(RuntimeError):
    """SIGINT stopped a sweep; ``report`` holds the completed shards.

    The partial report is a real, mergeable artifact: it is marked
    ``interrupted`` and — when the sweep ran with a
    :class:`~repro.service.store.ResultStore` — every completed shard
    is already checkpointed, so rerunning the same sweep with
    ``resume=True`` finishes from where this one stopped.
    """

    def __init__(self, report: Any) -> None:
        self.report = report
        super().__init__("sweep interrupted; partial report preserved")


def _sweep_shard(
    args: Tuple[int, Sequence[MarchTest], ControllerCapabilities,
                Sequence[CellFault], int, int, bool, Optional[int], str]
) -> FaultSweepReport:
    """Worker entry point: check product pairs ``start..start+count-1``.

    The (algorithm, fault) product is flattened algorithm-major, the
    same order the serial loop visits, so contiguous shards keep the
    per-algorithm golden expansions hot in each worker's cache and the
    merged failure list matches the serial one.
    """
    (shard_index, tests, caps, faults, start, count, compress,
     max_ops, mode) = args
    started = time.perf_counter()
    report = FaultSweepReport(
        geometry=(caps.n_words, caps.width, caps.ports), mode=mode
    )
    for index in range(start, start + count):
        test = tests[index // len(faults)]
        fault = faults[index % len(faults)]
        report.add(
            check_fault_conformance(
                test, caps, fault, compress=compress, max_ops=max_ops,
                mode=mode,
            )
        )
    report.shards = [{
        "shard": shard_index,
        "runs": count,
        "wall_time_s": round(time.perf_counter() - started, 6),
    }]
    return report


#: Sweep engines: the scalar oracle and the numpy batch kernel.
ENGINES: Tuple[str, ...] = ("scalar", "vector")


def _fault_cache_key(fault: CellFault) -> str:
    """A stable string identity for ``fault`` in store keys.

    Spec-expressible faults use their canonical spec string; the rest
    (randomised couplings etc.) fall back to :meth:`describe`, which
    names every parameter and is deterministic for a fixed population.
    """
    spec = format_fault(fault)
    if spec is not None:
        return spec
    return f"describe:{fault.describe()}"


def _lost_shard_report(
    geometry: Tuple[int, int, int],
    mode: str,
    shard_engine: str,
    shard_index: int,
    start: int,
    count: int,
    error: str,
) -> FaultSweepReport:
    """A mergeable stand-in for a shard the service could not finish.

    A quarantined poison shard (or one that exhausted its retries on a
    non-inlineable failure) is *reported*, not silently dropped and not
    allowed to abort the sweep: the merged report carries a
    ``shard-lost`` failure naming the run range and the service
    incident, so it is visibly not-ok.
    """
    report = FaultSweepReport(
        geometry=geometry, mode=mode, engine=shard_engine
    )
    report.failures.append({
        "kind": "shard-lost",
        "notation": f"<shard {shard_index}: {count} run(s) at {start}>",
        "geometry": list(geometry),
        "fault": "<service incident>",
        "fault_spec": None,
        "mode": mode,
        "ok": False,
        "error": error,
        "architectures": [],
    })
    report.shards = [{
        "shard": shard_index,
        "runs": count,
        "wall_time_s": 0.0,
        "lost": True,
    }]
    return report


def _run_sharded(
    work: Sequence[Tuple[Any, ...]],
    shard_fn: Callable[[Any], FaultSweepReport],
    geometry: Tuple[int, int, int],
    jobs: int,
    mode: str,
    shard_engine: str,
    key_fields: Optional[Dict[str, Any]] = None,
    service: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    chaos: Optional[Any] = None,
) -> FaultSweepReport:
    """Run shard work items through the service layer and merge.

    The shared engine room of the scalar and vector sweeps.  ``work``
    items are ``shard_fn`` argument tuples whose slots 0/4/5 are the
    shard index, start offset and run count (the existing worker-entry
    convention).  Behaviour by configuration:

    * ``store`` set: each shard gets a content-hashed key; with
      ``resume=True`` cached shard payloads are reused (cache hits),
      and every freshly computed shard is checkpointed before the next
      starts, so an interrupted sweep resumes instead of restarting.
    * ``jobs == 1`` and no engine-requiring feature: shards run inline
      in this process (checkpointed serial mode) — no subprocesses, but
      still resumable and still interruptible with a partial report.
    * otherwise: shards become :class:`~repro.service.engine.Job`s on a
      :class:`~repro.service.engine.JobEngine` (the caller's shared
      ``service`` engine, or a private one).  Shards that failed only
      by raising (no crash/timeout history) are retried serially here —
      completed shards are already safe — and shards the engine
      quarantined become ``shard-lost`` failure records.

    Raises:
        SweepInterrupted: on SIGINT (or an injected interrupt), with
            the merged partial report of every completed shard.
    """
    from repro.service.engine import Job, JobEngine, JobsInterrupted, RetryPolicy

    reports: List[Optional[FaultSweepReport]] = [None] * len(work)
    keys: List[Optional[Any]] = [None] * len(work)
    store_before = store.stats() if store is not None else None
    if store is not None:
        if key_fields is None:
            raise ValueError("a store needs key_fields to key shards by")
        for i, args in enumerate(work):
            keys[i] = store.key(
                **key_fields, shard={"start": args[4], "count": args[5]}
            )
            if resume:
                cached = store.get(keys[i])
                if cached is not None:
                    reports[i] = FaultSweepReport.from_json(cached)

    def complete(i: int, report: FaultSweepReport) -> None:
        reports[i] = report
        if store is not None and keys[i] is not None:
            store.put(keys[i], report.to_json())

    def service_stats(engine_stats: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        stats: Dict[str, Any] = {}
        if engine_stats is not None:
            stats.update(engine_stats)
        if store is not None and store_before is not None:
            after = store.stats()
            stats["store"] = {
                name: after[name] - store_before[name] for name in after
            }
        return stats

    def partial(engine_stats: Optional[Dict[str, Any]]) -> FaultSweepReport:
        done = [report for report in reports if report is not None]
        if done:
            merged = FaultSweepReport.merge(done)
        else:
            merged = FaultSweepReport(
                geometry=geometry, mode=mode, engine=shard_engine
            )
        merged.interrupted = True
        merged.jobs = jobs
        stats = service_stats(engine_stats)
        merged.service_stats = stats or None
        return merged

    missing = [i for i in range(len(work)) if reports[i] is None]
    engine_stats: Optional[Dict[str, Any]] = None
    chaos_behaviors = bool(chaos is not None and chaos.behaviors)
    use_engine = bool(missing) and (
        service is not None or jobs > 1 or chaos_behaviors
    )

    if missing and not use_engine:
        # Checkpointed serial mode: shards run inline, each persisted
        # before the next starts.  An injected interrupt (chaos) and a
        # real SIGINT take the same partial-report exit.
        completed_since = 0
        try:
            for i in missing:
                complete(i, shard_fn(work[i]))
                completed_since += 1
                if (
                    chaos is not None
                    and chaos.interrupt_after is not None
                    and completed_since >= chaos.interrupt_after
                    and i != missing[-1]
                ):
                    raise KeyboardInterrupt
        except KeyboardInterrupt:
            raise SweepInterrupted(partial(None)) from None
    elif missing:
        owns_engine = service is None
        engine = service
        if engine is None:
            engine = JobEngine(
                workers=max(1, min(jobs, len(missing))),
                policy=RetryPolicy(timeout=shard_timeout),
            )
        submissions = []
        index_by_key: Dict[str, int] = {}
        for i in missing:
            args = work[i]
            key = (
                keys[i].digest if keys[i] is not None
                else f"shard:{args[0]}"
            )
            index_by_key[key] = i
            fn: Callable[[Any], Any] = shard_fn
            payload: Any = args
            if chaos is not None:
                fn, payload = chaos.wrap(args[0], shard_fn, args)
            submissions.append(Job(key=key, fn=fn, payload=payload))
        try:
            engine_report = engine.run(submissions)
        except JobsInterrupted as interrupt:
            for outcome in interrupt.outcomes:
                if outcome.ok:
                    complete(index_by_key[outcome.key], outcome.value)
            if owns_engine:
                engine.close()
            raise SweepInterrupted(partial(None)) from None
        finally:
            if owns_engine:
                engine.close()
        engine_stats = engine_report.stats()
        serial_retries = 0
        for outcome, i in zip(engine_report.outcomes, missing):
            if outcome.ok:
                complete(i, outcome.value)
                continue
            args = work[i]
            if outcome.safe_inline:
                # Failed only by raising: completed shards are safe in
                # ``reports``, so a serial in-process retry is cheap
                # insurance against transient worker trouble.
                try:
                    complete(i, shard_fn(args))
                    serial_retries += 1
                    continue
                except KeyboardInterrupt:
                    raise SweepInterrupted(partial(engine_stats)) from None
                except Exception as error:
                    incident = (
                        f"{outcome.status}: {outcome.error}; serial retry: "
                        f"{type(error).__name__}: {error}"
                    )
            else:
                incident = f"{outcome.status}: {outcome.error}"
            reports[i] = _lost_shard_report(
                geometry, mode, shard_engine,
                args[0], args[4], args[5], incident,
            )
        engine_stats["serial_retries"] = serial_retries

    final = [report for report in reports if report is not None]
    if not final:
        merged = FaultSweepReport(
            geometry=geometry, mode=mode, engine=shard_engine
        )
    else:
        merged = FaultSweepReport.merge(final)
    stats = service_stats(engine_stats)
    merged.service_stats = stats or None
    return merged


def run_fault_sweep(
    tests: Sequence[MarchTest],
    capabilities: ControllerCapabilities,
    faults: Sequence[CellFault],
    compress: bool = True,
    max_ops: Optional[int] = None,
    jobs: int = 1,
    engine: str = "scalar",
    mode: str = "sequential",
    service: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    chaos: Optional[Any] = None,
) -> FaultSweepReport:
    """Check every (algorithm, fault) pair; used by CI and the CLI.

    Args:
        tests: the march algorithms to sweep.
        capabilities: memory geometry all controllers target.
        faults: the fault population (every fault runs against every
            algorithm).
        compress: microcode REPEAT compression.
        max_ops: per-run op budget override.
        jobs: worker-process count; 1 runs inline (no pool).  The
            (algorithm, fault) product is sharded into ``jobs``
            contiguous chunks and the shard reports merged, so the
            report — timing aside — is independent of ``jobs``.
        engine: ``scalar`` (per-run :class:`~repro.memory.sram.Sram`
            simulation, the oracle) or ``vector`` (the numpy batch
            kernel of :mod:`repro.vector`; needs numpy, falls back to
            the scalar path per fault/test where lane semantics do not
            apply, and reports the fallback count).  The report payload
            (timing aside) is identical for both.
        mode: stimulus regime (see :data:`MODES`).  The vector kernel
            has no same-cycle lane semantics yet, so non-sequential
            modes under ``engine="vector"`` take the counted scalar
            fallback: the whole sweep runs on the scalar oracle and
            every run is accounted in ``fallback_runs``.
        service: a shared :class:`~repro.service.engine.JobEngine` to
            run shards on (the multi-geometry sweep passes one pool for
            all geometries); ``None`` spins a private engine when the
            configuration shards.
        store: a :class:`~repro.service.store.ResultStore`; completed
            shards are checkpointed into it, and with ``resume=True``
            previously stored shards are cache hits.
        resume: read matching shard results back from ``store``.
        shard_timeout: per-shard wall-clock budget (seconds) enforced
            by the engine (ignored when a shared ``service`` engine
            carries its own policy).
        chaos: a :class:`~repro.service.chaos.ChaosPlan` misbehaving on
            schedule — test-only.

    Raises:
        SweepInterrupted: SIGINT during a sharded run; carries the
            partial report (see the class docstring).
    """
    if jobs <= 0:
        raise ValueError(f"need at least one job, got {jobs}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {list(ENGINES)}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {list(MODES)}")
    if engine == "vector" and mode == "sequential":
        from repro.vector import require_numpy

        require_numpy()
        from repro.vector.sweep import run_vector_fault_sweep

        return run_vector_fault_sweep(
            tests, capabilities, faults, compress=compress,
            max_ops=max_ops, jobs=jobs, service=service, store=store,
            resume=resume, shard_timeout=shard_timeout, chaos=chaos,
        )
    caps = capabilities
    tests = list(tests)
    faults = list(faults)
    total = len(tests) * len(faults)
    started = time.perf_counter()
    serviced = (
        service is not None or store is not None or chaos is not None
    )
    if total == 0:
        report = FaultSweepReport(
            geometry=(caps.n_words, caps.width, caps.ports), mode=mode
        )
    elif min(jobs, total) == 1 and not serviced:
        report = _sweep_shard(
            (0, tests, caps, faults, 0, total, compress, max_ops, mode)
        )
    else:
        jobs = min(jobs, total)
        # Shard finer than the worker count: algorithms differ widely in
        # stream length and the product is algorithm-major, so equal
        # ``jobs``-sized chunks leave workers idle behind the chunk that
        # drew the longest algorithms.  Merging by shard index keeps the
        # report order (and bytes) independent of the shard count.
        shards = min(total, max(jobs, 2) * 4)
        chunk = (total + shards - 1) // shards
        work = [
            (shard, tests, caps, faults, start,
             min(chunk, total - start), compress, max_ops, mode)
            for shard, start in enumerate(range(0, total, chunk))
        ]
        key_fields = None
        if store is not None:
            from repro.service.store import payload_digest

            key_fields = {
                "kind": "fault-sweep-shard",
                "axis": "product",
                "tests": payload_digest(
                    [stimulus_notation(t) for t in tests]
                ),
                "geometry": [caps.n_words, caps.width, caps.ports],
                "faults": payload_digest(
                    [_fault_cache_key(f) for f in faults]
                ),
                "compress": compress,
                "max_ops": max_ops,
                "mode": mode,
                "engine": engine,
            }
        try:
            report = _run_sharded(
                work, _sweep_shard,
                (caps.n_words, caps.width, caps.ports), jobs, mode,
                "scalar", key_fields=key_fields, service=service,
                store=store, resume=resume, shard_timeout=shard_timeout,
                chaos=chaos,
            )
        except SweepInterrupted as interrupt:
            if engine == "vector":
                interrupt.report.engine = "vector"
                interrupt.report.fallback_runs = interrupt.report.checked
            interrupt.report.wall_time_s = time.perf_counter() - started
            raise
    if engine == "vector":
        # Counted whole-sweep fallback: the caller asked for the vector
        # engine but the regime has no lane semantics — never silently.
        report.engine = "vector"
        report.fallback_runs = report.checked
    report.jobs = jobs
    report.wall_time_s = time.perf_counter() - started
    return report


@dataclass
class CrossEngineResult:
    """Differential comparison of the two sweep engines on one input.

    The scalar engine is the oracle; conformance identity (g) in
    ``docs/TESTING.md`` is that the vector engine's report payload —
    everything except the ``timing`` block — is byte-identical to it.
    """

    scalar: FaultSweepReport
    vector: FaultSweepReport

    @property
    def ok(self) -> bool:
        return (
            self.scalar.to_json(include_timing=False)
            == self.vector.to_json(include_timing=False)
        )

    def divergence(self) -> Optional[str]:
        """First differing payload field, or ``None`` when identical."""
        scalar = self.scalar.to_json(include_timing=False)
        vector = self.vector.to_json(include_timing=False)
        for key in scalar:
            if scalar[key] != vector[key]:
                return (
                    f"payload field {key!r}: scalar {scalar[key]!r} != "
                    f"vector {vector[key]!r}"
                )
        return None

    def format(self) -> str:
        lines = [
            "cross-engine fault-sweep comparison "
            f"{self.scalar.geometry}: "
            + ("IDENTICAL" if self.ok else "DIVERGED"),
            "  scalar: " + self.scalar.format().splitlines()[0],
            "  vector: " + self.vector.format().splitlines()[0],
        ]
        if not self.ok:
            lines.append(f"  {self.divergence()}")
        return "\n".join(lines)

    def to_json(self, include_timing: bool = True) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "divergence": self.divergence(),
            "scalar": self.scalar.to_json(include_timing=include_timing),
            "vector": self.vector.to_json(include_timing=include_timing),
        }


def check_cross_engine(
    tests: Sequence[MarchTest],
    capabilities: ControllerCapabilities,
    faults: Sequence[CellFault],
    compress: bool = True,
    max_ops: Optional[int] = None,
    jobs: int = 1,
    mode: str = "sequential",
    service: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
) -> CrossEngineResult:
    """Run one sweep through both engines and compare the payloads.

    For non-sequential modes the vector sweep is the counted scalar
    fallback, so the comparison degenerates to a replay determinism
    check — still a meaningful payload-equality assertion.  The service
    knobs pass straight through to both sweeps (the store keys the two
    engines separately, so they never share — or poison — each other's
    cache entries).
    """
    scalar = run_fault_sweep(
        tests, capabilities, faults, compress=compress,
        max_ops=max_ops, jobs=jobs, engine="scalar", mode=mode,
        service=service, store=store, resume=resume,
        shard_timeout=shard_timeout,
    )
    vector = run_fault_sweep(
        tests, capabilities, faults, compress=compress,
        max_ops=max_ops, jobs=jobs, engine="vector", mode=mode,
        service=service, store=store, resume=resume,
        shard_timeout=shard_timeout,
    )
    return CrossEngineResult(scalar=scalar, vector=vector)


Geometry = Union[Tuple[int, ...], ControllerCapabilities]


def _as_capabilities(geometry: Geometry) -> ControllerCapabilities:
    """Coerce a ``(words, width[, ports])`` tuple to capabilities."""
    if isinstance(geometry, ControllerCapabilities):
        return geometry
    parts = tuple(int(part) for part in geometry)
    if len(parts) == 2:
        parts = parts + (1,)
    if len(parts) != 3:
        raise ValueError(
            f"geometry must be (words, width) or (words, width, ports), "
            f"got {geometry!r}"
        )
    n_words, width, ports = parts
    return ControllerCapabilities(n_words=n_words, width=width, ports=ports)


@dataclass
class MultiGeometrySweepReport:
    """Per-geometry sections of one multi-geometry fault sweep."""

    sweeps: List[FaultSweepReport] = field(default_factory=list)
    wall_time_s: float = 0.0
    jobs: int = 1
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return all(sweep.ok for sweep in self.sweeps)

    @property
    def checked(self) -> int:
        return sum(sweep.checked for sweep in self.sweeps)

    @property
    def failure_count(self) -> int:
        return sum(len(sweep.failures) for sweep in self.sweeps)

    def format(self) -> str:
        lines = [
            f"multi-geometry fault-response sweep: "
            f"{len(self.sweeps)} geometrie(s), {self.checked} runs, "
            f"{self.failure_count} failure(s)"
        ]
        for sweep in self.sweeps:
            lines.extend("  " + line for line in sweep.format().splitlines())
        return "\n".join(lines)

    def to_json(self, include_timing: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "geometries": [
                sweep.to_json(include_timing=include_timing)
                for sweep in self.sweeps
            ],
            "checked": self.checked,
            "failure_count": self.failure_count,
            "ok": self.ok,
        }
        if self.interrupted:
            payload["interrupted"] = True
        if include_timing:
            payload["timing"] = {
                "wall_time_s": round(self.wall_time_s, 6),
                "jobs": self.jobs,
            }
        return payload


def run_fault_sweeps(
    geometries: Sequence[Geometry],
    tests: Sequence[MarchTest],
    faults: Optional[Sequence[CellFault]] = None,
    per_kind: int = 3,
    seed: int = 0,
    full: bool = False,
    compress: bool = True,
    max_ops: Optional[int] = None,
    jobs: int = 1,
    engine: str = "scalar",
    mode: str = "sequential",
    service: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    chaos: Optional[Any] = None,
) -> MultiGeometrySweepReport:
    """Sweep ``tests`` across several memory geometries.

    When ``faults`` is ``None`` each geometry draws its own population
    with :func:`~repro.conformance.faulty.sampling.sweep_faults` (the
    universe depends on the geometry — bigger memories have more cells
    to couple, multi-port ones gain the port-fault stratum, and
    concurrent-mode sweeps of multi-port geometries add the
    concurrency-sensitised stratum); an explicit ``faults`` sequence is
    reused verbatim for every geometry.  Geometries run in sequence,
    each internally sharded over ``jobs`` — on **one shared**
    :class:`~repro.service.engine.JobEngine` pool (no fresh pool per
    geometry).  SIGINT raises :class:`SweepInterrupted` carrying the
    partial multi-geometry report (completed geometries plus the
    interrupted one's completed shards).
    """
    from repro.conformance.faulty.sampling import sweep_faults

    if not geometries:
        raise ValueError("need at least one geometry to sweep")
    started = time.perf_counter()
    report = MultiGeometrySweepReport(jobs=jobs)
    shared = service
    owns_engine = service is None and jobs > 1
    if owns_engine:
        from repro.service.engine import JobEngine, RetryPolicy

        shared = JobEngine(
            workers=jobs, policy=RetryPolicy(timeout=shard_timeout)
        )
    try:
        for geometry in geometries:
            caps = _as_capabilities(geometry)
            population = (
                list(faults)
                if faults is not None
                else sweep_faults(
                    caps, per_kind=per_kind, seed=seed, full=full, mode=mode
                )
            )
            try:
                report.sweeps.append(
                    run_fault_sweep(
                        tests, caps, population, compress=compress,
                        max_ops=max_ops, jobs=jobs, engine=engine,
                        mode=mode, service=shared, store=store,
                        resume=resume, shard_timeout=shard_timeout,
                        chaos=chaos,
                    )
                )
            except SweepInterrupted as interrupt:
                report.sweeps.append(interrupt.report)
                report.interrupted = True
                report.wall_time_s = time.perf_counter() - started
                raise SweepInterrupted(report) from None
    finally:
        if owns_engine and shared is not None:
            shared.close()
    report.wall_time_s = time.perf_counter() - started
    return report
