"""Three-axis delta debugging for failing fault-response samples.

A fault-response fuzz failure has one more degree of freedom than a
stimulus failure: the injected fault.  :func:`shrink_faulty_sample`
extends the PR 3 shrinker (whose march-item, operation and geometry
passes it reuses verbatim) with a **fault axis** that simplifies the
fault spec itself — first trying to swap the whole fault for a
canonical single-cell stuck-at, then lowering its numeric coordinates
(aggressor/victim cells, sensitising states, polarities) toward zero —
so a nightly find reduces to a minimal *(march, geometry, single
fault)* triple such as ``(r0, (1,1,1), saf:0:0:1)``.

Every accepted fault mutation strictly decreases :func:`_spec_size`,
so the fault pass terminates without extra bookkeeping; the axis order
inside each fixpoint round is items → ops → fault → geometry, because
moving the fault onto cell (0,0) is what makes the later geometry pass
able to drop words/width the fault used to pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.conformance.shrink import (
    _Budget,
    _shrink_geometry,
    _shrink_items,
    _shrink_ops,
)
from repro.core.controller import ControllerCapabilities
from repro.faults.spec import FaultSpecError, parse_fault
from repro.march.notation import format_test
from repro.march.test import MarchTest

#: A faulty-sample predicate: True when (test, caps, fault spec) still
#: reproduces the failure.
FaultyPredicate = Callable[[MarchTest, ControllerCapabilities, str], bool]

#: The simplest faults that exist: replacing an exotic find with one of
#: these is the single biggest comprehensibility win, so they are tried
#: before any field-by-field lowering.
CANONICAL_SPECS: Tuple[str, ...] = ("saf:0:0:0", "saf:0:0:1")


@dataclass
class FaultyShrinkResult:
    """A minimised (march, geometry, fault) reproducer."""

    test: MarchTest
    capabilities: ControllerCapabilities
    fault_spec: str
    checks: int
    reduced: bool

    @property
    def notation(self) -> str:
        return format_test(self.test)

    @property
    def geometry(self) -> Tuple[int, int, int]:
        caps = self.capabilities
        return (caps.n_words, caps.width, caps.ports)

    def to_dict(self) -> dict:
        return {
            "notation": self.notation,
            "geometry": list(self.geometry),
            "fault": self.fault_spec,
            "checks": self.checks,
            "reduced": self.reduced,
        }


def fault_response_predicate(
    architectures: Optional[Sequence[str]] = None,
    compress: bool = True,
    max_ops: Optional[int] = None,
    mode: str = "sequential",
) -> FaultyPredicate:
    """The standard predicate: some architecture's *response* diverges.

    A candidate triple reproduces when
    :func:`~repro.conformance.faulty.check.check_fault_conformance`
    reports a divergence or a classified error on at least one of
    ``architectures`` (in the non-sequential ``mode`` regimes: when the
    replay diverges).  Malformed candidates (unparseable spec, a
    mutated march the assembler rejects) count as *not* reproducing.
    """
    from repro.conformance.check import ARCHITECTURES
    from repro.conformance.faulty.check import check_fault_conformance

    selected = tuple(architectures or ARCHITECTURES)

    def predicate(
        test: MarchTest, caps: ControllerCapabilities, spec: str
    ) -> bool:
        try:
            fault = parse_fault(spec)
            result = check_fault_conformance(
                test,
                caps,
                fault,
                architectures=selected,
                compress=compress,
                max_ops=max_ops,
                mode=mode,
            )
        except Exception:
            return False
        return not result.ok

    return predicate


def fault_detection_predicate(
    mode: str = "concurrent",
    detected: bool = True,
    compress: bool = True,
    max_ops: Optional[int] = None,
) -> FaultyPredicate:
    """Predicate preserving a *detection* verdict instead of a divergence.

    Shrinks samples whose interesting property is "this regime detects
    (or misses) the fault" — e.g. a concurrent-only fault caught by the
    dual-port stimulus, or an in-field session flagging a mid-life
    defect.  A candidate reproduces when the golden capture's detection
    verdict equals ``detected``; crashes and malformed candidates count
    as not reproducing, so the shrinker cannot wander into a
    degenerate triple that merely errors out.
    """
    from repro.conformance.faulty.check import check_fault_conformance

    def predicate(
        test: MarchTest, caps: ControllerCapabilities, spec: str
    ) -> bool:
        try:
            fault = parse_fault(spec)
            result = check_fault_conformance(
                test,
                caps,
                fault,
                compress=compress,
                max_ops=max_ops,
                mode=mode,
            )
        except Exception:
            return False
        if not result.ok:
            return False
        return result.detected == detected

    return predicate


def _spec_size(spec: str) -> int:
    """Strictly-decreasing shrink metric of a fault spec.

    The sum of all numeric fields, plus one per non-canonical
    direction token (``down`` simplifies to ``up``), plus a large
    penalty for any kind other than ``saf`` so a canonical swap always
    counts as progress.
    """
    parts = spec.split(":")
    size = 0 if parts[0] == "saf" else 1000
    for token in parts[1:]:
        if token == "down":
            size += 1
        elif token != "up":
            try:
                size += abs(int(token))
            except ValueError:
                size += 1
    return size


def simpler_fault_specs(spec: str) -> Iterator[str]:
    """Candidate simplifications of ``spec``, best first.

    Every yielded candidate has a strictly smaller :func:`_spec_size`
    than ``spec``; the caller just takes the first that still
    reproduces and loops to a fixpoint.
    """
    size = _spec_size(spec)
    for canonical in CANONICAL_SPECS:
        if _spec_size(canonical) < size:
            yield canonical
    parts = spec.split(":")
    for index in range(1, len(parts)):
        token = parts[index]
        if token == "down":
            yield ":".join(parts[:index] + ["up"] + parts[index + 1:])
            continue
        try:
            value = int(token)
        except ValueError:
            continue
        lowered = []
        if abs(value) > 1:
            lowered.append(value // 2)
        if value != 0:
            lowered.append(0)
        for new_value in lowered:
            yield ":".join(
                parts[:index] + [str(new_value)] + parts[index + 1:]
            )


def _shrink_fault(
    test: MarchTest,
    caps: ControllerCapabilities,
    spec: str,
    budget: _Budget,
    predicate: FaultyPredicate,
) -> Tuple[str, bool]:
    """Greedy fault-spec simplification to a local fixpoint.

    Uses ``budget`` only as the shared evaluation counter; candidates
    are checked through the three-argument ``predicate`` directly.
    """
    changed = False
    improving = True
    while improving:
        improving = False
        for candidate in simpler_fault_specs(spec):
            if budget.checks >= budget.max_checks:
                return spec, changed
            budget.checks += 1
            try:
                parse_fault(candidate)
            except FaultSpecError:
                continue
            if predicate(test, caps, candidate):
                spec = candidate
                changed = True
                improving = True
                break
    return spec, changed


def shrink_faulty_sample(
    test: MarchTest,
    capabilities: ControllerCapabilities,
    fault_spec: str,
    predicate: FaultyPredicate,
    max_checks: int = 2000,
    max_rounds: int = 10,
) -> FaultyShrinkResult:
    """Minimise a failing (march, geometry, fault) triple.

    Args:
        test: the failing algorithm.
        capabilities: the failing geometry.
        fault_spec: the injected fault, as a
            :mod:`repro.faults.spec` string.
        predicate: three-argument failure predicate, e.g.
            :func:`fault_response_predicate`.
        max_checks: hard cap on predicate evaluations across all axes.
        max_rounds: fixpoint-iteration cap.

    Returns:
        The smallest reproducing triple found, with the march renamed
        ``"shrunk"`` when any axis reduced.
    """
    state = {"spec": fault_spec}

    def two_arg(t: MarchTest, c: ControllerCapabilities) -> bool:
        return predicate(t, c, state["spec"])

    budget = _Budget(two_arg, max_checks)
    if not budget.holds(test, capabilities):
        return FaultyShrinkResult(
            test, capabilities, fault_spec, budget.checks, reduced=False
        )
    caps = capabilities
    reduced = False
    for _round in range(max_rounds):
        round_changed = False
        test, changed = _shrink_items(test, caps, budget)
        round_changed |= changed
        test, changed = _shrink_ops(test, caps, budget)
        round_changed |= changed
        state["spec"], changed = _shrink_fault(
            test, caps, state["spec"], budget, predicate
        )
        round_changed |= changed
        caps, changed = _shrink_geometry(test, caps, budget)
        round_changed |= changed
        reduced |= round_changed
        if not round_changed:
            break
    if reduced:
        test = test.renamed("shrunk")
    return FaultyShrinkResult(
        test, caps, state["spec"], budget.checks, reduced=reduced
    )
