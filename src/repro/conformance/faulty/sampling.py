"""Fault populations for the differential response harness.

Two consumers need faults-as-data here:

* The CI sweep wants a **stratified sample** of the standard universe —
  a few representatives of *every* behavioural kind rather than a
  uniform draw that SAF/coupling counts would dominate —
  :func:`stratified_sample`.
* The fuzz harness (assertion (e)) wants one **random fault per
  sample**, drawn deterministically from the sample's own RNG so a
  reproducer needs only the seed — :func:`random_fault`.

Both restrict themselves to spec-expressible faults (see
:mod:`repro.faults.spec`): every fault the harness touches must survive
a JSON round trip into a reproducer or a corpus regression entry.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.controller import ControllerCapabilities
from repro.faults.base import CellFault
from repro.faults.concurrent import concurrent_fault_universe
from repro.faults.spec import format_fault, parse_fault
from repro.faults.universe import FaultUniverse, standard_universe


def spec_expressible(faults: Sequence[CellFault]) -> List[CellFault]:
    """The subset of ``faults`` with a spec-string form."""
    return [fault for fault in faults if format_fault(fault) is not None]


def stratified_sample(
    universe: FaultUniverse,
    per_kind: int = 3,
    seed: int = 0,
) -> List[CellFault]:
    """Up to ``per_kind`` spec-expressible faults of every kind.

    The draw is deterministic in ``seed`` and spread across each kind's
    population (first, last and evenly spaced shuffled picks), so small
    samples still touch different cells and polarities.
    """
    rng = random.Random(seed)
    sample: List[CellFault] = []
    for kind in universe.kinds():
        population = spec_expressible(universe.by_kind()[kind])
        if not population:
            continue
        if len(population) <= per_kind:
            sample.extend(population)
            continue
        picks = [population[0], population[-1]]
        middle = population[1:-1]
        rng.shuffle(middle)
        picks.extend(middle)
        sample.extend(picks[:per_kind])
    return sample


def sweep_faults(
    capabilities: ControllerCapabilities,
    per_kind: int = 3,
    seed: int = 0,
    full: bool = False,
    mode: str = "sequential",
) -> List[CellFault]:
    """The fault population for a CI sweep of ``capabilities``.

    ``full`` returns the whole spec-expressible standard universe
    (nightly); otherwise a stratified sample (per-PR).  NPSF faults are
    excluded either way — they have no spec form, so a divergence under
    one could not be committed as a reproducer.  Multi-port geometries
    include the port-access (PAF) stratum: the universe is built with
    ``capabilities.ports``, so the faults only per-port repetition can
    catch are actually swept.

    ``mode="concurrent"`` on a multi-port geometry additionally sweeps
    the concurrency-sensitised stratum
    (:func:`repro.faults.concurrent.concurrent_fault_universe` — PAFc
    and CFxp).  Those faults are *not* part of the standard universe:
    they are invisible to sequential stimuli by construction, so adding
    them to the sequential sweep (or the static coverage prover's
    cross-check) would only record guaranteed misses.
    """
    universe = standard_universe(
        capabilities.n_words,
        width=capabilities.width,
        include_npsf=False,
        ports=capabilities.ports,
    )
    if mode == "concurrent" and capabilities.ports > 1:
        universe = FaultUniverse(
            name=f"{universe.name} + concurrent",
            faults=list(universe.faults)
            + concurrent_fault_universe(
                capabilities.n_words,
                capabilities.width,
                capabilities.ports,
            ),
        )
    if full:
        return spec_expressible(universe.faults)
    return stratified_sample(universe, per_kind=per_kind, seed=seed)


def random_fault(
    rng: random.Random,
    capabilities: ControllerCapabilities,
) -> CellFault:
    """Draw one spec-expressible fault for a fuzz sample.

    Uniform over *kinds* first (so rare kinds like AF get drawn as
    often as the huge SAF/coupling strata), then uniform over that
    kind's instances within the sample's geometry.  Always consumes the
    same amount of RNG state for a given universe, keeping per-sample
    seeds reproducible.
    """
    universe = standard_universe(
        capabilities.n_words,
        width=capabilities.width,
        include_npsf=False,
    )
    by_kind = {
        kind: spec_expressible(faults)
        for kind, faults in universe.by_kind().items()
    }
    kinds = sorted(kind for kind, faults in by_kind.items() if faults)
    kind = rng.choice(kinds)
    fault = rng.choice(by_kind[kind])
    # Round-trip through the spec so the object the harness runs is
    # bit-identical to the one a reproducer would rebuild.
    spec = format_fault(fault)
    assert spec is not None
    return parse_fault(spec)
