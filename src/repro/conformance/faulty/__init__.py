"""Differential fault-response conformance of the BIST architectures.

The stimulus harness (:mod:`repro.conformance`) proves the three
architectures issue identical operations; this package proves they give
identical *verdicts* when the memory is actually broken: the same
injected fault, three full BIST sessions, and a layered comparison of
fail events, fail-log aggregations and diagnosis.  See
``docs/TESTING.md`` for the event normalisation and budget semantics.
"""

from repro.conformance.faulty.check import (
    ArchitectureResponse,
    CrossEngineResult,
    ENGINES,
    FaultResponseResult,
    FaultSweepReport,
    MODES,
    MultiGeometrySweepReport,
    RESPONSE_CAPTURES,
    ResponseDivergence,
    check_cross_engine,
    check_fault_conformance,
    first_fail_divergence,
    run_fault_sweep,
    run_fault_sweeps,
)
from repro.conformance.faulty.events import (
    FailEvent,
    ResponseBudgetExceeded,
    ResponseCapture,
    capture_cycle_response,
    capture_response,
)
from repro.conformance.faulty.coverage import (
    CoverageConformanceResult,
    CoverageDisagreement,
    check_coverage_conformance,
    coverage_disagreement_predicate,
)
from repro.conformance.faulty.sampling import (
    random_fault,
    spec_expressible,
    stratified_sample,
    sweep_faults,
)
from repro.conformance.faulty.shrink import (
    CANONICAL_SPECS,
    FaultyPredicate,
    FaultyShrinkResult,
    fault_detection_predicate,
    fault_response_predicate,
    shrink_faulty_sample,
    simpler_fault_specs,
)

__all__ = [
    "ArchitectureResponse",
    "CANONICAL_SPECS",
    "CoverageConformanceResult",
    "CoverageDisagreement",
    "CrossEngineResult",
    "ENGINES",
    "FailEvent",
    "FaultResponseResult",
    "FaultSweepReport",
    "FaultyPredicate",
    "FaultyShrinkResult",
    "MODES",
    "MultiGeometrySweepReport",
    "RESPONSE_CAPTURES",
    "ResponseBudgetExceeded",
    "ResponseCapture",
    "ResponseDivergence",
    "capture_cycle_response",
    "capture_response",
    "check_coverage_conformance",
    "check_cross_engine",
    "check_fault_conformance",
    "coverage_disagreement_predicate",
    "fault_detection_predicate",
    "fault_response_predicate",
    "first_fail_divergence",
    "random_fault",
    "run_fault_sweep",
    "run_fault_sweeps",
    "shrink_faulty_sample",
    "simpler_fault_specs",
    "spec_expressible",
    "stratified_sample",
    "sweep_faults",
]
