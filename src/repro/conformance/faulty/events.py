"""Normalised, provenance-attributed fail-event capture.

Where :mod:`repro.conformance.trace` normalises the *stimulus* a
controller emits, this module normalises the *response* a memory gives
back: :func:`capture_response` applies an attributed operation stream
to a (typically faulty) memory and records every read mismatch as a
:class:`FailEvent` — the detecting op index within the stream (which,
for a stimulus-conformant architecture, *is* the index within the
golden expansion), the port, the failing address, the expected versus
observed data, and the owning program location that issued the
detecting read.  Two architectures respond identically to the same
fault exactly when their event streams are equal key-for-key.

The capture carries a hard per-run op budget: a faulty memory cannot
lengthen an open-loop stimulus stream, but the harness compares
arbitrary (possibly defective) response paths, and a wedged run must
surface as a classified *error*, never as a hang — see
:exc:`ResponseBudgetExceeded` and the budget/hang semantics in
``docs/TESTING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conformance.trace import AttributedCycle, AttributedOp
from repro.diagnostics.faillog import FailLog
from repro.march.simulator import Failure

#: Canonical comparison key of one fail event.
FailKey = Tuple[int, int, int, int, int]


class ResponseBudgetExceeded(RuntimeError):
    """A response capture overran its per-run op budget (wedged run)."""


@dataclass(frozen=True)
class FailEvent:
    """One read mismatch, normalised and attributed.

    Attributes:
        op_index: index of the detecting read within the applied stream
            (equals the golden-expansion op index when the architecture
            is stimulus-conformant).
        port: port the detecting read was issued on.
        address: failing word address.
        expected: word the read should have observed.
        observed: word the memory actually returned.
        owner: program location that issued the detecting read (march
            item / microcode row / buffer row / hardwired state).
    """

    op_index: int
    port: int
    address: int
    expected: int
    observed: int
    owner: str = ""

    @property
    def key(self) -> FailKey:
        """Canonical comparison key (the owner does not participate)."""
        return (
            self.op_index,
            self.port,
            self.address,
            self.expected,
            self.observed,
        )

    def describe(self) -> str:
        text = (
            f"op {self.op_index}: p{self.port} r@{self.address} "
            f"expected {self.expected:x} observed {self.observed:x}"
        )
        if self.owner:
            text += f"  <- {self.owner}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op_index": self.op_index,
            "port": self.port,
            "address": self.address,
            "expected": self.expected,
            "observed": self.observed,
            "owner": self.owner,
        }


def format_fail(event: Optional[FailEvent]) -> str:
    """Render a fail event for divergence reports (None = stream end)."""
    return event.describe() if event is not None else "<no event>"


@dataclass
class ResponseCapture:
    """Outcome of applying one attributed stream to a memory.

    Attributes:
        ops_applied: operations executed (the whole stream, unless the
            budget tripped first).
        events: read mismatches in detection order.
    """

    ops_applied: int = 0
    events: List[FailEvent] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.events)

    def failures(self) -> List[Failure]:
        """The events as raw :class:`~repro.march.simulator.Failure`
        records (the :class:`FailLog` input type)."""
        return [
            Failure(e.op_index, e.port, e.address, e.expected, e.observed)
            for e in self.events
        ]

    def log(self, test_name: str) -> FailLog:
        """The capture as a :class:`~repro.diagnostics.faillog.FailLog`,
        ready for the aggregations and the classifier."""
        return FailLog(test_name=test_name, failures=self.failures())


def capture_response(
    stream: Sequence[AttributedOp],
    memory,
    max_ops: Optional[int] = None,
) -> ResponseCapture:
    """Apply ``stream`` to ``memory``, recording attributed mismatches.

    Args:
        stream: an attributed operation stream (golden or from any of
            the :data:`repro.conformance.check.STREAM_BUILDERS`).
        memory: the memory under test — typically an
            :class:`~repro.memory.sram.Sram` inside a
            :meth:`~repro.faults.injector.FaultInjector.injected`
            context.
        max_ops: hard per-run op budget; ``None`` disables it.

    Raises:
        ResponseBudgetExceeded: when the budget trips — the caller
            classifies the run as an *error*, not a mismatch.
    """
    capture = ResponseCapture()
    for index, entry in enumerate(stream):
        if max_ops is not None and capture.ops_applied >= max_ops:
            raise ResponseBudgetExceeded(
                f"op budget of {max_ops} exceeded after "
                f"{capture.ops_applied} operation(s)"
            )
        capture.ops_applied += 1
        op = entry.op
        if op.is_delay:
            memory.elapse(op.delay)
        elif op.is_write:
            memory.write(op.port, op.address, op.value)
        else:
            observed = memory.read(op.port, op.address)
            if observed != op.expected:
                capture.events.append(
                    FailEvent(
                        op_index=index,
                        port=op.port,
                        address=op.address,
                        expected=op.expected,
                        observed=observed,
                        owner=entry.owner,
                    )
                )
    return capture


def capture_cycle_response(
    stream: Sequence[AttributedCycle],
    memory,
    max_ops: Optional[int] = None,
) -> ResponseCapture:
    """Apply an attributed *cycle* stream to ``memory``.

    The concurrent analogue of :func:`capture_response`: each
    :class:`~repro.march.concurrent.CycleOps` group is applied
    atomically via :meth:`~repro.memory.sram.Sram.cycle`, and every
    mismatching read of a cycle yields one :class:`FailEvent` carrying
    the **cycle** index as ``op_index`` (ascending port order within a
    cycle).  The budget counts cycles.
    """
    capture = ResponseCapture()
    for index, entry in enumerate(stream):
        if max_ops is not None and capture.ops_applied >= max_ops:
            raise ResponseBudgetExceeded(
                f"cycle budget of {max_ops} exceeded after "
                f"{capture.ops_applied} cycle(s)"
            )
        capture.ops_applied += 1
        observed_by_port = memory.cycle(entry.cycle.ops)
        for op in entry.cycle.ops:
            if not op.is_read:
                continue
            observed = observed_by_port[op.port]
            if observed != op.expected:
                capture.events.append(
                    FailEvent(
                        op_index=index,
                        port=op.port,
                        address=op.address,
                        expected=op.expected,
                        observed=observed,
                        owner=entry.owner,
                    )
                )
    return capture
