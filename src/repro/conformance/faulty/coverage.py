"""Certificate-vs-sweep differential coverage conformance.

The static prover (:mod:`repro.analysis.coverage`) and the single-fault
simulation sweep (:mod:`repro.march.coverage`) are two independent
implementations of the same question — "does this march test detect this
fault?".  :func:`check_coverage_conformance` runs both over the same
(test, fault) product and asserts they agree *fault-for-fault*:

* a ``covered`` verdict must correspond to a simulated run with at least
  one failing read, **and** the certificate's witness op index must be
  one of the failing reads in the simulated capture;
* a ``not-covered`` verdict must correspond to a clean simulated run;
* ``unknown`` verdicts are counted (the prover's honesty budget) but
  never simulated — they are the prover declining to claim anything.

The simulation side replays the golden expansion directly (the same
definition :func:`repro.march.coverage.evaluate_coverage` uses), with
one optimisation: a run stops as soon as it has both observed a failure
and passed the witness index, since nothing later can change the
verdict comparison.

:func:`coverage_disagreement_predicate` wraps the single-fault check as
a three-axis shrink predicate, so fuzz identity (f) disagreements reduce
to a minimal (march, geometry, fault) triple exactly like response
divergences do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conformance.faulty.check import Geometry, _as_capabilities
from repro.conformance.faulty.shrink import FaultyPredicate
from repro.core.controller import ControllerCapabilities
from repro.faults.base import CellFault
from repro.faults.injector import FaultInjector
from repro.faults.spec import parse_fault
from repro.faults.universe import FaultUniverse, standard_universe
from repro.march.simulator import expand
from repro.march.test import MarchTest
from repro.memory.sram import Sram


@dataclass(frozen=True)
class CoverageDisagreement:
    """One (test, fault) pair where prover and sweep disagree."""

    test_name: str
    fault_index: int
    kind: str
    spec: Optional[str]
    description: str
    verdict: str
    detected: bool
    witness: Optional[int]
    reason: str

    def describe(self) -> str:
        return (
            f"{self.test_name} / fault {self.fault_index} "
            f"({self.spec or self.description}): {self.reason}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "test": self.test_name,
            "fault_index": self.fault_index,
            "kind": self.kind,
            "spec": self.spec,
            "description": self.description,
            "verdict": self.verdict,
            "detected": self.detected,
            "witness": self.witness,
            "reason": self.reason,
        }


@dataclass
class CoverageConformanceResult:
    """Aggregated certificate-vs-sweep agreement over a (tests × faults)
    product on one geometry."""

    geometry: Tuple[int, int, int]
    universe_name: str
    tests: List[str] = field(default_factory=list)
    checked: int = 0
    covered_agree: int = 0
    not_covered_agree: int = 0
    unknown: int = 0
    disagreements: List[CoverageDisagreement] = field(default_factory=list)
    static_time_s: float = 0.0
    simulate_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def unknown_rate(self) -> float:
        if not self.checked:
            return 0.0
        return self.unknown / self.checked

    def format(self) -> str:
        words, width, ports = self.geometry
        lines = [
            f"coverage conformance on {words}x{width}x{ports} "
            f"({len(self.tests)} algorithm(s) x {self.universe_name}): "
            f"{self.checked} pairs, {self.covered_agree} covered, "
            f"{self.not_covered_agree} not covered, "
            f"{self.unknown} unknown ({100.0 * self.unknown_rate:.1f}%), "
            f"{len(self.disagreements)} disagreement(s) "
            f"[static {self.static_time_s:.2f}s, "
            f"simulate {self.simulate_time_s:.2f}s]"
        ]
        for disagreement in self.disagreements:
            lines.append("  " + disagreement.describe())
        return "\n".join(lines)

    def to_json(self, include_timing: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "geometry": list(self.geometry),
            "universe": self.universe_name,
            "tests": self.tests,
            "checked": self.checked,
            "covered_agree": self.covered_agree,
            "not_covered_agree": self.not_covered_agree,
            "unknown": self.unknown,
            "unknown_rate": round(self.unknown_rate, 4),
            "ok": self.ok,
            "disagreements": [d.to_dict() for d in self.disagreements],
        }
        if include_timing:
            payload["timing"] = {
                "static_time_s": round(self.static_time_s, 3),
                "simulate_time_s": round(self.simulate_time_s, 3),
            }
        return payload


def _simulate(
    test: MarchTest,
    caps: ControllerCapabilities,
    fault: CellFault,
    injector: FaultInjector,
    witness: Optional[int],
) -> Tuple[bool, bool]:
    """(detected, witness_failed) of one golden-expansion faulty run.

    Stops as soon as both a failure has been seen and the witness index
    (if any) has been executed — later operations cannot change either
    answer.
    """
    detected = False
    witness_failed = False
    with injector.injected(fault) as memory:
        stream = expand(
            test, caps.n_words, width=caps.width, ports=caps.ports
        )
        for index, op in enumerate(stream):
            if op.is_delay:
                memory.elapse(op.delay)
            elif op.is_write:
                memory.write(op.port, op.address, op.value)
            else:
                observed = memory.read(op.port, op.address)
                if observed != op.expected:
                    detected = True
                    if index == witness:
                        witness_failed = True
            if detected and (witness is None or index >= witness):
                break
    return detected, witness_failed


def check_coverage_conformance(
    tests: Optional[Sequence[MarchTest]] = None,
    geometry: Geometry = (4, 2, 1),
    universe: Optional[FaultUniverse] = None,
    faults: Optional[Sequence[CellFault]] = None,
    universe_name: str = "faults",
) -> CoverageConformanceResult:
    """Cross-check static certificates against simulated sweeps.

    Args:
        tests: march algorithms; defaults to the full library
            (:data:`repro.march.library.ALGORITHMS`).
        geometry: capabilities or a ``(words, width[, ports])`` tuple.
        universe: fault population; defaults to the full standard
            universe of the geometry (NPSF included — the prover
            handles it even though it has no spec form).
        faults: explicit fault list overriding ``universe``.
        universe_name: label when ``faults`` is given.
    """
    from repro.analysis.coverage import COVERED, NOT_COVERED, certify
    from repro.march.library import ALGORITHMS

    caps = _as_capabilities(geometry)
    if tests is None:
        tests = list(ALGORITHMS.values())
    if faults is None:
        if universe is None:
            universe = standard_universe(
                caps.n_words, width=caps.width, ports=caps.ports
            )
        population: Sequence[CellFault] = universe.faults
        universe_name = universe.name
    else:
        population = list(faults)

    result = CoverageConformanceResult(
        geometry=(caps.n_words, caps.width, caps.ports),
        universe_name=universe_name,
    )
    memory = Sram(caps.n_words, width=caps.width, ports=caps.ports)
    injector = FaultInjector(memory)
    for test in tests:
        result.tests.append(test.name)
        started = time.perf_counter()
        certificate = certify(
            test,
            caps.n_words,
            width=caps.width,
            ports=caps.ports,
            faults=population,
            universe_name=universe_name,
        )
        result.static_time_s += time.perf_counter() - started
        started = time.perf_counter()
        for verdict, fault in zip(certificate.verdicts, population):
            result.checked += 1
            if verdict.verdict not in (COVERED, NOT_COVERED):
                result.unknown += 1
                continue
            detected, witness_failed = _simulate(
                test, caps, fault, injector, verdict.witness
            )
            reason = None
            if verdict.verdict == COVERED:
                if not detected:
                    reason = (
                        "certificate claims covered but the simulated "
                        "sweep saw no failing read"
                    )
                elif verdict.witness is None:
                    reason = "covered verdict without a witness"
                elif not witness_failed:
                    reason = (
                        f"witness op {verdict.witness} did not fail in "
                        f"the simulated capture"
                    )
                else:
                    result.covered_agree += 1
            else:
                if detected:
                    reason = (
                        "certificate claims not-covered but the "
                        "simulated sweep failed a read"
                    )
                else:
                    result.not_covered_agree += 1
            if reason is not None:
                result.disagreements.append(
                    CoverageDisagreement(
                        test_name=test.name,
                        fault_index=verdict.index,
                        kind=verdict.kind,
                        spec=verdict.spec,
                        description=verdict.description,
                        verdict=verdict.verdict,
                        detected=detected,
                        witness=verdict.witness,
                        reason=reason,
                    )
                )
        result.simulate_time_s += time.perf_counter() - started
    return result


def coverage_disagreement_predicate() -> FaultyPredicate:
    """Shrink predicate: True while prover and sweep still disagree.

    Compatible with :func:`repro.conformance.faulty.shrink.
    shrink_faulty_sample`, so a coverage disagreement found by fuzz
    identity (f) reduces along the same three axes as a response
    divergence.  Malformed candidates count as not reproducing.
    """

    def predicate(
        test: MarchTest, caps: ControllerCapabilities, spec: str
    ) -> bool:
        try:
            fault = parse_fault(spec)
            result = check_coverage_conformance(
                tests=[test],
                geometry=caps,
                faults=[fault],
                universe_name=spec,
            )
        except Exception:
            return False
        return not result.ok

    return predicate
