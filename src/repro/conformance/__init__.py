"""Differential conformance of the three BIST controller architectures.

Public surface:

* :func:`check_conformance` — op-for-op equivalence of the microcode,
  programmable-FSM and hardwired simulations against the golden
  :func:`repro.march.simulator.expand` stream, with structured
  first-divergence reports.
* :func:`shrink_sample` / :func:`conformance_predicate` — delta-debug a
  failing (march, geometry) sample to a minimal reproducer.
* :mod:`repro.conformance.corpus` — the checked-in golden-trace
  regression corpus under ``tests/corpus/`` and its checker.
* :mod:`repro.conformance.faulty` — differential *fault-response*
  conformance (same fault, three BIST sessions, layered comparison of
  fail events / fail logs / diagnosis) plus the three-axis shrinker.
"""

from repro.conformance.check import (
    ARCHITECTURES,
    ArchitectureResult,
    CONCURRENT_CACHE,
    ConformanceResult,
    GOLDEN_CACHE,
    GoldenTraceCache,
    STREAM_BUILDERS,
    check_conformance,
)
from repro.conformance.faulty import (
    CoverageConformanceResult,
    CoverageDisagreement,
    CrossEngineResult,
    FailEvent,
    FaultResponseResult,
    FaultSweepReport,
    FaultyShrinkResult,
    MODES,
    MultiGeometrySweepReport,
    ResponseBudgetExceeded,
    capture_cycle_response,
    capture_response,
    check_coverage_conformance,
    check_cross_engine,
    check_fault_conformance,
    coverage_disagreement_predicate,
    fault_detection_predicate,
    fault_response_predicate,
    random_fault,
    run_fault_sweep,
    run_fault_sweeps,
    shrink_faulty_sample,
    sweep_faults,
)
from repro.conformance.infield import (
    DEFAULT_INFIELD_TESTS,
    Checkpoint,
    CheckpointResult,
    InFieldPlan,
    InFieldResult,
    build_infield_plan,
    cached_infield_plan,
    fault_free_session,
    run_infield_session,
)
from repro.conformance.corpus import (
    DEFAULT_CORPUS_DIR,
    GOLDEN_GEOMETRIES,
    CorpusReport,
    check_corpus,
    promote_from_report,
    record_golden,
    record_regression,
)
from repro.conformance.divergence import Divergence, first_divergence
from repro.conformance.shrink import (
    ShrinkResult,
    conformance_predicate,
    shrink_sample,
)
from repro.conformance.trace import (
    AttributedCycle,
    AttributedOp,
    concurrent_trace,
    format_cycle,
    format_normalized,
    fsm_trace,
    golden_trace,
    hardwired_trace,
    microcode_trace,
    normalize,
    normalize_cycle,
)

__all__ = [
    "ARCHITECTURES",
    "ArchitectureResult",
    "AttributedCycle",
    "AttributedOp",
    "CONCURRENT_CACHE",
    "Checkpoint",
    "CheckpointResult",
    "ConformanceResult",
    "CorpusReport",
    "CoverageConformanceResult",
    "CoverageDisagreement",
    "CrossEngineResult",
    "DEFAULT_CORPUS_DIR",
    "DEFAULT_INFIELD_TESTS",
    "Divergence",
    "FailEvent",
    "FaultResponseResult",
    "FaultSweepReport",
    "FaultyShrinkResult",
    "GOLDEN_CACHE",
    "GOLDEN_GEOMETRIES",
    "GoldenTraceCache",
    "InFieldPlan",
    "InFieldResult",
    "MODES",
    "MultiGeometrySweepReport",
    "ResponseBudgetExceeded",
    "STREAM_BUILDERS",
    "ShrinkResult",
    "build_infield_plan",
    "cached_infield_plan",
    "capture_cycle_response",
    "capture_response",
    "check_conformance",
    "check_corpus",
    "check_coverage_conformance",
    "check_cross_engine",
    "check_fault_conformance",
    "concurrent_trace",
    "conformance_predicate",
    "coverage_disagreement_predicate",
    "fault_detection_predicate",
    "fault_free_session",
    "fault_response_predicate",
    "first_divergence",
    "format_cycle",
    "format_normalized",
    "fsm_trace",
    "golden_trace",
    "hardwired_trace",
    "microcode_trace",
    "normalize",
    "normalize_cycle",
    "promote_from_report",
    "random_fault",
    "record_golden",
    "record_regression",
    "run_fault_sweep",
    "run_fault_sweeps",
    "run_infield_session",
    "shrink_faulty_sample",
    "shrink_sample",
    "sweep_faults",
]
