"""Normalised, provenance-attributed operation traces.

Every controller in :mod:`repro.core` and the golden expander in
:mod:`repro.march.simulator` emit the same
:class:`~repro.march.simulator.MemoryOperation` type; this module turns
each of those streams into a list of :class:`AttributedOp` — the
operation in canonical (normalised) form plus a human-readable *owner*
naming the program location that issued it:

* golden stream — the owning march item and operation index;
* microcode controller — the storage row and its disassembly;
* programmable FSM controller — the upper-buffer row and its decoded
  instruction;
* hardwired controller — the FSM state index and kind.

Normalisation rules (see ``docs/TESTING.md``):

* a write is ``("w", port, address, value)``;
* a read is ``("r", port, address, expected)``;
* a pause is ``("d", port, delay)`` — the placeholder address and the
  unused value/expected fields of delay operations are *not* compared;
* nothing else (cycle timing, controller state) participates: op-for-op
  equivalence is about the memory-facing behaviour only.  Temporal
  equivalence is the fuzz harness's separate assertion (a)/(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.controller import ControllerCapabilities
from repro.march.backgrounds import data_backgrounds
from repro.march.concurrent import CycleOps, expand_concurrent
from repro.march.element import MarchElement, Pause
from repro.march.simulator import MemoryOperation, expand
from repro.march.test import MarchTest

def stimulus_notation(test) -> str:
    """The stable string identity of any sweepable stimulus.

    March tests render through :func:`repro.march.notation.format_test`;
    non-march session objects (e.g. :class:`repro.prt.session.PrtSession`)
    carry their own ``notation`` attribute.  Used wherever reports and
    store keys need a stimulus name without assuming march structure.
    """
    if isinstance(test, MarchTest):
        from repro.march.notation import format_test

        return format_test(test)
    notation = getattr(test, "notation", None)
    if notation is not None:
        return str(notation)
    raise TypeError(
        f"not a sweepable stimulus (no notation): {test!r}"
    )


#: Canonical comparison key of one operation.
NormalizedOp = Union[
    Tuple[str, int, int, int],  # ("w"/"r", port, address, value/expected)
    Tuple[str, int, int],       # ("d", port, delay)
]


def normalize(op: MemoryOperation) -> NormalizedOp:
    """Canonical comparison key of ``op`` (see module docstring)."""
    if op.is_delay:
        return ("d", op.port, op.delay)
    if op.is_write:
        return ("w", op.port, op.address, op.value)
    return ("r", op.port, op.address, op.expected)


def format_normalized(key: Optional[NormalizedOp]) -> str:
    """Render a normalised op for divergence reports (None = stream end)."""
    if key is None:
        return "<end of stream>"
    if key[0] == "d":
        return f"p{key[1]} delay({key[2]})"
    if key[0] == "w":
        return f"p{key[1]} w@{key[2]}={key[3]:x}"
    return f"p{key[1]} r@{key[2]}?{key[3]:x}"


@dataclass(frozen=True)
class AttributedOp:
    """One traced operation plus the program location that issued it.

    Attributes:
        op: the raw operation, exactly as the source emitted it.
        owner: human-readable owning location — march item, microcode
            row, upper-buffer row or hardwired state.
    """

    op: MemoryOperation
    owner: str

    @property
    def key(self) -> NormalizedOp:
        return normalize(self.op)


def normalize_cycle(cycle: CycleOps) -> Tuple[NormalizedOp, ...]:
    """Canonical comparison key of one same-cycle op group.

    The per-op normalisation of :func:`normalize`, tupled in the group's
    (ascending-port) order — two cycles are equivalent iff every port
    issues the same access.
    """
    return tuple(normalize(op) for op in cycle.ops)


def format_cycle(key: Optional[Tuple[NormalizedOp, ...]]) -> str:
    """Render a normalised cycle for divergence reports."""
    if key is None:
        return "<end of stream>"
    return " | ".join(format_normalized(op) for op in key)


@dataclass(frozen=True)
class AttributedCycle:
    """One traced same-cycle op group plus its owning program location."""

    cycle: CycleOps
    owner: str

    @property
    def key(self) -> Tuple[NormalizedOp, ...]:
        return normalize_cycle(self.cycle)


def concurrent_trace(
    test: MarchTest, capabilities: ControllerCapabilities
) -> List[AttributedCycle]:
    """The concurrent golden cycle stream, attributed to march items.

    Owners follow the rotation structure of
    :func:`repro.march.concurrent.expand_concurrent` (base-port rotation
    outermost, then backgrounds, items, addresses); as with
    :func:`golden_trace`, the pairing is asserted against the expander's
    actual output length.
    """
    caps = capabilities
    cycles = list(
        expand_concurrent(
            test, caps.n_words, width=caps.width, ports=caps.ports
        )
    )
    owners: List[str] = []
    backgrounds = len(data_backgrounds(caps.width))
    for rotation in range(caps.ports):
        for _background in range(backgrounds):
            for item_index, item in enumerate(test.items):
                if isinstance(item, Pause):
                    owners.append(f"rotation {rotation} item {item_index} {item}")
                    continue
                for _address in range(caps.n_words):
                    for op_index in range(item.op_count):
                        owners.append(
                            f"rotation {rotation} item {item_index} {item} "
                            f"op {op_index}"
                        )
    if len(owners) != len(cycles):  # pragma: no cover - structural invariant
        raise AssertionError(
            f"concurrent attribution out of sync: {len(owners)} owners for "
            f"{len(cycles)} cycles"
        )
    return [AttributedCycle(cycle, owner) for cycle, owner in zip(cycles, owners)]


def golden_trace(
    test: MarchTest, capabilities: ControllerCapabilities
) -> List[AttributedOp]:
    """The golden reference stream, attributed to march items.

    Owners are generated from the march structure in the exact loop
    order of :func:`repro.march.simulator.expand` (ports outermost,
    backgrounds, items, addresses); the pairing is asserted against the
    expander's actual output length so the attribution can never drift
    silently from the executable semantics.
    """
    caps = capabilities
    ops = list(expand(test, caps.n_words, width=caps.width, ports=caps.ports))
    owners: List[str] = []
    backgrounds = len(data_backgrounds(caps.width))
    for _port in range(caps.ports):
        for _background in range(backgrounds):
            for item_index, item in enumerate(test.items):
                if isinstance(item, Pause):
                    owners.append(f"item {item_index} {item}")
                    continue
                for _address in range(caps.n_words):
                    for op_index in range(item.op_count):
                        owners.append(
                            f"item {item_index} {item} op {op_index}"
                        )
    if len(owners) != len(ops):  # pragma: no cover - structural invariant
        raise AssertionError(
            f"golden attribution out of sync: {len(owners)} owners for "
            f"{len(ops)} operations"
        )
    return [AttributedOp(op, owner) for op, owner in zip(ops, owners)]


def microcode_trace(controller) -> List[AttributedOp]:
    """Attributed stream of a :class:`MicrocodeBistController`.

    The owner names the storage row (the microcode instruction counter
    value) and its one-line disassembly, so a divergence report points
    straight at the offending program word.
    """
    from repro.core.microcode.disassembler import disassemble_instruction

    out: List[AttributedOp] = []
    for entry in controller.trace():
        if entry.operation is None:
            continue
        owner = (
            f"microcode row {entry.ic}: "
            f"{disassemble_instruction(entry.instruction)}"
        )
        out.append(AttributedOp(entry.operation, owner))
    return out


def fsm_trace(controller) -> List[AttributedOp]:
    """Attributed stream of a :class:`ProgrammableFsmBistController`.

    The owner names the circular-buffer row and its decoded instruction
    (SM mode, order, base polarities).
    """
    out: List[AttributedOp] = []
    for entry in controller.trace():
        if entry.operation is None:
            continue
        owner = f"fsm row {entry.row}: {entry.instruction}"
        out.append(AttributedOp(entry.operation, owner))
    return out


def hardwired_trace(controller) -> List[AttributedOp]:
    """Attributed stream of a :class:`HardwiredBistController`.

    The owner names the synthesised FSM state (index, kind, operation).
    """
    out: List[AttributedOp] = []
    for entry in controller.trace():
        if entry.operation is None:
            continue
        state = entry.state
        detail = state.kind
        if state.kind == "op" and state.op_kind is not None:
            detail = f"op {state.op_kind.value}{state.polarity}"
        elif state.kind == "pause":
            detail = f"pause({state.pause_duration})"
        owner = f"hardwired state {state.index} ({detail})"
        out.append(AttributedOp(entry.operation, owner))
    return out
