"""The checked-in golden-trace regression corpus.

``tests/corpus/golden/`` holds one JSON file per (library algorithm,
geometry) pair: the algorithm in march notation, the geometry, the
architectures the pair is differentially tested on, and the full golden
operation stream in a compact one-op-per-line text encoding, protected
by a SHA-256 content hash.  ``tests/corpus/regressions/`` holds
minimised reproducers promoted from nightly fuzz failures in the same
format (see ``docs/TESTING.md`` for the promotion workflow); entries
carrying a ``fault`` key additionally pin the *fault-response* of every
architecture under that injected fault
(:func:`repro.conformance.faulty.check.check_fault_conformance`).
``tests/corpus/streams/`` holds traces of the non-march operation
streams — the classical tests of :mod:`repro.classic` and the
transparent (content-preserving) transforms of
:mod:`repro.core.transparent` — pinned against the named generator in
:data:`STREAM_GENERATORS` rather than against the march expander.

``repro conformance corpus-check`` re-derives everything: the stored
hash must match the stored ops (file integrity), the stored ops must
match a fresh golden expansion (the reference semantics didn't drift),
and every listed architecture must still reproduce the stream op-for-op
(the controllers didn't drift).  Any edit to march semantics, the
assembler, a controller or the expander that changes behaviour
therefore fails CI with a first-divergence report instead of silently
shipping.

Op encoding (stable, documented in ``docs/TESTING.md``)::

    w <port> <address> <value>      write
    r <port> <address> <expected>   read
    d <port> <delay>                retention pause

Concurrent stream entries encode one *cycle* per line: the same-cycle
sub-operations in ascending port order joined by ``" | "``, e.g.
``w 0 2 1 | r 1 2 0``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.conformance.check import ARCHITECTURES, check_conformance
from repro.conformance.trace import golden_trace
from repro.core.controller import ControllerCapabilities
from repro.march.concurrent import CycleOps, expand_concurrent
from repro.march.notation import format_test, parse_test
from repro.march.simulator import MemoryOperation
from repro.march.test import MarchTest

Geometry = Tuple[int, int, int]

#: Corpus file schema version (bump on incompatible format changes).
SCHEMA = 1

#: Default geometry grid of the golden corpus: bit-oriented single-port,
#: word-oriented multiport and wide single-port — every loop level
#: (addresses, backgrounds, ports) is exercised by at least one entry.
GOLDEN_GEOMETRIES: Tuple[Tuple[int, int, int], ...] = (
    (4, 1, 1),
    (3, 2, 2),
    (2, 4, 1),
)

#: Default corpus root, relative to the repository checkout.
DEFAULT_CORPUS_DIR = "tests/corpus"


class CorpusError(ValueError):
    """Raised for malformed corpus files."""


def encode_op(op: MemoryOperation) -> str:
    """One-line text encoding of an operation (see module docstring)."""
    if op.is_delay:
        return f"d {op.port} {op.delay}"
    if op.is_write:
        return f"w {op.port} {op.address} {op.value}"
    return f"r {op.port} {op.address} {op.expected}"


def encode_cycle(cycle: "CycleOps") -> str:
    """One-line encoding of a same-cycle op group (``" | "``-joined)."""
    return " | ".join(encode_op(op) for op in cycle)


def decode_cycle(text: str) -> "CycleOps":
    """Inverse of :func:`encode_cycle`."""
    return CycleOps([decode_op(part) for part in text.split(" | ")])


def encode_stream_item(item: Any) -> str:
    """Encode either a plain operation or a :class:`CycleOps` group."""
    if isinstance(item, CycleOps):
        return encode_cycle(item)
    return encode_op(item)


def decode_op(text: str) -> MemoryOperation:
    """Inverse of :func:`encode_op`."""
    parts = text.split()
    try:
        kind = parts[0]
        if kind == "d":
            port, delay = int(parts[1]), int(parts[2])
            return MemoryOperation(port, 0, False, delay=delay)
        if kind == "w":
            port, address, value = (int(p) for p in parts[1:4])
            return MemoryOperation(port, address, True, value=value)
        if kind == "r":
            port, address, expected = (int(p) for p in parts[1:4])
            return MemoryOperation(port, address, False, expected=expected)
    except (IndexError, ValueError) as error:
        raise CorpusError(f"bad op line {text!r}: {error}") from None
    raise CorpusError(f"bad op line {text!r}: unknown kind {kind!r}")


def trace_digest(ops: Sequence[str]) -> str:
    """SHA-256 content hash over the encoded operation lines."""
    return hashlib.sha256("\n".join(ops).encode("utf-8")).hexdigest()


def _slug(name: str) -> str:
    cleaned = name.lower().replace("+", "p")
    return "".join(c if c.isalnum() else "-" for c in cleaned).strip("-")


#: Corpus sub-directory per entry kind.
_KIND_DIRS = {"golden": "golden", "stream": "streams"}


def _entry_path(
    root: pathlib.Path, kind: str, name: str, geometry: Geometry
) -> pathlib.Path:
    words, width, ports = geometry
    sub = _KIND_DIRS.get(kind, "regressions")
    return root / sub / f"{_slug(name)}__w{words}x{width}p{ports}.json"


def applicable_architectures(test: MarchTest) -> List[str]:
    """Architectures that can realise ``test`` (progfsm is bounded)."""
    from repro.core.progfsm.compiler import is_realizable

    architectures = list(ARCHITECTURES)
    if not is_realizable(test):
        architectures.remove("progfsm")
    return architectures


def build_entry(
    test: MarchTest,
    geometry: Tuple[int, int, int],
    kind: str = "golden",
    provenance: Optional[Dict[str, Any]] = None,
    compress: bool = True,
) -> Dict[str, Any]:
    """One corpus entry: notation + geometry + golden trace + hash."""
    words, width, ports = geometry
    caps = ControllerCapabilities(n_words=words, width=width, ports=ports)
    ops = [entry.op for entry in golden_trace(test, caps)]
    encoded = [encode_op(op) for op in ops]
    entry: Dict[str, Any] = {
        "schema": SCHEMA,
        "kind": kind,
        "name": test.name,
        "notation": format_test(test),
        "geometry": list(geometry),
        "compress": compress,
        "architectures": applicable_architectures(test),
        "ops": encoded,
        "sha256": trace_digest(encoded),
    }
    if provenance:
        entry["provenance"] = provenance
    return entry


def write_entry(path: pathlib.Path, entry: Dict[str, Any]) -> pathlib.Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=1)
        handle.write("\n")
    return path


def load_entry(path: pathlib.Path) -> Dict[str, Any]:
    with open(path) as handle:
        entry = json.load(handle)
    required = ["kind", "geometry", "ops", "sha256"]
    required.append(
        "generator" if entry.get("kind") == "stream" else "notation"
    )
    for key in required:
        if key not in entry:
            raise CorpusError(f"{path}: missing corpus key {key!r}")
    if entry.get("schema") != SCHEMA:
        raise CorpusError(
            f"{path}: unsupported corpus schema {entry.get('schema')!r} "
            f"(this tool reads schema {SCHEMA})"
        )
    return entry


def record_golden(
    root: pathlib.Path,
    geometries: Sequence[Tuple[int, int, int]] = GOLDEN_GEOMETRIES,
    algorithms: Optional[Iterable[str]] = None,
) -> List[pathlib.Path]:
    """(Re)write the golden corpus: library algorithms × geometry grid."""
    from repro.march import library

    names = list(algorithms) if algorithms is not None else list(
        library.ALGORITHMS
    )
    written: List[pathlib.Path] = []
    for name in names:
        test = library.get(name)
        for geometry in geometries:
            entry = build_entry(test, tuple(geometry), kind="golden")
            path = _entry_path(root, "golden", name, tuple(geometry))
            written.append(write_entry(path, entry))
    return written


def _transparent_stream_builder(algorithm: str):
    """Stream builder for the transparent transform of ``algorithm``.

    The transparent expansion depends on the live contents; the corpus
    pins it against the deterministic fill ``initial[a] = a & mask`` so
    the trace exercises per-address data without any RNG.
    """

    def build(caps: ControllerCapabilities) -> List[MemoryOperation]:
        from repro.core.transparent import (
            TransparentBistRun,
            transparent_version,
        )
        from repro.march import library
        from repro.memory.sram import Sram

        test = transparent_version(library.get(algorithm))
        memory = Sram(caps.n_words, width=caps.width, ports=caps.ports)
        for address in range(caps.n_words):
            memory.poke(address, address & memory.word_mask)
        run = TransparentBistRun(test, memory)
        return run._operation_stream(tuple(memory.snapshot()))

    return build


def _classic_stream_builder(generator: str):
    def build(caps: ControllerCapabilities) -> List[MemoryOperation]:
        from repro import classic

        if generator == "checkerboard-bake":
            return list(
                classic.checkerboard(
                    caps.n_words, caps.width, caps.ports, bake=512
                )
            )
        if generator == "pseudorandom":
            # pseudorandom_test is single-port; length defaults to the
            # 10N March C budget, seeds are the documented defaults.
            return list(
                classic.pseudorandom_test(caps.n_words, caps.width)
            )
        fn = getattr(classic, generator.replace("-", "_"))
        return list(fn(caps.n_words, caps.width, caps.ports))

    return build


def _concurrent_stream_builder(algorithm: str):
    """Stream builder for the concurrent dual-port expansion.

    Yields :class:`~repro.march.concurrent.CycleOps` groups (encoded
    one cycle per line), pinning both the base-port march and the
    companion-port read expectations of
    :func:`repro.march.concurrent.expand_concurrent`.
    """

    def build(caps: ControllerCapabilities) -> List[CycleOps]:
        from repro.march import library

        return list(
            expand_concurrent(
                library.get(algorithm),
                caps.n_words,
                width=caps.width,
                ports=caps.ports,
            )
        )

    return build


def _prt_stream_builder(which: str):
    """Stream builder for a named default pseudo-ring session.

    Pins the full seed + circulation + readout stream of
    :class:`repro.prt.session.PrtSession` per geometry, so any edit to
    the ring tap selection, the seed LFSR or the shift semantics fails
    CI with a first-divergence report.
    """

    def build(caps: ControllerCapabilities) -> List[MemoryOperation]:
        import repro.prt as prt

        session = {
            "prt-ring-up": prt.PRT_RING_UP,
            "prt-ring-down": prt.PRT_RING_DOWN,
        }[which]
        return list(session.operations(caps))

    return build


def _infield_stream_builder():
    """Stream builder for the deterministic in-field session plan.

    Pins the full seed + traffic + transparent-slot operation stream of
    :func:`repro.conformance.infield.build_infield_plan` with the
    default test trio and ``seed=0``, so any edit to the scheduler, the
    traffic RNG discipline or the transparent rebasing fails CI with a
    first-divergence report.
    """

    def build(caps: ControllerCapabilities) -> List[MemoryOperation]:
        from repro.conformance.infield import build_infield_plan

        plan = build_infield_plan(caps, seed=0)
        return [entry.op for entry in plan.stream]

    return build


#: Named deterministic operation-stream generators the ``streams/``
#: corpus is pinned against.  Each maps a geometry to the exact stream;
#: corpus-check regenerates and compares, so any behavioural edit to a
#: classical test or the transparent transform fails CI with a
#: first-divergence report.
STREAM_GENERATORS: Dict[str, Any] = {
    "walking-ones": _classic_stream_builder("walking-ones"),
    "walking-zeros": _classic_stream_builder("walking-zeros"),
    "galpat": _classic_stream_builder("galpat"),
    "checkerboard": _classic_stream_builder("checkerboard"),
    "checkerboard-bake": _classic_stream_builder("checkerboard-bake"),
    "pseudorandom": _classic_stream_builder("pseudorandom"),
    "transparent-mats+": _transparent_stream_builder("MATS+"),
    "transparent-march-c": _transparent_stream_builder("March C"),
    "transparent-march-y": _transparent_stream_builder("March Y"),
    "concurrent-mats+": _concurrent_stream_builder("MATS+"),
    "concurrent-march-c": _concurrent_stream_builder("March C"),
    "infield-session": _infield_stream_builder(),
    "prt-ring-up": _prt_stream_builder("prt-ring-up"),
    "prt-ring-down": _prt_stream_builder("prt-ring-down"),
}

#: Geometry grid of the stream corpus.  The O(N²) classical tests keep
#: it deliberately small; both entries still cover width > 1 and the
#: multi-port sweep.
STREAM_GEOMETRIES: Tuple[Geometry, ...] = ((4, 1, 1), (3, 2, 2))


def build_stream_entry(
    generator: str, geometry: Geometry
) -> Dict[str, Any]:
    """One ``streams/`` corpus entry: generator name + pinned trace."""
    words, width, ports = geometry
    caps = ControllerCapabilities(n_words=words, width=width, ports=ports)
    encoded = [
        encode_stream_item(item)
        for item in STREAM_GENERATORS[generator](caps)
    ]
    return {
        "schema": SCHEMA,
        "kind": "stream",
        "name": generator,
        "generator": generator,
        "geometry": list(geometry),
        "ops": encoded,
        "sha256": trace_digest(encoded),
    }


def record_streams(
    root: pathlib.Path,
    geometries: Sequence[Geometry] = STREAM_GEOMETRIES,
    generators: Optional[Iterable[str]] = None,
) -> List[pathlib.Path]:
    """(Re)write the stream corpus: generator registry × geometry grid."""
    names = (
        list(generators) if generators is not None
        else list(STREAM_GENERATORS)
    )
    written: List[pathlib.Path] = []
    for name in names:
        for geometry in geometries:
            entry = build_stream_entry(name, tuple(geometry))
            path = _entry_path(root, "stream", name, tuple(geometry))
            written.append(write_entry(path, entry))
    return written


def record_regression(
    root: pathlib.Path,
    notation: str,
    geometry: Geometry,
    name: str,
    compress: bool = True,
    provenance: Optional[Dict[str, Any]] = None,
    fault: Optional[str] = None,
    mode: Optional[str] = None,
    expect_detected: Optional[bool] = None,
) -> pathlib.Path:
    """Check in one minimised reproducer as a regression entry.

    ``fault`` (a :mod:`repro.faults.spec` string) additionally pins the
    differential *fault-response* under that injected fault — the
    corpus checker re-runs the full faulty differential for such
    entries.  ``mode`` selects the stimulus regime the fault response
    is re-checked under (one of
    :data:`repro.conformance.faulty.check.MODES`; ``None`` means
    sequential), and ``expect_detected`` additionally pins the
    *detection* verdict — e.g. a concurrent-only fault promoted from a
    shrunk reproducer stays detected by the dual-port stimulus forever.
    """
    test = parse_test(notation, name=name)
    entry = build_entry(
        test,
        tuple(geometry),
        kind="regression",
        provenance=provenance,
        compress=compress,
    )
    if mode is not None:
        from repro.conformance.faulty.check import MODES

        if mode not in MODES:
            raise CorpusError(
                f"unknown regression mode {mode!r} (expected one of "
                f"{'/'.join(MODES)})"
            )
        entry["mode"] = mode
    if fault is not None:
        from repro.faults.spec import parse_fault

        parse_fault(fault)  # validate before committing
        entry["fault"] = fault
        if expect_detected is not None:
            entry["expect_detected"] = bool(expect_detected)
    elif expect_detected is not None:
        raise CorpusError("expect_detected requires a fault spec")
    path = _entry_path(root, "regression", name, tuple(geometry))
    return write_entry(path, entry)


def promote_from_report(
    root: pathlib.Path, report: Dict[str, Any]
) -> List[pathlib.Path]:
    """Promote every mismatch of a fuzz-report JSON into the corpus.

    Prefers the shrunk reproducer the harness minimised automatically
    (the three-axis faulty reproducer when the failure was a
    fault-response divergence); falls back to the full sample when
    shrinking was unavailable.  The fuzz seed, sample index and drawn
    fault are kept as provenance, so a checked-in regression is
    traceable to the nightly run that found it.
    """
    written: List[pathlib.Path] = []
    seed = report.get("seed", 0)
    for entry in report.get("mismatches", []):
        shrunk_faulty = entry.get("shrunk_faulty") or {}
        shrunk = shrunk_faulty or entry.get("shrunk") or {}
        notation = shrunk.get("notation") or entry.get("notation")
        geometry = shrunk.get("geometry") or entry.get("geometry")
        fault = shrunk_faulty.get("fault") or (
            entry.get("fault_spec") if shrunk_faulty else None
        )
        if not notation or not geometry:
            continue
        name = f"fuzz-seed{seed}-sample{entry.get('index', 0)}"
        provenance = {
            "seed": seed,
            "index": entry.get("index"),
            "sample_seed": entry.get("sample_seed"),
            "original_notation": entry.get("notation"),
            "original_geometry": entry.get("geometry"),
            "original_fault": entry.get("fault_spec"),
            "mismatches": entry.get("mismatches"),
        }
        written.append(
            record_regression(
                root,
                notation,
                tuple(geometry),
                name=name,
                compress=bool(entry.get("compress", True)),
                provenance=provenance,
                fault=fault,
            )
        )
    return written


@dataclass
class EntryResult:
    """Verdict for one corpus file."""

    path: str
    name: str
    ok: bool
    problems: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "name": self.name,
            "ok": self.ok,
            "problems": self.problems,
        }


@dataclass
class CorpusReport:
    """Aggregated outcome of a corpus check."""

    root: str
    entries: List[EntryResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.entries) and all(e.ok for e in self.entries)

    @property
    def checked(self) -> int:
        return len(self.entries)

    @property
    def failed(self) -> List[EntryResult]:
        return [e for e in self.entries if not e.ok]

    def format(self) -> str:
        lines = [
            f"corpus {self.root}: {self.checked} entr"
            f"{'y' if self.checked == 1 else 'ies'} checked, "
            f"{len(self.failed)} problem(s)"
        ]
        if not self.entries:
            lines.append("  (no corpus files found — run "
                         "'repro conformance record' first)")
        for entry in self.entries:
            if entry.ok:
                continue
            lines.append(f"  FAIL {entry.path} ({entry.name})")
            for problem in entry.problems:
                lines.extend(f"    {line}"
                             for line in problem.splitlines())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "checked": self.checked,
            "ok": self.ok,
            "entries": [entry.to_dict() for entry in self.entries],
        }


def check_entry(path: pathlib.Path) -> EntryResult:
    """Validate one corpus file (integrity + golden + architectures)."""
    result = EntryResult(path=str(path), name=path.stem, ok=True)

    def problem(text: str) -> None:
        result.ok = False
        result.problems.append(text)

    try:
        entry = load_entry(path)
    except (CorpusError, json.JSONDecodeError, OSError) as error:
        problem(f"unreadable corpus entry: {error}")
        return result
    result.name = entry.get("name", path.stem)

    # 1. File integrity: the stored hash covers the stored ops.
    stored_ops = entry["ops"]
    digest = trace_digest(stored_ops)
    if digest != entry["sha256"]:
        problem(
            f"content hash mismatch: stored {entry['sha256'][:12]}…, "
            f"ops hash to {digest[:12]}… (corpus file edited by hand?)"
        )

    # Stream entries replay against their named generator, not the
    # march machinery.
    if entry["kind"] == "stream":
        _check_stream_entry(entry, stored_ops, problem)
        return result

    # 2. Reference stability: a fresh golden expansion reproduces the ops.
    try:
        test = parse_test(entry["notation"], name=result.name)
    except Exception as error:
        problem(f"unparseable notation: {error}")
        return result
    words, width, ports = entry["geometry"]
    caps = ControllerCapabilities(n_words=words, width=width, ports=ports)
    fresh = [encode_op(e.op) for e in golden_trace(test, caps)]
    if fresh != stored_ops:
        index = next(
            (i for i, (a, b) in enumerate(zip(fresh, stored_ops)) if a != b),
            min(len(fresh), len(stored_ops)),
        )
        got = fresh[index] if index < len(fresh) else "<end of stream>"
        want = (
            stored_ops[index] if index < len(stored_ops)
            else "<end of stream>"
        )
        problem(
            f"golden trace drifted at op {index}: corpus has {want!r}, "
            f"expander now yields {got!r} "
            f"({len(stored_ops)} stored vs {len(fresh)} fresh ops)"
        )

    # 3. Architecture conformance: every listed controller reproduces it.
    architectures = [
        a for a in entry.get("architectures", list(ARCHITECTURES))
        if a in ARCHITECTURES
    ]
    conformance = check_conformance(
        test,
        caps,
        architectures=architectures,
        compress=bool(entry.get("compress", True)),
    )
    if not conformance.ok:
        problem(conformance.describe_failures())
    for arch_result in conformance.results:
        if arch_result.skipped is not None:
            problem(
                f"{arch_result.architecture} listed in the corpus entry "
                f"but skipped at check time: {arch_result.skipped}"
            )

    # 4. Fault-response stability: entries pinning an injected fault
    # re-run the full differential against it.
    if entry.get("fault"):
        _check_fault_entry(entry, test, caps, architectures, problem)
    return result


def _check_stream_entry(
    entry: Dict[str, Any], stored_ops: Sequence[str], problem
) -> None:
    """Replay a ``streams/`` entry against its named generator."""
    generator = entry.get("generator")
    if generator not in STREAM_GENERATORS:
        problem(
            f"unknown stream generator {generator!r}; known: "
            f"{sorted(STREAM_GENERATORS)}"
        )
        return
    words, width, ports = entry["geometry"]
    caps = ControllerCapabilities(n_words=words, width=width, ports=ports)
    try:
        fresh = [
            encode_stream_item(item)
            for item in STREAM_GENERATORS[generator](caps)
        ]
    except Exception as error:
        problem(f"stream generator {generator!r} crashed: {error}")
        return
    if fresh != stored_ops:
        index = next(
            (i for i, (a, b) in enumerate(zip(fresh, stored_ops)) if a != b),
            min(len(fresh), len(stored_ops)),
        )
        got = fresh[index] if index < len(fresh) else "<end of stream>"
        want = (
            stored_ops[index] if index < len(stored_ops)
            else "<end of stream>"
        )
        problem(
            f"stream {generator!r} drifted at op {index}: corpus has "
            f"{want!r}, generator now yields {got!r} "
            f"({len(stored_ops)} stored vs {len(fresh)} fresh ops)"
        )


def _check_fault_entry(
    entry: Dict[str, Any],
    test: MarchTest,
    caps: ControllerCapabilities,
    architectures: Sequence[str],
    problem,
) -> None:
    """Re-run the fault-response differential a regression entry pins."""
    from repro.conformance.faulty.check import check_fault_conformance
    from repro.faults.spec import FaultSpecError, parse_fault

    try:
        fault = parse_fault(entry["fault"])
    except FaultSpecError as error:
        problem(f"bad fault spec in corpus entry: {error}")
        return
    mode = entry.get("mode", "sequential")
    try:
        response = check_fault_conformance(
            test,
            caps,
            fault,
            architectures=architectures,
            compress=bool(entry.get("compress", True)),
            mode=mode,
        )
    except ValueError as error:
        problem(f"fault-response re-check failed: {error}")
        return
    if not response.ok:
        problem(
            f"fault-response regression under {entry['fault']} "
            f"[{mode} mode]: " + response.describe_failures()
        )
    expect_detected = entry.get("expect_detected")
    if expect_detected is not None and response.ok:
        if response.detected != bool(expect_detected):
            problem(
                f"detection verdict drifted under {entry['fault']} "
                f"[{mode} mode]: corpus pins detected="
                f"{bool(expect_detected)}, harness now reports "
                f"detected={response.detected}"
            )


def check_corpus(root: pathlib.Path) -> CorpusReport:
    """Validate every golden, stream and regression entry under ``root``."""
    report = CorpusReport(root=str(root))
    paths = (
        sorted(root.glob("golden/*.json"))
        + sorted(root.glob("streams/*.json"))
        + sorted(root.glob("regressions/*.json"))
    )
    for path in paths:
        report.entries.append(check_entry(path))
    return report
