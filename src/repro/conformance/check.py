"""Op-for-op conformance of the three controller architectures.

The paper's central claim (its R1) is that the microcode-based, the
programmable FSM-based and the hardwired controllers realise the *same*
march semantics at different flexibility/area points.
:func:`check_conformance` makes that claim checkable for any algorithm
and geometry: it extracts the normalised operation stream from every
architecture's cycle-accurate simulation and asserts op-for-op equality
against the golden :func:`repro.march.simulator.expand` reference, with
a structured first-divergence report (op index, both operations, the
owning march item on the golden side and the owning microcode row /
buffer row / FSM state on the candidate side).

Architectures outside their flexibility boundary are *skipped*, not
failed: the programmable FSM unit legitimately cannot run March B, and
that boundary is measured elsewhere (:mod:`repro.eval.flexibility`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conformance.divergence import Divergence, first_divergence
from repro.conformance.trace import (
    AttributedOp,
    concurrent_trace,
    fsm_trace,
    golden_trace,
    hardwired_trace,
    microcode_trace,
)
from repro.core.controller import ControllerCapabilities
from repro.march.notation import format_test
from repro.march.test import MarchTest

#: All differentially-tested architectures, in report order.
ARCHITECTURES: Tuple[str, ...] = ("microcode", "progfsm", "hardwired")


class GoldenTraceCache:
    """Bounded memo of golden traces keyed by ``(notation, geometry)``.

    The delta-debugging shrinker evaluates its predicate hundreds of
    times, and most evaluations revisit a (march, geometry) pair an
    earlier round already expanded — most obviously the current
    champion, re-checked after every rejected mutation.  Re-expanding
    the golden stream dominated shrink time on big nightly finds, so
    :func:`check_conformance` (and the fault-response checker, which
    replays the golden stream once per architecture) memoises here.

    The key is the *notation* rather than object identity: two
    ``MarchTest`` objects that format identically expand identically
    (owners embed item strings only, never the test name).  Entries are
    immutable attributed streams shared between callers; nobody
    mutates them.  ``hits``/``misses`` are exposed for the perf
    regression test.

    ``builder`` is the trace expander the cache memoises — the
    sequential :func:`~repro.conformance.trace.golden_trace` by default;
    :data:`CONCURRENT_CACHE` memoises the concurrent cycle traces with
    the same keying and eviction.
    """

    def __init__(self, maxsize: int = 128, builder=golden_trace) -> None:
        self.maxsize = maxsize
        self.builder = builder
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[str, int, int, int], List[AttributedOp]]" = (
            OrderedDict()
        )

    def get(
        self, test: MarchTest, caps: ControllerCapabilities
    ) -> List[AttributedOp]:
        key = (format_test(test), caps.n_words, caps.width, caps.ports)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        entry = self.builder(test, caps)
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide golden-expansion memo (fuzz workers each get their own
#: copy via fork/spawn, so there is no cross-sample interference).
GOLDEN_CACHE = GoldenTraceCache()

#: Same memo for the concurrent golden *cycle* streams
#: (:func:`~repro.conformance.trace.concurrent_trace`).
CONCURRENT_CACHE = GoldenTraceCache(builder=concurrent_trace)


@dataclass
class ArchitectureResult:
    """One architecture's verdict against the golden stream.

    Attributes:
        architecture: architecture name (see :data:`ARCHITECTURES`).
        op_count: operations the architecture's simulation emitted.
        divergence: first op-for-op disagreement, or None.
        skipped: reason the architecture was not compared (flexibility
            boundary), or None when it ran.
        error: runtime failure of the simulation itself (a controller
            hang is a conformance failure too), or None.
    """

    architecture: str
    op_count: int = 0
    divergence: Optional[Divergence] = None
    skipped: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "architecture": self.architecture,
            "op_count": self.op_count,
            "ok": self.ok,
            "skipped": self.skipped,
            "error": self.error,
            "divergence": (
                self.divergence.to_dict() if self.divergence else None
            ),
        }


@dataclass
class ConformanceResult:
    """Outcome of one differential conformance check.

    ``ok`` is True when every *compared* architecture reproduced the
    golden stream exactly; skipped architectures (flexibility boundary)
    do not fail the check.
    """

    notation: str
    geometry: Tuple[int, int, int]
    compress: bool
    golden_ops: int
    results: List[ArchitectureResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> List[ArchitectureResult]:
        return [result for result in self.results if not result.ok]

    @property
    def compared(self) -> List[str]:
        return [r.architecture for r in self.results if r.skipped is None]

    def describe_failures(self) -> str:
        """One-paragraph failure summary (used by the fuzz harness)."""
        parts = []
        for result in self.failures:
            if result.error is not None:
                parts.append(f"{result.architecture}: {result.error}")
            elif result.divergence is not None:
                parts.append(result.divergence.describe())
        return "; ".join(parts)

    def format(self) -> str:
        lines = [
            f"conformance {self.geometry}: {self.notation}",
            f"  golden stream: {self.golden_ops} operation(s)",
        ]
        for result in self.results:
            if result.skipped is not None:
                lines.append(
                    f"  {result.architecture:<10} skipped ({result.skipped})"
                )
            elif result.error is not None:
                lines.append(
                    f"  {result.architecture:<10} ERROR: {result.error}"
                )
            elif result.divergence is not None:
                lines.append(f"  {result.architecture:<10} DIVERGES")
                lines.extend(
                    "    " + line
                    for line in result.divergence.describe().splitlines()
                )
            else:
                lines.append(
                    f"  {result.architecture:<10} ok "
                    f"({result.op_count} ops, op-for-op equal)"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "notation": self.notation,
            "geometry": list(self.geometry),
            "compress": self.compress,
            "golden_ops": self.golden_ops,
            "ok": self.ok,
            "architectures": [result.to_dict() for result in self.results],
        }


def _microcode_stream(
    test: MarchTest, caps: ControllerCapabilities, compress: bool
) -> List[AttributedOp]:
    from repro.core.microcode.assembler import assemble
    from repro.core.microcode.controller import MicrocodeBistController

    program = assemble(test, caps, compress=compress, verify=False)
    controller = MicrocodeBistController(program, caps, verify=False)
    return microcode_trace(controller)


def _fsm_stream(
    test: MarchTest, caps: ControllerCapabilities, compress: bool
) -> List[AttributedOp]:
    from repro.core.progfsm.compiler import compile_to_sm
    from repro.core.progfsm.controller import ProgrammableFsmBistController
    from repro.core.progfsm.upper_buffer import DEFAULT_ROWS

    program = compile_to_sm(test, caps, verify=False)
    controller = ProgrammableFsmBistController(
        program,
        caps,
        buffer_rows=max(DEFAULT_ROWS, len(program)),
        verify=False,
    )
    return fsm_trace(controller)


def _hardwired_stream(
    test: MarchTest, caps: ControllerCapabilities, compress: bool
) -> List[AttributedOp]:
    from repro.core.hardwired.controller import HardwiredBistController

    controller = HardwiredBistController(test, caps)
    return hardwired_trace(controller)


#: Attributed-stream builder per architecture, uniform signature
#: ``(test, caps, compress)`` (only microcode honours ``compress``).
#: Shared by the stimulus check below and the fault-response check in
#: :mod:`repro.conformance.faulty`.
STREAM_BUILDERS = {
    "microcode": _microcode_stream,
    "progfsm": _fsm_stream,
    "hardwired": _hardwired_stream,
}


def check_conformance(
    test: MarchTest,
    capabilities: ControllerCapabilities,
    architectures: Sequence[str] = ARCHITECTURES,
    compress: bool = True,
) -> ConformanceResult:
    """Differentially test ``test`` across the controller architectures.

    Args:
        test: the march algorithm.
        capabilities: memory geometry all controllers target.
        architectures: subset of :data:`ARCHITECTURES` to compare.
        compress: microcode REPEAT compression (both settings must
            conform — the fuzz harness draws it randomly).

    Returns:
        A :class:`ConformanceResult`; ``.ok`` is the op-for-op verdict.
    """
    from repro.core.progfsm.compiler import CompileError

    caps = capabilities
    unknown = set(architectures) - set(ARCHITECTURES)
    if unknown:
        raise ValueError(
            f"unknown architecture(s) {sorted(unknown)}; "
            f"known: {list(ARCHITECTURES)}"
        )
    reference = GOLDEN_CACHE.get(test, caps)
    result = ConformanceResult(
        notation=format_test(test),
        geometry=(caps.n_words, caps.width, caps.ports),
        compress=compress,
        golden_ops=len(reference),
    )
    for architecture in ARCHITECTURES:
        if architecture not in architectures:
            continue
        arch_result = ArchitectureResult(architecture=architecture)
        result.results.append(arch_result)
        try:
            stream = STREAM_BUILDERS[architecture](test, caps, compress)
        except CompileError as error:
            arch_result.skipped = f"outside the SM0-SM7 boundary: {error}"
            continue
        except RuntimeError as error:
            arch_result.error = f"simulation did not terminate: {error}"
            continue
        arch_result.op_count = len(stream)
        arch_result.divergence = first_divergence(
            reference, stream, architecture
        )
    return result
