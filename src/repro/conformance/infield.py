"""Deterministic in-field transparent test sessions over live memory.

Off-line BIST owns the memory; *in-field* BIST shares it with a running
system (à la *Embedding of Deterministic Test Data for In-Field
Testing*, Li & Dubrova — PAPERS.md): the memory carries live user data,
and the controller periodically steals idle slots to run a *transparent*
march variant (:func:`repro.core.transparent.transparent_version`) that
tests the array while provably restoring the user's contents.

:func:`build_infield_plan` compiles such a session into a fully
deterministic, open-loop attributed operation stream:

1. a **seed phase** writes every address with seeded pseudo-random user
   data;
2. each **slot** is a seeded user-traffic burst (reads expecting the
   tracked fault-free shadow, writes updating it) followed by one
   transparent test expanded against the shadow's slot-start snapshot
   (per-port passes, exactly the rebasing of
   :class:`~repro.core.transparent.TransparentBistRun`);
3. after every slot a **checkpoint** records the op index and the
   fault-free shadow contents — what the memory must hold if the
   transparent slot really was transparent.

Everything — traffic, slot expansion, expectations, checkpoints — is a
pure function of ``(geometry, seed, tests, traffic_ops)``: the shadow is
the traffic-only reference run, computed at plan-build time, so applying
the same plan twice (or on two memories) is bit-reproducible.  The
determinism contract is documented in ``docs/TESTING.md``.

:func:`run_infield_session` applies a plan to a memory, recording
owner-attributed :class:`~repro.conformance.faulty.events.FailEvent`
mismatches and verifying every checkpoint, with optional mid-stream
fault injection.  On a fault-free memory a session yields zero events
and bit-identical checkpoints (fuzz identity (h)); the default slot trio
(transparent MATS+/March C/March Y) reads every cell with both relative
polarities, so a stuck-at fault injected at any slot boundary is
guaranteed to be detected by that very slot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conformance.faulty.events import (
    FailEvent,
    ResponseBudgetExceeded,
)
from repro.conformance.trace import AttributedOp
from repro.core.controller import ControllerCapabilities
from repro.core.transparent import transparent_version
from repro.march import library
from repro.march.element import Pause
from repro.march.simulator import MemoryOperation
from repro.march.test import MarchTest
from repro.memory.sram import Sram

#: Default in-field slot trio.  Each transparent variant reads every
#: cell with both relative polarities, so any single slot detects any
#: stuck-at fault present while it runs.
DEFAULT_INFIELD_TESTS: Tuple[MarchTest, ...] = (
    library.MATS_PLUS,
    library.MARCH_C,
    library.MARCH_Y,
)

#: Default user-traffic burst length per slot.
DEFAULT_TRAFFIC_OPS = 16


@dataclass(frozen=True)
class Checkpoint:
    """A user-data integrity check scheduled after one transparent slot.

    Attributes:
        slot: slot index (0-based).
        op_index: number of stream operations applied when the check
            fires (the check runs after ``stream[:op_index]``).
        start_index: stream index of the slot's first transparent
            operation — the canonical mid-stream injection point for
            "fault appears while this slot runs" experiments.
        expected: fault-free shadow contents the memory must hold.
    """

    slot: int
    op_index: int
    start_index: int
    expected: Tuple[int, ...]


@dataclass(frozen=True)
class InFieldPlan:
    """A compiled in-field session: open-loop stream plus checkpoints.

    Attributes:
        capabilities: memory geometry the plan was compiled for.
        seed: session seed (traffic and user data derive from it).
        test_names: transparent slot algorithms, in slot order.
        stream: the full attributed operation stream.
        checkpoints: one per slot, in slot order.
    """

    capabilities: ControllerCapabilities
    seed: int
    test_names: Tuple[str, ...]
    stream: Tuple[AttributedOp, ...]
    checkpoints: Tuple[Checkpoint, ...]

    @property
    def geometry(self) -> Tuple[int, int, int]:
        caps = self.capabilities
        return (caps.n_words, caps.width, caps.ports)


def build_infield_plan(
    capabilities: ControllerCapabilities,
    seed: int = 0,
    tests: Optional[Sequence[MarchTest]] = None,
    traffic_ops: int = DEFAULT_TRAFFIC_OPS,
) -> InFieldPlan:
    """Compile a deterministic in-field session for a geometry.

    Args:
        capabilities: memory geometry (words, width, ports).
        seed: session seed; all traffic addresses, values, ports and the
            seeded user data are drawn from
            ``random.Random(f"infield:{seed}:{words}:{width}:{ports}")``.
        tests: base march algorithms for the transparent slots (made
            transparent here); defaults to :data:`DEFAULT_INFIELD_TESTS`.
            Tests without reads are rejected by
            :func:`~repro.core.transparent.transparent_version`.
        traffic_ops: user-traffic burst length preceding each slot.
    """
    caps = capabilities
    base_tests = tuple(DEFAULT_INFIELD_TESTS if tests is None else tests)
    slot_tests = tuple(transparent_version(test) for test in base_tests)
    rng = random.Random(
        f"infield:{seed}:{caps.n_words}:{caps.width}:{caps.ports}"
    )
    mask = (1 << caps.width) - 1
    shadow: List[int] = [0] * caps.n_words
    stream: List[AttributedOp] = []
    checkpoints: List[Checkpoint] = []

    # Seed phase: establish pseudo-random user data on every address.
    for address in range(caps.n_words):
        value = rng.randrange(mask + 1)
        shadow[address] = value
        stream.append(
            AttributedOp(
                MemoryOperation(0, address, True, value=value),
                f"seed addr {address}",
            )
        )

    for slot, test in enumerate(slot_tests):
        # User-traffic burst: seeded reads (expecting the shadow) and
        # writes (updating it), on random ports and addresses.
        for j in range(traffic_ops):
            port = rng.randrange(caps.ports)
            address = rng.randrange(caps.n_words)
            owner = f"traffic {slot} op {j}"
            if rng.random() < 0.5:
                stream.append(
                    AttributedOp(
                        MemoryOperation(
                            port, address, False, expected=shadow[address]
                        ),
                        owner,
                    )
                )
            else:
                value = rng.randrange(mask + 1)
                shadow[address] = value
                stream.append(
                    AttributedOp(
                        MemoryOperation(port, address, True, value=value),
                        owner,
                    )
                )
        # Transparent slot, expanded against the slot-start shadow (the
        # rebasing of TransparentBistRun._operation_stream): polarity 0
        # means the cell's slot-start content, polarity 1 its complement.
        start_index = len(stream)
        initial = tuple(shadow)
        for port in range(caps.ports):
            for item_index, item in enumerate(test.items):
                if isinstance(item, Pause):
                    stream.append(
                        AttributedOp(
                            MemoryOperation(
                                port, 0, False, delay=item.duration
                            ),
                            f"slot {slot} ({test.name}) port {port} "
                            f"item {item_index} {item}",
                        )
                    )
                    continue
                addresses = (
                    range(caps.n_words)
                    if not item.order.resolve().value == "down"
                    else range(caps.n_words - 1, -1, -1)
                )
                for address in addresses:
                    base = initial[address]
                    for op_index, op in enumerate(item.ops):
                        word = base ^ (mask if op.polarity else 0)
                        owner = (
                            f"slot {slot} ({test.name}) port {port} "
                            f"item {item_index} {item} op {op_index}"
                        )
                        if op.is_write:
                            stream.append(
                                AttributedOp(
                                    MemoryOperation(
                                        port, address, True, value=word
                                    ),
                                    owner,
                                )
                            )
                        else:
                            stream.append(
                                AttributedOp(
                                    MemoryOperation(
                                        port, address, False, expected=word
                                    ),
                                    owner,
                                )
                            )
        # Transparency: the slot restores the slot-start contents, so
        # the fault-free shadow is unchanged — the checkpoint pins that.
        checkpoints.append(
            Checkpoint(
                slot=slot,
                op_index=len(stream),
                start_index=start_index,
                expected=initial,
            )
        )

    return InFieldPlan(
        capabilities=caps,
        seed=seed,
        test_names=tuple(test.name for test in slot_tests),
        stream=tuple(stream),
        checkpoints=tuple(checkpoints),
    )


#: Bounded memo for compiled plans (sessions are pure functions of the
#: key, and fuzz/sweeps rebuild the same geometry's plan repeatedly).
_PLAN_CACHE: Dict[tuple, InFieldPlan] = {}
_PLAN_CACHE_MAX = 64


def cached_infield_plan(
    capabilities: ControllerCapabilities,
    seed: int = 0,
    tests: Optional[Sequence[MarchTest]] = None,
) -> InFieldPlan:
    """Memoised :func:`build_infield_plan` (default traffic length).

    Keyed on geometry, seed and the slot algorithms' notation — the
    same plan purity argument as the golden-trace cache: two tests that
    format identically compile to identical sessions.
    """
    from repro.march.notation import format_test

    caps = capabilities
    notations = (
        None
        if tests is None
        else tuple(format_test(test) for test in tests)
    )
    key = (caps.n_words, caps.width, caps.ports, seed, notations)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = build_infield_plan(caps, seed=seed, tests=tests)
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        _PLAN_CACHE[key] = plan
    return plan


@dataclass(frozen=True)
class CheckpointResult:
    """Outcome of one user-data integrity check.

    ``mismatches`` lists ``(address, expected, observed)`` triples —
    empty on a preserved checkpoint.
    """

    checkpoint: Checkpoint
    mismatches: Tuple[Tuple[int, int, int], ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class InFieldResult:
    """Outcome of applying an in-field plan to a memory.

    Attributes:
        ops_applied: stream operations executed.
        events: owner-attributed read mismatches, in detection order
            (traffic reads and transparent-slot reads both contribute).
        checkpoints: per-slot user-data integrity outcomes.
    """

    ops_applied: int = 0
    events: List[FailEvent] = field(default_factory=list)
    checkpoints: List[CheckpointResult] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.events)

    @property
    def user_data_preserved(self) -> bool:
        """Every checkpoint found the memory bit-identical to the
        traffic-only shadow (the in-field transparency identity (h) —
        meaningful on fault-free runs)."""
        return all(result.ok for result in self.checkpoints)


def run_infield_session(
    plan: InFieldPlan,
    memory: Sram,
    inject: Optional[Tuple[object, int]] = None,
    max_ops: Optional[int] = None,
) -> InFieldResult:
    """Apply an in-field plan to a memory, checking every checkpoint.

    Args:
        plan: a compiled session from :func:`build_infield_plan`.
        memory: the memory under test; geometry must match the plan.
            Attach faults beforehand for present-from-power-on defects.
        inject: optional ``(fault, op_index)`` — the fault is reset and
            attached just before ``stream[op_index]`` executes,
            modelling a defect appearing mid-session (checkpoint
            ``start_index`` values are the canonical choices).  The
            caller owns detaching it afterwards.
        max_ops: hard op budget (:exc:`ResponseBudgetExceeded` beyond).
    """
    if (memory.n_words, memory.width, memory.ports) != plan.geometry:
        raise ValueError(
            f"memory geometry {(memory.n_words, memory.width, memory.ports)} "
            f"does not match plan geometry {plan.geometry}"
        )
    result = InFieldResult()
    pending = sorted(plan.checkpoints, key=lambda c: c.op_index)
    next_checkpoint = 0

    def _fire_checkpoints(applied: int) -> None:
        nonlocal next_checkpoint
        while (
            next_checkpoint < len(pending)
            and pending[next_checkpoint].op_index <= applied
        ):
            checkpoint = pending[next_checkpoint]
            snapshot = memory.snapshot()
            mismatches = tuple(
                (address, expected, snapshot[address])
                for address, expected in enumerate(checkpoint.expected)
                if snapshot[address] != expected
            )
            result.checkpoints.append(
                CheckpointResult(checkpoint, mismatches)
            )
            next_checkpoint += 1

    for index, entry in enumerate(plan.stream):
        if max_ops is not None and result.ops_applied >= max_ops:
            raise ResponseBudgetExceeded(
                f"op budget of {max_ops} exceeded after "
                f"{result.ops_applied} operation(s)"
            )
        if inject is not None and index == inject[1]:
            fault, _ = inject
            fault.reset()
            memory.attach(fault)
        op = entry.op
        if op.is_delay:
            memory.elapse(op.delay)
        elif op.is_write:
            memory.write(op.port, op.address, op.value)
        else:
            observed = memory.read(op.port, op.address)
            if observed != op.expected:
                result.events.append(
                    FailEvent(
                        op_index=index,
                        port=op.port,
                        address=op.address,
                        expected=op.expected,
                        observed=observed,
                        owner=entry.owner,
                    )
                )
        result.ops_applied += 1
        _fire_checkpoints(result.ops_applied)
    return result


def fault_free_session(
    capabilities: ControllerCapabilities, seed: int = 0
) -> InFieldResult:
    """Run the default session on a pristine memory (identity (h) probe)."""
    plan = cached_infield_plan(capabilities, seed=seed)
    caps = capabilities
    memory = Sram(caps.n_words, caps.width, caps.ports)
    return run_infield_session(plan, memory)
