"""Delta-debugging shrinker for failing conformance samples.

A 10k-sample nightly fuzz failure typically arrives as a six-element
march over an awkward geometry.  :func:`shrink_sample` reduces it to a
minimal reproducer while the failure *predicate* keeps holding, over
three dimensions in turn, to a fixpoint:

1. march items — greedy removal of whole elements/pauses (backward, so
   indices stay valid);
2. operations — removal of individual operations inside each element
   (elements keep at least one operation);
3. geometry — words, width and ports are lowered to the smallest values
   that still reproduce.

The predicate is arbitrary, so the shrinker serves both the conformance
harness (``repro conformance shrink``, the fuzz harness's automatic
minimisation) and ad-hoc debugging; :func:`conformance_predicate` builds
the standard "some architecture diverges from the golden stream" one.

Greedy one-at-a-time removal (rather than full ddmin) is deliberate:
fuzz samples have at most ~7 items of at most 4 operations over
single-digit geometries, so the predicate-evaluation budget is small
and the fixpoint loop already recovers removals that only become
possible after another dimension shrank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.controller import ControllerCapabilities
from repro.march.element import MarchElement
from repro.march.notation import format_test
from repro.march.test import MarchTest

#: A failure predicate: True when (test, caps) still reproduces.
Predicate = Callable[[MarchTest, ControllerCapabilities], bool]


@dataclass
class ShrinkResult:
    """A minimised reproducer.

    Attributes:
        test: the shrunk march algorithm.
        capabilities: the shrunk geometry.
        checks: predicate evaluations spent.
        reduced: whether anything actually shrank.
    """

    test: MarchTest
    capabilities: ControllerCapabilities
    checks: int
    reduced: bool

    @property
    def notation(self) -> str:
        return format_test(self.test)

    @property
    def geometry(self) -> Tuple[int, int, int]:
        caps = self.capabilities
        return (caps.n_words, caps.width, caps.ports)

    def to_dict(self) -> dict:
        return {
            "notation": self.notation,
            "geometry": list(self.geometry),
            "checks": self.checks,
            "reduced": self.reduced,
        }


def conformance_predicate(
    architectures: Optional[Sequence[str]] = None,
    compress: bool = True,
) -> Predicate:
    """The standard predicate: some architecture fails conformance.

    A candidate reproduces when :func:`~repro.conformance.check.
    check_conformance` reports a divergence or a simulation error on at
    least one of ``architectures``.  Exceptions out of the check itself
    (e.g. the assembler rejecting a mutated pause) count as *not*
    reproducing, so the shrinker never wanders into malformed inputs.
    """
    from repro.conformance.check import ARCHITECTURES, check_conformance

    selected = tuple(architectures or ARCHITECTURES)

    def predicate(test: MarchTest, caps: ControllerCapabilities) -> bool:
        try:
            result = check_conformance(
                test, caps, architectures=selected, compress=compress
            )
        except Exception:
            return False
        return not result.ok

    return predicate


def _geometry(n_words: int, width: int, ports: int) -> ControllerCapabilities:
    return ControllerCapabilities(n_words=n_words, width=width, ports=ports)


class _Budget:
    """Predicate-evaluation counter with a hard cap."""

    def __init__(self, predicate: Predicate, max_checks: int) -> None:
        self.predicate = predicate
        self.max_checks = max_checks
        self.checks = 0

    def holds(self, test: MarchTest, caps: ControllerCapabilities) -> bool:
        if self.checks >= self.max_checks:
            return False
        self.checks += 1
        return self.predicate(test, caps)


def _shrink_items(
    test: MarchTest, caps: ControllerCapabilities, budget: _Budget
) -> Tuple[MarchTest, bool]:
    """Greedy removal of whole march items (elements and pauses)."""
    items = list(test.items)
    changed = False
    index = len(items) - 1
    while index >= 0 and len(items) > 1:
        candidate_items = items[:index] + items[index + 1:]
        candidate = MarchTest(test.name, candidate_items)
        if budget.holds(candidate, caps):
            items = candidate_items
            changed = True
        index -= 1
    return MarchTest(test.name, items), changed


def _shrink_ops(
    test: MarchTest, caps: ControllerCapabilities, budget: _Budget
) -> Tuple[MarchTest, bool]:
    """Removal of individual operations inside each element."""
    items = list(test.items)
    changed = False
    for item_index, item in enumerate(items):
        if not isinstance(item, MarchElement):
            continue
        ops = list(item.ops)
        op_index = len(ops) - 1
        while op_index >= 0 and len(ops) > 1:
            candidate_ops = ops[:op_index] + ops[op_index + 1:]
            candidate_items = list(items)
            candidate_items[item_index] = MarchElement(
                item.order, candidate_ops
            )
            candidate = MarchTest(test.name, candidate_items)
            if budget.holds(candidate, caps):
                ops = candidate_ops
                items = candidate_items
                changed = True
            op_index -= 1
    return MarchTest(test.name, items), changed


def _shrink_geometry(
    test: MarchTest, caps: ControllerCapabilities, budget: _Budget
) -> Tuple[ControllerCapabilities, bool]:
    """Lower words, width and ports to the smallest reproducing values."""
    changed = False
    for n_words in range(1, caps.n_words):
        candidate = _geometry(n_words, caps.width, caps.ports)
        if budget.holds(test, candidate):
            caps = candidate
            changed = True
            break
    width = 1
    while width < caps.width:
        candidate = _geometry(caps.n_words, width, caps.ports)
        if budget.holds(test, candidate):
            caps = candidate
            changed = True
            break
        width *= 2
    for ports in range(1, caps.ports):
        candidate = _geometry(caps.n_words, caps.width, ports)
        if budget.holds(test, candidate):
            caps = candidate
            changed = True
            break
    return caps, changed


def shrink_sample(
    test: MarchTest,
    capabilities: ControllerCapabilities,
    predicate: Predicate,
    max_checks: int = 2000,
    max_rounds: int = 10,
) -> ShrinkResult:
    """Minimise a failing (march, geometry) sample under ``predicate``.

    Args:
        test: the failing algorithm (``predicate(test, capabilities)``
            should be True; if not, the input is returned unchanged).
        capabilities: the failing geometry.
        predicate: failure predicate, e.g. :func:`conformance_predicate`.
        max_checks: hard cap on predicate evaluations.
        max_rounds: fixpoint-iteration cap (each round re-tries all
            three shrink dimensions).

    Returns:
        The smallest reproducer found, renamed ``"shrunk"`` when any
        reduction happened.
    """
    budget = _Budget(predicate, max_checks)
    if not budget.holds(test, capabilities):
        return ShrinkResult(test, capabilities, budget.checks, reduced=False)
    caps = capabilities
    reduced = False
    for _round in range(max_rounds):
        round_changed = False
        test, changed = _shrink_items(test, caps, budget)
        round_changed |= changed
        test, changed = _shrink_ops(test, caps, budget)
        round_changed |= changed
        caps, changed = _shrink_geometry(test, caps, budget)
        round_changed |= changed
        reduced |= round_changed
        if not round_changed:
            break
    if reduced:
        test = test.renamed("shrunk")
    return ShrinkResult(test, caps, budget.checks, reduced=reduced)
