"""Pseudo-ring testing (PRT) sessions: the golden stimulus expansion.

Bodean et al.'s pseudo-ring schemes ("New Schemes for Self-Testing
RAM"; "Pseudo-Ring Testing Schemes and Algorithms of RAM Built-In and
Embedded Self-Testing") reuse the memory under test *itself* as the
state register of a linear-feedback shift ring: the BIST engine only
needs a seed source, an address sequencer, a feedback XOR and a
signature compactor — the N-word array provides the N ring stages.  One
session has four phases:

1. **ring configuration / seed injection** — every ring position is
   written with a word from the seed LFSR, giving each of the W bit
   columns a pseudorandom, non-degenerate starting state;
2. **circulation passes** — per pass, the feedback word is gathered by
   reading the ring's tap positions (tap sets come from the verified
   maximal-length table of :mod:`repro.classic.pseudorandom` where the
   ring length has an entry), then one read-then-write sweep shifts
   every column one ring position down, injecting the feedback at
   position 0.  Every cell is read *and* rewritten with a
   pattern-dependent neighbour value each pass — a data-dependency
   workload no march element produces;
3. **signature readout** — a final read sweep feeds the MISR.

The whole session is a pure function of (configuration, geometry): the
expected value of every read comes from a shadow ring model, so the
stream is self-checking and rides the existing fault-capture, coverage
and conformance machinery unchanged.  Determinism per seed is fuzz
identity (j) in ``docs/TESTING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.classic.geometry import check_geometry
from repro.classic.pseudorandom import MAX_LFSR_WIDTH, Lfsr, Misr, lfsr_taps
from repro.conformance.trace import AttributedOp
from repro.core.controller import ControllerCapabilities
from repro.march.simulator import MemoryOperation

#: Width of the seed-injection LFSR (fixed, like the pseudorandom
#: test's data register: long period regardless of word width).
SEED_LFSR_WIDTH = 16


def ring_taps(n_words: int) -> Tuple[int, ...]:
    """Feedback tap *ring positions* for an ``n_words``-stage ring.

    Ring lengths with a verified maximal-length entry in the LFSR tap
    table use those tap positions (the ring then cycles through a
    maximal state sequence per column, the schemes' ideal); other
    lengths fall back to the two-tap ``{0, N-1}`` ring, which is still
    deterministic and still circulates every cell — only the state
    period is not guaranteed maximal.
    """
    check_geometry(n_words)
    if n_words <= MAX_LFSR_WIDTH:
        mask = lfsr_taps(n_words)
        return tuple(b for b in range(n_words) if (mask >> b) & 1)
    return (0, n_words - 1)


@dataclass(frozen=True)
class PrtConfig:
    """Parameters of one pseudo-ring session (geometry-independent).

    Attributes:
        passes: circulation passes between seed and readout.  The
            default 4 gives a ``10N + 4T`` session — March C's 10N
            budget, for a like-for-like comparison.
        seed: seed-LFSR initial state (non-zero, < 2^16).  The default
            is tuned for coverage: small seeds like 1 start the Galois
            register in a long zero-run, starving the ring of
            transitions.
        order: ring orientation — ``up`` maps ring position k to
            address k, ``down`` to address N-1-k (the address-order
            dual, analogous to march ⇑/⇓).
        misr_width: signature register width.
    """

    passes: int = 4
    seed: int = 0x2D5C
    order: str = "up"
    misr_width: int = 16

    def __post_init__(self) -> None:
        if self.passes < 1:
            raise ValueError(f"need at least one pass, got {self.passes}")
        if not 0 < self.seed < (1 << SEED_LFSR_WIDTH):
            raise ValueError(
                f"seed must be a non-zero {SEED_LFSR_WIDTH}-bit value, "
                f"got {self.seed}"
            )
        if self.order not in ("up", "down"):
            raise ValueError(f"order must be 'up' or 'down', got {self.order!r}")
        # Instantiating the registers validates the widths eagerly.
        Lfsr(SEED_LFSR_WIDTH, self.seed)
        Misr(self.misr_width)


class PrtSession:
    """One pseudo-ring test session, expandable per memory geometry.

    Mirrors :class:`~repro.march.test.MarchTest`'s role: the algorithm
    object the conformance and sweep machinery carries around, expanded
    against a :class:`~repro.core.controller.ControllerCapabilities` on
    demand.  ``notation`` is the stable human/store identity (what
    ``format_test`` is to march tests).
    """

    def __init__(self, config: PrtConfig = PrtConfig()) -> None:
        self.config = config

    @property
    def name(self) -> str:
        cfg = self.config
        return f"prt-{cfg.order}-p{cfg.passes}-s{cfg.seed}"

    @property
    def notation(self) -> str:
        cfg = self.config
        return (
            f"PRT(passes={cfg.passes},seed={cfg.seed},order={cfg.order})"
        )

    def __repr__(self) -> str:
        return f"PrtSession({self.notation})"

    def _address(self, n_words: int, position: int) -> int:
        if self.config.order == "up":
            return position
        return n_words - 1 - position

    def op_count(self, capabilities: ControllerCapabilities) -> int:
        """Session length: ``P·(N + passes·(T + 2N) + N)`` operations."""
        caps = capabilities
        taps = len(ring_taps(caps.n_words))
        per_port = (
            caps.n_words
            + self.config.passes * (taps + 2 * caps.n_words)
            + caps.n_words
        )
        return caps.ports * per_port

    def attributed_stream(
        self, capabilities: ControllerCapabilities
    ) -> List[AttributedOp]:
        """The golden session stream with per-phase owner attribution."""
        caps = capabilities
        check_geometry(caps.n_words, caps.width, caps.ports)
        cfg = self.config
        n = caps.n_words
        mask = (1 << caps.width) - 1
        taps = ring_taps(n)
        out: List[AttributedOp] = []
        for port in range(caps.ports):
            fill = Lfsr(SEED_LFSR_WIDTH, cfg.seed)
            shadow = [0] * n
            for pos in range(n):
                value = fill.value(caps.width) & mask
                shadow[pos] = value
                out.append(AttributedOp(
                    MemoryOperation(
                        port, self._address(n, pos), True, value=value
                    ),
                    f"port {port} seed pos {pos}",
                ))
            for ring_pass in range(cfg.passes):
                feedback = 0
                for tap in taps:
                    out.append(AttributedOp(
                        MemoryOperation(
                            port, self._address(n, tap), False,
                            expected=shadow[tap],
                        ),
                        f"port {port} pass {ring_pass} tap pos {tap}",
                    ))
                    feedback ^= shadow[tap]
                carry = feedback
                for pos in range(n):
                    value = shadow[pos]
                    out.append(AttributedOp(
                        MemoryOperation(
                            port, self._address(n, pos), False,
                            expected=value,
                        ),
                        f"port {port} pass {ring_pass} shift pos {pos} read",
                    ))
                    out.append(AttributedOp(
                        MemoryOperation(
                            port, self._address(n, pos), True, value=carry
                        ),
                        f"port {port} pass {ring_pass} shift pos {pos} write",
                    ))
                    shadow[pos] = carry
                    carry = value
            for pos in range(n):
                out.append(AttributedOp(
                    MemoryOperation(
                        port, self._address(n, pos), False,
                        expected=shadow[pos],
                    ),
                    f"port {port} readout pos {pos}",
                ))
        return out

    def operations(
        self, capabilities: ControllerCapabilities
    ) -> Iterator[MemoryOperation]:
        """The raw operation stream (owner attribution stripped)."""
        for attributed in self.attributed_stream(capabilities):
            yield attributed.op

    def predicted_signature(
        self, capabilities: ControllerCapabilities
    ) -> int:
        """The fault-free MISR signature of the readout phase(s)."""
        misr = Misr(self.config.misr_width)
        for attributed in self.attributed_stream(capabilities):
            op = attributed.op
            if not op.is_write and "readout" in attributed.owner:
                misr.absorb(op.expected)
        return misr.signature

    def signatures(
        self, memory, capabilities: ControllerCapabilities
    ) -> Tuple[int, int]:
        """Run the session on ``memory``: (predicted, observed) signatures.

        The BIST verdict of a signature-checked realisation — a mismatch
        is the fail flag.  The predicted side absorbs the shadow-model
        readout expectations, the observed side the memory's responses.
        """
        predicted = Misr(self.config.misr_width)
        observed = Misr(self.config.misr_width)
        for attributed in self.attributed_stream(capabilities):
            op = attributed.op
            if op.is_write:
                memory.write(op.port, op.address, op.value)
                continue
            response = memory.read(op.port, op.address)
            if "readout" in attributed.owner:
                predicted.absorb(op.expected)
                observed.absorb(response)
        return predicted.signature, observed.signature
