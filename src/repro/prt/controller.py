"""Behavioural pseudo-ring BIST controller realisation.

The march controllers in :mod:`repro.core` realise march algorithms;
this module realises the pseudo-ring scheme as the minimal engine the
Bodean papers describe: a phase FSM (seed → taps → shift → readout), a
position counter that doubles as the address generator, a seed LFSR, a
carry/feedback register pair and a MISR.  The memory under test is the
ring — the controller holds no per-cell state in hardware; the
``predict`` array below models the *signature-prediction software*
(exactly as :func:`repro.classic.pseudorandom.pseudorandom_test`'s
shadow does), which is what lets every read carry an expected value and
the stream ride the differential fault-conformance machinery.

The FSM is implemented cycle-by-cycle with explicit registers — a
structurally independent second implementation of the session spec, so
:func:`repro.conformance.faulty.check.check_fault_conformance` comparing
it op-for-op against :class:`repro.prt.session.PrtSession`'s nested-loop
expansion is a real differential check, not a tautology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.area.components import (
    Counter,
    HardwareSpec,
    LfsrRegister,
    LogicBlock,
    Register,
    XorArray,
)
from repro.classic.geometry import check_geometry
from repro.classic.pseudorandom import Lfsr, Misr, lfsr_taps
from repro.conformance.trace import AttributedOp
from repro.core.controller import ControllerCapabilities, Flexibility
from repro.core.datapath import PortSequencer, response_comparator_hardware
from repro.march.simulator import MemoryOperation
from repro.prt.session import SEED_LFSR_WIDTH, PrtConfig, ring_taps

#: Documented fixed estimate for the phase FSM's next-state/output
#: glue (6 phases, a handful of counter-terminal conditions) — the same
#: convention as the other tiny :class:`LogicBlock` entries.
PHASE_FSM_GE = 30.0

#: FSM phases, in session order.
PHASES = ("seed", "tap", "shift-read", "shift-write", "readout", "done")


@dataclass(frozen=True)
class PrtTraceEntry:
    """One controller cycle: the FSM phase and the operation it issued."""

    phase: str
    port: int
    position: int
    op: MemoryOperation


class PrtController:
    """Cycle-stepped pseudo-ring BIST engine for one geometry.

    Duck-compatible with the :func:`repro.eval.experiments` row builder
    (``architecture`` / ``flexibility`` / ``hardware()``); it is *not* a
    :class:`~repro.core.controller.BistController` — there is no loaded
    march test to report.
    """

    architecture = "Pseudo-Ring"
    #: One fixed scheme (seed/pass-count parameters, no algorithm
    #: programmability) — the paper's LOW grade, like the hardwired rows.
    flexibility = Flexibility.LOW

    def __init__(
        self,
        config: PrtConfig,
        capabilities: ControllerCapabilities,
    ) -> None:
        caps = capabilities
        check_geometry(caps.n_words, caps.width, caps.ports)
        self.config = config
        self.capabilities = caps
        self.taps = ring_taps(caps.n_words)
        self.signature: Optional[int] = None

    def _address(self, position: int) -> int:
        if self.config.order == "up":
            return position
        return self.capabilities.n_words - 1 - position

    def trace(self) -> Iterator[PrtTraceEntry]:
        """Step the FSM; one memory operation per yielded cycle.

        Consuming the full trace latches the observed-side-free
        predicted signature into :attr:`signature`.
        """
        cfg = self.config
        caps = self.capabilities
        n = caps.n_words
        mask = (1 << caps.width) - 1
        last_tap = len(self.taps) - 1
        misr = Misr(cfg.misr_width)
        port = 0
        while port < caps.ports:
            fill = Lfsr(SEED_LFSR_WIDTH, cfg.seed)
            predict = [0] * n
            phase = "seed"
            position = 0
            ring_pass = 0
            tap_ptr = 0
            feedback = 0
            carry = 0
            while phase != "done":
                if phase == "seed":
                    word = fill.value(caps.width) & mask
                    predict[position] = word
                    yield PrtTraceEntry(phase, port, position, MemoryOperation(
                        port, self._address(position), True, value=word
                    ))
                    if position == n - 1:
                        phase, position, tap_ptr, feedback = "tap", 0, 0, 0
                    else:
                        position += 1
                elif phase == "tap":
                    tap = self.taps[tap_ptr]
                    yield PrtTraceEntry(phase, port, tap, MemoryOperation(
                        port, self._address(tap), False, expected=predict[tap]
                    ))
                    feedback ^= predict[tap]
                    if tap_ptr == last_tap:
                        phase, position, carry = "shift-read", 0, feedback
                    else:
                        tap_ptr += 1
                elif phase == "shift-read":
                    yield PrtTraceEntry(phase, port, position, MemoryOperation(
                        port, self._address(position), False,
                        expected=predict[position],
                    ))
                    phase = "shift-write"
                elif phase == "shift-write":
                    yield PrtTraceEntry(phase, port, position, MemoryOperation(
                        port, self._address(position), True, value=carry
                    ))
                    outgoing = predict[position]
                    predict[position] = carry
                    carry = outgoing
                    if position == n - 1:
                        ring_pass += 1
                        if ring_pass == cfg.passes:
                            phase, position = "readout", 0
                        else:
                            phase, tap_ptr, feedback = "tap", 0, 0
                    else:
                        position += 1
                        phase = "shift-read"
                else:  # readout
                    expected = predict[position]
                    misr.absorb(expected)
                    yield PrtTraceEntry(phase, port, position, MemoryOperation(
                        port, self._address(position), False,
                        expected=expected,
                    ))
                    if position == n - 1:
                        phase = "done"
                    else:
                        position += 1
            port += 1
        self.signature = misr.signature

    def attributed_stream(self) -> List[AttributedOp]:
        """The controller's stream, attributed to FSM phase and cycle."""
        out: List[AttributedOp] = []
        for entry in self.trace():
            out.append(AttributedOp(
                entry.op,
                f"prt-ctl port {entry.port} {entry.phase} "
                f"pos {entry.position}",
            ))
        return out

    def hardware(self) -> HardwareSpec:
        """Structural inventory of the pseudo-ring engine.

        No background generator and no program storage: the address
        counter doubles as the ring position sequencer and the memory
        array is the state register — the area story the PRT papers
        sell, checkable against the march controllers in Tables 1/2.
        """
        cfg = self.config
        caps = self.capabilities
        address_bits = max(1, math.ceil(math.log2(max(2, caps.n_words))))
        spec = HardwareSpec(
            name=(
                f"pseudo-ring PRT controller ({caps.n_words} words x "
                f"{caps.width} bits x {caps.ports} ports)"
            ),
            notes=(
                "phase FSM + seed LFSR + carry/feedback pair + MISR; "
                "the memory under test provides the ring stages"
            ),
        )
        spec.add(Register("prt/phase register", 3))
        spec.add(LogicBlock("prt/phase next-state logic", PHASE_FSM_GE))
        spec.add(Counter(
            "prt/position counter", address_bits, up_down=True,
            loadable=True,
        ))
        spec.add(Counter(
            "prt/pass counter", max(1, cfg.passes.bit_length())
        ))
        if len(self.taps) > 1:
            spec.add(Counter(
                "prt/tap pointer",
                max(1, (len(self.taps) - 1).bit_length()),
            ))
        spec.add(LfsrRegister(
            "prt/seed lfsr", SEED_LFSR_WIDTH,
            taps=bin(lfsr_taps(SEED_LFSR_WIDTH)).count("1"),
        ))
        spec.add(Register("prt/carry register", caps.width))
        spec.add(Register("prt/feedback register", caps.width))
        spec.add(XorArray("prt/feedback xor", caps.width))
        spec.add(LfsrRegister(
            "prt/misr", cfg.misr_width,
            taps=bin(lfsr_taps(cfg.misr_width)).count("1"), misr=True,
        ))
        spec.extend(PortSequencer(caps.ports).hardware())
        spec.extend(response_comparator_hardware(caps.width))
        return spec
