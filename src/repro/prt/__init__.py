"""Pseudo-ring testing (PRT): a non-march first-class stimulus family.

The memory under test is configured as a linear-feedback shift ring and
circulated; see :mod:`repro.prt.session` for the scheme and
:mod:`repro.prt.controller` for the engine realisation.  The family
plugs into the shared machinery: fault sweeps
(:func:`repro.conformance.faulty.check.check_fault_conformance`
dispatches on :class:`PrtSession`), the stream corpus, coverage
evaluation vs the march library (:mod:`repro.eval.prt_study`), the area
model and fuzz identity (j).
"""

from repro.prt.controller import PrtController, PrtTraceEntry
from repro.prt.session import PrtConfig, PrtSession, ring_taps

#: The default session pair the corpus and CI sweeps pin: the tuned
#: canonical up-ring and a shorter seeded down-ring (the address-order
#: dual).
PRT_RING_UP = PrtSession(PrtConfig())
PRT_RING_DOWN = PrtSession(PrtConfig(passes=3, seed=0xACE1, order="down"))

__all__ = [
    "PRT_RING_DOWN",
    "PRT_RING_UP",
    "PrtConfig",
    "PrtController",
    "PrtSession",
    "PrtTraceEntry",
    "ring_taps",
]
