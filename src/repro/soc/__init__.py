"""SoC-level BIST planning: sharing one programmable controller.

The paper's introduction argues that programmable MBIST "could be used
to test memories in different stages of their fabrication and therefore
result in lower overall memory test logic overhead", and that comparing
architectures on a single test "might not truly reveal the overhead of
one architecture over another".  This package makes that argument
quantitative:

* :class:`~repro.soc.plan.MemoryRequirement` — one embedded memory plus
  the set of algorithms its fabrication stages need;
* :mod:`~repro.soc.strategies` — the candidate test-logic strategies
  (hardwired controller per test, hardwired superset controller,
  per-memory programmable controllers, one shared programmable
  controller);
* :class:`~repro.soc.plan.SocBistStudy` — costs every strategy in area
  and test time over a memory portfolio.
"""

from repro.soc.plan import MemoryRequirement, SocBistStudy, StrategyResult
from repro.soc.strategies import (
    HardwiredPerTest,
    HardwiredSuperset,
    PerMemoryProgrammable,
    SharedProgrammable,
    Strategy,
)

__all__ = [
    "HardwiredPerTest",
    "HardwiredSuperset",
    "MemoryRequirement",
    "PerMemoryProgrammable",
    "SharedProgrammable",
    "SocBistStudy",
    "Strategy",
    "StrategyResult",
]
