"""SoC memory portfolio description and the strategy comparison study."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.area.technology import IBM_CMOS5S, Technology
from repro.march.simulator import operation_count
from repro.march.test import MarchTest


@dataclass(frozen=True)
class MemoryRequirement:
    """One embedded memory and the algorithms its test plan needs.

    A realistic plan runs different algorithms at different fabrication
    stages — e.g. a fast March C at wafer sort, March C+ (retention) at
    package test, March C++ at burn-in.  Non-programmable BIST must pay
    for that diversity in hardware or in test time; programmable BIST
    reloads.

    Attributes:
        name: instance name (for breakdowns).
        n_words / width / ports: geometry.
        tests: the algorithms the test plan requires, in stage order.
    """

    name: str
    n_words: int
    width: int = 1
    ports: int = 1
    tests: Tuple[MarchTest, ...] = ()

    def __post_init__(self) -> None:
        if not self.tests:
            raise ValueError(f"memory {self.name!r} needs at least one test")

    @property
    def superset_test(self) -> MarchTest:
        """The most capable (longest) required algorithm."""
        return max(self.tests, key=lambda t: t.operation_count)

    def stage_operations(self, test: MarchTest) -> int:
        """Operations for one full run of ``test`` on this memory."""
        return operation_count(test, self.n_words, self.width, self.ports)


@dataclass(frozen=True)
class StrategyResult:
    """Costed outcome of one strategy over a memory portfolio.

    Attributes:
        strategy: strategy name.
        total_ge: total test-logic area (gate equivalents).
        area_um2: the same under the technology calibration.
        total_operations: memory operations summed over every required
            stage run of every memory (test *work*).
        makespan_operations: wall-clock test length in operations —
            per-memory controllers run concurrently (max over memories),
            a shared controller tests memories serially (sum).
        breakdown: per-item (label, GE) rows.
    """

    strategy: str
    total_ge: float
    area_um2: float
    total_operations: int
    makespan_operations: int
    breakdown: Tuple[Tuple[str, float], ...]

    def __str__(self) -> str:
        return (
            f"{self.strategy}: {self.total_ge:.0f} GE, "
            f"{self.total_operations} ops total, "
            f"makespan {self.makespan_operations} ops"
        )


class SocBistStudy:
    """Compare BIST test-logic strategies over a memory portfolio.

    Args:
        memories: the SoC's embedded memories and their test plans.
        tech: area calibration (defaults to the IBM CMOS5S model).
    """

    def __init__(
        self,
        memories: Sequence[MemoryRequirement],
        tech: Optional[Technology] = None,
    ) -> None:
        if not memories:
            raise ValueError("the study needs at least one memory")
        names = [m.name for m in memories]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate memory names: {names}")
        self.memories = list(memories)
        self.tech = tech or IBM_CMOS5S

    def run(self, strategies: Optional[Sequence] = None) -> List[StrategyResult]:
        """Cost every strategy; defaults to all four built-ins."""
        from repro.soc.strategies import default_strategies

        chosen = list(strategies) if strategies is not None else default_strategies()
        return [strategy.evaluate(self.memories, self.tech) for strategy in chosen]

    def render(self, results: Optional[List[StrategyResult]] = None) -> str:
        """Text table of the comparison."""
        results = results if results is not None else self.run()
        width = max(len(r.strategy) for r in results)
        lines = [
            f"{'strategy':<{width}}  {'area GE':>9}  {'area um^2':>11}  "
            f"{'total ops':>12}  {'makespan':>12}"
        ]
        for result in results:
            lines.append(
                f"{result.strategy:<{width}}  {result.total_ge:>9.0f}  "
                f"{result.area_um2:>11.0f}  {result.total_operations:>12d}  "
                f"{result.makespan_operations:>12d}"
            )
        return "\n".join(lines)
