"""Test-logic strategies for a portfolio of embedded memories.

Cost model conventions (shared by all strategies so the comparison is
apples-to-apples):

* every memory always keeps its own *datapath* (address generator, data
  generator, comparator, port sequencer) — it is wired to the array and
  cannot meaningfully be shared across distant macros;
* a *controller* (sequencing logic + any program storage) can be
  duplicated per test, instantiated per memory, or shared chip-wide;
* sharing one controller adds a small per-memory interface (the
  controller's command/response wiring is multiplexed across macros) and
  serialises testing (one memory at a time), which the makespan column
  reports.

Test-time accounting: every memory runs each algorithm of its test plan
once (one run per fabrication stage).  The hardwired-superset strategy
runs its single fixed algorithm at *every* stage — the hidden test-time
cost of avoiding per-test controllers without programmability.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from repro.area.components import Mux
from repro.area.estimator import estimate
from repro.area.technology import Technology
from repro.core.controller import ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController, assemble
from repro.core.datapath import shared_datapath_hardware
from repro.soc.plan import MemoryRequirement, StrategyResult


def _datapath_ge(memory: MemoryRequirement, tech: Technology) -> float:
    components = shared_datapath_hardware(memory.n_words, memory.width,
                                          memory.ports)
    return sum(c.gate_equivalents(tech) for c in components)


def _controller_only_ge(controller, tech: Technology) -> float:
    """Controller logic excluding the per-memory datapath blocks."""
    report = estimate(controller.hardware(), tech)
    return report.component_ge("controller/")


def _caps(memory: MemoryRequirement) -> ControllerCapabilities:
    return ControllerCapabilities(
        n_words=memory.n_words, width=memory.width, ports=memory.ports
    )


class Strategy(abc.ABC):
    """A way of provisioning BIST logic for a memory portfolio."""

    name: str = "?"

    @abc.abstractmethod
    def evaluate(
        self, memories: Sequence[MemoryRequirement], tech: Technology
    ) -> StrategyResult:
        """Cost the strategy over the portfolio."""

    def _result(
        self,
        breakdown: List[Tuple[str, float]],
        total_operations: int,
        makespan: int,
        tech: Technology,
    ) -> StrategyResult:
        total = sum(ge for _, ge in breakdown)
        return StrategyResult(
            strategy=self.name,
            total_ge=total,
            area_um2=tech.to_um2(total),
            total_operations=total_operations,
            makespan_operations=makespan,
            breakdown=tuple(breakdown),
        )


class HardwiredPerTest(Strategy):
    """One dedicated hardwired controller per (memory, required test).

    Minimal logic per controller, but the controllers multiply with the
    test plan — the configuration the paper argues "might not truly
    reveal the overhead" comparisons miss.
    """

    name = "hardwired per test"

    def evaluate(self, memories, tech):
        breakdown: List[Tuple[str, float]] = []
        per_memory_time: List[int] = []
        total_operations = 0
        for memory in memories:
            breakdown.append((f"{memory.name}/datapath", _datapath_ge(memory, tech)))
            stage_ops = 0
            for test in memory.tests:
                controller = HardwiredBistController(test, _caps(memory))
                breakdown.append(
                    (
                        f"{memory.name}/hardwired {test.name}",
                        _controller_only_ge(controller, tech),
                    )
                )
                stage_ops += memory.stage_operations(test)
            total_operations += stage_ops
            per_memory_time.append(stage_ops)
        return self._result(
            breakdown, total_operations, max(per_memory_time), tech
        )


class HardwiredSuperset(Strategy):
    """One hardwired controller per memory, fixed to the most capable
    required algorithm, run at every stage.

    Saves controllers but pays in test time: the fast wafer-sort stage
    runs the full burn-in algorithm.
    """

    name = "hardwired superset"

    def evaluate(self, memories, tech):
        breakdown: List[Tuple[str, float]] = []
        per_memory_time: List[int] = []
        total_operations = 0
        for memory in memories:
            superset = memory.superset_test
            controller = HardwiredBistController(superset, _caps(memory))
            breakdown.append((f"{memory.name}/datapath", _datapath_ge(memory, tech)))
            breakdown.append(
                (
                    f"{memory.name}/hardwired {superset.name}",
                    _controller_only_ge(controller, tech),
                )
            )
            stage_ops = memory.stage_operations(superset) * len(memory.tests)
            total_operations += stage_ops
            per_memory_time.append(stage_ops)
        return self._result(
            breakdown, total_operations, max(per_memory_time), tech
        )


class PerMemoryProgrammable(Strategy):
    """One microcode-based controller per memory (scan-only storage),
    reloaded per stage.

    Makespan includes the per-stage program reload latency (the slow
    scan clock of scan-only cells, see
    :meth:`repro.core.microcode.storage.StorageUnit.scan_load_cycles`) —
    which the numbers show to be negligible against the test itself.
    """

    name = "programmable per memory"

    def evaluate(self, memories, tech):
        breakdown: List[Tuple[str, float]] = []
        per_memory_time: List[int] = []
        total_operations = 0
        for memory in memories:
            caps = _caps(memory)
            rows = max(
                len(assemble(test, caps).instructions) for test in memory.tests
            )
            controller = MicrocodeBistController(
                memory.tests[0], caps, storage_rows=max(rows, 2),
                storage_cell="scan_only",
            )
            breakdown.append((f"{memory.name}/datapath", _datapath_ge(memory, tech)))
            breakdown.append(
                (
                    f"{memory.name}/microcode controller",
                    _controller_only_ge(controller, tech),
                )
            )
            stage_ops = sum(memory.stage_operations(t) for t in memory.tests)
            reloads = len(memory.tests) * controller.storage.scan_load_cycles()
            total_operations += stage_ops
            per_memory_time.append(stage_ops + reloads)
        return self._result(
            breakdown, total_operations, max(per_memory_time), tech
        )


class SharedProgrammable(Strategy):
    """One chip-level microcode controller shared by every memory.

    The controller is sized for the worst-case geometry and program; each
    memory keeps its datapath plus a small command/response interface
    mux.  Testing is serialised across memories.
    """

    name = "shared programmable"

    #: Per-memory interface overhead beyond the mux: enable/ready glue.
    INTERFACE_GLUE_GE = 6.0

    def evaluate(self, memories, tech):
        breakdown: List[Tuple[str, float]] = []
        shared_caps = ControllerCapabilities(
            n_words=max(m.n_words for m in memories),
            width=max(m.width for m in memories),
            ports=max(m.ports for m in memories),
        )
        rows = 2
        for memory in memories:
            for test in memory.tests:
                rows = max(
                    rows, len(assemble(test, _caps(memory)).instructions)
                )
        controller = MicrocodeBistController(
            memories[0].tests[0], shared_caps, storage_rows=rows,
            storage_cell="scan_only",
        )
        breakdown.append(
            ("shared/microcode controller", _controller_only_ge(controller, tech))
        )
        total_operations = 0
        reload_cycles = 0
        for memory in memories:
            breakdown.append((f"{memory.name}/datapath", _datapath_ge(memory, tech)))
            interface = Mux(f"{memory.name}/interface mux", 2, memory.width + 2)
            breakdown.append(
                (
                    f"{memory.name}/controller interface",
                    interface.gate_equivalents(tech) + self.INTERFACE_GLUE_GE,
                )
            )
            total_operations += sum(
                memory.stage_operations(t) for t in memory.tests
            )
            reload_cycles += (
                len(memory.tests) * controller.storage.scan_load_cycles()
            )
        # One controller: memories are tested one after another, and
        # every (memory, stage) pair pays one slow-clock program reload.
        return self._result(
            breakdown, total_operations, total_operations + reload_cycles, tech
        )


def default_strategies() -> List[Strategy]:
    """The four built-in strategies, in report order."""
    return [
        HardwiredPerTest(),
        HardwiredSuperset(),
        PerMemoryProgrammable(),
        SharedProgrammable(),
    ]
