"""Measured flexibility of each BIST architecture.

The paper grades flexibility qualitatively (HIGH / MEDIUM / LOW); this
module *measures* it: for every algorithm in the library, can each
architecture realise it without hardware change?

* microcode-based — realisable iff it assembles (it always does for
  march algorithms with power-of-two pauses) *and* fits the storage
  depth;
* programmable FSM-based — realisable iff every element matches an
  SM0–SM7 pattern;
* hardwired — realises exactly its one algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import AssemblyError, assemble
from repro.core.microcode.storage import DEFAULT_ROWS
from repro.core.progfsm.compiler import CompileError, compile_to_sm
from repro.march import library
from repro.march.test import MarchTest


@dataclass(frozen=True)
class FlexibilityRecord:
    """Realisability of one algorithm on one architecture."""

    architecture: str
    algorithm: str
    realizable: bool
    reason: str = ""


def microcode_realizable(
    test: MarchTest,
    capabilities: ControllerCapabilities,
    storage_rows: Optional[int] = None,
) -> Tuple[bool, str]:
    """Whether the microcode architecture realises ``test``.

    With ``storage_rows`` set, programs longer than the storage are
    rejected — the realistic constraint for a fixed silicon instance.
    """
    try:
        program = assemble(test, capabilities)
    except AssemblyError as error:
        return False, str(error)
    if storage_rows is not None and len(program.instructions) > storage_rows:
        return False, (
            f"program needs {len(program.instructions)} rows, storage has "
            f"{storage_rows}"
        )
    return True, f"{len(program.instructions)} microcode rows"


def progfsm_realizable(
    test: MarchTest, capabilities: ControllerCapabilities
) -> Tuple[bool, str]:
    """Whether the programmable FSM architecture realises ``test``."""
    try:
        program = compile_to_sm(test, capabilities)
    except CompileError as error:
        return False, str(error)
    return True, f"{len(program.instructions)} SM instructions"


def flexibility_matrix(
    capabilities: Optional[ControllerCapabilities] = None,
    storage_rows: Optional[int] = None,
    algorithms: Optional[List[MarchTest]] = None,
) -> List[FlexibilityRecord]:
    """Realisability of every library algorithm on both programmable
    architectures (hardwired rows are trivially one-algorithm).

    Args:
        capabilities: geometry context; defaults to a 1 K bit-oriented
            single-port memory.
        storage_rows: optional microcode storage constraint; ``None``
            allows auto-grown storage (pure ISA flexibility).
        algorithms: algorithm set; defaults to the full library.
    """
    capabilities = capabilities or ControllerCapabilities(n_words=1024)
    algorithms = algorithms or list(library.ALGORITHMS.values())
    records: List[FlexibilityRecord] = []
    for test in algorithms:
        ok, reason = microcode_realizable(test, capabilities, storage_rows)
        records.append(
            FlexibilityRecord("Microcode-Based", test.name, ok, reason)
        )
        ok, reason = progfsm_realizable(test, capabilities)
        records.append(
            FlexibilityRecord("Prog. FSM-Based", test.name, ok, reason)
        )
    return records


def summarize(records: List[FlexibilityRecord]) -> Dict[str, Tuple[int, int]]:
    """(realizable, total) per architecture."""
    summary: Dict[str, Tuple[int, int]] = {}
    for record in records:
        done, total = summary.get(record.architecture, (0, 0))
        summary[record.architecture] = (
            done + (1 if record.realizable else 0),
            total + 1,
        )
    return summary
