"""Evaluation harness: the paper's experiments as callable drivers.

* :mod:`~repro.eval.experiments` — Table 1 (bit-oriented single-port),
  Table 2 (word-oriented and multiport) and Table 3 (scan-only storage
  redesign) drivers;
* :mod:`~repro.eval.flexibility` — which library algorithms each
  architecture can realise (the Table 1 "Flex." column, measured);
* :mod:`~repro.eval.tables` — text rendering in the paper's row order.

Run from the command line::

    python -m repro.eval table1
    python -m repro.eval table2
    python -m repro.eval table3
    python -m repro.eval flexibility
"""

from repro.eval.experiments import (
    DEFAULT_GEOMETRY,
    Table1Row,
    table1,
    table2,
    table3,
)
from repro.eval.flexibility import flexibility_matrix
from repro.eval.tables import render_table1, render_table2, render_table3

__all__ = [
    "DEFAULT_GEOMETRY",
    "Table1Row",
    "flexibility_matrix",
    "render_table1",
    "render_table2",
    "render_table3",
    "table1",
    "table2",
    "table3",
]
