"""Table 1/2/3 experiment drivers.

Each driver instantiates the same eight designs the paper evaluates —
the two proposed programmable controllers plus six hardwired baselines
(March C / C+ / C++ / A / A+ / A++) — for a memory geometry, costs them
through the structural area model, and returns rows in the paper's
order.  Absolute values depend on the technology calibration; the
*relations* between rows (the paper's actual findings R1–R5, see
DESIGN.md) are calibration-independent and are asserted by the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.area.estimator import AreaReport, estimate
from repro.area.technology import IBM_CMOS5S, Technology
from repro.core.controller import BistController, ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.progfsm import ProgrammableFsmBistController
from repro.march import library

#: Memory geometry of the experiments: a 1 K-address embedded SRAM.
DEFAULT_GEOMETRY = {"n_words": 1024}
#: Word width of the Table 2 word-oriented configuration.
WORD_WIDTH = 8
#: Port count of the Table 2 multiport configuration.
MULTIPORT_PORTS = 2


@dataclass(frozen=True)
class Table1Row:
    """One row of a Table-1-style comparison.

    Attributes:
        method: design name (architecture or hardwired algorithm).
        flexibility: HIGH / MEDIUM / LOW grade.
        gate_equivalents: internal area (2-input-NAND equivalents).
        area_um2: size under the technology calibration.
    """

    method: str
    flexibility: str
    gate_equivalents: float
    area_um2: float


def _row(controller: BistController, name: Optional[str] = None,
         tech: Optional[Technology] = None) -> Table1Row:
    report = estimate(controller.hardware(), tech or IBM_CMOS5S)
    return Table1Row(
        method=name or controller.architecture,
        flexibility=controller.flexibility.value,
        gate_equivalents=report.gate_equivalents,
        area_um2=report.area_um2,
    )


def _designs(
    capabilities: ControllerCapabilities,
    storage_cell: str = "scan_dff",
    include_prt: bool = False,
) -> List[Tuple[str, BistController]]:
    """The eight designs of the paper's tables, in row order.

    Both programmable controllers are loaded with March C (the loaded
    program does not change programmable hardware; the hardwired rows
    *are* their algorithms).  ``include_prt`` appends the pseudo-ring
    engine of :mod:`repro.prt` as a ninth, non-paper row — opt-in so
    the paper's pinned eight-row tables stay byte-stable.
    """
    designs: List[Tuple[str, BistController]] = [
        (
            "Microcode-Based",
            MicrocodeBistController(
                library.MARCH_C, capabilities, storage_cell=storage_cell
            ),
        ),
        (
            "Prog. FSM-Based",
            ProgrammableFsmBistController(library.MARCH_C, capabilities),
        ),
    ]
    for test in library.PAPER_BASELINES:
        designs.append(
            (test.name, HardwiredBistController(test, capabilities))
        )
    if include_prt:
        from repro.prt import PrtConfig, PrtController

        designs.append(
            ("Pseudo-Ring PRT", PrtController(PrtConfig(), capabilities))
        )
    return designs


def table1(
    n_words: int = DEFAULT_GEOMETRY["n_words"],
    tech: Optional[Technology] = None,
    include_prt: bool = False,
) -> List[Table1Row]:
    """Table 1: controller sizes for bit-oriented single-port memories."""
    capabilities = ControllerCapabilities(n_words=n_words, width=1, ports=1)
    return [
        _row(controller, name, tech)
        for name, controller in _designs(
            capabilities, include_prt=include_prt
        )
    ]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: word-oriented and multiport extensions."""

    method: str
    word_ge: float
    word_um2: float
    multiport_ge: float
    multiport_um2: float


def table2(
    n_words: int = DEFAULT_GEOMETRY["n_words"],
    width: int = WORD_WIDTH,
    ports: int = MULTIPORT_PORTS,
    tech: Optional[Technology] = None,
    include_prt: bool = False,
) -> List[Table2Row]:
    """Table 2: the same designs extended for word-oriented and
    multiport memories (two configurations per row, as in the paper)."""
    word_caps = ControllerCapabilities(n_words=n_words, width=width, ports=1)
    multi_caps = ControllerCapabilities(n_words=n_words, width=1, ports=ports)
    rows: List[Table2Row] = []
    word_rows = {
        n: _row(c, n, tech)
        for n, c in _designs(word_caps, include_prt=include_prt)
    }
    multi_rows = {
        n: _row(c, n, tech)
        for n, c in _designs(multi_caps, include_prt=include_prt)
    }
    for name in word_rows:
        rows.append(
            Table2Row(
                method=name,
                word_ge=word_rows[name].gate_equivalents,
                word_um2=word_rows[name].area_um2,
                multiport_ge=multi_rows[name].gate_equivalents,
                multiport_um2=multi_rows[name].area_um2,
            )
        )
    return rows


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3: the scan-only storage redesign."""

    configuration: str
    gate_equivalents: float
    area_um2: float
    baseline_ge: float
    reduction_percent: float


def table3(
    n_words: int = DEFAULT_GEOMETRY["n_words"],
    width: int = WORD_WIDTH,
    ports: int = MULTIPORT_PORTS,
    tech: Optional[Technology] = None,
) -> List[Table3Row]:
    """Table 3: microcode controller rebuilt with scan-only storage
    cells, for the bit-oriented, word-oriented and multiport
    configurations; the reduction column compares against the full-scan
    storage of Tables 1/2."""
    configurations = [
        ("Bit-Oriented", ControllerCapabilities(n_words=n_words, width=1, ports=1)),
        ("Word-Oriented", ControllerCapabilities(n_words=n_words, width=width, ports=1)),
        ("Multiport", ControllerCapabilities(n_words=n_words, width=1, ports=ports)),
    ]
    rows: List[Table3Row] = []
    for label, capabilities in configurations:
        adjusted = estimate(
            MicrocodeBistController(
                library.MARCH_C, capabilities, storage_cell="scan_only"
            ).hardware(),
            tech or IBM_CMOS5S,
        )
        baseline = estimate(
            MicrocodeBistController(
                library.MARCH_C, capabilities, storage_cell="scan_dff"
            ).hardware(),
            tech or IBM_CMOS5S,
        )
        reduction = 100.0 * (
            1.0 - adjusted.gate_equivalents / baseline.gate_equivalents
        )
        rows.append(
            Table3Row(
                configuration=label,
                gate_equivalents=adjusted.gate_equivalents,
                area_um2=adjusted.area_um2,
                baseline_ge=baseline.gate_equivalents,
                reduction_percent=reduction,
            )
        )
    return rows
