"""Library-wide fault-coverage matrix.

The classic textbook table — every march algorithm versus every fault
class — reproduced by measurement over the standard fault universe.
This is the evidence behind the paper's premise that different test
requirements (production, retention screening, burn-in, diagnostics)
need different algorithms, and therefore benefit from a programmable
controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.universe import standard_universe
from repro.march import library
from repro.march.coverage import CoverageReport, evaluate_coverage
from repro.march.test import MarchTest

#: Fault-class columns, in report order.
COVERAGE_COLUMNS = (
    "SAF", "TF", "AF", "CFin", "CFid", "CFst", "IRF", "RDF", "DRDF",
    "SOF", "DRF",
)

#: Default algorithm rows (ordered by operation count).
DEFAULT_ALGORITHMS = (
    "Zero-One", "MATS", "MATS+", "MATS++", "March X", "March Y",
    "March C", "PMOVI", "March LR", "March A", "March B",
    "March C+", "March A+", "March G", "March C++", "March A++",
)


@dataclass(frozen=True)
class CoverageRow:
    """One algorithm's measured coverage per fault class (percent).

    A class percentage of ``None`` means the swept universe held no
    fault of that class (0/0) — rendered ``n/a``, never 100.

    ``escapes`` lists every undetected fault as a portable spec string
    (:func:`repro.faults.spec.format_fault`, with a tagged
    ``unspec:…`` fallback for inexpressible faults).
    """

    algorithm: str
    complexity: str
    by_class: Tuple[Tuple[str, Optional[float]], ...]
    overall: float
    escapes: Tuple[str, ...] = ()

    def percent(self, column: str) -> Optional[float]:
        return dict(self.by_class)[column]

    def to_json(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "complexity": self.complexity,
            "by_class": {column: value for column, value in self.by_class},
            "overall_percent": round(self.overall, 2),
            "escapes": list(self.escapes),
        }


def _column_coverage(
    report: CoverageReport, column: str
) -> Optional[float]:
    """Percent coverage of one report column; None for an empty (0/0)
    column — the caller renders it ``n/a`` instead of a vacuous 100."""
    if column == "AF":
        kinds = ("AF1", "AF2", "AF3", "AF4")
    else:
        kinds = (column,)
    detected = sum(report.detected.get(kind, 0) for kind in kinds)
    total = sum(report.total.get(kind, 0) for kind in kinds)
    return 100.0 * detected / total if total else None


def coverage_table(
    n_words: int = 8,
    algorithms: Optional[Sequence[str]] = None,
) -> List[CoverageRow]:
    """Measure the full algorithm × fault-class matrix.

    Args:
        n_words: memory size for the sweep (small sizes suffice — march
            coverage properties are size-independent).
        algorithms: algorithm names; defaults to the library ordered by
            operation count.
    """
    universe = standard_universe(n_words, include_npsf=False)
    rows: List[CoverageRow] = []
    for name in algorithms or DEFAULT_ALGORITHMS:
        test = library.get(name)
        report = evaluate_coverage(test, universe, n_words)
        by_class = tuple(
            (column, _column_coverage(report, column))
            for column in COVERAGE_COLUMNS
        )
        rows.append(
            CoverageRow(
                algorithm=test.name,
                complexity=test.complexity,
                by_class=by_class,
                overall=100.0 * report.overall,
                escapes=tuple(report.escape_specs()),
            )
        )
    return rows


def render_coverage_table(rows: List[CoverageRow]) -> str:
    """Text rendering of the coverage matrix (``n/a`` for 0/0 columns)."""
    header = f"{'algorithm':<12} {'ops':>5} " + " ".join(
        f"{column:>5}" for column in COVERAGE_COLUMNS
    ) + f" {'all':>6}"
    lines = ["Measured fault coverage (%) over the standard universe", header]
    for row in rows:
        cells = " ".join(
            f"{row.percent(column):>5.0f}"
            if row.percent(column) is not None
            else f"{'n/a':>5}"
            for column in COVERAGE_COLUMNS
        )
        lines.append(
            f"{row.algorithm:<12} {row.complexity:>5} {cells} "
            f"{row.overall:>6.1f}"
        )
    return "\n".join(lines)
