"""Text rendering of the experiment tables, in the paper's layout."""

from __future__ import annotations

from typing import List

from repro.eval.experiments import Table1Row, Table2Row, Table3Row


def render_table1(rows: List[Table1Row]) -> str:
    """Table 1: Size of the Memory BIST Methodology for Bit-Oriented and
    Single-Port Memories."""
    lines = [
        "Table 1. Size of the Memory BIST Methodology",
        "For Bit-Oriented and Single-Port Memories",
        f"{'Method':<18} {'Flex.':<8} {'Int. Area':>10} {'Size um^2':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.method:<18} {row.flexibility:<8} "
            f"{row.gate_equivalents:>10.0f} {row.area_um2:>12.0f}"
        )
    return "\n".join(lines)


def render_table2(rows: List[Table2Row]) -> str:
    """Table 2: Size of the Memory BIST Methodology for Word-Oriented and
    Multiport Memories."""
    lines = [
        "Table 2. Size of the Memory BIST Methodology",
        "For Word-Oriented and Multiport Memories",
        f"{'Method':<18} {'Word Int.A.':>11} {'Word um^2':>11} "
        f"{'Multi Int.A.':>12} {'Multi um^2':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.method:<18} {row.word_ge:>11.0f} {row.word_um2:>11.0f} "
            f"{row.multiport_ge:>12.0f} {row.multiport_um2:>11.0f}"
        )
    return "\n".join(lines)


def render_table3(rows: List[Table3Row]) -> str:
    """Table 3: Adjusted Size of the Microcode-Based Controller."""
    lines = [
        "Table 3. Adjusted Size of Microcode-Based Controller",
        f"{'Method':<15} {'Adj. Int. Area':>14} {'Adj. Size um^2':>15} "
        f"{'Reduction':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.configuration:<15} {row.gate_equivalents:>14.0f} "
            f"{row.area_um2:>15.0f} {row.reduction_percent:>9.1f}%"
        )
    return "\n".join(lines)
