"""Test-time accounting: operations and wall-clock per algorithm.

Production test time is money; this module converts operation counts
into tester seconds at a BIST clock and tabulates the library (plus the
classical O(N²) tests for contrast) across memory sizes — the numbers a
test engineer trades against the coverage matrix when building a stage
plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.classic import galpat_op_count, walking_op_count
from repro.march import library
from repro.march.simulator import operation_count
from repro.march.test import MarchTest

#: Default BIST clock for wall-clock conversion (a modest embedded
#: memory clock for the paper's 0.35 µm era).
DEFAULT_CLOCK_MHZ = 100.0


@dataclass(frozen=True)
class TestTimeRow:
    """Test time of one algorithm at one geometry.

    Attributes:
        algorithm: algorithm name.
        operations: total memory operations (pauses excluded; their idle
            time is reported separately).
        pause_time_units: retention idle time (march pauses).
        milliseconds: wall clock at the configured BIST clock, one
            operation per cycle plus the pause idle cycles.
    """

    algorithm: str
    operations: int
    pause_time_units: int
    milliseconds: float


def march_test_time(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
) -> TestTimeRow:
    """Test time of one march algorithm at one geometry."""
    from repro.march.backgrounds import background_count

    operations = operation_count(test, n_words, width, ports)
    repeats = background_count(width) * ports
    pause_units = sum(pause.duration for pause in test.pauses) * repeats
    cycles = operations + pause_units
    milliseconds = cycles / (clock_mhz * 1e3)
    return TestTimeRow(
        algorithm=test.name,
        operations=operations - repeats * len(test.pauses),
        pause_time_units=pause_units,
        milliseconds=milliseconds,
    )


def test_time_table(
    n_words: int,
    width: int = 1,
    ports: int = 1,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
    algorithms: Optional[Sequence[str]] = None,
    include_classical: bool = True,
) -> List[TestTimeRow]:
    """Test-time rows for the library (and the classical tests)."""
    names = algorithms or [
        "MATS++", "March C", "PMOVI", "March LR", "March A",
        "March C+", "March C++", "March A++",
    ]
    rows = [
        march_test_time(library.get(name), n_words, width, ports, clock_mhz)
        for name in names
    ]
    if include_classical:
        for label, count in (
            ("Walking 1/0", 2 * walking_op_count(n_words, ports)),
            ("GALPAT", galpat_op_count(n_words, ports)),
        ):
            rows.append(
                TestTimeRow(
                    algorithm=label,
                    operations=count,
                    pause_time_units=0,
                    milliseconds=count / (clock_mhz * 1e3),
                )
            )
    return rows


def render_test_time(rows: List[TestTimeRow], n_words: int) -> str:
    """Text table of a test-time sweep."""
    lines = [
        f"Test time at {n_words} words "
        f"({DEFAULT_CLOCK_MHZ:.0f} MHz BIST clock)",
        f"{'algorithm':<12} {'operations':>12} {'pause units':>12} "
        f"{'time':>12}",
    ]
    for row in rows:
        if row.milliseconds >= 1000:
            time_text = f"{row.milliseconds / 1000:.2f} s"
        elif row.milliseconds >= 1:
            time_text = f"{row.milliseconds:.2f} ms"
        else:
            time_text = f"{row.milliseconds * 1000:.1f} us"
        lines.append(
            f"{row.algorithm:<12} {row.operations:>12} "
            f"{row.pause_time_units:>12} {time_text:>12}"
        )
    return "\n".join(lines)
