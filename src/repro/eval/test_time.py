"""Test-time accounting: operations and wall-clock per algorithm.

Production test time is money; this module converts operation counts
into tester seconds at a BIST clock and tabulates the library (plus the
classical O(N²) tests for contrast) across memory sizes — the numbers a
test engineer trades against the coverage matrix when building a stage
plan.

Controller-cycle numbers come in two interchangeable flavours:
*simulated* (count the cycle-accurate trace, O(N·ops)) and *analytic*
(the static analysis' exact proved cycle count, O(program rows) — usable
at geometries far too large to simulate).  The fuzz harness and the test
suite hold the two equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.classic import galpat_op_count, walking_op_count
from repro.march import library
from repro.march.simulator import operation_count
from repro.march.test import MarchTest

#: Default BIST clock for wall-clock conversion (a modest embedded
#: memory clock for the paper's 0.35 µm era).
DEFAULT_CLOCK_MHZ = 100.0


@dataclass(frozen=True)
class TestTimeRow:
    """Test time of one algorithm at one geometry.

    Attributes:
        algorithm: algorithm name.
        operations: total memory operations (pauses excluded; their idle
            time is reported separately).
        pause_time_units: retention idle time (march pauses).
        milliseconds: wall clock at the configured BIST clock, one
            operation per cycle plus the pause idle cycles.
    """

    algorithm: str
    operations: int
    pause_time_units: int
    milliseconds: float


def march_test_time(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
) -> TestTimeRow:
    """Test time of one march algorithm at one geometry."""
    from repro.march.backgrounds import background_count

    operations = operation_count(test, n_words, width, ports)
    repeats = background_count(width) * ports
    pause_units = sum(pause.duration for pause in test.pauses) * repeats
    cycles = operations + pause_units
    milliseconds = cycles / (clock_mhz * 1e3)
    return TestTimeRow(
        algorithm=test.name,
        operations=operations - repeats * len(test.pauses),
        pause_time_units=pause_units,
        milliseconds=milliseconds,
    )


def test_time_table(
    n_words: int,
    width: int = 1,
    ports: int = 1,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
    algorithms: Optional[Sequence[str]] = None,
    include_classical: bool = True,
) -> List[TestTimeRow]:
    """Test-time rows for the library (and the classical tests)."""
    names = algorithms or [
        "MATS++", "March C", "PMOVI", "March LR", "March A",
        "March C+", "March C++", "March A++",
    ]
    rows = [
        march_test_time(library.get(name), n_words, width, ports, clock_mhz)
        for name in names
    ]
    if include_classical:
        for label, count in (
            ("Walking 1/0", 2 * walking_op_count(n_words, ports)),
            ("GALPAT", galpat_op_count(n_words, ports)),
        ):
            rows.append(
                TestTimeRow(
                    algorithm=label,
                    operations=count,
                    pause_time_units=0,
                    milliseconds=count / (clock_mhz * 1e3),
                )
            )
    return rows


@dataclass(frozen=True)
class ControllerCycleRow:
    """Exact controller cycles of one algorithm on one architecture.

    Attributes:
        algorithm: algorithm name.
        architecture: ``"microcode"`` or ``"progfsm"``.
        cycles: exact controller trace cycles (proved or simulated).
        milliseconds: wall clock at the configured BIST clock.
    """

    algorithm: str
    architecture: str
    cycles: int
    milliseconds: float


def controller_cycles(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
    architecture: str = "microcode",
    analytic: bool = True,
) -> int:
    """Exact controller cycle count for one algorithm/geometry pair.

    Args:
        analytic: ``True`` asks the abstract interpreter for its proved
            cycle count — O(program rows), independent of memory size;
            ``False`` counts the cycle-accurate trace — O(N·ops).  The
            two are equal (asserted by the test suite and fuzzed by
            ``repro fuzz``).

    Raises:
        ValueError: when the interpreter cannot prove termination, or
            ``architecture`` is unknown.
        CompileError: progfsm architecture, algorithm outside SM0-SM7.
    """
    from repro.core.controller import ControllerCapabilities

    caps = ControllerCapabilities(n_words=n_words, width=width, ports=ports)
    if architecture == "microcode":
        from repro.analysis.interpreter import Verdict, interpret
        from repro.core.microcode.assembler import assemble
        from repro.core.microcode.controller import MicrocodeBistController

        program = assemble(test, caps, verify=False)
        if analytic:
            interp = interpret(program, caps)
            if interp.verdict is not Verdict.TERMINATES:
                raise ValueError(
                    f"{test.name}: no analytic cycle count — "
                    f"{interp.verdict.value} ({interp.reason})"
                )
            return interp.cycles
        controller = MicrocodeBistController(program, caps, verify=False)
        return sum(1 for _ in controller.trace())
    if architecture == "progfsm":
        from repro.analysis.interpreter import Verdict
        from repro.analysis.progfsm_cfg import interpret_fsm
        from repro.core.progfsm.compiler import compile_to_sm
        from repro.core.progfsm.controller import (
            ProgrammableFsmBistController,
        )
        from repro.core.progfsm.upper_buffer import DEFAULT_ROWS

        program = compile_to_sm(test, caps, verify=False)
        if analytic:
            interp = interpret_fsm(program, caps)
            if interp.verdict is not Verdict.TERMINATES:
                raise ValueError(
                    f"{test.name}: no analytic cycle count — "
                    f"{interp.verdict.value} ({interp.reason})"
                )
            return interp.cycles
        controller = ProgrammableFsmBistController(
            program, caps,
            buffer_rows=max(DEFAULT_ROWS, len(program)), verify=False,
        )
        return sum(1 for _ in controller.trace())
    raise ValueError(f"unknown architecture {architecture!r}")


def controller_cycle_table(
    n_words: int,
    width: int = 1,
    ports: int = 1,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
    algorithms: Optional[Sequence[str]] = None,
    analytic: bool = True,
) -> List[ControllerCycleRow]:
    """Controller-cycle rows for both programmable architectures.

    Algorithms outside the SM0–SM7 library get no progfsm row (the
    architecture's flexibility boundary); every algorithm gets a
    microcode row.
    """
    from repro.core.progfsm.compiler import is_realizable

    names = algorithms or [
        "MATS++", "March C", "PMOVI", "March LR", "March A",
        "March C+", "March C++", "March A++",
    ]
    rows: List[ControllerCycleRow] = []
    for name in names:
        test = library.get(name)
        for architecture in ("microcode", "progfsm"):
            if architecture == "progfsm" and not is_realizable(test):
                continue
            cycles = controller_cycles(
                test, n_words, width, ports,
                architecture=architecture, analytic=analytic,
            )
            rows.append(
                ControllerCycleRow(
                    algorithm=name,
                    architecture=architecture,
                    cycles=cycles,
                    milliseconds=cycles / (clock_mhz * 1e3),
                )
            )
    return rows


def render_controller_cycles(
    rows: List[ControllerCycleRow], n_words: int, analytic: bool = True
) -> str:
    """Text table of a controller-cycle sweep."""
    method = "proved analytically" if analytic else "simulated"
    lines = [
        f"Controller cycles at {n_words} words ({method}, "
        f"{DEFAULT_CLOCK_MHZ:.0f} MHz BIST clock)",
        f"{'algorithm':<12} {'architecture':<12} {'cycles':>12} "
        f"{'time':>12}",
    ]
    for row in rows:
        if row.milliseconds >= 1000:
            time_text = f"{row.milliseconds / 1000:.2f} s"
        elif row.milliseconds >= 1:
            time_text = f"{row.milliseconds:.2f} ms"
        else:
            time_text = f"{row.milliseconds * 1000:.1f} us"
        lines.append(
            f"{row.algorithm:<12} {row.architecture:<12} "
            f"{row.cycles:>12} {time_text:>12}"
        )
    return "\n".join(lines)


def render_test_time(rows: List[TestTimeRow], n_words: int) -> str:
    """Text table of a test-time sweep."""
    lines = [
        f"Test time at {n_words} words "
        f"({DEFAULT_CLOCK_MHZ:.0f} MHz BIST clock)",
        f"{'algorithm':<12} {'operations':>12} {'pause units':>12} "
        f"{'time':>12}",
    ]
    for row in rows:
        if row.milliseconds >= 1000:
            time_text = f"{row.milliseconds / 1000:.2f} s"
        elif row.milliseconds >= 1:
            time_text = f"{row.milliseconds:.2f} ms"
        else:
            time_text = f"{row.milliseconds * 1000:.1f} us"
        lines.append(
            f"{row.algorithm:<12} {row.operations:>12} "
            f"{row.pause_time_units:>12} {time_text:>12}"
        )
    return "\n".join(lines)
