"""Pseudo-ring vs march coverage: where PRT wins and loses.

The pseudo-ring scheme trades the march library's per-fault determinism
for a radically smaller engine (no program storage, no background
generator — see :meth:`repro.prt.controller.PrtController.hardware`).
This study measures the price over the standard fault universe:
per-fault-kind simulated coverage of a PRT session against a march
baseline (March C by default) on the same geometry, reporting the kinds
where PRT wins, loses, or ties.  The CLI surfaces it as ``repro prt
coverage`` and the per-PR conformance job runs it as a gate.

The headline pattern the numbers show: PRT's read-then-write
circulation excites and observes most static cell faults (SAF/TF and
many couplings) but — being pseudorandom in its data relations — it
carries escape probability where March C is exhaustive, and it has no
pause phase, so retention kinds escape entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.controller import ControllerCapabilities
from repro.faults.universe import FaultUniverse, standard_universe
from repro.march import library
from repro.march.coverage import (
    CoverageReport,
    evaluate_coverage,
    evaluate_stream_coverage,
)
from repro.memory.sram import Sram
from repro.prt.session import PrtSession


@dataclass(frozen=True)
class PrtKindRow:
    """Per-fault-kind comparison of PRT vs the march baseline."""

    kind: str
    prt_detected: int
    march_detected: int
    total: int

    @property
    def prt_percent(self) -> Optional[float]:
        return 100.0 * self.prt_detected / self.total if self.total else None

    @property
    def march_percent(self) -> Optional[float]:
        return (
            100.0 * self.march_detected / self.total if self.total else None
        )

    @property
    def verdict(self) -> str:
        """``wins`` / ``loses`` / ``ties`` for PRT vs the baseline."""
        if not self.total:
            return "n/a"
        if self.prt_detected > self.march_detected:
            return "wins"
        if self.prt_detected < self.march_detected:
            return "loses"
        return "ties"

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "total": self.total,
            "prt_detected": self.prt_detected,
            "march_detected": self.march_detected,
            "prt_percent": (
                round(self.prt_percent, 2)
                if self.prt_percent is not None else None
            ),
            "march_percent": (
                round(self.march_percent, 2)
                if self.march_percent is not None else None
            ),
            "verdict": self.verdict,
        }


@dataclass
class PrtComparisonReport:
    """The full PRT-vs-march comparison over one geometry."""

    session_notation: str
    baseline_name: str
    geometry: Tuple[int, int, int]
    universe_name: str
    prt_ops: int
    march_ops: int
    rows: List[PrtKindRow] = field(default_factory=list)
    prt: Optional[CoverageReport] = None
    march: Optional[CoverageReport] = None

    @property
    def wins(self) -> List[str]:
        return [row.kind for row in self.rows if row.verdict == "wins"]

    @property
    def losses(self) -> List[str]:
        return [row.kind for row in self.rows if row.verdict == "loses"]

    @property
    def ties(self) -> List[str]:
        return [row.kind for row in self.rows if row.verdict == "ties"]

    def format(self) -> str:
        lines = [
            f"pseudo-ring vs {self.baseline_name} on {self.geometry} "
            f"({self.universe_name}):",
            f"  {self.session_notation}: {self.prt_ops} ops, "
            f"{100.0 * self.prt.overall:.1f}% overall",
            f"  {self.baseline_name}: {self.march_ops} ops, "
            f"{100.0 * self.march.overall:.1f}% overall",
            f"  {'kind':6s} {'faults':>6s} {'PRT':>7s} "
            f"{self.baseline_name:>9s}  verdict",
        ]
        for row in self.rows:
            prt_pct = (
                f"{row.prt_percent:6.1f}%"
                if row.prt_percent is not None else "   n/a "
            )
            march_pct = (
                f"{row.march_percent:8.1f}%"
                if row.march_percent is not None else "     n/a "
            )
            lines.append(
                f"  {row.kind:6s} {row.total:6d} {prt_pct} {march_pct}"
                f"  {row.verdict}"
            )
        lines.append(
            f"  PRT wins: {', '.join(self.wins) or 'none'}; "
            f"loses: {', '.join(self.losses) or 'none'}; "
            f"ties: {', '.join(self.ties) or 'none'}"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "session": self.session_notation,
            "baseline": self.baseline_name,
            "geometry": list(self.geometry),
            "universe": self.universe_name,
            "prt_ops": self.prt_ops,
            "march_ops": self.march_ops,
            "prt_overall_percent": round(100.0 * self.prt.overall, 2),
            "march_overall_percent": round(100.0 * self.march.overall, 2),
            "by_kind": [row.to_json() for row in self.rows],
            "wins": self.wins,
            "losses": self.losses,
            "ties": self.ties,
            "prt": self.prt.to_json(),
            "march": self.march.to_json(),
        }


def prt_vs_march(
    n_words: int = 8,
    width: int = 1,
    ports: int = 1,
    session: Optional[PrtSession] = None,
    baseline: str = "March C",
    universe: Optional[FaultUniverse] = None,
    include_npsf: bool = True,
) -> PrtComparisonReport:
    """Measure PRT vs a march baseline over the standard fault universe.

    Both sides sweep the *same* universe on the same geometry with the
    same simulated-injection machinery
    (:func:`repro.march.coverage.evaluate_stream_coverage`), so the
    per-kind deltas are measurement, not modelling.
    """
    from repro.prt import PRT_RING_UP

    session = session or PRT_RING_UP
    caps = ControllerCapabilities(n_words=n_words, width=width, ports=ports)
    if universe is None:
        universe = standard_universe(
            n_words, width=width, include_npsf=include_npsf, ports=ports
        )
    test = library.get(baseline)
    memory = Sram(n_words, width=width, ports=ports)
    prt_report = evaluate_stream_coverage(
        lambda: session.operations(caps), memory, universe,
        test_name=session.name,
    )
    march_report = evaluate_coverage(
        test, universe, n_words, width=width, ports=ports
    )
    report = PrtComparisonReport(
        session_notation=session.notation,
        baseline_name=test.name,
        geometry=(n_words, width, ports),
        universe_name=universe.name,
        prt_ops=session.op_count(caps),
        march_ops=sum(1 for _ in _march_ops(test, caps)),
        prt=prt_report,
        march=march_report,
    )
    for kind in sorted(prt_report.total):
        report.rows.append(
            PrtKindRow(
                kind=kind,
                prt_detected=prt_report.detected.get(kind, 0),
                march_detected=march_report.detected.get(kind, 0),
                total=prt_report.total[kind],
            )
        )
    return report


def _march_ops(test, caps: ControllerCapabilities):
    from repro.march.simulator import expand

    return expand(test, caps.n_words, width=caps.width, ports=caps.ports)
