"""Algorithm recommendation from measured coverage.

Given the fault classes a test stage must screen, pick the cheapest
library algorithm whose *measured* coverage of every requested class is
100 % — the decision a test engineer makes per fabrication stage, and
the reason a programmable controller earns its area: each stage loads
exactly the algorithm its fault-model contract requires, no more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.eval.coverage_study import (
    COVERAGE_COLUMNS,
    CoverageRow,
    coverage_table,
)
from repro.march import library
from repro.march.test import MarchTest


class NoAlgorithmError(LookupError):
    """No library algorithm fully covers the requested classes."""


@dataclass(frozen=True)
class Recommendation:
    """The chosen algorithm plus the evidence behind the choice.

    Attributes:
        test: the recommended algorithm.
        operation_factor: its per-cell operation count (the k of kN).
        required: the fault classes that had to reach 100 %.
        alternatives: dearer algorithms that also qualify, by cost.
    """

    test: MarchTest
    operation_factor: int
    required: Tuple[str, ...]
    alternatives: Tuple[str, ...]

    def __str__(self) -> str:
        others = ", ".join(self.alternatives) or "none"
        return (
            f"{self.test.name} ({self.test.complexity}) covers "
            f"{{{', '.join(self.required)}}}; costlier alternatives: {others}"
        )


def _qualifies(row: CoverageRow, required: Sequence[str]) -> bool:
    return all(row.percent(column) == 100.0 for column in required)


def recommend(
    required_classes: Iterable[str],
    n_words: int = 8,
    rows: Optional[List[CoverageRow]] = None,
) -> Recommendation:
    """Cheapest library algorithm with full measured coverage of the
    requested fault classes.

    Args:
        required_classes: subset of :data:`COVERAGE_COLUMNS`
            (``SAF TF AF CFin CFid CFst SOF DRF``).
        n_words: array size for the measurement sweep (coverage
            properties are size-independent; small is fine).
        rows: pre-measured coverage rows (reuse across calls).

    Raises:
        ValueError: for unknown class names.
        NoAlgorithmError: if nothing in the library qualifies.
    """
    required = tuple(dict.fromkeys(required_classes))  # dedupe, keep order
    unknown = [c for c in required if c not in COVERAGE_COLUMNS]
    if unknown:
        raise ValueError(
            f"unknown fault classes {unknown}; known: {list(COVERAGE_COLUMNS)}"
        )
    if not required:
        raise ValueError("at least one fault class is required")
    rows = rows if rows is not None else coverage_table(n_words=n_words)
    qualifying = sorted(
        (row for row in rows if _qualifies(row, required)),
        key=lambda row: library.get(row.algorithm).operation_count,
    )
    if not qualifying:
        raise NoAlgorithmError(
            f"no library algorithm fully covers {list(required)}"
        )
    winner = qualifying[0]
    return Recommendation(
        test=library.get(winner.algorithm),
        operation_factor=library.get(winner.algorithm).operation_count,
        required=required,
        alternatives=tuple(row.algorithm for row in qualifying[1:]),
    )


def stage_plan(
    stages: Sequence[Tuple[str, Iterable[str]]],
    n_words: int = 8,
) -> List[Tuple[str, Recommendation]]:
    """Recommend one algorithm per fabrication stage.

    Args:
        stages: (stage name, required fault classes) pairs, e.g.
            ``[("wafer sort", ["SAF", "TF", "AF"]), ...]``.

    Returns:
        (stage name, recommendation) pairs — the input a
        :class:`repro.soc.MemoryRequirement` test plan is built from.
    """
    rows = coverage_table(n_words=n_words)
    return [
        (name, recommend(classes, n_words=n_words, rows=rows))
        for name, classes in stages
    ]
