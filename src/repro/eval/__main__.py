"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.eval table1
    python -m repro.eval table2
    python -m repro.eval table3
    python -m repro.eval flexibility
    python -m repro.eval all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval.coverage_study import coverage_table, render_coverage_table
from repro.eval.test_time import (
    controller_cycle_table,
    render_controller_cycles,
    render_test_time,
    test_time_table,
)
from repro.eval.experiments import table1, table2, table3
from repro.eval.flexibility import flexibility_matrix, summarize
from repro.eval.tables import render_table1, render_table2, render_table3


def _render_flexibility() -> str:
    records = flexibility_matrix()
    lines = ["Measured flexibility (library algorithms realisable)"]
    architectures = sorted({r.architecture for r in records})
    for architecture in architectures:
        subset = [r for r in records if r.architecture == architecture]
        done = [r.algorithm for r in subset if r.realizable]
        missing = [r.algorithm for r in subset if not r.realizable]
        lines.append(f"{architecture}: {len(done)}/{len(subset)} realisable")
        if missing:
            lines.append(f"  not realisable: {', '.join(missing)}")
    for architecture, (done, total) in summarize(records).items():
        lines.append(f"summary {architecture}: {done}/{total}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "flexibility", "coverage",
                 "testtime", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--words", type=int, default=1024, help="memory depth (default 1024)"
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="testtime: controller cycles from the static analysis' "
        "proved bounds (O(program rows)) instead of simulation (O(N))",
    )
    args = parser.parse_args(argv)

    outputs = []
    if args.experiment in ("table1", "all"):
        outputs.append(render_table1(table1(n_words=args.words)))
    if args.experiment in ("table2", "all"):
        outputs.append(render_table2(table2(n_words=args.words)))
    if args.experiment in ("table3", "all"):
        outputs.append(render_table3(table3(n_words=args.words)))
    if args.experiment in ("flexibility", "all"):
        outputs.append(_render_flexibility())
    if args.experiment in ("coverage", "all"):
        outputs.append(render_coverage_table(coverage_table()))
    if args.experiment in ("testtime", "all"):
        outputs.append(
            render_test_time(test_time_table(args.words), args.words)
        )
        outputs.append(
            render_controller_cycles(
                controller_cycle_table(args.words, analytic=args.analytic),
                args.words,
                analytic=args.analytic,
            )
        )
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
