"""Golden-stream compilation into flat op arrays.

The batch kernel replays one attributed operation stream against many
fault lanes; the per-op Python dispatch cost is paid once for the whole
batch, so the stream is compiled ahead of time into parallel flat
arrays — op kind, port, address, data — plus the normalised comparison
keys (for verifying an architecture's stream against the golden one
without recompiling) and the owner strings (for reconstructing
attributed :class:`~repro.conformance.faulty.events.FailEvent`
records).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.conformance.trace import AttributedOp, NormalizedOp

#: Op-kind codes of the compiled representation.
OP_WRITE = 0
OP_READ = 1
OP_DELAY = 2


class CompiledStream:
    """One attributed stream as flat, lane-replayable op arrays.

    Attributes:
        length: number of operations.
        kinds / ports / addresses / data: parallel flat arrays; ``data``
            holds the (masked) written value for writes, the *raw*
            expected word for reads — expectations are compared as the
            source emitted them, exactly like the scalar capture — and
            the duration for delays.
        keys: normalised comparison keys, op-for-op (the
            :func:`repro.conformance.trace.normalize` of each op).
        owners: owning program location per op, for event attribution.
    """

    __slots__ = ("length", "kinds", "ports", "addresses", "data",
                 "keys", "owners")

    def __init__(
        self,
        kinds: "np.ndarray",
        ports: "np.ndarray",
        addresses: "np.ndarray",
        data: "np.ndarray",
        keys: List[NormalizedOp],
        owners: List[str],
    ) -> None:
        self.length = len(keys)
        self.kinds = kinds
        self.ports = ports
        self.addresses = addresses
        self.data = data
        self.keys = keys
        self.owners = owners


def compile_stream(
    stream: Sequence[AttributedOp], word_mask: int
) -> CompiledStream:
    """Compile ``stream`` for batch replay.

    Written values are masked to the word width here (the scalar memory
    masks on entry to :meth:`~repro.memory.sram.Sram.write`); read
    expectations are kept raw so an out-of-range expectation mismatches
    every lane exactly as it does against the scalar wired-AND.
    """
    kinds: List[int] = []
    ports: List[int] = []
    addresses: List[int] = []
    data: List[int] = []
    keys: List[NormalizedOp] = []
    owners: List[str] = []
    for entry in stream:
        op = entry.op
        if op.is_delay:
            kinds.append(OP_DELAY)
            addresses.append(0)
            data.append(op.delay)
        elif op.is_write:
            kinds.append(OP_WRITE)
            addresses.append(op.address)
            data.append(op.value & word_mask)
        else:
            kinds.append(OP_READ)
            addresses.append(op.address)
            data.append(op.expected)
        ports.append(op.port)
        keys.append(entry.key)
        owners.append(entry.owner)
    return CompiledStream(
        kinds=np.asarray(kinds, dtype=np.int8),
        ports=np.asarray(ports, dtype=np.int32),
        addresses=np.asarray(addresses, dtype=np.int32),
        data=np.asarray(data, dtype=np.int64),
        keys=keys,
        owners=owners,
    )
