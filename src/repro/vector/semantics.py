"""Per-lane fault semantics for the batch kernel.

Each supported fault stratum is translated from its
:meth:`~repro.faults.base.CellFault.vector_lane` tuple into a small
*lane entry* object registered in per-word dispatch tables.  The kernel
performs the bulk, lane-parallel column work (assign on write, compare
on read); entries run only for ops that touch their registered word, so
a fault whose cell the current op does not address costs nothing.

Every entry owns exactly one lane (the sweeps inject one fault per
run — the single-fault assumption of the functional models), which is
what makes the per-entry fixups safe: no two entries ever contend for
the same lane's state, so hook ordering between faults never arises.

The semantics here mirror the scalar hooks of :mod:`repro.faults`
*op-for-op*; the cross-engine conformance identity (``docs/TESTING.md``)
and the per-stratum equivalence tests hold the two implementations
together.  :func:`lane_spec` additionally validates parameter ranges —
anything the lane model cannot represent exactly (out-of-range cell,
unknown stratum, subclassed fault) returns ``None`` and the sweep falls
back to the scalar oracle for that fault.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vector.errors import UnsupportedFault


def _with_bit(value: int, bit: int, bit_value: int) -> int:
    if bit_value:
        return value | (1 << bit)
    return value & ~(1 << bit)


#: A validated lane spec: the ``vector_lane()`` tuple of one fault.
LaneSpec = Tuple


def lane_spec(fault, n_words: int, width: int, ports: int) -> Optional[LaneSpec]:
    """The validated vector-lane spec of ``fault``, or ``None``.

    ``None`` means "no exact lane semantics" — the caller must run this
    fault through the scalar path.  Validation is strict: a parameter
    outside the geometry (which would make the scalar run crash or touch
    bits beyond the word mask) disqualifies the fault rather than being
    clamped, so the scalar oracle keeps authority over every edge case.
    """
    try:
        spec = fault.vector_lane()
    except Exception:
        return None
    if spec is None:
        return None
    stratum = spec[0]
    checker = _VALIDATORS.get(stratum)
    if checker is None:
        return None
    return spec if checker(spec, n_words, width, ports) else None


def _cell_ok(word: int, bit: int, n_words: int, width: int) -> bool:
    return 0 <= word < n_words and 0 <= bit < width


def _v_cell_value(spec, n_words, width, ports):
    _, word, bit, value = spec
    return _cell_ok(word, bit, n_words, width) and value in (0, 1)


def _v_transition(spec, n_words, width, ports):
    _, word, bit, rising = spec
    return _cell_ok(word, bit, n_words, width) and isinstance(rising, bool)


def _v_coupling(spec, n_words, width, ports):
    aw, ab, vw, vb = spec[1:5]
    return (
        _cell_ok(aw, ab, n_words, width)
        and _cell_ok(vw, vb, n_words, width)
        and (aw, ab) != (vw, vb)
    )


def _v_coupling_id(spec, n_words, width, ports):
    return _v_coupling(spec, n_words, width, ports) and spec[6] in (0, 1)


def _v_coupling_state(spec, n_words, width, ports):
    return (
        _v_coupling(spec, n_words, width, ports)
        and spec[5] in (0, 1)
        and spec[6] in (0, 1)
    )


def _v_stuck_open(spec, n_words, width, ports):
    _, word, bit, weak, threshold = spec
    return (
        _cell_ok(word, bit, n_words, width)
        and weak in (0, 1)
        and threshold >= 1
    )


def _v_retention(spec, n_words, width, ports):
    _, word, bit, from_value, decay = spec
    return (
        _cell_ok(word, bit, n_words, width)
        and from_value in (0, 1)
        and decay > 0
    )


def _v_port_open(spec, n_words, width, ports):
    _, port, word, bit, open_value = spec
    return (
        0 <= port < ports
        and _cell_ok(word, bit, n_words, width)
        and open_value in (0, 1)
    )


def _v_decoder(spec, n_words, width, ports):
    _, address, targets = spec
    if not 0 <= address < n_words:
        return False
    return all(0 <= target < n_words for target in targets)


_VALIDATORS = {
    "stuck_at": _v_cell_value,
    "transition": _v_transition,
    "coupling_inversion": _v_coupling,
    "coupling_idempotent": _v_coupling_id,
    "coupling_state": _v_coupling_state,
    "read_incorrect": _v_cell_value,
    "read_destructive": _v_cell_value,
    "read_deceptive": _v_cell_value,
    "stuck_open": _v_stuck_open,
    "retention": _v_retention,
    "port_open": _v_port_open,
    "decoder": _v_decoder,
}

#: Strata the kernel evaluates natively (everything else falls back).
SUPPORTED_STRATA = frozenset(_VALIDATORS)


# -- lane entries ------------------------------------------------------------
#
# Hook points, mirroring the scalar access paths:
#   on_write(state, port, value, old)  -- registered per written word;
#       runs *after* the bulk column assign, with ``old`` the lane's
#       pre-assign word (gathered by the kernel).
#   on_read(state, observed, port)     -- registered per read word;
#       mutates ``observed[lane]`` (a copy of the column) and/or the
#       stored state, exactly like the scalar read filters.
#   on_elapse(state, duration)         -- global, for retention decay.


class _Entry:
    __slots__ = ("lane",)

    def __init__(self, lane: int) -> None:
        self.lane = lane


class SafWrite(_Entry):
    """SAF: writes to the stuck cell keep the stuck bit."""

    __slots__ = ("word", "bit", "value")

    def __init__(self, lane, word, bit, value):
        super().__init__(lane)
        self.word, self.bit, self.value = word, bit, value

    def on_write(self, state, port, value, old):
        state[self.lane, self.word] = _with_bit(value, self.bit, self.value)


class TfWrite(_Entry):
    """TF: the failing transition leaves the bit at its old level."""

    __slots__ = ("word", "bit", "rising")

    def __init__(self, lane, word, bit, rising):
        super().__init__(lane)
        self.word, self.bit, self.rising = word, bit, rising

    def on_write(self, state, port, value, old):
        before = (old >> self.bit) & 1
        after = (value >> self.bit) & 1
        if self.rising and before == 0 and after == 1:
            state[self.lane, self.word] = _with_bit(value, self.bit, 0)
        elif not self.rising and before == 1 and after == 0:
            state[self.lane, self.word] = _with_bit(value, self.bit, 1)


class PafAccess(_Entry):
    """PAF: one port's writes miss the cell bit, its reads float."""

    __slots__ = ("port", "word", "bit", "open_value")

    def __init__(self, lane, port, word, bit, open_value):
        super().__init__(lane)
        self.port, self.word, self.bit = port, word, bit
        self.open_value = open_value

    def on_write(self, state, port, value, old):
        if port == self.port:
            state[self.lane, self.word] = _with_bit(
                value, self.bit, (old >> self.bit) & 1
            )

    def on_read(self, state, observed, port):
        if port == self.port:
            observed[self.lane] = _with_bit(
                int(observed[self.lane]), self.bit, self.open_value
            )


class SofLane(_Entry):
    """SOF: reads of the weak value disturb; a write restores the node.

    The flip lands in the stored state only — the detecting read still
    observes the pre-collapse value, like the scalar model (the sense
    amplifier fired before the node collapsed).
    """

    __slots__ = ("word", "bit", "weak", "threshold", "disturbs")

    def __init__(self, lane, word, bit, weak, threshold):
        super().__init__(lane)
        self.word, self.bit = word, bit
        self.weak, self.threshold = weak, threshold
        self.disturbs = 0

    def on_write(self, state, port, value, old):
        self.disturbs = 0

    def on_read(self, state, observed, port):
        if (int(state[self.lane, self.word]) >> self.bit) & 1 != self.weak:
            return
        self.disturbs += 1
        if self.disturbs >= self.threshold:
            state[self.lane, self.word] = _with_bit(
                int(state[self.lane, self.word]), self.bit, self.weak ^ 1
            )
            self.disturbs = 0


class DrfLane(_Entry):
    """DRF: idle time decays the held value; any access refreshes it."""

    __slots__ = ("word", "bit", "from_value", "decay", "idle")

    def __init__(self, lane, word, bit, from_value, decay):
        super().__init__(lane)
        self.word, self.bit = word, bit
        self.from_value, self.decay = from_value, decay
        self.idle = 0

    def on_write(self, state, port, value, old):
        self.idle = 0

    def on_read(self, state, observed, port):
        self.idle = 0

    def on_elapse(self, state, duration):
        stored = (int(state[self.lane, self.word]) >> self.bit) & 1
        if stored != self.from_value:
            self.idle = 0
            return
        self.idle += duration
        if self.idle >= self.decay:
            state[self.lane, self.word] = _with_bit(
                int(state[self.lane, self.word]), self.bit, self.from_value ^ 1
            )
            self.idle = 0


class CouplingWrite(_Entry):
    """CFin/CFid: an aggressor transition disturbs the victim cell.

    Registered on the *aggressor* word; the victim update reads the
    post-assign state, matching the scalar ``on_any_write`` ordering
    (cells are committed before coupling triggers fire), which is what
    keeps intra-word aggressor/victim pairs exact.
    """

    __slots__ = ("agg_bit", "vic_word", "vic_bit", "rising", "forced")

    def __init__(self, lane, agg_bit, vic_word, vic_bit, rising, forced):
        super().__init__(lane)
        self.agg_bit, self.rising = agg_bit, rising
        self.vic_word, self.vic_bit = vic_word, vic_bit
        self.forced = forced  # None = inversion (CFin)

    def on_write(self, state, port, value, old):
        before = (old >> self.agg_bit) & 1
        after = (value >> self.agg_bit) & 1
        if self.rising:
            if not (before == 0 and after == 1):
                return
        elif not (before == 1 and after == 0):
            return
        current = int(state[self.lane, self.vic_word])
        forced = self.forced
        if forced is None:
            forced = ((current >> self.vic_bit) & 1) ^ 1
        state[self.lane, self.vic_word] = _with_bit(
            current, self.vic_bit, forced
        )


class CfstRead(_Entry):
    """CFst: the victim's bit line is distorted while the aggressor
    holds the coupling state (stored value recovers — read-time only)."""

    __slots__ = ("agg_word", "agg_bit", "vic_bit", "agg_state", "forced")

    def __init__(self, lane, agg_word, agg_bit, vic_bit, agg_state, forced):
        super().__init__(lane)
        self.agg_word, self.agg_bit = agg_word, agg_bit
        self.vic_bit, self.agg_state, self.forced = vic_bit, agg_state, forced

    def on_read(self, state, observed, port):
        aggressor = (int(state[self.lane, self.agg_word]) >> self.agg_bit) & 1
        if aggressor == self.agg_state:
            observed[self.lane] = _with_bit(
                int(observed[self.lane]), self.vic_bit, self.forced
            )


class IrfRead(_Entry):
    """IRF: reads of the sensitising state lie; the cell is untouched."""

    __slots__ = ("bit", "state_value")

    def __init__(self, lane, bit, state_value):
        super().__init__(lane)
        self.bit, self.state_value = bit, state_value

    def on_read(self, state, observed, port):
        value = int(observed[self.lane])
        if (value >> self.bit) & 1 == self.state_value:
            observed[self.lane] = _with_bit(
                value, self.bit, self.state_value ^ 1
            )


class RdfRead(_Entry):
    """RDF: the read flips the cell and returns the flipped value."""

    __slots__ = ("word", "bit", "state_value")

    def __init__(self, lane, word, bit, state_value):
        super().__init__(lane)
        self.word, self.bit, self.state_value = word, bit, state_value

    def on_read(self, state, observed, port):
        value = int(observed[self.lane])
        if (value >> self.bit) & 1 == self.state_value:
            flipped = _with_bit(value, self.bit, self.state_value ^ 1)
            state[self.lane, self.word] = flipped
            observed[self.lane] = flipped


class DrdfRead(_Entry):
    """DRDF: the read flips the cell but returns the correct old value."""

    __slots__ = ("word", "bit", "state_value")

    def __init__(self, lane, word, bit, state_value):
        super().__init__(lane)
        self.word, self.bit, self.state_value = word, bit, state_value

    def on_read(self, state, observed, port):
        value = int(observed[self.lane])
        if (value >> self.bit) & 1 == self.state_value:
            state[self.lane, self.word] = _with_bit(
                value, self.bit, self.state_value ^ 1
            )


class DecoderLane(_Entry):
    """AF1–AF4: one logical address decodes to ``targets`` cells.

    Writes land in every target (and *not* in the address's own cell
    unless it is a target); reads observe the wired-AND of the targets,
    or the open-bit-line value when there are none.
    """

    __slots__ = ("address", "targets", "open_value", "mask")

    def __init__(self, lane, address, targets, open_value, mask):
        super().__init__(lane)
        self.address = address
        self.targets = tuple(targets)
        self.open_value = open_value
        self.mask = mask

    def on_write(self, state, port, value, old):
        if self.address not in self.targets:
            state[self.lane, self.address] = old
        for target in self.targets:
            state[self.lane, target] = value

    def on_read(self, state, observed, port):
        if not self.targets:
            observed[self.lane] = self.open_value
            return
        accumulated = self.mask
        for target in self.targets:
            accumulated &= int(state[self.lane, target])
        observed[self.lane] = accumulated


class LaneProgram:
    """Dispatch tables of one batch: entries keyed by accessed word.

    Attributes:
        init_bits: ``(lane, word, bit, value)`` power-on effects (SAF
            holds its node at the stuck level from power-on).
        write_entries / read_entries: word-keyed entry lists; the kernel
            gathers each write entry's ``old`` lane word before the bulk
            assign and calls the hooks after it.
        elapse_entries: entries with idle-time behaviour.
    """

    __slots__ = ("init_bits", "write_entries", "read_entries",
                 "elapse_entries")

    def __init__(self) -> None:
        self.init_bits: List[Tuple[int, int, int, int]] = []
        self.write_entries: Dict[int, List] = {}
        self.read_entries: Dict[int, List] = {}
        self.elapse_entries: List = []

    def _on_write(self, word: int, entry) -> None:
        self.write_entries.setdefault(word, []).append(entry)

    def _on_read(self, word: int, entry) -> None:
        self.read_entries.setdefault(word, []).append(entry)


def build_program(
    specs: List[LaneSpec],
    first_lane: int,
    width: int,
    open_read_value: int,
) -> LaneProgram:
    """Translate validated lane specs into a :class:`LaneProgram`.

    ``specs[i]`` owns lane ``first_lane + i`` (lane 0 is the kernel's
    fault-free reference and owns nothing).
    """
    mask = (1 << width) - 1
    program = LaneProgram()
    for offset, spec in enumerate(specs):
        lane = first_lane + offset
        stratum = spec[0]
        if stratum == "stuck_at":
            _, word, bit, value = spec
            program.init_bits.append((lane, word, bit, value))
            program._on_write(word, SafWrite(lane, word, bit, value))
            # No read entry: the stored bit is pinned at power-on and by
            # every write filter, so reads observe the stuck level from
            # the state array itself.
        elif stratum == "transition":
            _, word, bit, rising = spec
            program._on_write(word, TfWrite(lane, word, bit, rising))
        elif stratum == "coupling_inversion":
            _, aw, ab, vw, vb, rising = spec
            program._on_write(aw, CouplingWrite(lane, ab, vw, vb, rising, None))
        elif stratum == "coupling_idempotent":
            _, aw, ab, vw, vb, rising, forced = spec
            program._on_write(
                aw, CouplingWrite(lane, ab, vw, vb, rising, forced)
            )
        elif stratum == "coupling_state":
            _, aw, ab, vw, vb, agg_state, forced = spec
            program._on_read(
                vw, CfstRead(lane, aw, ab, vb, agg_state, forced)
            )
        elif stratum == "read_incorrect":
            _, word, bit, state_value = spec
            program._on_read(word, IrfRead(lane, bit, state_value))
        elif stratum == "read_destructive":
            _, word, bit, state_value = spec
            program._on_read(word, RdfRead(lane, word, bit, state_value))
        elif stratum == "read_deceptive":
            _, word, bit, state_value = spec
            program._on_read(word, DrdfRead(lane, word, bit, state_value))
        elif stratum == "stuck_open":
            _, word, bit, weak, threshold = spec
            entry = SofLane(lane, word, bit, weak, threshold)
            program._on_write(word, entry)
            program._on_read(word, entry)
        elif stratum == "retention":
            _, word, bit, from_value, decay = spec
            entry = DrfLane(lane, word, bit, from_value, decay)
            program._on_write(word, entry)
            program._on_read(word, entry)
            program.elapse_entries.append(entry)
        elif stratum == "port_open":
            _, port, word, bit, open_value = spec
            entry = PafAccess(lane, port, word, bit, open_value)
            program._on_write(word, entry)
            program._on_read(word, entry)
        elif stratum == "decoder":
            _, address, targets = spec
            entry = DecoderLane(
                lane, address, targets, open_read_value & mask, mask
            )
            program._on_write(address, entry)
            program._on_read(address, entry)
        else:  # pragma: no cover - lane_spec() filters unknown strata
            raise UnsupportedFault(f"unknown lane stratum {stratum!r}")
    return program
