"""Lane-batched replay of one compiled stream against many faults.

State is a ``(lanes, words)`` array — lane 0 carries no fault and is
the kernel's built-in self check: the golden expansion's read
expectations must hold on it exactly, op for op, and any lane-0
mismatch aborts the batch with :class:`VectorEngineError` so the caller
falls back to the scalar oracle instead of trusting a broken replay.

Per op the bulk work is one numpy column operation (assign on write,
compare on read); fault behaviour enters through the word-keyed lane
entries of :mod:`repro.vector.semantics`, so ops that touch no faulty
cell cost only the column op regardless of batch size.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.vector.errors import VectorEngineError
from repro.vector.ops import OP_READ, OP_WRITE, CompiledStream
from repro.vector.semantics import LaneSpec, build_program

#: Word widths the kernel can hold in one unsigned element.
MAX_WIDTH = 64

#: One recorded mismatch: (op index, observed word).
LaneEvent = Tuple[int, int]


def state_dtype(width: int):
    """Smallest unsigned element type holding one ``width``-bit word."""
    if width <= 8:
        return np.uint8
    if width <= 16:
        return np.uint16
    if width <= 32:
        return np.uint32
    if width <= MAX_WIDTH:
        return np.uint64
    raise VectorEngineError(f"word width {width} exceeds {MAX_WIDTH} bits")


def evaluate_lanes(
    compiled: CompiledStream,
    n_words: int,
    width: int,
    specs: Sequence[LaneSpec],
    open_read_value: int = 0,
) -> Tuple[List[List[LaneEvent]], "np.ndarray"]:
    """Replay ``compiled`` against one fault lane per spec.

    Returns ``(events, state)``: per-spec lists of ``(op_index,
    observed)`` read mismatches in detection order, and the final
    ``(1 + len(specs), n_words)`` state array (row 0 is the fault-free
    reference — useful to differential tests, ignored by the sweeps).

    Raises:
        VectorEngineError: the fault-free lane observed a mismatch
            (kernel defect — the batch result must be discarded).
    """
    mask = (1 << width) - 1
    lanes = 1 + len(specs)
    state = np.zeros((lanes, n_words), dtype=state_dtype(width))
    program = build_program(
        list(specs), first_lane=1, width=width,
        open_read_value=open_read_value,
    )
    for lane, word, bit, value in program.init_bits:
        if value:
            state[lane, word] |= 1 << bit
        else:
            state[lane, word] &= ~(1 << bit) & mask
    events: List[List[LaneEvent]] = [[] for _ in range(lanes)]
    write_entries = program.write_entries
    read_entries = program.read_entries
    elapse_entries = program.elapse_entries
    op_iter = zip(
        compiled.kinds.tolist(),
        compiled.ports.tolist(),
        compiled.addresses.tolist(),
        compiled.data.tolist(),
    )
    for index, (kind, port, address, data) in enumerate(op_iter):
        if kind == OP_WRITE:
            entries = write_entries.get(address)
            if entries is None:
                state[:, address] = data
                continue
            olds = [int(state[entry.lane, address]) for entry in entries]
            state[:, address] = data
            for entry, old in zip(entries, olds):
                entry.on_write(state, port, data, old)
        elif kind == OP_READ:
            column = state[:, address]
            entries = read_entries.get(address)
            if entries is not None:
                column = column.copy()
                for entry in entries:
                    entry.on_read(state, column, port)
            if 0 <= data <= mask:
                mismatched = column != data
                if not mismatched.any():
                    continue
                hit_lanes = np.nonzero(mismatched)[0].tolist()
            else:
                # An expectation outside the word mask can never match a
                # masked observation; record every lane, like the scalar
                # comparison would.
                hit_lanes = range(lanes)
            for lane in hit_lanes:
                events[lane].append((index, int(column[lane])))
        else:  # OP_DELAY
            for entry in elapse_entries:
                entry.on_elapse(state, data)
    if events[0]:
        op_index, observed = events[0][0]
        raise VectorEngineError(
            f"fault-free reference lane diverged at op {op_index} "
            f"({compiled.keys[op_index]}): observed {observed:#x}"
        )
    return events[1:], state
