"""Exceptions of the batch fault-sweep kernel.

Kept free of numpy imports so the engine gate in
:mod:`repro.vector` can expose them even when numpy is absent.
"""

from __future__ import annotations


class EngineUnavailable(RuntimeError):
    """The vector engine was requested but numpy is not installed."""


class UnsupportedFault(ValueError):
    """A fault has no vector lane semantics (scalar fallback required)."""


class VectorEngineError(AssertionError):
    """The kernel's fault-free reference lane observed a mismatch.

    Lane 0 of every batch carries no fault; the golden expansion read
    expectations must hold on it exactly.  An event on lane 0 means the
    kernel's replay of the stream semantics is wrong, so the caller must
    discard the batch and fall back to the scalar oracle.
    """
