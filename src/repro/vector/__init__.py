"""Vectorised batch fault-sweep engine.

Evaluates one (algorithm, geometry) golden expansion against a *batch*
of faults at once: memory state is a numpy array with one lane per
fault (lane 0 is the fault-free reference), the golden attributed
stream is compiled once into flat op arrays, and fault semantics are
applied as per-lane fixups around bulk column operations.  Faults
without a vector semantic fall back, per lane, to the scalar
:class:`~repro.memory.sram.Sram` path — and the sweep report counts
those fallbacks, so coverage is never silently lost.

The scalar engine stays the differential oracle: the cross-engine
conformance identity asserts both engines produce byte-identical sweep
reports (timing aside).  See ``docs/TESTING.md``.

numpy is optional at the package level: :data:`HAVE_NUMPY` gates the
engine and :func:`require_numpy` raises a clear
:class:`~repro.vector.errors.EngineUnavailable` when the batch kernel
is requested without it.
"""

from __future__ import annotations

from repro.vector.errors import (
    EngineUnavailable,
    UnsupportedFault,
    VectorEngineError,
)

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False


def require_numpy() -> None:
    """Raise :class:`EngineUnavailable` unless numpy is importable."""
    if not HAVE_NUMPY:
        raise EngineUnavailable(
            "the vector fault-sweep engine needs numpy; "
            "use engine='scalar' on installs without it"
        )


__all__ = [
    "EngineUnavailable",
    "UnsupportedFault",
    "VectorEngineError",
    "HAVE_NUMPY",
    "require_numpy",
]
