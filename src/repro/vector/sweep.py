"""Batch-kernel execution of fault-response conformance sweeps.

The scalar sweep (:func:`repro.conformance.faulty.check.run_fault_sweep`)
runs four full BIST sessions per (algorithm, fault) pair — golden plus
one per architecture.  This module reaches the same report with two
structural savings:

* **per test**: each architecture's attributed stream is built once and
  verified op-for-op equal to the golden expansion (the stimulus
  conformance property).  Response capture is a deterministic function
  of the normalised ops alone, so identical streams give identical
  captures for *every* fault — the three per-architecture sessions per
  fault disappear entirely;
* **per fault**: the remaining golden capture is evaluated by the lane
  kernel, hundreds of faults per replay of the stream.

Anything outside those preconditions falls back to the scalar path and
is counted in the report's ``fallback_runs``:

* per fault — no validated lane semantics
  (:func:`~repro.vector.semantics.lane_spec` returned ``None``);
* per test — an architecture's stream failed to build with a
  non-skip error, diverged from the golden expansion, the golden
  stream overran the op budget, or the kernel's fault-free reference
  lane tripped (:class:`~repro.vector.errors.VectorEngineError`);
* per sweep — a patched response-capture path (the seeded-defect
  harness replaces :data:`RESPONSE_CAPTURES` entries; capture identity
  is the precondition the per-test saving rests on) or a word width
  beyond the kernel's element size.

The fallback re-runs :func:`check_fault_conformance` itself, so its
results — including failure records and raised errors — are the scalar
engine's own, byte for byte.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conformance.check import ARCHITECTURES, GOLDEN_CACHE, STREAM_BUILDERS
from repro.conformance.faulty import events as faulty_events
from repro.conformance.faulty.check import (
    DEFAULT_BUDGET_FACTOR,
    FaultSweepReport,
    _fault_cache_key,
    _run_sharded,
    check_fault_conformance,
)
from repro.conformance.faulty.events import (
    FailEvent,
    ResponseBudgetExceeded,
    ResponseCapture,
)
from repro.core.controller import ControllerCapabilities
from repro.faults.base import CellFault
from repro.march.test import MarchTest
from repro.vector.errors import UnsupportedFault, VectorEngineError
from repro.vector.kernel import MAX_WIDTH, evaluate_lanes, state_dtype
from repro.vector.ops import CompiledStream, compile_stream
from repro.vector.semantics import lane_spec

#: Per-batch state budget; lane counts are chunked so the state array
#: stays cache-friendly even for full universes on large geometries.
LANE_BUDGET_BYTES = 32 << 20


def _captures_patched() -> bool:
    """Whether any architecture's response-capture path was replaced.

    The seeded-defect tests plant architecture-local capture defects by
    swapping :data:`RESPONSE_CAPTURES` entries; the vector fast path
    assumes all captures are the shared :func:`capture_response`, so a
    patched table disables it for the whole sweep.
    """
    from repro.conformance.faulty import check as faulty_check

    return any(
        faulty_check.RESPONSE_CAPTURES.get(architecture)
        is not faulty_events.capture_response
        for architecture in ARCHITECTURES
    )


def _plan_test(
    test: MarchTest,
    caps: ControllerCapabilities,
    compress: bool,
    max_ops: Optional[int],
) -> Optional[Tuple[CompiledStream, int]]:
    """Compile the golden stream and verify the architectures against it.

    Returns ``(compiled_golden, skipped_architectures)`` when every
    architecture either skips (``CompileError``) or emits a stream
    op-for-op equal to the golden expansion within the op budget;
    ``None`` sends the whole test to the scalar engine.
    """
    from repro.core.progfsm.compiler import CompileError

    golden_stream = GOLDEN_CACHE.get(test, caps)
    budget = (
        max_ops
        if max_ops is not None
        else DEFAULT_BUDGET_FACTOR * max(len(golden_stream), 1)
    )
    if len(golden_stream) > budget:
        return None  # scalar reproduces the budget trip exactly
    compiled = compile_stream(golden_stream, (1 << caps.width) - 1)
    skipped = 0
    for architecture in ARCHITECTURES:
        try:
            stream = STREAM_BUILDERS[architecture](test, caps, compress)
        except CompileError:
            skipped += 1
            continue
        except Exception:
            return None  # error statuses produce per-fault failure records
        if len(stream) != compiled.length:
            return None
        if [entry.key for entry in stream] != compiled.keys:
            return None
    return compiled, skipped


def _lane_chunk(caps: ControllerCapabilities) -> int:
    """Lanes per kernel batch within :data:`LANE_BUDGET_BYTES`."""
    row_bytes = caps.n_words * state_dtype(caps.width)().itemsize
    return max(16, LANE_BUDGET_BYTES // max(row_bytes, 1))


def _scalar_runs(
    report: FaultSweepReport,
    test: MarchTest,
    caps: ControllerCapabilities,
    faults: Sequence[CellFault],
    compress: bool,
    max_ops: Optional[int],
) -> None:
    for fault in faults:
        report.add(
            check_fault_conformance(
                test, caps, fault, compress=compress, max_ops=max_ops
            )
        )
        report.fallback_runs += 1


def _sweep_test_into(
    report: FaultSweepReport,
    test: MarchTest,
    caps: ControllerCapabilities,
    faults: Sequence[CellFault],
    compress: bool,
    max_ops: Optional[int],
    force_scalar: bool,
) -> None:
    """Sweep one test over the fault population, fault order preserved."""
    # Non-march stimuli (PRT sessions) have no compiled lane plan; they
    # take the counted scalar fallback like any other out-of-model run.
    plan = (
        None
        if force_scalar or not isinstance(test, MarchTest)
        else _plan_test(test, caps, compress, max_ops)
    )
    if plan is None:
        _scalar_runs(report, test, caps, faults, compress, max_ops)
        return
    compiled, skipped_architectures = plan
    specs = []
    spec_fault_indices = []
    for index, fault in enumerate(faults):
        spec = lane_spec(fault, caps.n_words, caps.width, caps.ports)
        if spec is not None:
            specs.append(spec)
            spec_fault_indices.append(index)
    detected: Optional[Dict[int, bool]] = {}
    chunk = _lane_chunk(caps)
    try:
        for start in range(0, len(specs), chunk):
            lane_events, _ = evaluate_lanes(
                compiled, caps.n_words, caps.width,
                specs[start:start + chunk],
            )
            for offset, events in enumerate(lane_events):
                detected[spec_fault_indices[start + offset]] = bool(events)
    except VectorEngineError:
        detected = None  # self-check tripped: nothing from this batch is safe
    if detected is None:
        _scalar_runs(report, test, caps, faults, compress, max_ops)
        return
    for index, fault in enumerate(faults):
        if index in detected:
            report.checked += 1
            if detected[index]:
                report.detected += 1
            report.skipped_runs += skipped_architectures
        else:
            report.add(
                check_fault_conformance(
                    test, caps, fault, compress=compress, max_ops=max_ops
                )
            )
            report.fallback_runs += 1


def _vector_shard(
    args: Tuple[int, Sequence[MarchTest], ControllerCapabilities,
                Sequence[CellFault], int, int, bool, Optional[int]]
) -> FaultSweepReport:
    """Worker entry point: sweep tests ``start..start+count-1``.

    Vector batches are per-test, so shards are contiguous *test* chunks
    (unlike the scalar engine's product chunks); the product order
    inside each shard is still algorithm-major, so merged reports match
    the serial sweep byte for byte.
    """
    (shard_index, tests, caps, faults, start, count, compress,
     max_ops) = args
    started = time.perf_counter()
    report = FaultSweepReport(
        geometry=(caps.n_words, caps.width, caps.ports), engine="vector"
    )
    force_scalar = _captures_patched() or caps.width > MAX_WIDTH
    for test in tests[start:start + count]:
        _sweep_test_into(
            report, test, caps, faults, compress, max_ops, force_scalar
        )
    report.shards = [{
        "shard": shard_index,
        "runs": count * len(faults),
        "wall_time_s": round(time.perf_counter() - started, 6),
    }]
    return report


def run_vector_fault_sweep(
    tests: Sequence[MarchTest],
    capabilities: ControllerCapabilities,
    faults: Sequence[CellFault],
    compress: bool = True,
    max_ops: Optional[int] = None,
    jobs: int = 1,
    service: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = False,
    shard_timeout: Optional[float] = None,
    chaos: Optional[Any] = None,
) -> FaultSweepReport:
    """Vector-engine counterpart of ``run_fault_sweep`` (same report).

    Sharding is by contiguous test chunks — each test is one batch
    evaluation, so splitting inside a test would only re-replay the
    stream.  Reports merge in shard order; the payload (timing aside)
    is independent of ``jobs`` and equal to the scalar engine's.  The
    service knobs (shared engine, result store, resume, per-shard
    timeout, chaos plan) have ``run_fault_sweep``'s semantics; store
    keys carry ``axis="tests"`` and ``engine="vector"``, so vector
    shards never collide with the scalar engine's product shards.

    Raises:
        SweepInterrupted: SIGINT during a sharded run; carries the
            partial report.
    """
    from repro.conformance.faulty.check import SweepInterrupted

    caps = capabilities
    tests = list(tests)
    faults = list(faults)
    started = time.perf_counter()
    serviced = (
        service is not None or store is not None or chaos is not None
    )
    if not tests or not faults:
        report = FaultSweepReport(
            geometry=(caps.n_words, caps.width, caps.ports), engine="vector"
        )
    elif min(jobs, len(tests)) == 1 and not serviced:
        report = _vector_shard(
            (0, tests, caps, faults, 0, len(tests), compress, max_ops)
        )
    else:
        workers = max(1, min(jobs, len(tests)))
        shards = min(len(tests), max(workers, 2) * 2)
        chunk = (len(tests) + shards - 1) // shards
        work = [
            (shard, tests, caps, faults, start,
             min(chunk, len(tests) - start), compress, max_ops)
            for shard, start in enumerate(range(0, len(tests), chunk))
        ]
        key_fields = None
        if store is not None:
            from repro.conformance.trace import stimulus_notation
            from repro.service.store import payload_digest

            key_fields = {
                "kind": "fault-sweep-shard",
                "axis": "tests",
                "tests": payload_digest(
                    [stimulus_notation(t) for t in tests]
                ),
                "geometry": [caps.n_words, caps.width, caps.ports],
                "faults": payload_digest(
                    [_fault_cache_key(f) for f in faults]
                ),
                "compress": compress,
                "max_ops": max_ops,
                "mode": "sequential",
                "engine": "vector",
            }
        try:
            report = _run_sharded(
                work, _vector_shard,
                (caps.n_words, caps.width, caps.ports), workers,
                "sequential", "vector", key_fields=key_fields,
                service=service, store=store, resume=resume,
                shard_timeout=shard_timeout, chaos=chaos,
            )
        except SweepInterrupted as interrupt:
            interrupt.report.wall_time_s = time.perf_counter() - started
            raise
    report.jobs = jobs
    report.wall_time_s = time.perf_counter() - started
    return report


def vector_capture(
    stream,
    capabilities: ControllerCapabilities,
    fault: CellFault,
    max_ops: Optional[int] = None,
) -> ResponseCapture:
    """One fault's response capture via the lane kernel.

    The vector twin of
    :func:`~repro.conformance.faulty.events.capture_response` for a
    single fault — used by the differential tests and the fuzz
    cross-engine identity to compare captures event-for-event.

    Raises:
        UnsupportedFault: the fault has no validated lane semantics.
        ResponseBudgetExceeded: the stream overruns ``max_ops`` (same
            classification as the scalar capture).
    """
    caps = capabilities
    spec = lane_spec(fault, caps.n_words, caps.width, caps.ports)
    if spec is None:
        raise UnsupportedFault(
            f"no vector lane semantics for: {fault.describe()}"
        )
    if max_ops is not None and len(stream) > max_ops:
        raise ResponseBudgetExceeded(
            f"op budget of {max_ops} exceeded after "
            f"{max_ops} operation(s)"
        )
    compiled = compile_stream(stream, (1 << caps.width) - 1)
    lane_events, _ = evaluate_lanes(
        compiled, caps.n_words, caps.width, [spec]
    )
    events: List[FailEvent] = []
    for op_index, observed in lane_events[0]:
        events.append(
            FailEvent(
                op_index=op_index,
                port=int(compiled.ports[op_index]),
                address=int(compiled.addresses[op_index]),
                expected=int(compiled.data[op_index]),
                observed=observed,
                owner=compiled.owners[op_index],
            )
        )
    return ResponseCapture(ops_applied=compiled.length, events=events)
