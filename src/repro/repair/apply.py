"""Executing a repair plan and the end-to-end BISR flow.

Repair is a decoder operation: every logical address whose cell sits on
a repaired physical line is remapped to a spare word.  The library's
:class:`~repro.memory.decoder.AddressDecoder` already supports exactly
that (it is how AF faults are modelled), so applying a plan needs no new
memory machinery — the spare words are extra physical words appended to
the array.

The flow helper runs the full loop a BISR controller implements on
silicon: diagnose with a full-capture BIST run, build the bitmap,
allocate spares, burn the remap (on silicon: fuse programming), and
re-run the BIST to confirm the repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.diagnostics.bitmap import FailBitmap
from repro.diagnostics.faillog import FailLog
from repro.march.library import MARCH_C_PLUS_PLUS
from repro.march.simulator import expand, run_on_memory
from repro.march.test import MarchTest
from repro.memory.sram import Sram
from repro.repair.allocation import RepairPlan, allocate_repair


class RepairError(RuntimeError):
    """Raised when a plan cannot be applied (not enough spare words)."""


def spare_words_needed(plan: RepairPlan, bitmap_grid) -> int:
    """Physical spare words a plan consumes (row length × rows + ...)."""
    per_row = bitmap_grid.cols
    per_col = bitmap_grid.rows
    return len(plan.rows) * per_row + len(plan.columns) * per_col


def make_repairable_memory(n_words: int, spare_words: int, **kwargs) -> Sram:
    """An SRAM with ``spare_words`` extra physical words for repair.

    The logical address space stays ``n_words``; the spares are reachable
    only through decoder remaps.
    """
    memory = Sram(n_words + spare_words, **kwargs)
    memory.logical_words = n_words  # type: ignore[attr-defined]
    return memory


def apply_repair(memory: Sram, plan: RepairPlan, bitmap: FailBitmap) -> List[int]:
    """Burn a repair plan into the memory's decoder.

    Every logical word on a repaired grid line is remapped to the next
    free spare word (physical words beyond the logical space).

    Returns:
        The logical addresses that were remapped.

    Raises:
        RepairError: if the memory lacks enough spare words.
    """
    logical_words = getattr(memory, "logical_words", memory.n_words)
    next_spare = logical_words
    remapped: List[int] = []
    lines: List[Tuple[str, int]] = [("row", row) for row in plan.rows]
    lines += [("column", column) for column in plan.columns]
    for kind, index in lines:
        for word in range(logical_words):
            row, col = bitmap.grid.position((word, 0))
            on_line = (kind == "row" and row == index) or (
                kind == "column" and col == index
            )
            if not on_line:
                continue
            if next_spare >= memory.n_words:
                raise RepairError(
                    f"plan needs more than {memory.n_words - logical_words} "
                    "spare words"
                )
            memory.decoder.remap(word, (next_spare,))
            remapped.append(word)
            next_spare += 1
    return remapped


@dataclass(frozen=True)
class RepairOutcome:
    """Result of the diagnose → allocate → apply → re-test loop.

    Attributes:
        repaired: the part passes after repair.
        plan: the allocation used (``None`` when unrepairable or clean).
        initial_failures / final_failures: BIST fail counts before/after.
        remapped_words: logical addresses moved onto spares.
    """

    repaired: bool
    plan: Optional[RepairPlan]
    initial_failures: int
    final_failures: int
    remapped_words: Tuple[int, ...]

    def __str__(self) -> str:
        if self.plan is None and self.initial_failures:
            return (
                f"UNREPAIRABLE: {self.initial_failures} failures exceed the "
                "redundancy budget"
            )
        if not self.initial_failures:
            return "clean part: no repair needed"
        verdict = "repaired" if self.repaired else "REPAIR FAILED"
        return (
            f"{verdict}: {self.initial_failures} -> {self.final_failures} "
            f"failures; {len(self.remapped_words)} word(s) on spares"
        )


def repair_flow(
    memory: Sram,
    spare_rows: int,
    spare_columns: int,
    test: Optional[MarchTest] = None,
) -> RepairOutcome:
    """Run the complete BISR loop on a (possibly faulty) memory.

    Args:
        memory: a memory from :func:`make_repairable_memory` (or any
            Sram whose tail words are unused spares tracked by a
            ``logical_words`` attribute).
        spare_rows / spare_columns: the redundancy budget.
        test: diagnostic algorithm; defaults to March C++ (full capture
            of every fault class).
    """
    test = test or MARCH_C_PLUS_PLUS
    logical_words = getattr(memory, "logical_words", memory.n_words)

    def bist_failures() -> FailLog:
        memory.reset_state()
        result = run_on_memory(
            expand(test, logical_words, width=memory.width,
                   ports=memory.ports),
            memory,
        )
        return FailLog(test_name=test.name, failures=result.failures)

    log = bist_failures()
    if log.is_clean:
        return RepairOutcome(True, None, 0, 0, ())
    bitmap = FailBitmap.from_log(log, logical_words, memory.width)
    plan = allocate_repair(bitmap, spare_rows, spare_columns)
    if plan is None:
        return RepairOutcome(False, None, len(log), len(log), ())
    remapped = apply_repair(memory, plan, bitmap)
    final = bist_failures()
    return RepairOutcome(
        repaired=final.is_clean,
        plan=plan,
        initial_failures=len(log),
        final_failures=len(final),
        remapped_words=tuple(remapped),
    )
