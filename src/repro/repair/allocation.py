"""Spare-line allocation: covering a fail bitmap with rows and columns.

The spare-allocation problem — cover every failing cell with at most R
spare rows and C spare columns — is the NP-complete heart of memory
repair (Kuo & Fuchs, 1987).  Real fail maps are tiny after clustering,
so the classical exact recipe is practical and is what we implement:

1. **must-repair** preprocessing: a row with more than C failing columns
   can only be fixed by a spare row (and symmetrically), repeat to
   fixpoint;
2. **exact branch-and-bound** on the remaining fails: pick an
   uncovered fail, branch on fixing its row or its column.

Returns the first feasible plan found (depth-first with the smaller
branch tried first), or ``None`` when the budget cannot cover the map —
the "unrepairable die" outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.diagnostics.bitmap import FailBitmap


@dataclass(frozen=True)
class RepairPlan:
    """A feasible spare assignment.

    Attributes:
        rows: physical grid rows replaced by spare rows.
        columns: physical grid columns replaced by spare columns.
        spare_rows / spare_columns: the budget the plan was found under.
    """

    rows: Tuple[int, ...]
    columns: Tuple[int, ...]
    spare_rows: int
    spare_columns: int

    @property
    def lines_used(self) -> int:
        return len(self.rows) + len(self.columns)

    def covers(self, row: int, column: int) -> bool:
        return row in self.rows or column in self.columns

    def __str__(self) -> str:
        return (
            f"repair plan: rows {list(self.rows)} "
            f"(of {self.spare_rows} spares), columns {list(self.columns)} "
            f"(of {self.spare_columns} spares)"
        )


def _positions(bitmap: FailBitmap) -> Set[Tuple[int, int]]:
    positions = set()
    for word in range(bitmap.n_words):
        for bit in range(bitmap.width):
            if bitmap.is_failing(word, bit):
                positions.add(bitmap.grid.position((word, bit)))
    return positions


def _must_repair(
    fails: Set[Tuple[int, int]], spare_rows: int, spare_columns: int
) -> Optional[Tuple[Set[int], Set[int], Set[Tuple[int, int]]]]:
    """Forced assignments; ``None`` if they already exceed the budget."""
    rows: Set[int] = set()
    columns: Set[int] = set()
    remaining = set(fails)
    changed = True
    while changed:
        changed = False
        row_counts: dict = {}
        col_counts: dict = {}
        for row, col in remaining:
            row_counts[row] = row_counts.get(row, 0) + 1
            col_counts[col] = col_counts.get(col, 0) + 1
        col_budget = spare_columns - len(columns)
        row_budget = spare_rows - len(rows)
        for row, count in row_counts.items():
            if count > col_budget:
                rows.add(row)
                changed = True
        for col, count in col_counts.items():
            if count > row_budget:
                columns.add(col)
                changed = True
        if len(rows) > spare_rows or len(columns) > spare_columns:
            return None
        remaining = {
            (row, col)
            for row, col in remaining
            if row not in rows and col not in columns
        }
    return rows, columns, remaining


def _branch(
    fails: FrozenSet[Tuple[int, int]],
    rows_left: int,
    cols_left: int,
) -> Optional[Tuple[Set[int], Set[int]]]:
    if not fails:
        return set(), set()
    if rows_left == 0 and cols_left == 0:
        return None
    # Lower bound: a single line fixes at most max(row hits, col hits);
    # |distinct rows ∩ ...| bound — use the simple fail-count bound.
    row, col = next(iter(fails))
    if rows_left > 0:
        rest = frozenset(f for f in fails if f[0] != row)
        solution = _branch(rest, rows_left - 1, cols_left)
        if solution is not None:
            solution[0].add(row)
            return solution
    if cols_left > 0:
        rest = frozenset(f for f in fails if f[1] != col)
        solution = _branch(rest, rows_left, cols_left - 1)
        if solution is not None:
            solution[1].add(col)
            return solution
    return None


def allocate_repair(
    bitmap: FailBitmap,
    spare_rows: int,
    spare_columns: int,
) -> Optional[RepairPlan]:
    """Allocate spare lines covering every failing cell of ``bitmap``.

    Args:
        bitmap: the diagnostic fail bitmap (physical positions).
        spare_rows / spare_columns: the redundancy the array ships with.

    Returns:
        A :class:`RepairPlan`, or ``None`` when the die is unrepairable
        within the budget.
    """
    if spare_rows < 0 or spare_columns < 0:
        raise ValueError("spare budgets must be non-negative")
    fails = _positions(bitmap)
    if not fails:
        return RepairPlan((), (), spare_rows, spare_columns)
    forced = _must_repair(fails, spare_rows, spare_columns)
    if forced is None:
        return None
    rows, columns, remaining = forced
    solution = _branch(
        frozenset(remaining),
        spare_rows - len(rows),
        spare_columns - len(columns),
    )
    if solution is None:
        return None
    extra_rows, extra_columns = solution
    return RepairPlan(
        rows=tuple(sorted(rows | extra_rows)),
        columns=tuple(sorted(columns | extra_columns)),
        spare_rows=spare_rows,
        spare_columns=spare_columns,
    )
