"""Built-in self-repair (BISR): redundancy allocation from fail bitmaps.

The step after diagnostics in a production memory flow: embedded SRAMs
ship with spare rows/columns, and the fail bitmap a diagnostic BIST run
produces drives the allocation of those spares.  This package implements
the classical flow on top of the library's diagnostics:

* :func:`~repro.repair.allocation.allocate_repair` — spare-line
  allocation (must-repair preprocessing + exact branch-and-bound, the
  textbook formulation of the NP-complete spare-allocation problem);
* :func:`~repro.repair.apply.apply_repair` — execute a plan by remapping
  repaired lines to spare words through the address decoder;
* :func:`~repro.repair.apply.repair_flow` — the end-to-end loop:
  diagnose → allocate → apply → re-test.
"""

from repro.repair.allocation import RepairPlan, allocate_repair
from repro.repair.apply import RepairOutcome, apply_repair, repair_flow

__all__ = [
    "RepairOutcome",
    "RepairPlan",
    "allocate_repair",
    "apply_repair",
    "repair_flow",
]
