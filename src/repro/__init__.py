"""repro — programmable memory BIST architectures.

A from-scratch Python reproduction of "On Programmable Memory Built-In
Self Test Architectures" (Zarrineh & Upadhyaya, DATE 1999): the
microcode-based and programmable-FSM-based MBIST controllers, the
hardwired baselines, a behavioural SRAM with the classical functional
fault models, march-test algebra, a structural silicon-area model, and
the diagnostics/transparent-test extensions.

Quickstart::

    from repro import (
        ControllerCapabilities, MemoryBistUnit, MicrocodeBistController,
        Sram, library,
    )
    from repro.faults import StuckAtFault

    caps = ControllerCapabilities(n_words=64)
    memory = Sram(64)
    memory.attach(StuckAtFault(word=7, bit=0, value=0))
    unit = MemoryBistUnit(MicrocodeBistController(library.MARCH_C, caps), memory)
    result = unit.run()
    assert not result.passed
"""

from repro.core import (
    BistController,
    BistResult,
    ControllerCapabilities,
    Flexibility,
    HardwiredBistController,
    MemoryBistUnit,
    MicrocodeBistController,
    ProgrammableFsmBistController,
)
from repro.march import MarchTest, expand, format_test, library, parse_test
from repro.memory import Sram

__version__ = "1.0.0"

__all__ = [
    "BistController",
    "BistResult",
    "ControllerCapabilities",
    "Flexibility",
    "HardwiredBistController",
    "MarchTest",
    "MemoryBistUnit",
    "MicrocodeBistController",
    "ProgrammableFsmBistController",
    "Sram",
    "expand",
    "format_test",
    "library",
    "parse_test",
]
