"""Human-readable rendering of area reports."""

from __future__ import annotations

from typing import Sequence

from repro.area.estimator import AreaReport


def format_breakdown(report: AreaReport) -> str:
    """Multi-line per-component breakdown of one area report."""
    lines = [str(report)]
    width = max((len(name) for name, _ in report.breakdown), default=0)
    for name, ge in report.breakdown:
        share = 100.0 * ge / report.gate_equivalents if report.gate_equivalents else 0
        lines.append(f"  {name:<{width}}  {ge:9.1f} GE  {share:5.1f}%")
    return "\n".join(lines)


def format_comparison(reports: Sequence[AreaReport]) -> str:
    """Side-by-side totals table for several reports."""
    width = max((len(r.name) for r in reports), default=4)
    lines = [f"{'design':<{width}}  {'GE':>10}  {'um^2':>12}"]
    for report in reports:
        lines.append(
            f"{report.name:<{width}}  {report.gate_equivalents:>10.0f}  "
            f"{report.area_um2:>12.0f}"
        )
    return "\n".join(lines)
