"""Technology library: gate-equivalent and µm² calibration.

The paper reports controller sizes two ways — "internal area" in units of
2×2-input-NAND gates and absolute µm² in IBM CMOS5S (0.35 µm).  We model
a technology as a per-cell gate-equivalent (GE) table plus one scale
factor, the layout area of a single 2-input NAND.  Because every
controller is costed through the same table, all *relative* results
(orderings, ratios, growth trends — the content of Tables 1–3) are
independent of the absolute calibration.

Cell GE values follow standard-cell-library conventions (a D flip-flop
≈ 6 NAND2, a muxed-scan flop ≈ 8, a 2:1 mux ≈ 2.5, an XOR2 ≈ 2.5).  The
*scan-only* storage cell is the paper's key Table 3 ingredient: IBM's
scan-only cells are "approximately 4 to 5 times smaller than regular
full scan registers", so its default GE is ``scan_dff_ge / 4.5``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Technology:
    """Cell-level area calibration for the structural estimator.

    Attributes:
        name: library identifier used in reports.
        nand2_area_um2: layout area of one 2-input NAND; converts GE→µm².
        dff_ge: plain D flip-flop.
        scan_dff_ge: full (muxed) scan flip-flop.
        scan_only_cell_ge: scan-only storage cell (shift-path only, no
            functional-speed data path); the microcode storage unit of
            Table 3 is built from these.
        mux2_ge: 2:1 multiplexer, per bit.
        xor2_ge: 2-input XOR, per bit.
        inv_ge: inverter.
        nand2_ge: the unit itself (1.0 by definition).
    """

    name: str
    nand2_area_um2: float
    dff_ge: float = 6.0
    scan_dff_ge: float = 8.0
    scan_only_cell_ge: float = 8.0 / 4.5
    mux2_ge: float = 2.5
    xor2_ge: float = 2.5
    inv_ge: float = 0.5
    nand2_ge: float = 1.0

    def cell_ge(self, cell: str) -> float:
        """GE of a storage cell kind: 'dff', 'scan_dff' or 'scan_only'."""
        try:
            return {
                "dff": self.dff_ge,
                "scan_dff": self.scan_dff_ge,
                "scan_only": self.scan_only_cell_ge,
            }[cell]
        except KeyError:
            raise ValueError(
                f"unknown storage cell kind {cell!r}; "
                "expected 'dff', 'scan_dff' or 'scan_only'"
            ) from None

    def to_um2(self, gate_equivalents: float) -> float:
        """Convert a GE count to layout area in µm²."""
        return gate_equivalents * self.nand2_area_um2

    def with_scan_only_ratio(self, ratio: float) -> "Technology":
        """Variant with scan-only cells ``ratio`` times smaller than scan
        flip-flops (the paper quotes 4–5×; used by the storage-cell
        ablation benchmark)."""
        if ratio <= 0:
            raise ValueError("scan-only size ratio must be positive")
        return replace(self, scan_only_cell_ge=self.scan_dff_ge / ratio)


#: Calibration standing in for the paper's IBM CMOS5S 0.35 µm library.
#: 54 µm² per NAND2 is a representative mid-90s 0.35 µm standard-cell
#: footprint (≈ 8.4 µm row height × 6.4 µm width).
IBM_CMOS5S = Technology(name="IBM CMOS5S (0.35um)", nand2_area_um2=54.0)
