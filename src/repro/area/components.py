"""Structural hardware components and the :class:`HardwareSpec` inventory.

Every BIST controller in :mod:`repro.core` describes its hardware as a
flat list of these components; :func:`repro.area.estimator.estimate`
costs the list against a :class:`repro.area.technology.Technology`.
Component GE formulas are conventional structural estimates:

* a counter bit = flip-flop + half-adder-ish increment logic;
* an up/down counter adds direction muxing per bit;
* a loadable counter adds a 2:1 load mux per bit;
* a W-bit equality comparator = W XORs + an AND reduction tree;
* an N-way W-bit mux = (N−1)·W 2:1 muxes;
* synthesised combinational blocks carry their own GE from
  :mod:`repro.area.logic_min`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.area.technology import Technology


class Component(abc.ABC):
    """A structural hardware block with a GE cost under a technology."""

    name: str

    @abc.abstractmethod
    def gate_equivalents(self, tech: Technology) -> float:
        """Cost in 2-input-NAND gate equivalents."""


@dataclass
class Register(Component):
    """A plain storage register (or register file / storage unit).

    Args:
        name: label for breakdowns.
        width: bits per row.
        rows: number of rows (1 for a simple register).
        cell: storage cell kind — 'dff', 'scan_dff' or 'scan_only'.
            The microcode storage unit uses 'scan_dff' in the Table 1/2
            configuration and 'scan_only' in the Table 3 redesign.
    """

    name: str
    width: int
    rows: int = 1
    cell: str = "dff"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.rows <= 0:
            raise ValueError(f"register {self.name!r} needs positive dimensions")

    @property
    def bits(self) -> int:
        return self.width * self.rows

    def gate_equivalents(self, tech: Technology) -> float:
        return self.bits * tech.cell_ge(self.cell)


@dataclass
class Counter(Component):
    """A binary counter.

    Args:
        width: counter bits.
        up_down: direction-controllable counter (the BIST address
            generator); adds per-bit direction muxing.
        loadable: parallel-loadable (adds a per-bit load mux).
        cell: flip-flop kind.
    """

    name: str
    width: int
    up_down: bool = False
    loadable: bool = False
    cell: str = "dff"

    #: increment logic per bit (toggle enable chain): ~2.5 2-input gates.
    INCREMENT_GE_PER_BIT = 2.5
    #: extra per-bit logic for direction control.
    UPDOWN_GE_PER_BIT = 1.5

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"counter {self.name!r} needs positive width")

    def gate_equivalents(self, tech: Technology) -> float:
        per_bit = tech.cell_ge(self.cell) + self.INCREMENT_GE_PER_BIT
        if self.up_down:
            per_bit += self.UPDOWN_GE_PER_BIT
        if self.loadable:
            per_bit += tech.mux2_ge
        return self.width * per_bit


@dataclass
class Mux(Component):
    """An N-way, W-bit-wide multiplexer (e.g. the instruction selector)."""

    name: str
    ways: int
    width: int

    def __post_init__(self) -> None:
        if self.ways <= 0 or self.width <= 0:
            raise ValueError(f"mux {self.name!r} needs positive dimensions")

    def gate_equivalents(self, tech: Technology) -> float:
        return max(0, self.ways - 1) * self.width * tech.mux2_ge


@dataclass
class XorArray(Component):
    """W parallel 2-input XORs (polarity/complement stages)."""

    name: str
    width: int

    def gate_equivalents(self, tech: Technology) -> float:
        return self.width * tech.xor2_ge


@dataclass
class Comparator(Component):
    """W-bit equality comparator (the BIST response analyser)."""

    name: str
    width: int

    def gate_equivalents(self, tech: Technology) -> float:
        xors = self.width * tech.xor2_ge
        and_tree = max(0, self.width - 1) * tech.nand2_ge
        return xors + and_tree


@dataclass
class Decoder(Component):
    """An N-output one-hot decoder (storage-row select, state decode)."""

    name: str
    outputs: int

    def gate_equivalents(self, tech: Technology) -> float:
        if self.outputs <= 1:
            return 0.0
        select_bits = max(1, math.ceil(math.log2(self.outputs)))
        # Each output is an AND of select_bits literals plus shared
        # inverters on the select lines.
        per_output = max(0, select_bits - 1) * tech.nand2_ge
        return self.outputs * per_output + select_bits * tech.inv_ge


@dataclass
class LfsrRegister(Component):
    """An LFSR (or MISR) register: storage cells plus feedback XORs.

    The pseudo-ring and pseudorandom BIST realisations replace the march
    background generator with linear-feedback structures; this component
    costs them structurally: one flip-flop per stage, one 2-input XOR
    per feedback tap, and — for the MISR variant — one additional input
    XOR in front of every stage (the parallel response compactor).

    Args:
        name: label for breakdowns.
        width: register stages.
        taps: number of feedback XOR taps (e.g. the popcount of the
            Galois tap mask).
        misr: parallel-input signature register; adds the per-stage
            input XOR array.
    """

    name: str
    width: int
    taps: int
    misr: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"LFSR {self.name!r} needs positive width")
        if self.taps < 0:
            raise ValueError(f"LFSR {self.name!r} needs >= 0 taps")

    def gate_equivalents(self, tech: Technology) -> float:
        ge = self.width * tech.cell_ge("dff") + self.taps * tech.xor2_ge
        if self.misr:
            ge += self.width * tech.xor2_ge
        return ge


@dataclass
class LogicBlock(Component):
    """A synthesised combinational block with a precomputed GE cost.

    Produced from :class:`repro.area.logic_min.TruthTable` (FSM
    next-state/output logic) or from documented fixed estimates for tiny
    glue blocks.
    """

    name: str
    ge: float

    def __post_init__(self) -> None:
        if self.ge < 0:
            raise ValueError(f"logic block {self.name!r} has negative area")

    def gate_equivalents(self, tech: Technology) -> float:
        return self.ge


@dataclass
class HardwareSpec:
    """The complete structural inventory of one BIST unit/controller."""

    name: str
    components: List[Component] = field(default_factory=list)
    notes: str = ""

    def add(self, component: Component) -> "HardwareSpec":
        self.components.append(component)
        return self

    def extend(self, components: List[Component]) -> "HardwareSpec":
        self.components.extend(components)
        return self

    def total_ge(self, tech: Technology) -> float:
        return sum(c.gate_equivalents(tech) for c in self.components)

    def area_um2(self, tech: Technology) -> float:
        return tech.to_um2(self.total_ge(tech))

    def breakdown(self, tech: Technology) -> List[Tuple[str, float]]:
        """(component name, GE) pairs in inventory order."""
        return [(c.name, c.gate_equivalents(tech)) for c in self.components]
