"""Two-level logic minimisation (Quine–McCluskey) and SOP costing.

The hardwired baseline controllers are FSMs whose next-state and output
logic grows with the complexity of the fixed march algorithm; to measure
that growth honestly (rather than asserting it), the area estimator
synthesises each FSM's combinational logic from its truth table:

1. :func:`minimize_sop` — exact prime-implicant generation by iterated
   combining (Quine–McCluskey) followed by essential-prime selection and
   a greedy cover of the remainder.  Exact enough for the ≤ 14-variable
   tables produced by the controllers here.
2. :func:`sop_gate_equivalents` — cost of a sum-of-products network in
   2-input-gate equivalents: an AND of *k* literals is *k − 1* 2-input
   gates, an OR of *t* terms is *t − 1*, plus shared input inverters.

Implicants are ``(value, care_mask)`` pairs: bit *i* of ``care_mask`` set
means variable *i* is a literal of the product term and its polarity is
bit *i* of ``value``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

Implicant = Tuple[int, int]  # (value, care_mask)


def _popcount(x: int) -> int:
    return bin(x).count("1")


def _covers(implicant: Implicant, minterm: int) -> bool:
    value, care = implicant
    return (minterm & care) == (value & care)


def prime_implicants(
    n_vars: int, ones: Iterable[int], dont_cares: Iterable[int] = ()
) -> List[Implicant]:
    """All prime implicants of the function (Quine–McCluskey step 1)."""
    full_mask = (1 << n_vars) - 1
    current: Set[Implicant] = {
        (minterm, full_mask) for minterm in set(ones) | set(dont_cares)
    }
    primes: Set[Implicant] = set()
    while current:
        combined: Set[Implicant] = set()
        used: Set[Implicant] = set()
        by_care: Dict[int, List[Implicant]] = {}
        for imp in current:
            by_care.setdefault(imp[1], []).append(imp)
        for care, group in by_care.items():
            seen = set(value for value, _ in group)
            for value in seen:
                # Try dropping each cared variable; the pair partner is
                # the same term with that bit flipped.
                for bit_index in range(n_vars):
                    bit = 1 << bit_index
                    if not care & bit:
                        continue
                    partner = value ^ bit
                    if partner in seen:
                        combined.add((value & ~bit & care, care & ~bit))
                        used.add((value, care))
                        used.add((partner, care))
        primes |= current - used
        current = combined
    return sorted(primes)


def _select_cover(
    primes: Sequence[Implicant], ones: Sequence[int]
) -> List[Implicant]:
    """Essential primes first, then greedy set cover of what remains."""
    uncovered: Set[int] = set(ones)
    coverage: Dict[Implicant, FrozenSet[int]] = {
        imp: frozenset(m for m in ones if _covers(imp, m)) for imp in primes
    }
    chosen: List[Implicant] = []

    # Essential primes: a minterm covered by exactly one prime.
    essential: Set[Implicant] = set()
    for minterm in ones:
        covering = [imp for imp in primes if minterm in coverage[imp]]
        if len(covering) == 1:
            essential.add(covering[0])
    for imp in sorted(essential):
        chosen.append(imp)
        uncovered -= coverage[imp]

    # Greedy: biggest remaining coverage, ties broken by fewer literals.
    while uncovered:
        best = max(
            primes,
            key=lambda imp: (len(coverage[imp] & uncovered), -_popcount(imp[1])),
        )
        gain = coverage[best] & uncovered
        if not gain:
            raise AssertionError("prime implicants failed to cover the on-set")
        chosen.append(best)
        uncovered -= gain
    return chosen


def minimize_sop(
    n_vars: int, ones: Iterable[int], dont_cares: Iterable[int] = ()
) -> List[Implicant]:
    """Minimised sum-of-products cover of the on-set.

    Args:
        n_vars: number of input variables (minterms are ``n_vars``-bit).
        ones: on-set minterms.
        dont_cares: optional don't-care minterms, usable for merging but
            not required to be covered.

    Returns:
        Chosen implicants; empty list for the constant-0 function, and a
        single all-don't-care implicant ``(0, 0)`` for constant-1.
    """
    ones = sorted(set(ones))
    if not ones:
        return []
    dont_cares = sorted(set(dont_cares) - set(ones))
    if len(ones) + len(dont_cares) == 1 << n_vars:
        return [(0, 0)]
    primes = prime_implicants(n_vars, ones, dont_cares)
    return _select_cover(primes, ones)


def literal_count(cover: Sequence[Implicant]) -> int:
    """Total literals across a cover (the classic PLA-ish cost metric)."""
    return sum(_popcount(care) for _, care in cover)


def sop_gate_equivalents(
    covers: Dict[str, Sequence[Implicant]],
    inv_ge: float = 0.5,
) -> float:
    """2-input-gate-equivalent cost of a multi-output SOP network.

    AND of *k* literals: *k − 1* gates.  OR of *t* terms: *t − 1* gates.
    Complemented literals need one inverter per distinct (variable used
    complemented anywhere) — input buffers/true literals are free.
    Identical product terms are shared between outputs.
    """
    shared_terms: Set[Implicant] = set()
    complemented_vars: Set[int] = set()
    or_gates = 0
    for cover in covers.values():
        or_gates += max(0, len(cover) - 1)
        for value, care in cover:
            shared_terms.add((value, care))
            bit = 0
            remaining = care
            while remaining:
                if remaining & 1 and not (value >> bit) & 1:
                    complemented_vars.add(bit)
                remaining >>= 1
                bit += 1
    and_gates = sum(max(0, _popcount(care) - 1) for _, care in shared_terms)
    return and_gates + or_gates + inv_ge * len(complemented_vars)


@dataclass
class TruthTable:
    """Multi-output truth table with synthesis to a costed SOP network.

    Args:
        n_vars: input count.
        outputs: output name → on-set minterms.
        dont_cares: minterms that are don't-care for *every* output
            (typically unreachable FSM state codes).
    """

    n_vars: int
    outputs: Dict[str, Set[int]]
    dont_cares: Set[int]

    def __init__(
        self,
        n_vars: int,
        outputs: Dict[str, Iterable[int]],
        dont_cares: Iterable[int] = (),
    ) -> None:
        if n_vars < 0 or n_vars > 20:
            raise ValueError(f"unreasonable variable count {n_vars}")
        self.n_vars = n_vars
        self.outputs = {name: set(ones) for name, ones in outputs.items()}
        self.dont_cares = set(dont_cares)

    def synthesize(self) -> Dict[str, List[Implicant]]:
        """Minimised cover per output."""
        return {
            name: minimize_sop(self.n_vars, ones, self.dont_cares)
            for name, ones in self.outputs.items()
        }

    def gate_equivalents(self, inv_ge: float = 0.5) -> float:
        """GE cost of the whole synthesised network."""
        return sop_gate_equivalents(self.synthesize(), inv_ge=inv_ge)
