"""Silicon-area model for BIST controller comparison.

Reproduces the paper's evaluation methodology in structural form: each
controller describes itself as an inventory of registers, counters,
muxes and synthesised combinational blocks
(:class:`~repro.area.components.HardwareSpec`); the estimator costs the
inventory in 2-input-NAND gate equivalents and converts to µm² through a
technology library calibrated to the paper's IBM CMOS5S 0.35 µm process.

FSM next-state/output logic is genuinely synthesised: truth tables are
two-level minimised with the Quine–McCluskey implementation in
:mod:`~repro.area.logic_min` and costed by literal count, so hardwired
controller area really does grow with algorithm complexity, exactly the
trend Tables 1–3 demonstrate.
"""

from repro.area.technology import IBM_CMOS5S, Technology
from repro.area.components import (
    Comparator,
    Counter,
    Decoder,
    HardwareSpec,
    LogicBlock,
    Mux,
    Register,
    XorArray,
)
from repro.area.logic_min import TruthTable, minimize_sop, sop_gate_equivalents
from repro.area.estimator import AreaReport, estimate
from repro.area.report import format_breakdown

__all__ = [
    "AreaReport",
    "Comparator",
    "Counter",
    "Decoder",
    "HardwareSpec",
    "IBM_CMOS5S",
    "LogicBlock",
    "Mux",
    "Register",
    "Technology",
    "TruthTable",
    "XorArray",
    "estimate",
    "format_breakdown",
    "minimize_sop",
    "sop_gate_equivalents",
]
