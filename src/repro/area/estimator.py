"""Area estimation entry point: spec → :class:`AreaReport`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.area.components import HardwareSpec
from repro.area.technology import IBM_CMOS5S, Technology


@dataclass(frozen=True)
class AreaReport:
    """Costed result for one hardware spec under one technology.

    Attributes:
        name: the spec's name.
        technology: technology library name used.
        gate_equivalents: total cost in 2-input-NAND equivalents (the
            paper's "internal area" column).
        area_um2: total layout area (the paper's "size µm²" column).
        breakdown: per-component (name, GE) rows.
    """

    name: str
    technology: str
    gate_equivalents: float
    area_um2: float
    breakdown: Tuple[Tuple[str, float], ...]

    def component_ge(self, name_prefix: str) -> float:
        """Summed GE of components whose name starts with a prefix."""
        return sum(ge for name, ge in self.breakdown if name.startswith(name_prefix))

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.gate_equivalents:.0f} GE, "
            f"{self.area_um2:.0f} um^2 ({self.technology})"
        )


def estimate(spec: HardwareSpec, tech: Optional[Technology] = None) -> AreaReport:
    """Cost a hardware spec under a technology (default IBM CMOS5S model).

    Args:
        spec: component inventory from a controller's ``hardware()``.
        tech: calibration library; defaults to
            :data:`repro.area.technology.IBM_CMOS5S`.
    """
    tech = tech or IBM_CMOS5S
    ge = spec.total_ge(tech)
    return AreaReport(
        name=spec.name,
        technology=tech.name,
        gate_equivalents=ge,
        area_um2=tech.to_um2(ge),
        breakdown=tuple(spec.breakdown(tech)),
    )
