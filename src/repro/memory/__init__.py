"""Behavioural SRAM substrate with fault-injection hook points.

The paper's BIST units test embedded SRAMs; this package provides the
memory-under-test model:

* :class:`~repro.memory.sram.Sram` — bit- or word-oriented, single- or
  multi-port behavioural SRAM with per-cell fault hooks and a retention
  time base.
* :class:`~repro.memory.decoder.AddressDecoder` — logical-to-physical
  address mapping, mutable by address-decoder faults.
* :mod:`~repro.memory.retention` — the decay time base used by
  data-retention faults.
"""

from repro.memory.sram import Sram
from repro.memory.decoder import AddressDecoder

__all__ = ["AddressDecoder", "Sram"]
