"""Address scrambling: the logical-to-physical address mapping.

Real SRAMs scramble addresses — row/column decoders interleave, fold and
mirror so that consecutive *logical* addresses are rarely physically
adjacent.  Faults that live in physical space (bridges between adjacent
cells, NPSF neighbourhoods) therefore cannot be targeted by tests
written in logical address space unless the test generator knows the
scrambling — the reason vendors publish "topological" descrambling
tables for their compilers.

:class:`AddressScrambler` models the common linear scramblings (address
bit permutation plus an XOR mask, which covers folding/mirroring); the
physical-pattern generators (:func:`repro.classic.checkerboard` and the
fail bitmap) accept one, and the scrambling tests show the coverage
collapse when it is ignored.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class AddressScrambler:
    """Bijective logical↔physical address mapping.

    ``physical = permute(logical) XOR mask`` where ``permute`` reorders
    address bits.  Identity by default.

    Args:
        address_bits: width of the address in bits.
        bit_permutation: for each physical address bit, the logical
            address bit that feeds it; must be a permutation of
            ``0..address_bits-1``.  ``None`` keeps bit order.
        xor_mask: XOR applied after the permutation (folding/mirroring).
    """

    def __init__(
        self,
        address_bits: int,
        bit_permutation: Optional[Sequence[int]] = None,
        xor_mask: int = 0,
    ) -> None:
        if address_bits <= 0:
            raise ValueError(f"need at least one address bit, got {address_bits}")
        permutation = (
            list(bit_permutation)
            if bit_permutation is not None
            else list(range(address_bits))
        )
        if sorted(permutation) != list(range(address_bits)):
            raise ValueError(
                f"{permutation} is not a permutation of 0..{address_bits - 1}"
            )
        if not 0 <= xor_mask < (1 << address_bits):
            raise ValueError(f"xor mask {xor_mask:#x} exceeds the address width")
        self.address_bits = address_bits
        self.permutation = permutation
        self.xor_mask = xor_mask
        # Precompute the inverse permutation for descrambling.
        self._inverse = [0] * address_bits
        for physical_bit, logical_bit in enumerate(permutation):
            self._inverse[logical_bit] = physical_bit

    @property
    def size(self) -> int:
        return 1 << self.address_bits

    @property
    def is_identity(self) -> bool:
        return (
            self.permutation == list(range(self.address_bits))
            and self.xor_mask == 0
        )

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise IndexError(
                f"address {address} out of range 0..{self.size - 1}"
            )

    def physical(self, logical: int) -> int:
        """Physical cell index selected by a logical address."""
        self._check(logical)
        result = 0
        for physical_bit, logical_bit in enumerate(self.permutation):
            result |= ((logical >> logical_bit) & 1) << physical_bit
        return result ^ self.xor_mask

    def logical(self, physical: int) -> int:
        """Logical address that selects a physical cell (the inverse)."""
        self._check(physical)
        unmasked = physical ^ self.xor_mask
        result = 0
        for logical_bit, physical_bit in enumerate(self._inverse):
            result |= ((unmasked >> physical_bit) & 1) << logical_bit
        return result

    def mapping(self) -> List[int]:
        """The full logical→physical table."""
        return [self.physical(address) for address in range(self.size)]

    @classmethod
    def row_column_interleave(cls, address_bits: int) -> "AddressScrambler":
        """A typical compiler scrambling: swap the row/column halves of
        the address (low bits become the row index)."""
        half = address_bits // 2
        permutation = list(range(half, address_bits)) + list(range(half))
        return cls(address_bits, permutation)

    @classmethod
    def folded(cls, address_bits: int) -> "AddressScrambler":
        """Mirror the top address half (common folded-array layout)."""
        mask = ((1 << (address_bits // 2)) - 1) << (address_bits - address_bits // 2)
        return cls(address_bits, xor_mask=mask)

    def __repr__(self) -> str:
        return (
            f"AddressScrambler(bits={self.address_bits}, "
            f"perm={self.permutation}, mask={self.xor_mask:#x})"
        )
