"""Behavioural SRAM model with fault hook points.

:class:`Sram` is the memory-under-test of every BIST run in this library.
It is deliberately behavioural: a word array plus an address decoder and
an ordered list of attached cell faults.  Every read and write funnels
through the fault hooks so that the functional fault models of
:mod:`repro.faults` (stuck-at, transition, coupling, stuck-open,
retention, NPSF) can distort the observed behaviour exactly as the DFT
literature defines them.

Multi-port behaviour: the ports of an embedded multiport SRAM share one
cell array; the BIST architectures in the paper test each port by
re-running the whole algorithm per port (the microcode ``Inc. Port``
instruction / the FSM controller's path B).  Port-specific defects are
modelled by faults that only fire for a given port.

Genuinely *concurrent* multi-port access — several ports active in the
same cycle, the paper's multiport Table 2 regime — goes through
:meth:`Sram.cycle`, which applies a whole per-port operation group
atomically under a documented read/write and write/write arbitration
order (reads sample pre-cycle contents; writes commit in ascending port
order).  Faults that are only sensitised by simultaneous accesses (the
contention PAF and cross-port coupling models of
:mod:`repro.faults.concurrent`) observe the group through the
``on_cycle_start``/``on_cycle_end`` hooks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.memory.decoder import AddressDecoder
from repro.memory.retention import RetentionClock


class Sram:
    """Word-organised behavioural SRAM.

    Args:
        n_words: number of logical addresses (= physical words when the
            decoder is fault-free).
        width: word width in bits; 1 models a bit-oriented memory.
        ports: number of identical read/write ports.
        open_read_value: word returned when the decoder maps an address
            to no cell (AF1); 0 models bit lines pulled to ground.

    Attributes:
        decoder: the (mutable) address decoder.
        clock: retention time base; advanced by 1 per access and by pause
            durations via :meth:`elapse`.
        faults: attached cell faults, in injection order.
    """

    def __init__(
        self,
        n_words: int,
        width: int = 1,
        ports: int = 1,
        open_read_value: int = 0,
    ) -> None:
        if n_words <= 0:
            raise ValueError(f"memory needs at least one word, got {n_words}")
        if width <= 0 or width & (width - 1):
            raise ValueError(f"width must be a positive power of two, got {width}")
        if ports <= 0:
            raise ValueError(f"memory needs at least one port, got {ports}")
        self.n_words = n_words
        self.width = width
        self.ports = ports
        self.open_read_value = open_read_value & self.word_mask
        self.decoder = AddressDecoder(n_words)
        self.clock = RetentionClock()
        self.faults: List = []
        self._cells: List[int] = [0] * n_words

    # -- geometry ----------------------------------------------------------

    @property
    def word_mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def size_bits(self) -> int:
        """Total capacity in bits."""
        return self.n_words * self.width

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.ports:
            raise IndexError(f"port {port} out of range 0..{self.ports - 1}")

    # -- raw cell access (fault models and diagnostics only) ----------------

    def peek(self, word: int) -> int:
        """Read a physical word without exercising decoder or faults."""
        return self._cells[word]

    def poke(self, word: int, value: int) -> None:
        """Set a physical word directly, bypassing decoder and faults.

        Used by coupling-fault models to flip their victim and by tests
        to establish known state.
        """
        self._cells[word] = value & self.word_mask

    def force_bit(self, word: int, bit: int, value: int) -> None:
        """Set one physical bit directly (fault-model helper)."""
        if value:
            self._cells[word] |= 1 << bit
        else:
            self._cells[word] &= ~(1 << bit)

    # -- functional port interface ------------------------------------------

    def write(self, port: int, address: int, value: int) -> None:
        """Write ``value`` through ``port`` at logical ``address``."""
        self._check_port(port)
        value &= self.word_mask
        self.clock.advance(1)
        for word in self.decoder.targets(address):
            old = self._cells[word]
            new = value
            for fault in self.faults:
                new = fault.on_write(self, port, word, old, new) & self.word_mask
            self._cells[word] = new
            for fault in self.faults:
                fault.on_any_write(self, port, word, old, new)

    def read(self, port: int, address: int) -> int:
        """Read through ``port`` at logical ``address``; returns the word.

        Reads of an address decoded to several cells observe the
        wired-AND of their (fault-distorted) contents; an address decoded
        to no cell observes :attr:`open_read_value`.
        """
        self._check_port(port)
        self.clock.advance(1)
        targets = self.decoder.targets(address)
        if not targets:
            return self.open_read_value
        observed = self.word_mask
        for word in targets:
            value = self._cells[word]
            for fault in self.faults:
                value = fault.on_read(self, port, word, value) & self.word_mask
            observed &= value
        return observed

    def cycle(self, ops: Sequence) -> dict:
        """Apply one same-cycle multi-port operation group atomically.

        ``ops`` is a group of :class:`~repro.march.simulator.
        MemoryOperation` issued in the *same* memory cycle, at most one
        per port.  The arbitration contract (asserted here, documented
        in ``docs/TESTING.md``) is:

        1. every operation targets a distinct port (a port has one
           address/data register — two same-cycle accesses through one
           port are a stimulus bug, not a memory behaviour);
        2. the clock advances once for the whole group (one cycle);
        3. **reads sample pre-cycle contents** ("read-first"): all reads
           complete, in ascending port order, before any write commits —
           so a write+read race on one cell observes the old value;
        4. writes commit after every read, in ascending port order, so a
           write/write race on one cell resolves to the **highest port**
           (last writer wins).

        A pause may only travel alone (a single delay operation); it is
        equivalent to :meth:`elapse`.

        Fault hooks: ``on_cycle_start(memory, group)`` fires before any
        access of the group and ``on_cycle_end(memory, group)`` after
        the last one (exception-safely), bracketing the per-access
        ``on_read``/``on_write``/``on_any_write`` hooks so concurrency-
        sensitised fault models can see which ports co-access which
        words this cycle.  The sequential :meth:`read`/:meth:`write`
        paths never fire the cycle hooks — a fault gated on them is, by
        construction, invisible to one-port-at-a-time stimuli.

        Returns:
            ``{port: observed_word}`` for the group's reads.
        """
        group = sorted(ops, key=lambda op: op.port)
        if not group:
            raise ValueError("a cycle needs at least one operation")
        ports_seen = set()
        for op in group:
            self._check_port(op.port)
            if op.port in ports_seen:
                raise ValueError(
                    f"two same-cycle operations on port {op.port}; a port "
                    f"issues at most one access per cycle"
                )
            ports_seen.add(op.port)
            if op.is_delay and len(group) > 1:
                raise ValueError(
                    "a pause cannot share a cycle with port accesses"
                )
        if group[0].is_delay:
            self.elapse(group[0].delay)
            return {}
        self.clock.advance(1)
        frozen = tuple(group)
        for fault in self.faults:
            fault.on_cycle_start(self, frozen)
        try:
            observed_by_port = {}
            for op in frozen:
                if not op.is_read:
                    continue
                targets = self.decoder.targets(op.address)
                if not targets:
                    observed_by_port[op.port] = self.open_read_value
                    continue
                observed = self.word_mask
                for word in targets:
                    value = self._cells[word]
                    for fault in self.faults:
                        value = (
                            fault.on_read(self, op.port, word, value)
                            & self.word_mask
                        )
                    observed &= value
                observed_by_port[op.port] = observed
            for op in frozen:
                if not op.is_write:
                    continue
                value = op.value & self.word_mask
                for word in self.decoder.targets(op.address):
                    old = self._cells[word]
                    new = value
                    for fault in self.faults:
                        new = (
                            fault.on_write(self, op.port, word, old, new)
                            & self.word_mask
                        )
                    self._cells[word] = new
                    for fault in self.faults:
                        fault.on_any_write(self, op.port, word, old, new)
        finally:
            for fault in self.faults:
                fault.on_cycle_end(self, frozen)
        return observed_by_port

    def elapse(self, duration: int) -> None:
        """Idle for ``duration`` retention-time units (march pauses)."""
        self.clock.advance(duration)
        for fault in self.faults:
            fault.on_elapse(self, duration)

    # -- fault management ----------------------------------------------------

    def attach(self, fault) -> None:
        """Attach a cell fault (see :class:`repro.faults.base.CellFault`)."""
        fault.install(self)
        self.faults.append(fault)

    def detach_all(self) -> None:
        """Remove every fault and restore the fault-free decoder.

        Exception-safe: even when a fault's ``remove`` raises, every
        other fault is still removed, the fault list is cleared and the
        decoder is restored before the first error propagates — a
        misbehaving fault model cannot leave a half-attached fault (or
        its decoder rewrite) behind for the next experiment.
        """
        errors: List[BaseException] = []
        try:
            for fault in self.faults:
                try:
                    fault.remove(self)
                except Exception as error:
                    errors.append(error)
        finally:
            self.faults.clear()
            self.decoder.reset()
        if errors:
            raise errors[0]

    def reset_state(self, fill: int = 0) -> None:
        """Reset cell contents, time and the dynamic state of all faults.

        Fault *presence* is kept — this models power-cycling a defective
        part between test runs.
        """
        self._cells = [fill & self.word_mask] * self.n_words
        self.clock.reset()
        for fault in self.faults:
            fault.reset()

    def snapshot(self) -> Sequence[int]:
        """Immutable copy of the physical cell contents."""
        return tuple(self._cells)

    def bit_image(self) -> Tuple[Tuple[int, ...], ...]:
        """Cell contents as a ``words × width`` bit matrix (LSB first).

        The per-bit view the batch kernel's state array is compared
        against in the engine-equivalence tests; it also makes word
        diffs in failure output readable for multi-bit geometries.
        """
        return tuple(
            tuple((word >> bit) & 1 for bit in range(self.width))
            for word in self._cells
        )

    def __repr__(self) -> str:
        kind = "bit-oriented" if self.width == 1 else f"{self.width}-bit word"
        return (
            f"Sram({self.n_words} words, {kind}, {self.ports} port(s), "
            f"{len(self.faults)} fault(s))"
        )
