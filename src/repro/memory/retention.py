"""Retention time base shared by the SRAM model and retention faults.

Data-retention faults (DRFs) are time-dependent: a weak cell holds its
value only for a bounded *decay time*.  March algorithms detect them with
explicit pauses (the ``Hold`` steps of March C+ / A+), so the memory
model needs a notion of elapsed idle time.  :class:`RetentionClock`
accumulates idle time between accesses; any access resets nothing by
itself — fault models decide how elapsed time affects their cell.
"""

from __future__ import annotations


class RetentionClock:
    """Monotonic idle-time accumulator for data-retention modelling.

    Time units are arbitrary; the convention throughout the library is
    that ordinary read/write cycles contribute 1 unit each and explicit
    march pauses contribute their ``duration``.  Default DRF decay times
    (500 units) sit far above any per-cycle accumulation of the
    memory sizes used in tests, so only explicit pauses trigger decay.
    """

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        """Current absolute time."""
        return self._now

    def advance(self, duration: int) -> None:
        """Advance time by a non-negative number of units."""
        if duration < 0:
            raise ValueError(f"time cannot move backwards ({duration})")
        self._now += duration

    def reset(self) -> None:
        self._now = 0
