"""Address decoder model.

A fault-free decoder maps every logical address to exactly one physical
word, bijectively.  The four classical address-decoder fault (AF) classes
of van de Goor break that bijection:

* AF1 — an address maps to *no* cell (reads float, writes are lost);
* AF2 — a cell is never accessed by any address;
* AF3 — multiple addresses map to one cell;
* AF4 — one address maps to multiple cells.

The decoder therefore exposes the mapping as an explicit
``address -> set of physical words`` table that the AF fault models in
:mod:`repro.faults.address_decoder` rewrite.  Reads of an address mapped
to several cells see the wired-AND of their contents (the usual model for
shorted word lines pulling a differential bit line low).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class AddressDecoder:
    """Mutable logical-to-physical address mapping of an SRAM.

    Attributes:
        n_words: size of both the logical address space and the physical
            cell array (fault-free mapping is the identity).
    """

    def __init__(self, n_words: int) -> None:
        if n_words <= 0:
            raise ValueError(f"decoder needs at least one word, got {n_words}")
        self.n_words = n_words
        self._map: Dict[int, Tuple[int, ...]] = {}

    def _check(self, address: int) -> None:
        if not 0 <= address < self.n_words:
            raise IndexError(f"address {address} out of range 0..{self.n_words - 1}")

    def targets(self, address: int) -> Tuple[int, ...]:
        """Physical words accessed (read or written) for ``address``."""
        self._check(address)
        return self._map.get(address, (address,))

    def remap(self, address: int, targets: Tuple[int, ...]) -> None:
        """Overwrite the mapping of one address (used by AF faults).

        An empty target tuple models AF1 (address selects no cell).
        """
        self._check(address)
        for target in targets:
            if not 0 <= target < self.n_words:
                raise IndexError(f"physical word {target} out of range")
        self._map[address] = tuple(targets)

    def restore(self, address: int) -> None:
        """Restore the fault-free identity mapping of one address."""
        self._check(address)
        self._map.pop(address, None)

    def reset(self) -> None:
        """Restore the fault-free identity mapping everywhere."""
        self._map.clear()

    @property
    def is_faulty(self) -> bool:
        return bool(self._map)

    def unreachable_cells(self) -> List[int]:
        """Physical words no logical address can access (AF2 victims)."""
        reached = set()
        for address in range(self.n_words):
            reached.update(self.targets(address))
        return [word for word in range(self.n_words) if word not in reached]
