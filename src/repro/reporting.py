"""Markdown datasheet generation for a BIST configuration.

``python -m repro report`` (or :func:`datasheet`) renders everything a
reviewer or integrator asks about one configuration into a single
document: geometry, the loaded algorithm and its program listing, the
measured fault coverage, the silicon-area breakdown, and the flexibility
statement for the chosen architecture.
"""

from __future__ import annotations

from typing import List, Optional

from repro.area.estimator import estimate
from repro.core.controller import BistController, ControllerCapabilities
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController
from repro.core.microcode.disassembler import disassemble
from repro.core.progfsm import ProgrammableFsmBistController
from repro.eval.coverage_study import COVERAGE_COLUMNS, coverage_table
from repro.march import format_test
from repro.march.test import MarchTest


def _program_section(controller: BistController) -> List[str]:
    if isinstance(controller, MicrocodeBistController):
        lines = ["## Microcode program", "", "```"]
        lines.extend(disassemble(controller.program).splitlines())
        lines.append("```")
        return lines
    if isinstance(controller, ProgrammableFsmBistController):
        lines = ["## SM instruction program", "", "```"]
        for index, instruction in enumerate(controller.program.instructions):
            lines.append(f"{index:3d}: {instruction}")
        lines.append("```")
        return lines
    graph = controller.graph
    return [
        "## Hardwired FSM",
        "",
        f"{graph.state_count} states ({graph.state_bits}-bit state register); "
        "any algorithm change requires re-synthesis.",
    ]


def datasheet(
    controller: BistController,
    coverage_words: int = 8,
    title: Optional[str] = None,
) -> str:
    """Render a markdown datasheet for a configured controller.

    Args:
        controller: the BIST controller to document.
        coverage_words: array size for the coverage measurement sweep.
        title: heading override; defaults to architecture + algorithm.
    """
    caps = controller.capabilities
    test = controller.loaded_test()
    report = estimate(controller.hardware())

    lines: List[str] = [
        f"# {title or f'{controller.architecture} MBIST — {test.name}'}",
        "",
        "## Configuration",
        "",
        f"- architecture: **{controller.architecture}** "
        f"(flexibility {controller.flexibility.value})",
        f"- memory under test: {caps.n_words} words × {caps.width} bit(s), "
        f"{caps.ports} port(s)",
        f"- algorithm: **{test.name}** ({test.complexity})",
        f"- notation: `{format_test(test)}`",
        "",
    ]
    lines.extend(_program_section(controller))
    lines.extend([
        "",
        "## Measured fault coverage",
        "",
        "| class | coverage |",
        "|---|---:|",
    ])
    rows = coverage_table(n_words=coverage_words, algorithms=(test.name,))
    for column in COVERAGE_COLUMNS:
        percent = rows[0].percent(column)
        cell = "n/a (0/0)" if percent is None else f"{percent:.0f} %"
        lines.append(f"| {column} | {cell} |")
    lines.append(f"| **overall** | **{rows[0].overall:.1f} %** |")
    lines.extend([
        "",
        "## Silicon area",
        "",
        f"Total: **{report.gate_equivalents:.0f} GE** "
        f"({report.area_um2:.0f} µm², {report.technology})",
        "",
        "| block | GE | share |",
        "|---|---:|---:|",
    ])
    for name, ge in report.breakdown:
        share = 100.0 * ge / report.gate_equivalents
        lines.append(f"| {name} | {ge:.1f} | {share:.1f} % |")
    lines.append("")
    return "\n".join(lines) + "\n"


def build_controller(
    architecture: str,
    test: MarchTest,
    capabilities: ControllerCapabilities,
) -> BistController:
    """Controller factory shared by the CLI and the datasheet command."""
    factories = {
        "microcode": MicrocodeBistController,
        "progfsm": ProgrammableFsmBistController,
        "hardwired": HardwiredBistController,
    }
    try:
        factory = factories[architecture]
    except KeyError:
        raise ValueError(
            f"unknown architecture {architecture!r}; "
            f"known: {sorted(factories)}"
        ) from None
    return factory(test, capabilities)
